//! HALOTIS — High Accuracy LOgic TIming Simulator with inertial and
//! degradation delay model.
//!
//! This crate is the facade of the workspace reproducing the DATE 2001 paper
//! *"HALOTIS: High Accuracy LOgic TIming Simulator with inertial and
//! degradation delay model"* (Ruiz de Clavijo, Juan-Chico, Bellido, Acosta,
//! Valencia).  It re-exports the member crates under stable module names and
//! adds the [`experiments`] module, which packages every table and figure of
//! the paper's evaluation as a callable experiment.
//!
//! | Module | Contents |
//! |---|---|
//! | [`core`] | time/voltage/logic vocabulary types |
//! | [`delay`] | conventional + degradation delay models (paper eq. 1–3) |
//! | [`netlist`] | cells, synthetic 0.6 µm library, netlist builder, circuit generators |
//! | [`waveform`] | transitions, digital/analog waveforms, VCD/ASCII, comparisons |
//! | [`sim`] | the HALOTIS engine and the classical baseline simulator |
//! | [`analog`] | the reference electrical simulator (HSPICE substitute) |
//! | [`corpus`] | the deterministic benchmark corpus behind the CI golden/perf gates |
//! | [`serve`] | the simulation daemon: wire protocol, circuit cache, worker scheduler |
//! | [`experiments`] | Fig. 1/3/6/7 and Table 1/2 reproductions + extensions |
//!
//! # Quick start
//!
//! ```
//! use halotis::experiments::{multiplier_fixture, multiplier_stimulus, SEQUENCE_FIG6};
//! use halotis::sim::{SimulationConfig, Simulator};
//!
//! let fixture = multiplier_fixture();
//! let stimulus = multiplier_stimulus(&fixture.ports, SEQUENCE_FIG6);
//! let simulator = Simulator::new(&fixture.netlist, &fixture.library);
//! let result = simulator.run(&stimulus, &SimulationConfig::ddm())?;
//! assert!(result.stats().events_processed > 0);
//! # Ok::<(), halotis::sim::SimulationError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use halotis_analog as analog;
pub use halotis_core as core;
pub use halotis_corpus as corpus;
pub use halotis_delay as delay;
pub use halotis_netlist as netlist;
pub use halotis_serve as serve;
pub use halotis_sim as sim;
pub use halotis_waveform as waveform;

pub mod experiments;
