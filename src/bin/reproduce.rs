//! Regenerates every table and figure of the HALOTIS paper's evaluation.
//!
//! ```text
//! cargo run --release --bin reproduce -- all
//! cargo run --release --bin reproduce -- fig1 fig3 fig6 fig7 table1 table2 pulsewidth
//! ```
//!
//! Each experiment prints a self-contained text report; `EXPERIMENTS.md`
//! records one captured run next to the paper's own numbers.

use std::env;
use std::process::ExitCode;

use halotis::core::TimeDelta;
use halotis::experiments::{figure1, figure3, figures67, pulse_width, table1, table2};

const USAGE: &str = "usage: reproduce [all|fig1|fig3|fig6|fig7|table1|table2|pulsewidth]...";

fn run_fig1() {
    println!("=== Figure 1: classical inertial delay vs HALOTIS vs electrical reference ===\n");
    // Sweep a few pulse widths and show the most interesting one (where the
    // electrical reference is selective between the two branches), falling
    // back to a mid-range pulse if the sweep finds none.
    let widths: Vec<f64> = (4..28).map(|i| i as f64 * 25.0).collect();
    let report = figure1::find_selective_pulse(&widths)
        .unwrap_or_else(|| figure1::figure1_experiment(TimeDelta::from_ps(400.0)));
    println!("{}", report.render());
    println!(
        "HALOTIS matches the electrical reference: {}",
        report.halotis_matches_analog()
    );
    println!(
        "classical simulator disagrees with the reference: {}\n",
        report.classical_disagrees_with_analog()
    );
}

fn run_fig3() {
    println!("=== Figure 3: one transition, one event per fanout input threshold ===\n");
    let report = figure3::figure3();
    println!(
        "falling transition: t0 = {:.3} ns, tau_f = {:.3} ns\n",
        report.transition.start().as_ns(),
        report.transition.slew().as_ns()
    );
    println!("{}", report.render());
}

fn run_fig6() {
    println!("=== Figure 6 ===\n");
    println!("{}", figures67::figure6().render());
}

fn run_fig7() {
    println!("=== Figure 7 ===\n");
    println!("{}", figures67::figure7().render());
}

fn run_table1() {
    println!("=== Table 1: simulation statistics (events / filtered events) ===\n");
    let rows = table1::table1();
    println!("{}", table1::render(&rows));
}

fn run_table2() {
    println!("=== Table 2: CPU time (seconds) ===\n");
    let rows = table2::table2();
    println!("{}", table2::render(&rows));
}

fn run_pulse_width() {
    println!("=== Extension: pulse-width degradation sweep ===\n");
    let sweep = pulse_width::default_sweep();
    println!("{}", pulse_width::render(&sweep));
}

fn main() -> ExitCode {
    let requested: Vec<String> = env::args().skip(1).collect();
    let requested: Vec<&str> = if requested.is_empty() {
        vec!["all"]
    } else {
        requested.iter().map(String::as_str).collect()
    };

    let mut plan: Vec<&str> = Vec::new();
    for arg in requested {
        match arg {
            "all" => plan.extend([
                "fig1",
                "fig3",
                "fig6",
                "fig7",
                "table1",
                "table2",
                "pulsewidth",
            ]),
            "fig1" | "fig3" | "fig6" | "fig7" | "table1" | "table2" | "pulsewidth" => {
                plan.push(arg)
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown experiment: {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    for experiment in plan {
        match experiment {
            "fig1" => run_fig1(),
            "fig3" => run_fig3(),
            "fig6" => run_fig6(),
            "fig7" => run_fig7(),
            "table1" => run_table1(),
            "table2" => run_table2(),
            "pulsewidth" => run_pulse_width(),
            _ => unreachable!("plan only contains known experiments"),
        }
    }
    ExitCode::SUCCESS
}
