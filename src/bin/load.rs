//! `halotis-load` — the load generator and differential checker for the
//! `halotis-serve` daemon.
//!
//! ```text
//! halotis-load (--tcp ADDR | --uds PATH) [--clients N] [--repeats N]
//!              [--timing PATH] [--check-stats GOLDEN] [--shutdown]
//! ```
//!
//! * `--tcp ADDR` / `--uds PATH` — where the daemon listens (exactly one),
//! * `--clients N` — concurrent client connections (default 4),
//! * `--repeats N` — corpus passes per client (default 1),
//! * `--timing PATH` — write the latency report in the capture format
//!   `scripts/bench_to_json.py` parses (`serve/load/p50`,
//!   `serve/simulate/p99`, `serve/request_period`, …),
//! * `--check-stats GOLDEN` — deterministic-replay mode: replay the corpus
//!   once over one connection and compare every scenario against the
//!   committed `CORPUS_stats.json` (counters exactly, floats bitwise);
//!   exits non-zero on the first divergence,
//! * `--shutdown` — send a `shutdown` request after the run, draining the
//!   daemon (used by `scripts/serve_bench.sh`).
//!
//! Every run replays the full 22-entry standard corpus — each entry loaded
//! by fingerprint, then simulated under the DDM, CDM and MIX model columns.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use halotis::serve::client::{shutdown_request, Client};
use halotis::serve::loadgen::{self, LoadOptions, Target};

const USAGE: &str = "usage: halotis-load (--tcp ADDR | --uds PATH) [--clients N] \
                     [--repeats N] [--timing PATH] [--check-stats GOLDEN] [--shutdown]";

struct Options {
    target: Target,
    load: LoadOptions,
    timing: Option<String>,
    check_stats: Option<String>,
    shutdown: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut target: Option<Target> = None;
    let mut load = LoadOptions::default();
    let mut timing = None;
    let mut check_stats = None;
    let mut shutdown = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--tcp" => target = Some(Target::Tcp(value_of("--tcp")?)),
            "--uds" => target = Some(Target::Uds(PathBuf::from(value_of("--uds")?))),
            "--clients" => {
                load.clients = value_of("--clients")?
                    .parse()
                    .map_err(|_| "--clients needs an integer".to_string())?
            }
            "--repeats" => {
                load.repeats = value_of("--repeats")?
                    .parse()
                    .map_err(|_| "--repeats needs an integer".to_string())?
            }
            "--timing" => timing = Some(value_of("--timing")?),
            "--check-stats" => check_stats = Some(value_of("--check-stats")?),
            "--shutdown" => shutdown = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option: {other}")),
        }
    }
    let target = target.ok_or_else(|| "one of --tcp / --uds is required".to_string())?;
    Ok(Options {
        target,
        load,
        timing,
        check_stats,
        shutdown,
    })
}

fn send_shutdown(target: &Target) -> Result<(), String> {
    let mut client = match target {
        Target::Tcp(addr) => Client::connect_tcp(addr),
        Target::Uds(path) => Client::connect_uds(path),
    }
    .map_err(|err| err.to_string())?;
    client
        .call(&shutdown_request(1))
        .map_err(|err| err.to_string())?;
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let options = match parse_options(&args) {
        Ok(options) => options,
        Err(message) => {
            if message.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("{message}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(golden_path) = &options.check_stats {
        let golden = match fs::read_to_string(golden_path) {
            Ok(golden) => golden,
            Err(error) => {
                eprintln!("cannot read golden {golden_path}: {error}");
                return ExitCode::FAILURE;
            }
        };
        match loadgen::check_against_golden(&options.target, &golden) {
            Ok(checked) => {
                println!("serve replay OK: {checked} scenarios match {golden_path} exactly");
            }
            Err(divergence) => {
                eprintln!("serve replay MISMATCH: {divergence}");
                return ExitCode::FAILURE;
            }
        }
        if options.shutdown {
            if let Err(error) = send_shutdown(&options.target) {
                eprintln!("shutdown request failed: {error}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    let summary = match loadgen::run_load(&options.target, &options.load) {
        Ok(summary) => summary,
        Err(error) => {
            eprintln!("load run failed: {error}");
            return ExitCode::FAILURE;
        }
    };
    let report = loadgen::render_report(&summary);
    print!("{report}");
    if let Some(timing_path) = &options.timing {
        if let Err(error) = fs::write(timing_path, &report) {
            eprintln!("cannot write {timing_path}: {error}");
            return ExitCode::FAILURE;
        }
        println!("wrote {timing_path}");
    }
    if options.shutdown {
        if let Err(error) = send_shutdown(&options.target) {
            eprintln!("shutdown request failed: {error}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
