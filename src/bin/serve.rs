//! `halotis-serve` — the compiled-circuit simulation daemon.
//!
//! ```text
//! halotis-serve [--tcp ADDR] [--uds PATH] [--workers N] [--queue-depth N]
//!               [--cache N] [--max-frame BYTES] [--max-inflight N]
//!               [--read-timeout-ms MS] [--preload]
//! ```
//!
//! * `--tcp ADDR` — listen on a TCP address (e.g. `127.0.0.1:7816`; port 0
//!   picks a free port, printed on startup),
//! * `--uds PATH` — listen on a Unix-domain socket (a stale socket file is
//!   replaced; the file is removed on clean shutdown),
//! * `--workers N` — simulation worker threads (default 2),
//! * `--queue-depth N` — bounded simulation queue; overflow answers `busy`
//!   (default 32),
//! * `--cache N` — compiled circuits the LRU cache keeps (default 8),
//! * `--max-frame BYTES` — largest accepted request frame (default 8 MiB),
//! * `--max-inflight N` — per-connection simulate quota; overflow answers
//!   `quota` (default 8),
//! * `--read-timeout-ms MS` — per-connection read timeout, the slow-loris
//!   bound (default 10000),
//! * `--preload` — replay the standard corpus into the compiled-circuit
//!   cache before accepting connections (raises `--cache` to fit it).
//!
//! At least one of `--tcp` / `--uds` is required.  The daemon runs until a
//! client sends `shutdown`, then drains: in-flight simulations finish,
//! new work is refused with `shutting_down`.  The wire protocol is
//! specified in `PROTOCOL.md`.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use halotis::serve::{self, ServerConfig};

const USAGE: &str = "usage: halotis-serve [--tcp ADDR] [--uds PATH] [--workers N] \
                     [--queue-depth N] [--cache N] [--max-frame BYTES] \
                     [--max-inflight N] [--read-timeout-ms MS] [--preload]";

fn parse_options(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let parse_usize = |flag: &str, value: String| {
            value
                .parse::<usize>()
                .map_err(|_| format!("{flag} needs an integer"))
        };
        match arg.as_str() {
            "--tcp" => config.tcp = Some(value_of("--tcp")?),
            "--uds" => config.uds = Some(PathBuf::from(value_of("--uds")?)),
            "--workers" => config.workers = parse_usize("--workers", value_of("--workers")?)?,
            "--queue-depth" => {
                config.queue_depth = parse_usize("--queue-depth", value_of("--queue-depth")?)?
            }
            "--cache" => config.cache_capacity = parse_usize("--cache", value_of("--cache")?)?,
            "--max-frame" => {
                config.max_frame = parse_usize("--max-frame", value_of("--max-frame")?)?
            }
            "--max-inflight" => {
                config.max_inflight = parse_usize("--max-inflight", value_of("--max-inflight")?)?
            }
            "--read-timeout-ms" => {
                config.read_timeout = Duration::from_millis(
                    value_of("--read-timeout-ms")?
                        .parse()
                        .map_err(|_| "--read-timeout-ms needs an integer".to_string())?,
                )
            }
            "--preload" => config.preload = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option: {other}")),
        }
    }
    if config.tcp.is_none() && config.uds.is_none() {
        return Err("at least one of --tcp / --uds is required".to_string());
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let config = match parse_options(&args) {
        Ok(config) => config,
        Err(message) => {
            if message.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("{message}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let workers = config.workers;
    let handle = match serve::start(config) {
        Ok(handle) => handle,
        Err(error) => {
            eprintln!("cannot start daemon: {error}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(addr) = handle.tcp_addr() {
        println!("halotis-serve listening on tcp {addr} ({workers} workers)");
    }
    if let Some(path) = handle.uds_path() {
        println!(
            "halotis-serve listening on uds {} ({workers} workers)",
            path.display()
        );
    }
    handle.wait();
    println!("halotis-serve drained; bye");
    ExitCode::SUCCESS
}
