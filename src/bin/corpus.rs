//! `halotis-corpus` — runs the standard benchmark corpus and emits the
//! machine-readable statistics and timing documents the CI gates consume.
//!
//! ```text
//! halotis-corpus [--out CORPUS_stats.json] [--timing PATH] [--threads N]
//!                [--repeats N] [--deterministic] [--list] [--check GOLDEN]
//!                [--power-report N] [--export DIR] [--import PATH]
//!                [--format net|verilog]
//! ```
//!
//! * `--out PATH` — write the statistics JSON.  Stats are only written when
//!   this flag is given explicitly: an implicit default of
//!   `CORPUS_stats.json` once let a plain `--timing` capture run silently
//!   clobber the committed golden with wall-clock values,
//! * `--timing PATH` — write a criterion-style timing capture that
//!   `scripts/bench_to_json.py` can convert to JSON,
//! * `--threads N` — worker threads for the batch runner (default: all),
//! * `--repeats N` — timing samples per entry (default 3 when `--timing`
//!   is given, else 1 — repeats only matter for timing),
//! * `--deterministic` — strip wall-clock fields so the output is bit-exact
//!   reproducible (the mode the committed golden uses),
//! * `--list` — print the corpus entries and scenario counts, run nothing,
//! * `--check GOLDEN` — run deterministically and compare the rendered JSON
//!   against `GOLDEN`, exiting non-zero on any mismatch (the Rust-only
//!   variant of `scripts/corpus_diff.py`),
//! * `--power-report N` — print the `N` most energetic nets of the whole
//!   corpus run (energy summed per net across every scenario; ordering is
//!   deterministic, ties break on entry and net names),
//! * `--export DIR` — write every corpus circuit to `DIR` in the chosen
//!   interchange format (`<entry>.net` or `<entry>.v`), run nothing else,
//! * `--import PATH` — parse one netlist file, compile it against the
//!   default library and print its vital signs (gates, nets, depth, STA
//!   critical path) — the smoke test for externally produced netlists,
//! * `--format net|verilog` — interchange format for `--export`/`--import`
//!   (default: `net`, or inferred from the `--import` file extension;
//!   see `FORMATS.md`).

use std::env;
use std::fs;
use std::process::ExitCode;

use halotis::corpus::{standard_corpus, CorpusRunner};
use halotis::netlist::{parser, technology, verilog, writer, Netlist};
use halotis::sim::{sta, CompiledCircuit};

const USAGE: &str = "usage: halotis-corpus [--out PATH] [--timing PATH] [--threads N] \
                     [--repeats N] [--deterministic] [--list] [--check GOLDEN] \
                     [--power-report N] [--export DIR] [--import PATH] \
                     [--format net|verilog]";

/// The two interchange formats of `FORMATS.md`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Net,
    Verilog,
}

impl Format {
    fn parse(value: &str) -> Result<Format, String> {
        match value {
            "net" => Ok(Format::Net),
            "verilog" => Ok(Format::Verilog),
            other => Err(format!("unknown format {other} (expected net or verilog)")),
        }
    }

    fn from_extension(path: &str) -> Option<Format> {
        let extension = path.rsplit('.').next()?;
        match extension {
            "net" => Some(Format::Net),
            "v" | "sv" => Some(Format::Verilog),
            _ => None,
        }
    }

    fn extension(self) -> &'static str {
        match self {
            Format::Net => "net",
            Format::Verilog => "v",
        }
    }

    fn emit(self, netlist: &Netlist) -> String {
        match self {
            Format::Net => writer::to_text(netlist),
            Format::Verilog => verilog::to_verilog(netlist),
        }
    }

    fn parse_text(self, text: &str) -> Result<Netlist, String> {
        match self {
            Format::Net => parser::parse(text).map_err(|err| err.to_string()),
            Format::Verilog => verilog::parse_verilog(text).map_err(|err| err.to_string()),
        }
    }
}

struct Options {
    out: Option<String>,
    timing: Option<String>,
    threads: usize,
    repeats: Option<usize>,
    deterministic: bool,
    list: bool,
    check: Option<String>,
    power_report: Option<usize>,
    export: Option<String>,
    import: Option<String>,
    format: Option<Format>,
}

impl Options {
    /// Timing samples per entry: an explicit `--repeats` wins; otherwise 3
    /// when a timing capture is wanted, 1 for a pure statistics/check run
    /// (the extra repeats would only produce discarded timing samples).
    fn repeats(&self) -> usize {
        self.repeats
            .unwrap_or(if self.timing.is_some() { 3 } else { 1 })
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        out: None,
        timing: None,
        threads: 0,
        repeats: None,
        deterministic: false,
        list: false,
        check: None,
        power_report: None,
        export: None,
        import: None,
        format: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--out" => options.out = Some(value_of("--out")?),
            "--timing" => options.timing = Some(value_of("--timing")?),
            "--threads" => {
                options.threads = value_of("--threads")?
                    .parse()
                    .map_err(|_| "--threads needs an integer".to_string())?
            }
            "--repeats" => {
                options.repeats = Some(
                    value_of("--repeats")?
                        .parse()
                        .map_err(|_| "--repeats needs an integer".to_string())?,
                )
            }
            "--deterministic" => options.deterministic = true,
            "--list" => options.list = true,
            "--check" => options.check = Some(value_of("--check")?),
            "--power-report" => {
                options.power_report = Some(
                    value_of("--power-report")?
                        .parse()
                        .map_err(|_| "--power-report needs an integer".to_string())?,
                )
            }
            "--export" => options.export = Some(value_of("--export")?),
            "--import" => options.import = Some(value_of("--import")?),
            "--format" => options.format = Some(Format::parse(&value_of("--format")?)?),
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option: {other}")),
        }
    }
    Ok(options)
}

/// `--import`: parse, compile and profile one external netlist — the
/// entry check for files produced by other tools (and the hook
/// `scripts/check_doc_snippets.py` uses to validate documentation
/// examples against the real parsers).
fn import_netlist(path: &str, format: Format) -> ExitCode {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("cannot read {path}: {error}");
            return ExitCode::FAILURE;
        }
    };
    let netlist = match format.parse_text(&text) {
        Ok(netlist) => netlist,
        Err(message) => {
            eprintln!("{path}: {message}");
            return ExitCode::FAILURE;
        }
    };
    // Canonical re-emission must reconstruct the parsed netlist exactly —
    // the round-trip identity FORMATS.md promises, checked on every import.
    match format.parse_text(&format.emit(&netlist)) {
        Ok(round_tripped) if round_tripped == netlist => {}
        Ok(_) => {
            eprintln!("{path}: round trip is not the identity (emission bug)");
            return ExitCode::FAILURE;
        }
        Err(message) => {
            eprintln!("{path}: canonical re-emission fails to parse: {message}");
            return ExitCode::FAILURE;
        }
    }
    let library = technology::cmos06();
    let circuit = match CompiledCircuit::compile(&netlist, &library) {
        Ok(circuit) => circuit,
        Err(error) => {
            eprintln!("{path}: compiles against no library cell: {error}");
            return ExitCode::FAILURE;
        }
    };
    let report = sta::analyze(&circuit, library.default_input_slew());
    println!(
        "{}: {} gates, {} nets, {} inputs, {} outputs, depth {}",
        netlist.name(),
        netlist.gate_count(),
        netlist.net_count(),
        netlist.primary_inputs().len(),
        netlist.primary_outputs().len(),
        circuit.levels().depth(),
    );
    println!(
        "round trip: identity ok; sta critical path {} arcs, {:.1} ps to {}",
        report.critical_path().len(),
        report.worst_arrival().as_ps(),
        netlist.net(report.worst_net()).name(),
    );
    ExitCode::SUCCESS
}

/// `--export DIR`: write every corpus circuit in the chosen format, ready
/// to feed external tools (or to re-import as a parser stress test).
fn export_corpus(corpus: &[halotis::corpus::CorpusEntry], dir: &str, format: Format) -> ExitCode {
    if let Err(error) = fs::create_dir_all(dir) {
        eprintln!("cannot create {dir}: {error}");
        return ExitCode::FAILURE;
    }
    let mut written = 0usize;
    for entry in corpus {
        let path = format!("{dir}/{}.{}", entry.name, format.extension());
        if let Err(error) = fs::write(&path, format.emit(&entry.netlist)) {
            eprintln!("cannot write {path}: {error}");
            return ExitCode::FAILURE;
        }
        written += 1;
    }
    println!(
        "exported {written} circuits to {dir}/*.{}",
        format.extension()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let options = match parse_options(&args) {
        Ok(options) => options,
        Err(message) => {
            if message.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("{message}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &options.import {
        let format = options
            .format
            .or_else(|| Format::from_extension(path))
            .unwrap_or(Format::Net);
        return import_netlist(path, format);
    }

    let corpus = standard_corpus();

    if let Some(dir) = &options.export {
        return export_corpus(&corpus, dir, options.format.unwrap_or(Format::Net));
    }

    if options.list {
        let library = technology::cmos06();
        println!("{} corpus entries:", corpus.len());
        let mut total = 0usize;
        for entry in &corpus {
            let scenarios = entry.scenarios(&library).len();
            total += scenarios;
            println!(
                "  {:<14} {:<28} suite {:<9} {:>3} scenarios ({} gates, {} nets)",
                entry.name,
                entry.netlist.name(),
                entry.suite.label(),
                scenarios,
                entry.netlist.gate_count(),
                entry.netlist.net_count(),
            );
        }
        println!("{total} scenarios total (DDM, CDM and MIX model columns)");
        return ExitCode::SUCCESS;
    }

    let deterministic = options.deterministic || options.check.is_some();
    let runner = CorpusRunner::new()
        .with_threads(options.threads)
        .with_repeats(options.repeats());
    let report = match runner.run(&corpus) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("corpus run failed: {error}");
            return ExitCode::FAILURE;
        }
    };

    // The hotspot table goes to stdout only — it is derived, rank-ordered
    // material and must never land in the golden-gated statistics document.
    if let Some(count) = options.power_report {
        let top = report.top_hotspots(count);
        let corpus_total: f64 = report.hotspots.iter().map(|h| h.energy_joules).sum();
        println!(
            "top {} energy hotspots ({} switching nets corpus-wide):",
            top.len(),
            report.hotspots.len()
        );
        println!("  rank  entry           net                   cap_fF  transitions      energy_J  share");
        for (rank, hotspot) in top.iter().enumerate() {
            let share = if corpus_total > 0.0 {
                hotspot.energy_joules / corpus_total * 100.0
            } else {
                0.0
            };
            println!(
                "  {:>4}  {:<14}  {:<20} {:>7.2} {:>12} {:>13.4e} {:>5.1}%",
                rank + 1,
                hotspot.entry,
                hotspot.net,
                hotspot.capacitance.as_femtofarads(),
                hotspot.transitions,
                hotspot.energy_joules,
                share,
            );
        }
    }

    // The timing capture is written whenever requested — also in --check
    // mode, where the statistics document itself never lands on disk.
    if let Some(timing_path) = &options.timing {
        let mut capture = String::new();
        for timing in &report.timings {
            capture.push_str(&timing.criterion_line());
            capture.push('\n');
        }
        if let Err(error) = fs::write(timing_path, &capture) {
            eprintln!("cannot write {timing_path}: {error}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {timing_path} ({} entries × {} repeats)",
            report.timings.len(),
            runner.repeats()
        );
    }

    let mut stats = report.stats;
    if deterministic {
        stats.strip_timing();
    }
    let json = stats.to_json();

    if let Some(golden_path) = &options.check {
        let golden = match fs::read_to_string(golden_path) {
            Ok(golden) => golden,
            Err(error) => {
                eprintln!("cannot read golden {golden_path}: {error}");
                return ExitCode::FAILURE;
            }
        };
        if golden == json {
            println!(
                "corpus golden OK: {} scenarios match {golden_path} bit-exactly",
                stats.scenario_count()
            );
            return ExitCode::SUCCESS;
        }
        for (index, (fresh_line, golden_line)) in json.lines().zip(golden.lines()).enumerate() {
            if fresh_line != golden_line {
                eprintln!(
                    "corpus golden MISMATCH at line {}:\n  golden: {golden_line}\n  fresh:  {fresh_line}",
                    index + 1
                );
                break;
            }
        }
        if json.lines().count() != golden.lines().count() {
            eprintln!(
                "corpus golden MISMATCH: {} fresh lines vs {} golden lines",
                json.lines().count(),
                golden.lines().count()
            );
        }
        eprintln!("regenerate with: halotis-corpus --deterministic --out {golden_path}");
        return ExitCode::FAILURE;
    }

    // Stats land on disk only when the caller asked for them by path; a
    // timing-only invocation must never touch the committed golden.
    if let Some(out) = &options.out {
        if let Err(error) = fs::write(out, &json) {
            eprintln!("cannot write {out}: {error}");
            return ExitCode::FAILURE;
        }
        let totals = stats.totals();
        println!(
            "wrote {out} ({} entries, {} scenarios; {} events, {} glitches, {:.3e} J{})",
            stats.entries.len(),
            stats.scenario_count(),
            totals.events_processed,
            stats.total_glitches(),
            stats.total_energy_joules(),
            if deterministic { ", deterministic" } else { "" }
        );
    } else if options.timing.is_none() && options.power_report.is_none() {
        eprintln!(
            "nothing to do: pass --out, --timing, --check, --power-report or --list\n{USAGE}"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
