//! Reproductions of every experiment in the paper's evaluation section,
//! plus the extension studies listed in `DESIGN.md`.
//!
//! | Paper artefact | Function | Notes |
//! |---|---|---|
//! | Fig. 1 (inertial delay wrong results) | [`figure1::figure1_experiment`] | HALOTIS-DDM vs classical simulator vs analog reference |
//! | Fig. 3 (one transition, several events) | [`figure3::figure3`] | per-input threshold crossing times |
//! | Fig. 6 (waveforms, sequence `0x0, 7x7, 5xA, Ex6, FxF`) | [`figures67::figure6`] | three stacked traces |
//! | Fig. 7 (waveforms, sequence `0x0, FxF, 0x0, FxF, 0x0`) | [`figures67::figure7`] | three stacked traces |
//! | Table 1 (events / filtered events) | [`table1::table1`] | DDM vs CDM statistics |
//! | Table 2 (CPU time) | [`table2::table2`] | analog vs HALOTIS-DDM vs HALOTIS-CDM |
//! | Extension: pulse-width degradation sweep | [`pulse_width::pulse_width_sweep`] | continuous vs abrupt filtering |

pub mod figure1;
pub mod figure3;
pub mod figures67;
pub mod pulse_width;
pub mod report;
pub mod table1;
pub mod table2;

use halotis_core::{Time, TimeDelta};
use halotis_netlist::generators::{multiplier, MultiplierPorts};
use halotis_netlist::{technology, Library, Netlist};
use halotis_waveform::stimulus::vector_sequence;
use halotis_waveform::Stimulus;

/// The multiplication sequence of the paper's Fig. 6 and first Table 1 row:
/// `0x0, 7x7, 5xA, Ex6, FxF`.
pub const SEQUENCE_FIG6: &[(u64, u64)] =
    &[(0x0, 0x0), (0x7, 0x7), (0x5, 0xA), (0xE, 0x6), (0xF, 0xF)];

/// The multiplication sequence of the paper's Fig. 7 and second Table 1 row:
/// `0x0, FxF, 0x0, FxF, 0x0`.
pub const SEQUENCE_FIG7: &[(u64, u64)] =
    &[(0x0, 0x0), (0xF, 0xF), (0x0, 0x0), (0xF, 0xF), (0x0, 0x0)];

/// Vector spacing used by the paper's waveform plots (one multiplication
/// every 5 ns over a 25 ns window).
pub const VECTOR_PERIOD_NS: f64 = 5.0;

/// The observation window of the paper's Figs. 6–7.
pub const FIGURE_WINDOW_NS: f64 = 25.0;

/// A ready-to-simulate multiplier: netlist, port names and library.
#[derive(Clone, Debug)]
pub struct MultiplierFixture {
    /// The array-multiplier netlist.
    pub netlist: Netlist,
    /// Its port names.
    pub ports: MultiplierPorts,
    /// The synthetic 0.6 µm library.
    pub library: Library,
}

/// The paper's evaluation vehicle: the 4×4 multiplier in the synthetic
/// 0.6 µm technology.
pub fn multiplier_fixture() -> MultiplierFixture {
    multiplier_fixture_sized(4, 4)
}

/// A multiplier fixture of arbitrary size (used by the scaling benches).
pub fn multiplier_fixture_sized(a_bits: usize, b_bits: usize) -> MultiplierFixture {
    MultiplierFixture {
        netlist: multiplier(a_bits, b_bits),
        ports: MultiplierPorts::new(a_bits, b_bits),
        library: technology::cmos06(),
    }
}

/// Builds the stimulus applying `pairs` of operands to a multiplier every
/// [`VECTOR_PERIOD_NS`], exactly as the paper's evaluation does.
pub fn multiplier_stimulus(ports: &MultiplierPorts, pairs: &[(u64, u64)]) -> Stimulus {
    vector_sequence(
        &ports.a_refs(),
        &ports.b_refs(),
        pairs,
        Time::ZERO,
        TimeDelta::from_ns(VECTOR_PERIOD_NS),
        TimeDelta::from_ps(200.0),
    )
}

/// Human-readable label of a multiplication sequence (`"0x0, 7x7, ..."`).
pub fn sequence_label(pairs: &[(u64, u64)]) -> String {
    pairs
        .iter()
        .map(|(a, b)| format!("{a:X}x{b:X}"))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_matches_the_paper_setup() {
        let fixture = multiplier_fixture();
        assert_eq!(fixture.netlist.primary_inputs().len(), 8);
        assert_eq!(fixture.netlist.primary_outputs().len(), 8);
        assert_eq!(fixture.library.vdd().as_volts(), 5.0);
        assert_eq!(fixture.ports.s.len(), 8);
    }

    #[test]
    fn stimulus_covers_every_multiplier_input() {
        let fixture = multiplier_fixture();
        let stimulus = multiplier_stimulus(&fixture.ports, SEQUENCE_FIG6);
        for &input in fixture.netlist.primary_inputs() {
            let name = fixture.netlist.net(input).name();
            assert!(
                stimulus.waveform(name).is_some(),
                "missing stimulus for {name}"
            );
        }
        assert!(stimulus.last_activity().unwrap() >= Time::from_ns(20.0));
    }

    #[test]
    fn sequence_labels_match_paper_notation() {
        assert_eq!(sequence_label(SEQUENCE_FIG6), "0x0, 7x7, 5xA, Ex6, FxF");
        assert_eq!(sequence_label(SEQUENCE_FIG7), "0x0, FxF, 0x0, FxF, 0x0");
    }
}
