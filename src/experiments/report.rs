//! Plain-text table formatting shared by the experiment reports.

/// Formats a table with a header row, aligning every column to its widest
/// cell.  Used by the Table 1/2 and sweep reports so their output lines up
/// with the paper's tables.
///
/// # Example
///
/// ```
/// use halotis::experiments::report::format_table;
/// let text = format_table(
///     &["sequence", "events"],
///     &[vec!["0x0, 7x7".to_string(), "959".to_string()]],
/// );
/// assert!(text.contains("sequence"));
/// assert!(text.contains("959"));
/// ```
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let columns = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (index, cell) in row.iter().enumerate().take(columns) {
            widths[index] = widths[index].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (index, width) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(index).unwrap_or(&empty);
            line.push_str(&format!(" {cell:<width$} |", width = width));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    let mut separator = String::from("|");
    for width in &widths {
        separator.push_str(&format!("{}|", "-".repeat(width + 2)));
    }
    out.push_str(&separator);
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a `std::time::Duration` in seconds with millisecond resolution.
pub fn seconds(duration: std::time::Duration) -> String {
    format!("{:.4}", duration.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn columns_are_aligned() {
        let text = format_table(
            &["a", "long header"],
            &[
                vec!["x".to_string(), "1".to_string()],
                vec!["longer cell".to_string(), "2".to_string()],
            ],
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == width), "{text}");
    }

    #[test]
    fn missing_cells_render_empty() {
        let text = format_table(&["a", "b"], &[vec!["only".to_string()]]);
        assert!(text.contains("only"));
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(seconds(Duration::from_millis(1500)), "1.5000");
    }
}
