//! Reproduction of the paper's Table 2: CPU time of the electrical
//! reference, HALOTIS-DDM and HALOTIS-CDM on the two multiplication
//! sequences.
//!
//! Absolute numbers obviously differ from a 2001 workstation running HSPICE;
//! the property the reproduction checks is the *shape*: the analog reference
//! is orders of magnitude slower than the event-driven simulators, and
//! HALOTIS-DDM is not slower than HALOTIS-CDM (it processes fewer events).

use std::time::Duration;

use halotis_analog::{AnalogConfig, AnalogSimulator};
use halotis_core::{Time, TimeDelta};
use halotis_sim::{CompiledCircuit, SimulationConfig};

use super::{
    multiplier_fixture, multiplier_stimulus, sequence_label, MultiplierFixture, FIGURE_WINDOW_NS,
    SEQUENCE_FIG6, SEQUENCE_FIG7,
};

/// One row of the Table 2 reproduction.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// The multiplication sequence, in paper notation.
    pub sequence: String,
    /// Wall-clock time of the analog reference run.
    pub analog: Duration,
    /// Wall-clock time of the HALOTIS-DDM run.
    pub ddm: Duration,
    /// Wall-clock time of the HALOTIS-CDM run.
    pub cdm: Duration,
}

impl Table2Row {
    /// Speed-up of HALOTIS-DDM over the analog reference.
    pub fn ddm_speedup(&self) -> f64 {
        self.analog.as_secs_f64() / self.ddm.as_secs_f64().max(1e-9)
    }

    /// Ratio of the CDM run time to the DDM run time (>= 1 reproduces the
    /// paper's observation that DDM is the faster of the two).
    pub fn cdm_over_ddm(&self) -> f64 {
        self.cdm.as_secs_f64() / self.ddm.as_secs_f64().max(1e-9)
    }
}

/// Runs one Table 2 row.  `repeats` controls how many times the two logic
/// simulations are repeated (and averaged) so the sub-millisecond runs are
/// measured with less jitter.
pub fn table2_row(
    fixture: &MultiplierFixture,
    pairs: &[(u64, u64)],
    analog_step: TimeDelta,
    repeats: u32,
) -> Table2Row {
    let stimulus = multiplier_stimulus(&fixture.ports, pairs);
    // Compile once and reuse one state arena across every repeat: the
    // repeats then time exactly the event loop, which is the CPU-time
    // quantity Table 2 compares.
    let circuit = CompiledCircuit::compile(&fixture.netlist, &fixture.library)
        .expect("multiplier fixture compiles");
    let mut state = circuit.new_state();
    let repeats = repeats.max(1);

    let mut ddm_total = Duration::ZERO;
    let mut cdm_total = Duration::ZERO;
    for _ in 0..repeats {
        let ddm = circuit
            .run_with(&mut state, &stimulus, &SimulationConfig::ddm())
            .expect("multiplier fixture simulates under DDM");
        let cdm = circuit
            .run_with(&mut state, &stimulus, &SimulationConfig::cdm())
            .expect("multiplier fixture simulates under CDM");
        ddm_total += ddm.wall_time();
        cdm_total += cdm.wall_time();
    }

    let analog = AnalogSimulator::new(&fixture.netlist, &fixture.library)
        .run(
            &stimulus,
            &AnalogConfig::default()
                .with_time_step(analog_step)
                .with_end_time(Time::from_ns(FIGURE_WINDOW_NS)),
        )
        .expect("multiplier fixture simulates under the analog engine");

    Table2Row {
        sequence: sequence_label(pairs),
        analog: analog.wall_time(),
        ddm: ddm_total / repeats,
        cdm: cdm_total / repeats,
    }
}

/// Reproduces the full Table 2 (both sequences) with the default settings
/// used by the `reproduce` binary.
pub fn table2() -> Vec<Table2Row> {
    let fixture = multiplier_fixture();
    vec![
        table2_row(&fixture, SEQUENCE_FIG6, TimeDelta::from_ps(1.0), 5),
        table2_row(&fixture, SEQUENCE_FIG7, TimeDelta::from_ps(1.0), 5),
    ]
}

/// Renders Table 2 in the paper's column layout (seconds), with the derived
/// ratios appended.
pub fn render(rows: &[Table2Row]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.sequence.clone(),
                super::report::seconds(row.analog),
                super::report::seconds(row.ddm),
                super::report::seconds(row.cdm),
                format!("{:.0}x", row.ddm_speedup()),
                format!("{:.2}", row.cdm_over_ddm()),
            ]
        })
        .collect();
    super::report::format_table(
        &[
            "sequence",
            "analog ref (s)",
            "HALOTIS-DDM (s)",
            "HALOTIS-CDM (s)",
            "DDM speedup",
            "CDM / DDM",
        ],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analog_reference_is_much_slower_than_halotis() {
        // A coarse analog step keeps the unit test quick; even then the
        // integrator is far slower than the event-driven engine.
        let fixture = multiplier_fixture();
        let row = table2_row(&fixture, SEQUENCE_FIG6, TimeDelta::from_ps(4.0), 3);
        assert!(
            row.ddm_speedup() > 10.0,
            "speedup only {:.1}x (analog {:?}, ddm {:?})",
            row.ddm_speedup(),
            row.analog,
            row.ddm
        );
        assert!(row.analog > row.cdm);
    }

    #[test]
    fn render_lists_each_sequence_once() {
        let fixture = multiplier_fixture();
        let rows = vec![table2_row(
            &fixture,
            SEQUENCE_FIG7,
            TimeDelta::from_ps(8.0),
            1,
        )];
        let text = render(&rows);
        assert!(text.contains("0x0, FxF"));
        assert!(text.contains("DDM speedup"));
    }
}
