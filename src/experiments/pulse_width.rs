//! Extension experiment: pulse-width sweep through a gate chain.
//!
//! Paper §2 argues that real gates do not filter pulses abruptly: between
//! "propagated normally" and "eliminated" lies a range of input widths where
//! the output pulse is *narrower* than the input pulse (degradation).  This
//! sweep drives a pulse of increasing width into an inverter chain and
//! records the width of the pulse emerging at the far end under the
//! electrical reference, HALOTIS-DDM and HALOTIS-CDM, exposing the
//! continuous transition the DDM models and the abrupt one the CDM shows.

use halotis_analog::{AnalogConfig, AnalogSimulator};
use halotis_core::{LogicLevel, Time, TimeDelta};
use halotis_netlist::generators::inverter_chain;
use halotis_netlist::{technology, Library, Netlist};
use halotis_sim::{BatchRunner, CompiledCircuit, Scenario, SimulationConfig, SimulationResult};
use halotis_waveform::{IdealWaveform, Stimulus};

/// One point of the sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PulseWidthPoint {
    /// Input pulse width.
    pub input_width: TimeDelta,
    /// Output pulse width in the electrical reference (`None` = filtered).
    pub analog_output: Option<TimeDelta>,
    /// Output pulse width under HALOTIS-DDM (`None` = filtered).
    pub ddm_output: Option<TimeDelta>,
    /// Output pulse width under HALOTIS-CDM (`None` = filtered).
    pub cdm_output: Option<TimeDelta>,
}

/// The full sweep result.
#[derive(Clone, Debug, PartialEq)]
pub struct PulseWidthSweep {
    /// Number of chain stages the pulse traverses.
    pub stages: usize,
    /// The sweep points, in increasing input width.
    pub points: Vec<PulseWidthPoint>,
}

fn widest_pulse(waveform: &IdealWaveform) -> Option<TimeDelta> {
    waveform
        .pulses()
        .into_iter()
        .map(|(start, end, _)| end - start)
        .max()
}

fn pulse_stimulus(library: &Library, width: TimeDelta) -> Stimulus {
    let mut stimulus = Stimulus::new(library.default_input_slew());
    stimulus.set_initial("in", LogicLevel::Low);
    stimulus.drive("in", Time::from_ns(2.0), LogicLevel::High);
    stimulus.drive("in", Time::from_ns(2.0) + width, LogicLevel::Low);
    stimulus
}

fn analog_point(
    netlist: &Netlist,
    library: &Library,
    width: TimeDelta,
    analog_step: TimeDelta,
) -> Option<TimeDelta> {
    let stimulus = pulse_stimulus(library, width);
    let analog = AnalogSimulator::new(netlist, library)
        .run(
            &stimulus,
            &AnalogConfig::default()
                .with_time_step(analog_step)
                .with_end_time(Time::from_ns(12.0)),
        )
        .expect("inverter chain simulates under the analog engine");
    analog.ideal_waveform("out").and_then(|w| widest_pulse(&w))
}

fn output_width(result: &SimulationResult) -> Option<TimeDelta> {
    result.ideal_waveform("out").and_then(|w| widest_pulse(&w))
}

/// Runs the sweep over `widths_ps` through an inverter chain of `stages`
/// stages.
///
/// The chain is compiled once; every `(width, model)` combination then runs
/// as one scenario of a parallel [`BatchRunner`] sweep over the shared
/// compiled tables.  Only the (far slower) analog reference points run
/// sequentially.
pub fn pulse_width_sweep(
    stages: usize,
    widths_ps: &[f64],
    analog_step: TimeDelta,
) -> PulseWidthSweep {
    let netlist = inverter_chain(stages);
    let library = technology::cmos06();
    let circuit = CompiledCircuit::compile(&netlist, &library).expect("inverter chain compiles");
    let scenarios: Vec<Scenario> = widths_ps
        .iter()
        .flat_map(|&w| {
            Scenario::both_models(
                format!("width={w}ps"),
                pulse_stimulus(&library, TimeDelta::from_ps(w)),
                SimulationConfig::default(),
            )
        })
        .collect();
    let report = BatchRunner::new().run(&circuit, &scenarios);
    let points = widths_ps
        .iter()
        .zip(report.outcomes().chunks(2))
        .map(|(&w, chunk)| {
            let [ddm, cdm] = chunk else {
                unreachable!("two scenarios per width");
            };
            let width = TimeDelta::from_ps(w);
            PulseWidthPoint {
                input_width: width,
                analog_output: analog_point(&netlist, &library, width, analog_step),
                ddm_output: output_width(
                    ddm.result
                        .as_ref()
                        .expect("inverter chain simulates under DDM"),
                ),
                cdm_output: output_width(
                    cdm.result
                        .as_ref()
                        .expect("inverter chain simulates under CDM"),
                ),
            }
        })
        .collect();
    PulseWidthSweep { stages, points }
}

/// The default sweep used by the `reproduce` binary: a 6-stage chain, input
/// widths from 100 ps to 2 ns.
pub fn default_sweep() -> PulseWidthSweep {
    let widths: Vec<f64> = (1..=20).map(|i| i as f64 * 100.0).collect();
    pulse_width_sweep(6, &widths, TimeDelta::from_ps(2.0))
}

/// Renders the sweep as a table (widths in picoseconds; `-` = filtered).
pub fn render(sweep: &PulseWidthSweep) -> String {
    let fmt = |value: Option<TimeDelta>| match value {
        Some(width) => format!("{:.0}", width.as_ps()),
        None => "-".to_string(),
    };
    let rows: Vec<Vec<String>> = sweep
        .points
        .iter()
        .map(|point| {
            vec![
                format!("{:.0}", point.input_width.as_ps()),
                fmt(point.analog_output),
                fmt(point.ddm_output),
                fmt(point.cdm_output),
            ]
        })
        .collect();
    format!(
        "pulse propagation through a {}-stage inverter chain (widths in ps)\n{}",
        sweep.stages,
        super::report::format_table(
            &["input width", "analog ref", "HALOTIS-DDM", "HALOTIS-CDM"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_sweep() -> PulseWidthSweep {
        pulse_width_sweep(
            4,
            &[100.0, 300.0, 600.0, 1000.0, 1600.0],
            TimeDelta::from_ps(4.0),
        )
    }

    #[test]
    fn wide_pulses_propagate_and_narrow_pulses_do_not() {
        let sweep = quick_sweep();
        let first = sweep.points.first().unwrap();
        let last = sweep.points.last().unwrap();
        // The narrowest pulse dies in the reference and under DDM.
        assert!(first.analog_output.is_none() || first.analog_output.unwrap() < first.input_width);
        // The widest pulse survives everywhere.
        assert!(last.analog_output.is_some());
        assert!(last.ddm_output.is_some());
        assert!(last.cdm_output.is_some());
    }

    #[test]
    fn ddm_output_width_is_monotone_in_input_width() {
        let sweep = quick_sweep();
        let widths: Vec<Option<TimeDelta>> = sweep.points.iter().map(|p| p.ddm_output).collect();
        let mut previous = TimeDelta::ZERO;
        for width in widths.into_iter().flatten() {
            assert!(width >= previous, "output width shrank as input width grew");
            previous = width;
        }
    }

    #[test]
    fn ddm_never_widens_a_pulse_beyond_cdm() {
        // The degradation model can only shrink pulses relative to the
        // conventional model.
        for point in quick_sweep().points {
            if let (Some(ddm), Some(cdm)) = (point.ddm_output, point.cdm_output) {
                assert!(
                    ddm <= cdm + TimeDelta::from_ps(1.0),
                    "DDM pulse {ddm} wider than CDM pulse {cdm}"
                );
            }
        }
    }

    #[test]
    fn render_contains_every_point() {
        let sweep = quick_sweep();
        let text = render(&sweep);
        assert!(text.contains("input width"));
        assert_eq!(text.lines().count(), sweep.points.len() + 3);
    }
}
