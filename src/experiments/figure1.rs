//! Reproduction of the paper's Fig. 1: the classical inertial-delay rule
//! produces wrong results when fanout gates have different input
//! thresholds, while the per-input treatment of HALOTIS follows the
//! electrical reference.
//!
//! The circuit (see
//! [`generators::figure1`](halotis_netlist::generators::figure1)) shapes a
//! pulse through an inverter chain and fans it out to a low-threshold and a
//! high-threshold inverter, each followed by one more inverter.  For a
//! marginal pulse width the electrical simulation shows the pulse surviving
//! on one branch only; HALOTIS reproduces that, the classical simulator
//! cannot (it either keeps or deletes the pulse for *both* branches).

use halotis_analog::{AnalogConfig, AnalogResult, AnalogSimulator};
use halotis_core::{LogicLevel, Time, TimeDelta};
use halotis_netlist::generators::{figure1_default, Figure1Nets};
use halotis_netlist::{technology, Library, Netlist};
use halotis_sim::{classical, CompiledCircuit, SimState, SimulationConfig, SimulationResult};
use halotis_waveform::ascii::{render_trace, AsciiOptions};
use halotis_waveform::{IdealWaveform, Stimulus, Trace};

/// Which branches of the Fig. 1 circuit saw the pulse, for one simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchActivity {
    /// `true` when the low-threshold branch (`out1`) toggled.
    pub low_branch_pulsed: bool,
    /// `true` when the high-threshold branch (`out2`) toggled.
    pub high_branch_pulsed: bool,
}

impl BranchActivity {
    /// `true` when the two branches disagree — the situation only a
    /// per-input model can represent.
    pub fn is_selective(&self) -> bool {
        self.low_branch_pulsed != self.high_branch_pulsed
    }
}

/// The full Fig. 1 experiment output.
#[derive(Clone, Debug)]
pub struct Figure1Report {
    /// Width of the input pulse applied at 1 ns.
    pub pulse_width: TimeDelta,
    /// The signal names of the circuit.
    pub nets: Figure1Nets,
    /// HALOTIS with the IDDM.
    pub halotis: SimulationResult,
    /// The classical inertial-delay simulator.
    pub classical: SimulationResult,
    /// The electrical reference.
    pub analog: AnalogResult,
}

fn branch_activity_from(trace: &Trace<IdealWaveform>, nets: &Figure1Nets) -> BranchActivity {
    let pulsed = |name: &str| {
        trace
            .get(name)
            .map(|waveform| waveform.edge_count() >= 2)
            .unwrap_or(false)
    };
    BranchActivity {
        low_branch_pulsed: pulsed(&nets.out1),
        high_branch_pulsed: pulsed(&nets.out2),
    }
}

impl Figure1Report {
    fn observed_nets(&self) -> [&str; 5] {
        [
            &self.nets.out0,
            &self.nets.out1,
            &self.nets.out1c,
            &self.nets.out2,
            &self.nets.out2c,
        ]
    }

    fn trace_of(&self, source: &Trace<IdealWaveform>) -> Trace<IdealWaveform> {
        self.observed_nets()
            .iter()
            .filter_map(|name| source.get(name).cloned().map(|w| (name.to_string(), w)))
            .collect()
    }

    /// Branch activity under HALOTIS-DDM.
    pub fn halotis_activity(&self) -> BranchActivity {
        branch_activity_from(&self.halotis.full_trace(), &self.nets)
    }

    /// Branch activity under the classical simulator.
    pub fn classical_activity(&self) -> BranchActivity {
        branch_activity_from(&self.classical.full_trace(), &self.nets)
    }

    /// Branch activity in the electrical reference.
    pub fn analog_activity(&self) -> BranchActivity {
        let trace: Trace<IdealWaveform> = self
            .observed_nets()
            .iter()
            .filter_map(|name| {
                self.analog
                    .ideal_waveform(name)
                    .map(|w| (name.to_string(), w))
            })
            .collect();
        branch_activity_from(&trace, &self.nets)
    }

    /// `true` when HALOTIS matches the electrical reference on both branches.
    pub fn halotis_matches_analog(&self) -> bool {
        self.halotis_activity() == self.analog_activity()
    }

    /// `true` when the classical simulator disagrees with the electrical
    /// reference on at least one branch (the error Fig. 1 illustrates).
    pub fn classical_disagrees_with_analog(&self) -> bool {
        self.classical_activity() != self.analog_activity()
    }

    /// Renders the three waveform sets (analog reference, HALOTIS-DDM,
    /// classical) over a 0–6 ns window, mirroring Fig. 1 b/c.
    pub fn render(&self) -> String {
        let options = AsciiOptions::new(Time::ZERO, Time::from_ns(6.0), 72);
        let analog_trace: Trace<IdealWaveform> = self
            .observed_nets()
            .iter()
            .filter_map(|name| {
                self.analog
                    .ideal_waveform(name)
                    .map(|w| (name.to_string(), w))
            })
            .collect();
        let mut out = String::new();
        out.push_str(&format!(
            "Figure 1 reproduction (input pulse width {:.0} ps)\n\n",
            self.pulse_width.as_ps()
        ));
        out.push_str("(a) electrical reference\n");
        out.push_str(&render_trace(&analog_trace, &options));
        out.push_str("\n(b) HALOTIS (IDDM)\n");
        out.push_str(&render_trace(
            &self.trace_of(&self.halotis.full_trace()),
            &options,
        ));
        out.push_str("\n(c) classical inertial-delay simulator\n");
        out.push_str(&render_trace(
            &self.trace_of(&self.classical.full_trace()),
            &options,
        ));
        out.push_str(&format!(
            "\nbranch pulse seen (low VT / high VT): analog {:?}, HALOTIS {:?}, classical {:?}\n",
            pair(self.analog_activity()),
            pair(self.halotis_activity()),
            pair(self.classical_activity()),
        ));
        out
    }
}

fn pair(activity: BranchActivity) -> (bool, bool) {
    (activity.low_branch_pulsed, activity.high_branch_pulsed)
}

/// Builds the stimulus: a single positive pulse of `width` applied at 1 ns.
pub fn pulse_stimulus(library: &Library, width: TimeDelta) -> Stimulus {
    let mut stimulus = Stimulus::new(library.default_input_slew());
    stimulus.set_initial("in", LogicLevel::Low);
    stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
    stimulus.drive("in", Time::from_ns(1.0) + width, LogicLevel::Low);
    stimulus
}

/// Runs the Fig. 1 experiment for one input pulse width.
///
/// # Panics
///
/// Panics if any of the three simulators rejects the generated circuit —
/// the fixture is built internally, so that indicates a bug rather than a
/// user error.
pub fn figure1_experiment(pulse_width: TimeDelta) -> Figure1Report {
    let (netlist, nets) = figure1_default();
    let library = technology::cmos06();
    figure1_experiment_on(&netlist, &nets, &library, pulse_width)
}

/// Runs the Fig. 1 experiment on a caller-provided circuit (used by the
/// sweep in the integration tests to find the selective pulse width).
pub fn figure1_experiment_on(
    netlist: &Netlist,
    nets: &Figure1Nets,
    library: &Library,
    pulse_width: TimeDelta,
) -> Figure1Report {
    let circuit = CompiledCircuit::compile(netlist, library).expect("figure1 circuit compiles");
    let mut state = circuit.new_state();
    figure1_experiment_compiled(&circuit, &mut state, nets, pulse_width)
}

/// As [`figure1_experiment_on`], but reusing a caller-compiled circuit and
/// state arena — the sweep in [`find_selective_pulse`] compiles once and
/// runs every width through the same tables.
pub fn figure1_experiment_compiled(
    circuit: &CompiledCircuit<'_>,
    state: &mut SimState,
    nets: &Figure1Nets,
    pulse_width: TimeDelta,
) -> Figure1Report {
    let netlist = circuit.netlist();
    let library = circuit.library();
    let stimulus = pulse_stimulus(library, pulse_width);
    let halotis = circuit
        .run_with(state, &stimulus, &SimulationConfig::ddm())
        .expect("figure1 circuit simulates under HALOTIS");
    let classical = classical::run(netlist, library, &stimulus, &SimulationConfig::cdm())
        .expect("figure1 circuit simulates under the classical engine");
    let analog = AnalogSimulator::new(netlist, library)
        .run(
            &stimulus,
            &AnalogConfig::default().with_end_time(Time::from_ns(8.0)),
        )
        .expect("figure1 circuit simulates under the analog engine");
    Figure1Report {
        pulse_width,
        nets: nets.clone(),
        halotis,
        classical,
        analog,
    }
}

/// Sweeps pulse widths and returns the first report where the electrical
/// reference is *selective* (one branch pulses, the other does not), if any.
/// This is the regime where the classical rule necessarily errs.
pub fn find_selective_pulse(widths_ps: &[f64]) -> Option<Figure1Report> {
    let (netlist, nets) = figure1_default();
    let library = technology::cmos06();
    let circuit = CompiledCircuit::compile(&netlist, &library).expect("figure1 circuit compiles");
    let mut state = circuit.new_state();
    widths_ps
        .iter()
        .map(|&w| figure1_experiment_compiled(&circuit, &mut state, &nets, TimeDelta::from_ps(w)))
        .find(|report| report.analog_activity().is_selective())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_pulse_reaches_both_branches_in_every_simulator() {
        let report = figure1_experiment(TimeDelta::from_ns(2.5));
        for activity in [
            report.analog_activity(),
            report.halotis_activity(),
            report.classical_activity(),
        ] {
            assert!(activity.low_branch_pulsed, "{activity:?}");
            assert!(activity.high_branch_pulsed, "{activity:?}");
        }
        assert!(report.halotis_matches_analog());
    }

    #[test]
    fn tiny_pulse_reaches_no_branch_in_the_reference() {
        let report = figure1_experiment(TimeDelta::from_ps(40.0));
        let analog = report.analog_activity();
        assert!(!analog.low_branch_pulsed && !analog.high_branch_pulsed);
        // HALOTIS agrees that nothing visible comes out of the branches.
        let halotis = report.halotis_activity();
        assert!(!halotis.high_branch_pulsed);
    }

    #[test]
    fn classical_simulator_is_never_selective() {
        for width_ps in [100.0, 250.0, 400.0, 700.0, 1200.0] {
            let report = figure1_experiment(TimeDelta::from_ps(width_ps));
            assert!(
                !report.classical_activity().is_selective(),
                "classical simulator became selective at {width_ps} ps"
            );
        }
    }

    #[test]
    fn render_mentions_all_three_simulators() {
        let report = figure1_experiment(TimeDelta::from_ps(500.0));
        let text = report.render();
        assert!(text.contains("electrical reference"));
        assert!(text.contains("HALOTIS"));
        assert!(text.contains("classical"));
        assert!(text.contains("out1"));
    }

    #[test]
    fn branch_activity_selectivity() {
        assert!(BranchActivity {
            low_branch_pulsed: true,
            high_branch_pulsed: false
        }
        .is_selective());
        assert!(!BranchActivity {
            low_branch_pulsed: true,
            high_branch_pulsed: true
        }
        .is_selective());
    }
}
