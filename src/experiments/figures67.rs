//! Reproductions of the paper's Figs. 6 and 7: the multiplier output
//! waveforms `s7..s0` over a 25 ns window under (a) the electrical
//! reference, (b) HALOTIS-DDM and (c) HALOTIS-CDM.

use std::time::Duration;

use halotis_analog::{AnalogConfig, AnalogSimulator};
use halotis_core::{Time, TimeDelta};
use halotis_sim::{CompiledCircuit, SimulationConfig};
use halotis_waveform::ascii::{render_axis, render_trace, AsciiOptions};
use halotis_waveform::compare::{compare_traces, WaveformComparison};
use halotis_waveform::{IdealWaveform, Trace};

use super::{
    multiplier_fixture, multiplier_stimulus, sequence_label, MultiplierFixture, FIGURE_WINDOW_NS,
};

/// One reproduced waveform figure (Fig. 6 or Fig. 7).
#[derive(Clone, Debug)]
pub struct WaveformFigure {
    /// The figure label (`"Figure 6"` / `"Figure 7"`).
    pub label: String,
    /// The multiplication sequence, in paper notation.
    pub sequence: String,
    /// Primary outputs digitised from the electrical reference.
    pub analog: Trace<IdealWaveform>,
    /// Primary outputs of HALOTIS-DDM.
    pub ddm: Trace<IdealWaveform>,
    /// Primary outputs of HALOTIS-CDM.
    pub cdm: Trace<IdealWaveform>,
    /// Wall-clock time of the three runs (analog, DDM, CDM).
    pub wall_times: (Duration, Duration, Duration),
}

/// Orders a trace as the paper plots it: `s7` at the top, `s0` at the bottom.
fn paper_order(trace: &Trace<IdealWaveform>) -> Trace<IdealWaveform> {
    let mut names: Vec<&str> = trace.names().collect();
    names.sort_by_key(|name| {
        std::cmp::Reverse(
            name.trim_start_matches('s')
                .parse::<usize>()
                .unwrap_or(usize::MAX),
        )
    });
    names
        .into_iter()
        .filter_map(|name| trace.get(name).cloned().map(|w| (name.to_string(), w)))
        .collect()
}

impl WaveformFigure {
    /// Edge-level comparison of HALOTIS-DDM against the electrical
    /// reference.
    pub fn ddm_vs_analog(&self) -> WaveformComparison {
        compare_traces(&self.analog, &self.ddm, TimeDelta::from_ns(1.0))
    }

    /// Edge-level comparison of HALOTIS-CDM against the electrical
    /// reference.
    pub fn cdm_vs_analog(&self) -> WaveformComparison {
        compare_traces(&self.analog, &self.cdm, TimeDelta::from_ns(1.0))
    }

    /// Renders the three stacked waveform plots plus a comparison summary.
    pub fn render(&self) -> String {
        let options = AsciiOptions::new(Time::ZERO, Time::from_ns(FIGURE_WINDOW_NS), 100);
        let axis = render_axis(&options, TimeDelta::from_ns(5.0), 2);
        let mut out = String::new();
        out.push_str(&format!(
            "{} — AxB sequence: {}\n\n",
            self.label, self.sequence
        ));
        for (title, trace) in [
            ("(a) electrical reference", &self.analog),
            ("(b) HALOTIS-DDM", &self.ddm),
            ("(c) HALOTIS-CDM", &self.cdm),
        ] {
            out.push_str(title);
            out.push('\n');
            out.push_str(&render_trace(&paper_order(trace), &options));
            out.push_str(&axis);
            out.push_str("  t (ns)\n\n");
        }
        let ddm = self.ddm_vs_analog();
        let cdm = self.cdm_vs_analog();
        out.push_str(&format!(
            "output edges: reference {}, DDM {}, CDM {}\n",
            ddm.reference_edges, ddm.test_edges, cdm.test_edges
        ));
        out.push_str(&format!(
            "CDM edge overestimation vs reference: {:.0} %  (DDM: {:.0} %)\n",
            cdm.overestimation_percent(),
            ddm.overestimation_percent()
        ));
        out.push_str(&format!(
            "final values agree with reference: DDM {}, CDM {}\n",
            ddm.final_levels_agree, cdm.final_levels_agree
        ));
        out
    }
}

/// Runs one waveform figure for the given multiplication sequence.
///
/// `analog_step` controls the reference integrator resolution (the
/// `reproduce` binary uses 1 ps; benches may coarsen it).
pub fn waveform_figure(
    label: &str,
    pairs: &[(u64, u64)],
    analog_step: TimeDelta,
) -> WaveformFigure {
    let fixture = multiplier_fixture();
    waveform_figure_on(&fixture, label, pairs, analog_step)
}

/// As [`waveform_figure`] but reusing a caller-provided fixture.
pub fn waveform_figure_on(
    fixture: &MultiplierFixture,
    label: &str,
    pairs: &[(u64, u64)],
    analog_step: TimeDelta,
) -> WaveformFigure {
    let stimulus = multiplier_stimulus(&fixture.ports, pairs);
    let circuit = CompiledCircuit::compile(&fixture.netlist, &fixture.library)
        .expect("multiplier fixture compiles");
    let (ddm, cdm) = circuit
        .run_both_models(&stimulus, &SimulationConfig::default())
        .expect("multiplier fixture simulates under both models");
    let analog = AnalogSimulator::new(&fixture.netlist, &fixture.library)
        .run(
            &stimulus,
            &AnalogConfig::default()
                .with_time_step(analog_step)
                .with_end_time(Time::from_ns(FIGURE_WINDOW_NS)),
        )
        .expect("multiplier fixture simulates under the analog engine");
    WaveformFigure {
        label: label.to_string(),
        sequence: sequence_label(pairs),
        analog: analog.output_trace(),
        ddm: ddm.output_trace(),
        cdm: cdm.output_trace(),
        wall_times: (analog.wall_time(), ddm.wall_time(), cdm.wall_time()),
    }
}

/// The paper's Fig. 6 (`0x0, 7x7, 5xA, Ex6, FxF`).
pub fn figure6() -> WaveformFigure {
    waveform_figure("Figure 6", super::SEQUENCE_FIG6, TimeDelta::from_ps(1.0))
}

/// The paper's Fig. 7 (`0x0, FxF, 0x0, FxF, 0x0`).
pub fn figure7() -> WaveformFigure {
    waveform_figure("Figure 7", super::SEQUENCE_FIG7, TimeDelta::from_ps(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_core::LogicLevel;

    fn quick_figure(pairs: &[(u64, u64)]) -> WaveformFigure {
        // A coarser analog step keeps unit tests fast; integration tests and
        // the reproduce binary use the full resolution.
        waveform_figure("test figure", pairs, TimeDelta::from_ps(4.0))
    }

    #[test]
    fn figure6_final_product_agrees_across_simulators() {
        let figure = quick_figure(super::super::SEQUENCE_FIG6);
        // Last multiplication is FxF = 225 = 0b11100001.
        let expected = 0xFu64 * 0xFu64;
        for trace in [&figure.analog, &figure.ddm, &figure.cdm] {
            let mut product = 0u64;
            for bit in 0..8 {
                if trace.get(&format!("s{bit}")).unwrap().final_level() == LogicLevel::High {
                    product |= 1 << bit;
                }
            }
            assert_eq!(product, expected);
        }
    }

    #[test]
    fn cdm_produces_at_least_as_many_edges_as_ddm() {
        let figure = quick_figure(super::super::SEQUENCE_FIG6);
        let ddm_edges: usize = figure.ddm.iter().map(|(_, w)| w.edge_count()).sum();
        let cdm_edges: usize = figure.cdm.iter().map(|(_, w)| w.edge_count()).sum();
        assert!(
            cdm_edges >= ddm_edges,
            "CDM edges {cdm_edges} < DDM edges {ddm_edges}"
        );
    }

    #[test]
    fn render_contains_all_output_signals_and_axis() {
        let figure = quick_figure(super::super::SEQUENCE_FIG7);
        let text = figure.render();
        for bit in 0..8 {
            assert!(text.contains(&format!("s{bit}")), "missing s{bit}");
        }
        assert!(text.contains("t (ns)"));
        assert!(text.contains("HALOTIS-DDM"));
        assert!(text.contains("overestimation"));
    }

    #[test]
    fn paper_order_puts_s7_first() {
        let figure = quick_figure(super::super::SEQUENCE_FIG6);
        let ordered = paper_order(&figure.ddm);
        let names: Vec<&str> = ordered.names().collect();
        assert_eq!(names.first(), Some(&"s7"));
        assert_eq!(names.last(), Some(&"s0"));
    }
}
