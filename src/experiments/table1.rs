//! Reproduction of the paper's Table 1: event counts and filtered-event
//! counts of HALOTIS-DDM and HALOTIS-CDM on the two multiplication
//! sequences, plus the CDM overestimation percentage.
//!
//! The table is pure statistics, so it runs through the no-waveform observer
//! path: the multiplier is compiled a single time and all four runs (two
//! sequences × two delay models) execute as one
//! [`BatchRunner::run_observed`] sweep sharing the compiled tables — no
//! waveform is allocated anywhere.

use halotis_delay::DelayModelKind;
use halotis_sim::stats::ComparisonRow;
use halotis_sim::{BatchRunner, CompiledCircuit, Scenario, SimulationConfig};

use super::{
    multiplier_fixture, multiplier_stimulus, sequence_label, MultiplierFixture, SEQUENCE_FIG6,
    SEQUENCE_FIG7,
};

/// Runs both delay models on one sequence and packages the Table 1 row.
pub fn table1_row(fixture: &MultiplierFixture, pairs: &[(u64, u64)]) -> ComparisonRow {
    let circuit = CompiledCircuit::compile(&fixture.netlist, &fixture.library)
        .expect("multiplier fixture compiles");
    table1_row_on(&circuit, fixture, pairs)
}

/// As [`table1_row`], but reusing a caller-compiled circuit.
pub fn table1_row_on(
    circuit: &CompiledCircuit<'_>,
    fixture: &MultiplierFixture,
    pairs: &[(u64, u64)],
) -> ComparisonRow {
    let stimulus = multiplier_stimulus(&fixture.ports, pairs);
    let mut state = circuit.new_state();
    let base = SimulationConfig::default();
    let ddm = circuit
        .run_stats(
            &mut state,
            &stimulus,
            &base.clone().model(DelayModelKind::Degradation),
        )
        .expect("multiplier fixture simulates under DDM");
    let cdm = circuit
        .run_stats(
            &mut state,
            &stimulus,
            &base.model(DelayModelKind::Conventional),
        )
        .expect("multiplier fixture simulates under CDM");
    ComparisonRow {
        sequence: sequence_label(pairs),
        ddm,
        cdm,
    }
}

/// Reproduces the full Table 1 (both sequences) as one parallel
/// statistics-only batch over a single compiled circuit.
pub fn table1() -> Vec<ComparisonRow> {
    let fixture = multiplier_fixture();
    let circuit = CompiledCircuit::compile(&fixture.netlist, &fixture.library)
        .expect("multiplier fixture compiles");
    let sequences = [SEQUENCE_FIG6, SEQUENCE_FIG7];
    let scenarios: Vec<Scenario> = sequences
        .iter()
        .flat_map(|pairs| {
            Scenario::both_models(
                sequence_label(pairs),
                multiplier_stimulus(&fixture.ports, pairs),
                SimulationConfig::default(),
            )
        })
        .collect();
    let report = BatchRunner::new().run_observed(&circuit, &scenarios, |_, _| ());
    sequences
        .iter()
        .zip(report.outcomes().chunks(2))
        .map(|(pairs, chunk)| {
            let [ddm, cdm] = chunk else {
                unreachable!("two scenarios per sequence");
            };
            ComparisonRow {
                sequence: sequence_label(pairs),
                ddm: *ddm
                    .stats
                    .as_ref()
                    .expect("multiplier fixture simulates under DDM"),
                cdm: *cdm
                    .stats
                    .as_ref()
                    .expect("multiplier fixture simulates under CDM"),
            }
        })
        .collect()
}

/// Renders Table 1 in the paper's column layout.
pub fn render(rows: &[ComparisonRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.sequence.clone(),
                row.ddm.events_scheduled.to_string(),
                row.cdm.events_scheduled.to_string(),
                format!("{:.0}", row.overestimation_percent()),
                row.ddm.events_filtered.to_string(),
                row.cdm.events_filtered.to_string(),
            ]
        })
        .collect();
    super::report::format_table(
        &[
            "sequence",
            "events DDM",
            "events CDM",
            "overst. CDM (%)",
            "filtered DDM",
            "filtered CDM",
        ],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdm_overestimates_events_on_both_sequences() {
        for row in table1() {
            assert!(
                row.cdm.events_scheduled > row.ddm.events_scheduled,
                "sequence {}: CDM {} <= DDM {}",
                row.sequence,
                row.cdm.events_scheduled,
                row.ddm.events_scheduled
            );
            assert!(row.overestimation_percent() > 0.0);
            // DDM filters more events than CDM (Table 1's last two columns):
            // degradation shrinks pulses until the per-input rule removes them.
            assert!(
                row.ddm.events_filtered >= row.cdm.events_filtered,
                "sequence {}: DDM filtered {} < CDM filtered {}",
                row.sequence,
                row.ddm.events_filtered,
                row.cdm.events_filtered
            );
        }
    }

    #[test]
    fn batched_table_matches_the_sequential_rows() {
        let fixture = multiplier_fixture();
        let circuit = CompiledCircuit::compile(&fixture.netlist, &fixture.library).unwrap();
        let sequential = vec![
            table1_row_on(&circuit, &fixture, SEQUENCE_FIG6),
            table1_row_on(&circuit, &fixture, SEQUENCE_FIG7),
        ];
        assert_eq!(table1(), sequential);
    }

    #[test]
    fn render_contains_both_sequences_and_headers() {
        let rows = table1();
        let text = render(&rows);
        assert!(text.contains("0x0, 7x7, 5xA, Ex6, FxF"));
        assert!(text.contains("0x0, FxF, 0x0, FxF, 0x0"));
        assert!(text.contains("overst. CDM (%)"));
    }
}
