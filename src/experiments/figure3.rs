//! Reproduction of the paper's Fig. 3: one transition on a net generates a
//! different event time for every fanout gate input, because each input
//! observes the ramp at its own threshold voltage.

use halotis_core::{Edge, Time, TimeDelta, Voltage};
use halotis_waveform::Transition;

/// One generated event of the Fig. 3 table: which input, at which threshold,
/// at what time.
#[derive(Clone, Debug, PartialEq)]
pub struct Figure3Event {
    /// Label of the receiving input (`"G2.2"` means gate 2, input 2 — the
    /// paper's notation).
    pub input: String,
    /// The input threshold as a fraction of the supply.
    pub threshold_fraction: f64,
    /// The event time `E`.
    pub time: Time,
}

/// The Fig. 3 reproduction: the driving transition plus the events it
/// generates at each fanout input.
#[derive(Clone, Debug, PartialEq)]
pub struct Figure3Report {
    /// The falling transition on the shared net `out`.
    pub transition: Transition,
    /// The generated events, in the order the paper lists them
    /// (E1 at the highest threshold first, since the ramp is falling).
    pub events: Vec<Figure3Event>,
}

impl Figure3Report {
    /// Renders the report as the small table shown next to Fig. 3.
    pub fn render(&self) -> String {
        let mut rows = Vec::new();
        for (index, event) in self.events.iter().enumerate() {
            rows.push(vec![
                format!("E{}", index + 1),
                event.input.clone(),
                format!("{:.2} Vdd", event.threshold_fraction),
                format!("{:.3} ns", event.time.as_ns()),
            ]);
        }
        super::report::format_table(&["event", "gate input", "threshold", "time"], &rows)
    }
}

/// Builds the canonical Fig. 3 situation: a falling transition starting at
/// `t0 = 1 ns` with `tau_f = 1 ns`, driving three gate inputs whose
/// thresholds are 0.66, 0.50 and 0.34 of the supply (the paper's
/// `VT13 > VT22 > VT31` ordering).
pub fn figure3() -> Figure3Report {
    figure3_with(
        Transition::new(Time::from_ns(1.0), TimeDelta::from_ns(1.0), Edge::Fall),
        &[("G1.3", 0.66), ("G2.2", 0.50), ("G3.1", 0.34)],
    )
}

/// Builds a Fig. 3 report for an arbitrary transition and set of fanout
/// inputs `(label, threshold fraction)`.
pub fn figure3_with(transition: Transition, inputs: &[(&str, f64)]) -> Figure3Report {
    let vdd = Voltage::from_volts(5.0);
    let mut events: Vec<Figure3Event> = inputs
        .iter()
        .filter_map(|&(label, fraction)| {
            transition
                .crossing_time(vdd.fraction(fraction), vdd)
                .map(|time| Figure3Event {
                    input: label.to_string(),
                    threshold_fraction: fraction,
                    time,
                })
        })
        .collect();
    events.sort_by_key(|event| event.time);
    Figure3Report { transition, events }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn falling_ramp_reaches_high_thresholds_first() {
        let report = figure3();
        assert_eq!(report.events.len(), 3);
        // E1 < E2 < E3, and E1 belongs to the highest threshold.
        assert!(report.events[0].time < report.events[1].time);
        assert!(report.events[1].time < report.events[2].time);
        assert_eq!(report.events[0].input, "G1.3");
        assert_eq!(report.events[2].input, "G3.1");
    }

    #[test]
    fn event_times_match_the_linear_ramp() {
        let report = figure3();
        // Falling ramp from 1 ns to 2 ns: the 0.5 Vdd crossing is at 1.5 ns.
        let mid = &report.events[1];
        assert_eq!(mid.threshold_fraction, 0.5);
        assert_eq!(mid.time, Time::from_ns(1.5));
    }

    #[test]
    fn rising_transition_reverses_the_order() {
        let report = figure3_with(
            Transition::new(Time::from_ns(0.0), TimeDelta::from_ns(1.0), Edge::Rise),
            &[("hi", 0.8), ("lo", 0.2)],
        );
        assert_eq!(report.events[0].input, "lo");
        assert_eq!(report.events[1].input, "hi");
    }

    #[test]
    fn out_of_swing_thresholds_produce_no_event() {
        let report = figure3_with(
            Transition::new(Time::from_ns(0.0), TimeDelta::from_ns(1.0), Edge::Rise),
            &[("ok", 0.5), ("impossible", 1.5)],
        );
        assert_eq!(report.events.len(), 1);
    }

    #[test]
    fn render_contains_all_events() {
        let text = figure3().render();
        assert!(text.contains("E1") && text.contains("E3"));
        assert!(text.contains("G2.2"));
    }
}
