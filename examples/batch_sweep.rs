//! Compile-once/run-many in action: a Monte-Carlo pulse-width scan executed
//! by the parallel [`BatchRunner`] over one shared compiled circuit.
//!
//! A 6-stage inverter chain is compiled a single time; 64 pulse scenarios
//! (random widths around the chain's filtering region, under both delay
//! models) then run across all available hardware threads, each worker
//! reusing one state arena.  The example prints the per-model survival and
//! dynamic-energy statistics (via `power::estimate_compiled`, which reuses
//! the compiled net capacitances) and the batch throughput.
//!
//! ```text
//! cargo run --release --example batch_sweep
//! ```

use halotis::core::{LogicLevel, Time, TimeDelta};
use halotis::netlist::{generators, technology};
use halotis::sim::{power, BatchRunner, CompiledCircuit, Scenario, SimulationConfig};
use halotis::waveform::Stimulus;

/// Deterministic SplitMix64 so the sweep is reproducible without extra
/// dependencies.
fn random_widths_ps(seed: u64, count: usize) -> Vec<f64> {
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        z
    };
    (0..count)
        // 100 ps .. 2 ns: spans "always filtered" to "always survives".
        .map(|_| 100.0 + (next() % 1900) as f64)
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = generators::inverter_chain(6);
    let library = technology::cmos06();
    let circuit = CompiledCircuit::compile(&netlist, &library)?;

    let widths = random_widths_ps(0x2001, 32);
    let scenarios: Vec<Scenario> = widths
        .iter()
        .flat_map(|&width_ps| {
            let mut stimulus = Stimulus::new(library.default_input_slew());
            stimulus.set_initial("in", LogicLevel::Low);
            stimulus.drive("in", Time::from_ns(2.0), LogicLevel::High);
            stimulus.drive(
                "in",
                Time::from_ns(2.0) + TimeDelta::from_ps(width_ps),
                LogicLevel::Low,
            );
            Scenario::both_models(
                format!("{width_ps:.0}ps"),
                stimulus,
                SimulationConfig::default(),
            )
        })
        .collect();

    let runner = BatchRunner::new();
    println!(
        "circuit: {} ({} gates), {} scenarios, {} worker thread(s)",
        netlist.name(),
        netlist.gate_count(),
        scenarios.len(),
        runner.threads()
    );

    let report = runner.run(&circuit, &scenarios);
    let mut survived = [0usize; 2];
    let mut filtered = [0usize; 2];
    let mut energy_joules = [0.0f64; 2];
    for chunk in report.outcomes().chunks(2) {
        // Scenario::both_models pairs: element 0 is DDM, element 1 is CDM.
        for (model, outcome) in chunk.iter().enumerate() {
            let result = outcome.result.as_ref().map_err(|error| error.clone())?;
            let pulses = result
                .ideal_waveform("out")
                .map(|w| w.edge_count() >= 2)
                .unwrap_or(false);
            if pulses {
                survived[model] += 1;
            } else {
                filtered[model] += 1;
            }
            energy_joules[model] += power::estimate_compiled(&circuit, result).total_joules();
        }
    }
    println!("\npulse survival at the far end of the chain:");
    for (model, label) in ["DDM", "CDM"].into_iter().enumerate() {
        println!(
            "  {label}: {} survived, {} filtered, {:.1} pJ switched",
            survived[model],
            filtered[model],
            energy_joules[model] * 1e12
        );
    }
    println!(
        "CDM overestimates the sweep's dynamic energy by {:.0} %",
        (energy_joules[1] - energy_joules[0]) / energy_joules[0] * 100.0
    );
    let totals = report.totals();
    println!(
        "\nbatch: {} scenarios in {:?} ({} events processed, {} filtered at inputs)",
        report.len(),
        report.wall_time(),
        totals.events_processed,
        totals.events_filtered
    );
    assert_eq!(report.failed(), 0);
    // The degradation model can only remove pulses relative to CDM.
    assert!(survived[0] <= survived[1]);
    Ok(())
}
