//! Switching-activity study: how much does a conventional delay model
//! overestimate the activity (and therefore the dynamic power) of a
//! glitch-heavy circuit?
//!
//! The paper's Table 1 reports 40–50 % overestimation on the 4×4 multiplier.
//! This example sweeps random operand sequences of increasing length and
//! multiplier sizes and prints the same metric, demonstrating that the
//! effect is systematic rather than specific to the two published
//! sequences.
//!
//! ```text
//! cargo run --release --example switching_activity
//! ```

use halotis::experiments::{multiplier_fixture_sized, multiplier_stimulus, sequence_label};
use halotis::sim::{CompiledCircuit, SimulationConfig};

/// Small deterministic pseudo-random operand generator (SplitMix64), so the
/// example's output is reproducible without extra dependencies.
fn operands(seed: u64, count: usize, bits: usize) -> Vec<(u64, u64)> {
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mask = (1u64 << bits) - 1;
    (0..count).map(|_| (next() & mask, next() & mask)).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("| size | vectors | events DDM | events CDM | overestimation | filtered DDM |");
    println!("|------|---------|------------|------------|----------------|--------------|");
    for &(a_bits, b_bits) in &[(4usize, 4usize), (6, 6), (8, 8)] {
        let fixture = multiplier_fixture_sized(a_bits, b_bits);
        // One compilation per multiplier size serves every vector count.
        let circuit = CompiledCircuit::compile(&fixture.netlist, &fixture.library)?;
        for &vectors in &[5usize, 10, 20] {
            let pairs = operands(0xDA7E_2001 + vectors as u64, vectors, a_bits.min(b_bits));
            let stimulus = multiplier_stimulus(&fixture.ports, &pairs);
            let (ddm, cdm) = circuit.run_both_models(&stimulus, &SimulationConfig::default())?;
            println!(
                "| {a_bits}x{b_bits}  | {vectors:7} | {:10} | {:10} | {:13.0}% | {:12} |",
                ddm.stats().events_scheduled,
                cdm.stats().events_scheduled,
                ddm.stats().overestimation_percent(cdm.stats()),
                ddm.stats().events_filtered,
            );
            if vectors == 5 && a_bits == 4 {
                println!("  (sequence {})", sequence_label(&pairs));
            }
        }
    }
    Ok(())
}
