//! The ECO loop: edit a compiled circuit in place and re-run in microseconds.
//!
//! An engineering change order ("what if this NAND were a NOR?") used to
//! mean recompiling the whole `CompiledCircuit`.  With the mutation API the
//! loop is: `edit` → (tables patched incrementally) → `run_with` — no
//! rebuild, no reallocation of untouched rows, bit-identical results to a
//! from-scratch compile of the edited netlist.
//!
//! ```text
//! cargo run --release --example eco_loop
//! ```

use std::time::Instant;

use halotis::core::{LogicLevel, Time};
use halotis::netlist::{iscas, technology, CellKind};
use halotis::sim::{CompiledCircuit, SimulationConfig};
use halotis::waveform::Stimulus;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compile the ISCAS-85 c880 benchmark once.
    let netlist = iscas::c880();
    let library = technology::cmos06();
    let mut circuit = CompiledCircuit::compile(&netlist, &library)?;
    let mut state = circuit.new_state();
    println!(
        "compiled {}: {} gates, {} nets",
        netlist.name(),
        netlist.gate_count(),
        netlist.net_count()
    );

    // 2. One stimulus, reused across the whole what-if sweep: every input
    //    starts low and rises at 1 ns.
    let mut stimulus = Stimulus::new(library.default_input_slew());
    for &input in netlist.primary_inputs() {
        let name = netlist.net(input).name().to_string();
        stimulus.set_initial(&name, LogicLevel::Low);
        stimulus.drive(&name, Time::from_ns(1.0), LogicLevel::High);
    }
    let config = SimulationConfig::ddm();
    let baseline = circuit.run_with(&mut state, &stimulus, &config)?;
    println!("baseline: {}", baseline.stats());

    // 3. The ECO sweep: retype every 2-input AND in turn, re-run, revert.
    //    Each iteration is two single-gate edits plus one simulation —
    //    the compile step the loop used to pay is gone.
    let targets: Vec<_> = circuit
        .netlist()
        .gates()
        .iter()
        .filter(|gate| gate.kind() == CellKind::And2)
        .map(|gate| (gate.id(), gate.name().to_string()))
        .take(8)
        .collect();
    println!("\nwhat-if: AND2 -> NAND2, one gate at a time");
    let sweep_started = Instant::now();
    for (gate, name) in &targets {
        let edit_started = Instant::now();
        circuit.edit(|session| session.swap_cell_kind(*gate, CellKind::Nand2))?;
        circuit.sync_state(&mut state);
        let edit_time = edit_started.elapsed();

        let variant = circuit.run_with(&mut state, &stimulus, &config)?;
        println!(
            "  {name:<8} edit {:>7.2?}  events {:>6} ({:+})  degraded {:>4} ({:+})",
            edit_time,
            variant.stats().events_processed,
            variant.stats().events_processed as i64 - baseline.stats().events_processed as i64,
            variant.stats().degraded_transitions,
            variant.stats().degraded_transitions as i64
                - baseline.stats().degraded_transitions as i64,
        );

        // Revert so the next what-if starts from the original circuit.
        circuit.edit(|session| session.swap_cell_kind(*gate, CellKind::And2))?;
    }
    println!(
        "{} what-if variants in {:.2?} (incl. {} single-gate edits)",
        targets.len(),
        sweep_started.elapsed(),
        targets.len() * 2,
    );

    // 4. Proof of the contract: after all those edits-and-reverts the
    //    circuit still reproduces the baseline bit-exactly.
    let replay = circuit.run_with(&mut state, &stimulus, &config)?;
    assert_eq!(baseline.stats(), replay.stats());
    println!("\npost-sweep replay matches the baseline bit-exactly");
    Ok(())
}
