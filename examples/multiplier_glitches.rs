//! The paper's evaluation workload: the 4×4 array multiplier driven with the
//! Fig. 6 multiplication sequence, simulated with and without the
//! degradation model, and compared against the electrical reference.
//!
//! ```text
//! cargo run --release --example multiplier_glitches
//! ```

use halotis::analog::{AnalogConfig, AnalogSimulator};
use halotis::core::{Time, TimeDelta};
use halotis::experiments::{multiplier_fixture, multiplier_stimulus, SEQUENCE_FIG6};
use halotis::sim::{CompiledCircuit, SimulationConfig};
use halotis::waveform::compare::{compare_traces, switching_activity};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fixture = multiplier_fixture();
    println!(
        "circuit: {} ({} gates, {} nets)",
        fixture.netlist.name(),
        fixture.netlist.gate_count(),
        fixture.netlist.net_count()
    );
    for (kind, count) in fixture.netlist.gate_histogram() {
        println!("  {kind:6} x {count}");
    }

    let stimulus = multiplier_stimulus(&fixture.ports, SEQUENCE_FIG6);
    let circuit = CompiledCircuit::compile(&fixture.netlist, &fixture.library)?;

    // HALOTIS with and without degradation, sharing one compiled circuit.
    let (ddm, cdm) = circuit.run_both_models(&stimulus, &SimulationConfig::default())?;
    println!("\nHALOTIS-DDM: {}", ddm.stats());
    println!("HALOTIS-CDM: {}", cdm.stats());
    println!(
        "CDM event overestimation: {:.0} %",
        ddm.stats().overestimation_percent(cdm.stats())
    );

    // Electrical reference for the same stimulus.
    let analog = AnalogSimulator::new(&fixture.netlist, &fixture.library).run(
        &stimulus,
        &AnalogConfig::default()
            .with_time_step(TimeDelta::from_ps(2.0))
            .with_end_time(Time::from_ns(25.0)),
    )?;

    let reference = analog.output_trace();
    let ddm_cmp = compare_traces(&reference, &ddm.output_trace(), TimeDelta::from_ns(1.0));
    let cdm_cmp = compare_traces(&reference, &cdm.output_trace(), TimeDelta::from_ns(1.0));
    println!(
        "\nagainst the electrical reference ({} output edges):",
        switching_activity(&reference)
    );
    println!(
        "  DDM: {} edges, {:.0} % extra, final values agree: {}",
        ddm_cmp.test_edges,
        ddm_cmp.overestimation_percent(),
        ddm_cmp.final_levels_agree
    );
    println!(
        "  CDM: {} edges, {:.0} % extra, final values agree: {}",
        cdm_cmp.test_edges,
        cdm_cmp.overestimation_percent(),
        cdm_cmp.final_levels_agree
    );
    println!(
        "\nwall time: analog {:?}, DDM {:?}, CDM {:?}",
        analog.wall_time(),
        ddm.wall_time(),
        cdm.wall_time()
    );
    Ok(())
}
