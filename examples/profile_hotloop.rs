//! Ad-hoc wall-clock breakdown of one corpus entry's hot path.
//!
//! Times the phases of a `mult4x4`-style batch separately — scenario
//! expansion, compile, run with no observer, run with the corpus observer
//! bundle — so a perf regression can be attributed without a profiler.
//! Run with `cargo run --release --example profile_hotloop`.

use std::time::Instant;

use halotis::corpus::{standard_corpus, CorpusRunner};
use halotis::netlist::technology;
use halotis::sim::observer::SimObserver;
use halotis::sim::{ActivityCounter, CompiledCircuit};

struct NullObserver;
impl SimObserver for NullObserver {}

fn main() {
    let corpus = standard_corpus();
    let entry = corpus
        .iter()
        .find(|entry| entry.name == "mult4x4")
        .expect("mult4x4 is in the standard corpus");
    let library = technology::cmos06();

    let t = Instant::now();
    let scenarios = entry.scenarios(&library);
    println!("scenario expansion: {:?}", t.elapsed());

    let t = Instant::now();
    let circuit = CompiledCircuit::compile(&entry.netlist, &library).unwrap();
    println!("compile: {:?}", t.elapsed());

    let mut state = circuit.new_state();
    const REPS: usize = 200;

    // Warm up.
    for scenario in &scenarios {
        let mut observer = NullObserver;
        circuit
            .run_observed(
                &mut state,
                &scenario.stimulus,
                &scenario.config,
                &mut observer,
            )
            .unwrap();
    }

    let t = Instant::now();
    for _ in 0..REPS {
        for scenario in &scenarios {
            let mut observer = NullObserver;
            circuit
                .run_observed(
                    &mut state,
                    &scenario.stimulus,
                    &scenario.config,
                    &mut observer,
                )
                .unwrap();
        }
    }
    println!(
        "batch, null observer: {:?}/batch",
        t.elapsed() / REPS as u32
    );

    for scenario in &scenarios {
        let mut observer = NullObserver;
        let stats = circuit
            .run_observed(
                &mut state,
                &scenario.stimulus,
                &scenario.config,
                &mut observer,
            )
            .unwrap();
        let t = Instant::now();
        for _ in 0..REPS {
            let mut observer = NullObserver;
            circuit
                .run_observed(
                    &mut state,
                    &scenario.stimulus,
                    &scenario.config,
                    &mut observer,
                )
                .unwrap();
        }
        let per_run = t.elapsed() / REPS as u32;
        println!(
            "  {}: {:?}/run, {} events -> {:.0}ns/event",
            scenario.label,
            per_run,
            stats.events_processed,
            per_run.as_nanos() as f64 / stats.events_processed as f64
        );
    }

    // Fixed per-run cost: a zero time limit stops before the first pop, so
    // this times reset + initial evaluation + stimulus scheduling alone.
    let mut stopped = scenarios[0].config.clone();
    stopped.time_limit = Some(halotis::core::Time::ZERO);
    let t = Instant::now();
    for _ in 0..REPS {
        let mut observer = NullObserver;
        circuit
            .run_observed(&mut state, &scenarios[0].stimulus, &stopped, &mut observer)
            .unwrap();
    }
    println!(
        "fixed per-run setup cost: {:?}/run",
        t.elapsed() / REPS as u32
    );

    let t = Instant::now();
    for _ in 0..REPS {
        for scenario in &scenarios {
            let mut observer = ActivityCounter::new();
            circuit
                .run_observed(
                    &mut state,
                    &scenario.stimulus,
                    &scenario.config,
                    &mut observer,
                )
                .unwrap();
        }
    }
    println!(
        "batch, activity counter: {:?}/batch",
        t.elapsed() / REPS as u32
    );

    let t = Instant::now();
    for _ in 0..REPS {
        for scenario in &scenarios {
            let mut observer = halotis::sim::PowerAccumulator::new();
            circuit
                .run_observed(
                    &mut state,
                    &scenario.stimulus,
                    &scenario.config,
                    &mut observer,
                )
                .unwrap();
        }
    }
    println!(
        "batch, power accumulator: {:?}/batch",
        t.elapsed() / REPS as u32
    );

    let t = Instant::now();
    for _ in 0..REPS {
        for scenario in &scenarios {
            let mut observer = halotis::corpus::GlitchProfile::new();
            circuit
                .run_observed(
                    &mut state,
                    &scenario.stimulus,
                    &scenario.config,
                    &mut observer,
                )
                .unwrap();
        }
    }
    println!(
        "batch, glitch profile: {:?}/batch",
        t.elapsed() / REPS as u32
    );

    let t = Instant::now();
    for _ in 0..REPS {
        for scenario in &scenarios {
            let mut observer = (
                (
                    ActivityCounter::new(),
                    halotis::sim::PowerAccumulator::new(),
                ),
                (
                    halotis::corpus::GlitchProfile::new(),
                    halotis::corpus::WallClockProbe::new(),
                ),
            );
            circuit
                .run_observed(
                    &mut state,
                    &scenario.stimulus,
                    &scenario.config,
                    &mut observer,
                )
                .unwrap();
        }
    }
    println!(
        "batch, corpus bundle: {:?}/batch",
        t.elapsed() / REPS as u32
    );

    // Queue microbench: realistic corpus-like spacing (events spread over
    // ~80 ns), interleaved push/pop mimicking one delay generation ahead.
    {
        use halotis::sim::queue::{reference::ReferenceEventQueue, EventQueue};
        let make_event = |time_fs: i64, pin: u32| {
            halotis::sim::Event::new(
                halotis::core::Time::from_fs(time_fs),
                halotis::core::PinRef::new(halotis::core::GateId::new(pin), 0),
                halotis::core::LogicLevel::High,
                halotis::core::TimeDelta::from_ps(100.0),
            )
        };
        const N: usize = 1000;
        const PINS: usize = 248;
        let t = Instant::now();
        for _ in 0..REPS {
            let mut q = EventQueue::new(PINS);
            for i in 0..N {
                let pin = (i * 7919) % PINS;
                let time = (i as i64) * 80_000 + (pin as i64) * 133;
                q.schedule(pin, make_event(time, pin as u32));
            }
            while let Some(e) = q.pop() {
                std::hint::black_box(e);
            }
        }
        let wheel_cost = t.elapsed() / REPS as u32;
        let t = Instant::now();
        for _ in 0..REPS {
            let mut q = ReferenceEventQueue::new(PINS);
            for i in 0..N {
                let pin = (i * 7919) % PINS;
                let time = (i as i64) * 80_000 + (pin as i64) * 133;
                q.schedule(pin, make_event(time, pin as u32));
            }
            while let Some(e) = q.pop() {
                std::hint::black_box(e);
            }
        }
        let heap_cost = t.elapsed() / REPS as u32;
        println!(
            "queue microbench ({N} events): wheel {wheel_cost:?}, reference heap {heap_cost:?}"
        );
    }

    let t = Instant::now();
    let runner = CorpusRunner::new().with_threads(1).with_repeats(REPS);
    let report = runner
        .run(std::slice::from_ref(entry))
        .expect("corpus entry runs");
    println!(
        "full corpus runner ({REPS} repeats): {:?} total — {}",
        t.elapsed(),
        report.timings[0].criterion_line()
    );
}
