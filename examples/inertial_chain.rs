//! The paper's Fig. 1 scenario: a marginal pulse fanning out to two
//! inverters with different input thresholds.  The classical inertial-delay
//! rule treats both branches identically and gets at least one wrong; the
//! per-input treatment of HALOTIS follows the electrical reference.
//!
//! ```text
//! cargo run --release --example inertial_chain
//! ```

use halotis::core::TimeDelta;
use halotis::experiments::figure1::{figure1_experiment, find_selective_pulse};

fn main() {
    // Sweep input pulse widths until the electrical reference shows the
    // interesting regime: the pulse survives on the low-threshold branch
    // only.
    let widths: Vec<f64> = (4..28).map(|i| i as f64 * 25.0).collect();
    let report = match find_selective_pulse(&widths) {
        Some(report) => report,
        None => {
            println!("no selective pulse width found in the sweep; showing 400 ps");
            figure1_experiment(TimeDelta::from_ps(400.0))
        }
    };

    println!("{}", report.render());
    println!(
        "HALOTIS reproduces the electrical reference on both branches: {}",
        report.halotis_matches_analog()
    );
    println!(
        "the classical simulator gets at least one branch wrong: {}",
        report.classical_disagrees_with_analog()
    );
    println!(
        "events filtered per input by HALOTIS: {}",
        report.halotis.stats().events_filtered
    );
}
