//! Quickstart: build a tiny circuit, drive it, simulate it with the IDDM
//! and inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use halotis::core::{LogicLevel, Time, TimeDelta};
use halotis::netlist::{technology, CellKind, NetlistBuilder};
use halotis::sim::{SimulationConfig, Simulator};
use halotis::waveform::ascii::{render_trace, AsciiOptions};
use halotis::waveform::{vcd, Stimulus};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a circuit: a NAND gate whose output feeds an inverter.
    let mut builder = NetlistBuilder::new("quickstart");
    let a = builder.add_input("a");
    let b = builder.add_input("b");
    let nand_out = builder.add_net("nand_out");
    let y = builder.add_net("y");
    builder.add_gate(CellKind::Nand2, "u1", &[a, b], nand_out)?;
    builder.add_gate(CellKind::Inv, "u2", &[nand_out], y)?;
    builder.mark_output(y);
    let netlist = builder.build()?;

    // 2. Pick the synthetic 0.6 µm library the paper-style experiments use.
    let library = technology::cmos06();

    // 3. Drive the inputs: `a` rises at 1 ns, `b` pulses briefly at 3 ns.
    let mut stimulus = Stimulus::new(library.default_input_slew());
    stimulus.set_initial("a", LogicLevel::Low);
    stimulus.set_initial("b", LogicLevel::High);
    stimulus.drive("a", Time::from_ns(1.0), LogicLevel::High);
    stimulus.drive("b", Time::from_ns(3.0), LogicLevel::Low);
    stimulus.drive("b", Time::from_ns(3.3), LogicLevel::High);

    // 4. Simulate with the inertial and degradation delay model.
    let simulator = Simulator::new(&netlist, &library);
    let result = simulator.run(&stimulus, &SimulationConfig::ddm())?;

    // 5. Look at what happened.
    println!("simulation statistics: {}", result.stats());
    let window = AsciiOptions::new(Time::ZERO, Time::from_ns(6.0), 72);
    println!("{}", render_trace(&result.full_trace(), &window));
    let y_wave = result.ideal_waveform("y").expect("y exists");
    println!(
        "y settles to {} after {} observable edges",
        y_wave.final_level(),
        y_wave.edge_count()
    );
    println!(
        "narrow glitches on y (< 500 ps): {}",
        y_wave.glitch_count(TimeDelta::from_ps(500.0))
    );

    // 6. Export a VCD for a waveform viewer.
    let vcd_text = vcd::to_string("quickstart", &result.output_trace());
    println!("--- VCD preview ---");
    for line in vcd_text.lines().take(12) {
        println!("{line}");
    }
    Ok(())
}
