//! The extensibility story of the trait-based API: a delay model and an
//! observer defined *here*, outside the engine, plugged into the parallel
//! batch runner without touching any `halotis_sim` internals.
//!
//! Three pieces are demonstrated on the paper's Table 1 workload (the 4×4
//! multiplier driven with both published operand sequences):
//!
//! 1. a **custom `DelayModel`** (`SlowRecovery`) that stretches the
//!    degradation recovery — a what-if the enum-based API could not express,
//! 2. a **composite model** (`PerCellOverride`): degradation everywhere
//!    except the XOR family, a typical partially characterised library,
//! 3. a **non-recording observer** (`ActivityCounter` plus a custom
//!    `GlitchTally`) reproducing the Table 1 statistics with no waveform
//!    allocation anywhere.
//!
//! ```text
//! cargo run --release --example custom_model_observer
//! ```

use halotis::core::GateId;
use halotis::delay::{
    Conventional, Degradation, DelayContext, DelayModel, DelayModelHandle, DelayOutcome,
    EdgeTiming, PerCellOverride,
};
use halotis::experiments::{
    multiplier_fixture, multiplier_stimulus, sequence_label, SEQUENCE_FIG6, SEQUENCE_FIG7,
};
use halotis::netlist::CellKind;
use halotis::sim::observer::SimObserver;
use halotis::sim::{ActivityCounter, BatchRunner, CompiledCircuit, Scenario, SimulationConfig};

/// A custom model: degradation with the elapsed time scaled down, as if the
/// gates recovered from a previous switch only half as fast.  Strictly more
/// pessimistic about glitches than plain DDM.
#[derive(Debug)]
struct SlowRecovery {
    /// Factor applied to `T` before the degradation evaluation (in `(0, 1]`;
    /// smaller = slower recovery = more collapsed pulses).
    recovery: f64,
}

impl DelayModel for SlowRecovery {
    fn label(&self) -> &str {
        "DDM-slow-recovery"
    }

    fn evaluate(&self, arc: &EdgeTiming, ctx: &DelayContext) -> DelayOutcome {
        let slowed = DelayContext {
            time_since_last_output: ctx.time_since_last_output.map(|t| t.scale(self.recovery)),
            ..*ctx
        };
        Degradation.evaluate(arc, &slowed)
    }
}

/// A custom observer: counts fully collapsed excitations per gate — the
/// engine streams gate evaluations, we keep two numbers.
#[derive(Default)]
struct GlitchTally {
    evaluations: usize,
    collapsed: usize,
}

impl SimObserver for GlitchTally {
    fn on_gate_evaluated(
        &mut self,
        _gate: GateId,
        _event: &halotis::sim::Event,
        outcome: &DelayOutcome,
    ) {
        self.evaluations += 1;
        if outcome.is_fully_collapsed() {
            self.collapsed += 1;
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fixture = multiplier_fixture();
    let circuit = CompiledCircuit::compile(&fixture.netlist, &fixture.library)?;

    // Four models through one knob: the two built-ins, a composite, and the
    // custom implementation above.
    let models: Vec<DelayModelHandle> = vec![
        DelayModelHandle::new(Degradation),
        DelayModelHandle::new(Conventional),
        DelayModelHandle::new(
            PerCellOverride::new(Degradation)
                .with(CellKind::Xor2.class(), Conventional)
                .with(CellKind::Xnor2.class(), Conventional),
        ),
        DelayModelHandle::new(SlowRecovery { recovery: 0.5 }),
    ];

    let scenarios: Vec<Scenario> = [SEQUENCE_FIG6, SEQUENCE_FIG7]
        .iter()
        .flat_map(|pairs| {
            let stimulus = multiplier_stimulus(&fixture.ports, pairs);
            models.iter().map(move |model| {
                Scenario::new(
                    format!("{} [{}]", sequence_label(pairs), model.label()),
                    stimulus.clone(),
                    SimulationConfig::default().model(model.clone()),
                )
            })
        })
        .collect();

    // The observer path: per-scenario ActivityCounter + GlitchTally pairs,
    // run in parallel over one compiled circuit.  No waveform is recorded.
    let report = BatchRunner::new().run_observed(&circuit, &scenarios, |_, _| {
        (ActivityCounter::new(), GlitchTally::default())
    });
    assert_eq!(report.failed(), 0);

    println!(
        "4x4 multiplier, {} scenarios on {} worker thread(s), no waveforms recorded\n",
        report.len(),
        report.threads()
    );
    println!(
        "{:<42} {:>8} {:>9} {:>12} {:>10}",
        "scenario", "events", "filtered", "transitions", "collapsed"
    );
    for outcome in report.outcomes() {
        let stats = outcome.stats.as_ref().map_err(Clone::clone)?;
        let (activity, tally) = &outcome.observer;
        assert_eq!(activity.total_transitions(), stats.output_transitions);
        println!(
            "{:<42} {:>8} {:>9} {:>12} {:>10}",
            outcome.label,
            stats.events_scheduled,
            stats.events_filtered,
            activity.total_transitions(),
            tally.collapsed,
        );
        assert!(tally.evaluations >= tally.collapsed);
    }

    // Sanity of the model family: per sequence, CDM schedules the most
    // events, slow recovery the fewest, the per-cell mix sits between the
    // two built-ins.
    for chunk in report.outcomes().chunks(models.len()) {
        let events: Vec<usize> = chunk
            .iter()
            .map(|o| {
                o.stats
                    .as_ref()
                    .expect("scenario succeeded")
                    .events_scheduled
            })
            .collect();
        let (ddm, cdm, mixed, slow) = (events[0], events[1], events[2], events[3]);
        assert!(cdm > ddm, "CDM must overestimate DDM");
        assert!(
            (ddm..=cdm).contains(&mixed),
            "mix must sit between DDM and CDM"
        );
        assert!(slow <= ddm, "slower recovery can only remove activity");
    }
    println!("\nmodel-family ordering checks passed (DDM <= mix <= CDM, slow-recovery <= DDM)");
    Ok(())
}
