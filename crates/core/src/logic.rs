//! Digital signal abstractions: logic levels and transition edges.

use std::fmt;
use std::ops::Not;

/// A (possibly unknown) static logic level on a net.
///
/// HALOTIS models transitions as analog ramps, but the *boolean* evaluation
/// of a gate still happens on discrete levels.  `Unknown` is used before a
/// net has been initialised by the stimulus or by simulation.
///
/// # Example
///
/// ```
/// use halotis_core::LogicLevel;
/// assert_eq!(!LogicLevel::Low, LogicLevel::High);
/// assert_eq!(!LogicLevel::Unknown, LogicLevel::Unknown);
/// assert_eq!(LogicLevel::from_bool(true), LogicLevel::High);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum LogicLevel {
    /// Logic `0`.
    Low,
    /// Logic `1`.
    High,
    /// Uninitialised / unknown.
    #[default]
    Unknown,
}

/// The sense of a signal transition.
///
/// # Example
///
/// ```
/// use halotis_core::{Edge, LogicLevel};
/// assert_eq!(Edge::Rise.target_level(), LogicLevel::High);
/// assert_eq!(Edge::Rise.inverted(), Edge::Fall);
/// assert_eq!(Edge::between(LogicLevel::Low, LogicLevel::High), Some(Edge::Rise));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Edge {
    /// A `0 -> 1` transition.
    Rise,
    /// A `1 -> 0` transition.
    Fall,
}

impl LogicLevel {
    /// Converts a boolean into a defined logic level.
    #[inline]
    pub const fn from_bool(value: bool) -> Self {
        if value {
            LogicLevel::High
        } else {
            LogicLevel::Low
        }
    }

    /// Returns `Some(bool)` for defined levels, `None` for [`LogicLevel::Unknown`].
    #[inline]
    pub const fn to_bool(self) -> Option<bool> {
        match self {
            LogicLevel::Low => Some(false),
            LogicLevel::High => Some(true),
            LogicLevel::Unknown => None,
        }
    }

    /// `true` when the level is `Low` or `High`.
    #[inline]
    pub const fn is_defined(self) -> bool {
        !matches!(self, LogicLevel::Unknown)
    }

    /// The edge required to move from `self` to `target`, if any.
    #[inline]
    pub fn edge_to(self, target: LogicLevel) -> Option<Edge> {
        Edge::between(self, target)
    }

    /// Single-character representation (`0`, `1`, `x`), as used by the
    /// netlist text format and the ASCII waveform renderer.
    #[inline]
    pub const fn as_char(self) -> char {
        match self {
            LogicLevel::Low => '0',
            LogicLevel::High => '1',
            LogicLevel::Unknown => 'x',
        }
    }
}

impl Not for LogicLevel {
    type Output = LogicLevel;
    #[inline]
    fn not(self) -> LogicLevel {
        match self {
            LogicLevel::Low => LogicLevel::High,
            LogicLevel::High => LogicLevel::Low,
            LogicLevel::Unknown => LogicLevel::Unknown,
        }
    }
}

impl From<bool> for LogicLevel {
    #[inline]
    fn from(value: bool) -> Self {
        LogicLevel::from_bool(value)
    }
}

impl fmt::Display for LogicLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_char())
    }
}

impl Edge {
    /// The logic level the signal settles at after this edge.
    #[inline]
    pub const fn target_level(self) -> LogicLevel {
        match self {
            Edge::Rise => LogicLevel::High,
            Edge::Fall => LogicLevel::Low,
        }
    }

    /// The logic level the signal held before this edge.
    #[inline]
    pub const fn source_level(self) -> LogicLevel {
        match self {
            Edge::Rise => LogicLevel::Low,
            Edge::Fall => LogicLevel::High,
        }
    }

    /// The opposite edge.
    #[inline]
    pub const fn inverted(self) -> Edge {
        match self {
            Edge::Rise => Edge::Fall,
            Edge::Fall => Edge::Rise,
        }
    }

    /// The edge needed to go from `from` to `to`, or `None` when the levels
    /// are equal or either side is undefined.
    #[inline]
    pub fn between(from: LogicLevel, to: LogicLevel) -> Option<Edge> {
        match (from, to) {
            (LogicLevel::Low, LogicLevel::High) => Some(Edge::Rise),
            (LogicLevel::High, LogicLevel::Low) => Some(Edge::Fall),
            _ => None,
        }
    }

    /// `true` for a rising edge.
    #[inline]
    pub const fn is_rise(self) -> bool {
        matches!(self, Edge::Rise)
    }

    /// `true` for a falling edge.
    #[inline]
    pub const fn is_fall(self) -> bool {
        matches!(self, Edge::Fall)
    }

    /// Both edges, in `[Rise, Fall]` order.  Handy for characterisation loops.
    #[inline]
    pub const fn both() -> [Edge; 2] {
        [Edge::Rise, Edge::Fall]
    }
}

impl Not for Edge {
    type Output = Edge;
    #[inline]
    fn not(self) -> Edge {
        self.inverted()
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Edge::Rise => write!(f, "rise"),
            Edge::Fall => write!(f, "fall"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logic_not_is_involutive_on_defined_levels() {
        assert_eq!(!!LogicLevel::Low, LogicLevel::Low);
        assert_eq!(!!LogicLevel::High, LogicLevel::High);
        assert_eq!(!LogicLevel::Unknown, LogicLevel::Unknown);
    }

    #[test]
    fn logic_bool_round_trip() {
        assert_eq!(LogicLevel::from_bool(true).to_bool(), Some(true));
        assert_eq!(LogicLevel::from_bool(false).to_bool(), Some(false));
        assert_eq!(LogicLevel::Unknown.to_bool(), None);
        assert_eq!(LogicLevel::from(true), LogicLevel::High);
    }

    #[test]
    fn logic_char_rendering() {
        assert_eq!(LogicLevel::Low.as_char(), '0');
        assert_eq!(LogicLevel::High.as_char(), '1');
        assert_eq!(LogicLevel::Unknown.as_char(), 'x');
        assert_eq!(format!("{}", LogicLevel::High), "1");
    }

    #[test]
    fn edge_levels_are_consistent() {
        for edge in Edge::both() {
            assert_eq!(edge.source_level(), !edge.target_level());
            assert_eq!(edge.inverted().target_level(), edge.source_level());
            assert_eq!(!edge, edge.inverted());
        }
    }

    #[test]
    fn edge_between_defined_levels() {
        assert_eq!(
            Edge::between(LogicLevel::Low, LogicLevel::High),
            Some(Edge::Rise)
        );
        assert_eq!(
            Edge::between(LogicLevel::High, LogicLevel::Low),
            Some(Edge::Fall)
        );
        assert_eq!(Edge::between(LogicLevel::Low, LogicLevel::Low), None);
        assert_eq!(Edge::between(LogicLevel::Unknown, LogicLevel::High), None);
        assert_eq!(LogicLevel::Low.edge_to(LogicLevel::High), Some(Edge::Rise));
    }

    #[test]
    fn edge_predicates() {
        assert!(Edge::Rise.is_rise());
        assert!(!Edge::Rise.is_fall());
        assert!(Edge::Fall.is_fall());
        assert_eq!(format!("{} {}", Edge::Rise, Edge::Fall), "rise fall");
    }
}
