//! Error type shared by the vocabulary crate.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or validating core quantities.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A physical quantity was outside its valid range (negative capacitance,
    /// non-finite voltage, time overflow, ...).
    QuantityOutOfRange {
        /// Human-readable name of the quantity ("supply voltage", "time", ...).
        quantity: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::QuantityOutOfRange { quantity, value } => {
                write!(f, "{quantity} out of range: {value}")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = CoreError::QuantityOutOfRange {
            quantity: "capacitance",
            value: -1.0,
        };
        assert_eq!(err.to_string(), "capacitance out of range: -1");
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<CoreError>();
    }
}
