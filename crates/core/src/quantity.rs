//! Electrical quantities: supply/threshold voltages and load capacitances.
//!
//! These are thin `f64` newtypes ([`Voltage`] in volts, [`Capacitance`] in
//! farads).  They exist to keep the degradation-model formulas (paper
//! eq. 1–3) readable and to prevent the classic unit mix-up between
//! femtofarad cell characterisation data and farad-level math.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use crate::error::CoreError;

/// An electrical potential in volts.
///
/// # Example
///
/// ```
/// use halotis_core::Voltage;
/// let vdd = Voltage::from_volts(5.0);
/// assert_eq!(vdd.half(), Voltage::from_volts(2.5));
/// assert_eq!(vdd.fraction(0.4), Voltage::from_volts(2.0));
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Voltage(f64);

/// A capacitance in farads.
///
/// # Example
///
/// ```
/// use halotis_core::Capacitance;
/// let c = Capacitance::from_femtofarads(20.0);
/// assert!((c.as_femtofarads() - 20.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Capacitance(f64);

impl Voltage {
    /// Zero volts.
    pub const ZERO: Voltage = Voltage(0.0);

    /// Creates a voltage from volts.
    #[inline]
    pub const fn from_volts(v: f64) -> Self {
        Voltage(v)
    }

    /// Creates a voltage from millivolts.
    #[inline]
    pub fn from_millivolts(mv: f64) -> Self {
        Voltage(mv * 1e-3)
    }

    /// Value in volts.
    #[inline]
    pub const fn as_volts(self) -> f64 {
        self.0
    }

    /// Half of this voltage (the conventional logic threshold `Vdd/2`).
    #[inline]
    pub fn half(self) -> Voltage {
        Voltage(self.0 * 0.5)
    }

    /// `fraction * self`, useful for expressing input thresholds as a
    /// fraction of the supply.
    #[inline]
    pub fn fraction(self, fraction: f64) -> Voltage {
        Voltage(self.0 * fraction)
    }

    /// Validates that the voltage is finite and strictly positive, as
    /// required for a supply rail.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::QuantityOutOfRange`] when the value is zero,
    /// negative, NaN or infinite.
    pub fn validate_supply(self) -> Result<Voltage, CoreError> {
        if !self.0.is_finite() || self.0 <= 0.0 {
            return Err(CoreError::QuantityOutOfRange {
                quantity: "supply voltage",
                value: self.0,
            });
        }
        Ok(self)
    }

    /// Clamps the voltage into `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: Voltage, hi: Voltage) -> Voltage {
        Voltage(self.0.clamp(lo.0, hi.0))
    }
}

impl Capacitance {
    /// Zero farads.
    pub const ZERO: Capacitance = Capacitance(0.0);

    /// Creates a capacitance from farads.
    #[inline]
    pub const fn from_farads(f: f64) -> Self {
        Capacitance(f)
    }

    /// Creates a capacitance from femtofarads.
    #[inline]
    pub fn from_femtofarads(ff: f64) -> Self {
        Capacitance(ff * 1e-15)
    }

    /// Creates a capacitance from picofarads.
    #[inline]
    pub fn from_picofarads(pf: f64) -> Self {
        Capacitance(pf * 1e-12)
    }

    /// Value in farads.
    #[inline]
    pub const fn as_farads(self) -> f64 {
        self.0
    }

    /// Value in femtofarads.
    #[inline]
    pub fn as_femtofarads(self) -> f64 {
        self.0 * 1e15
    }

    /// Validates that the capacitance is finite and non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::QuantityOutOfRange`] when the value is negative,
    /// NaN or infinite.
    pub fn validate(self) -> Result<Capacitance, CoreError> {
        if !self.0.is_finite() || self.0 < 0.0 {
            return Err(CoreError::QuantityOutOfRange {
                quantity: "capacitance",
                value: self.0,
            });
        }
        Ok(self)
    }
}

impl Add for Voltage {
    type Output = Voltage;
    #[inline]
    fn add(self, rhs: Voltage) -> Voltage {
        Voltage(self.0 + rhs.0)
    }
}

impl Sub for Voltage {
    type Output = Voltage;
    #[inline]
    fn sub(self, rhs: Voltage) -> Voltage {
        Voltage(self.0 - rhs.0)
    }
}

impl Mul<f64> for Voltage {
    type Output = Voltage;
    #[inline]
    fn mul(self, rhs: f64) -> Voltage {
        Voltage(self.0 * rhs)
    }
}

impl Div<Voltage> for Voltage {
    /// Dimensionless ratio of two voltages.
    type Output = f64;
    #[inline]
    fn div(self, rhs: Voltage) -> f64 {
        self.0 / rhs.0
    }
}

impl Add for Capacitance {
    type Output = Capacitance;
    #[inline]
    fn add(self, rhs: Capacitance) -> Capacitance {
        Capacitance(self.0 + rhs.0)
    }
}

impl AddAssign for Capacitance {
    #[inline]
    fn add_assign(&mut self, rhs: Capacitance) {
        self.0 += rhs.0;
    }
}

impl Sub for Capacitance {
    type Output = Capacitance;
    #[inline]
    fn sub(self, rhs: Capacitance) -> Capacitance {
        Capacitance(self.0 - rhs.0)
    }
}

impl Mul<f64> for Capacitance {
    type Output = Capacitance;
    #[inline]
    fn mul(self, rhs: f64) -> Capacitance {
        Capacitance(self.0 * rhs)
    }
}

impl Sum for Capacitance {
    fn sum<I: Iterator<Item = Capacitance>>(iter: I) -> Capacitance {
        Capacitance(iter.map(|c| c.0).sum())
    }
}

impl fmt::Debug for Voltage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Voltage({} V)", self.0)
    }
}

impl fmt::Display for Voltage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} V", self.0)
    }
}

impl fmt::Debug for Capacitance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Capacitance({} fF)", self.as_femtofarads())
    }
}

impl fmt::Display for Capacitance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} fF", self.as_femtofarads())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn voltage_constructors_and_accessors() {
        assert_eq!(Voltage::from_millivolts(2500.0), Voltage::from_volts(2.5));
        assert_eq!(Voltage::from_volts(5.0).half().as_volts(), 2.5);
        assert_eq!(Voltage::from_volts(5.0).fraction(0.2).as_volts(), 1.0);
    }

    #[test]
    fn voltage_ratio_is_dimensionless() {
        let a = Voltage::from_volts(2.0);
        let b = Voltage::from_volts(4.0);
        assert_eq!(a / b, 0.5);
    }

    #[test]
    fn voltage_supply_validation() {
        assert!(Voltage::from_volts(3.3).validate_supply().is_ok());
        assert!(Voltage::ZERO.validate_supply().is_err());
        assert!(Voltage::from_volts(-1.0).validate_supply().is_err());
        assert!(Voltage::from_volts(f64::NAN).validate_supply().is_err());
    }

    #[test]
    fn voltage_clamp() {
        let lo = Voltage::ZERO;
        let hi = Voltage::from_volts(5.0);
        assert_eq!(Voltage::from_volts(7.0).clamp(lo, hi), hi);
        assert_eq!(Voltage::from_volts(-1.0).clamp(lo, hi), lo);
    }

    #[test]
    fn capacitance_units() {
        let c = Capacitance::from_femtofarads(1000.0);
        assert!((c.as_farads() - 1e-12).abs() < 1e-27);
        assert_eq!(Capacitance::from_picofarads(1.0), c);
        assert!((c.as_femtofarads() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn capacitance_sums_fanout_loads() {
        let total: Capacitance = (1..=3)
            .map(|i| Capacitance::from_femtofarads(i as f64 * 10.0))
            .sum();
        assert!((total.as_femtofarads() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn capacitance_validation() {
        assert!(Capacitance::from_femtofarads(0.0).validate().is_ok());
        assert!(Capacitance::from_femtofarads(-1.0).validate().is_err());
        assert!(Capacitance::from_farads(f64::NAN).validate().is_err());
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(format!("{}", Voltage::from_volts(3.3)), "3.300 V");
        assert_eq!(
            format!("{}", Capacitance::from_femtofarads(12.5)),
            "12.50 fF"
        );
    }

    proptest! {
        #[test]
        fn prop_voltage_fraction_monotone(f1 in 0.0f64..1.0, f2 in 0.0f64..1.0) {
            let vdd = Voltage::from_volts(5.0);
            prop_assert_eq!(vdd.fraction(f1) <= vdd.fraction(f2), f1 <= f2);
        }

        #[test]
        fn prop_capacitance_add_commutes(a in 0.0f64..1e3, b in 0.0f64..1e3) {
            let ca = Capacitance::from_femtofarads(a);
            let cb = Capacitance::from_femtofarads(b);
            prop_assert!(((ca + cb).as_farads() - (cb + ca).as_farads()).abs() < 1e-30);
        }
    }
}
