//! Typed identifiers into a netlist.
//!
//! Gates, nets and gate-input pins are stored in flat vectors by the
//! netlist crate; these newtypes keep the different index spaces apart at
//! compile time (a `GateId` cannot be used where a `NetId` is expected).

use std::fmt;

/// Index of a gate instance within a netlist.
///
/// # Example
///
/// ```
/// use halotis_core::GateId;
/// let g = GateId::new(3);
/// assert_eq!(g.index(), 3);
/// assert_eq!(format!("{g}"), "g3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GateId(u32);

/// Index of a net (signal) within a netlist.
///
/// # Example
///
/// ```
/// use halotis_core::NetId;
/// let n = NetId::new(7);
/// assert_eq!(n.index(), 7);
/// assert_eq!(format!("{n}"), "n7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NetId(u32);

/// A reference to one *input pin* of one gate: the pair `(gate, input index)`.
///
/// The HALOTIS algorithm keeps one pending event per gate input, so this is
/// the key used throughout the simulator.
///
/// # Example
///
/// ```
/// use halotis_core::{GateId, PinRef};
/// let pin = PinRef::new(GateId::new(2), 1);
/// assert_eq!(pin.gate(), GateId::new(2));
/// assert_eq!(pin.input(), 1);
/// assert_eq!(format!("{pin}"), "g2.in1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PinRef {
    gate: GateId,
    input: u32,
}

impl GateId {
    /// Creates a gate identifier from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        GateId(index)
    }

    /// Creates a gate identifier from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX` (netlists that large are outside
    /// the scope of this simulator).
    #[inline]
    pub fn from_usize(index: usize) -> Self {
        GateId(u32::try_from(index).expect("gate index exceeds u32::MAX"))
    }

    /// Raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl NetId {
    /// Creates a net identifier from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        NetId(index)
    }

    /// Creates a net identifier from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    #[inline]
    pub fn from_usize(index: usize) -> Self {
        NetId(u32::try_from(index).expect("net index exceeds u32::MAX"))
    }

    /// Raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl PinRef {
    /// Creates a pin reference from a gate and an input position.
    #[inline]
    pub const fn new(gate: GateId, input: u32) -> Self {
        PinRef { gate, input }
    }

    /// The gate this pin belongs to.
    #[inline]
    pub const fn gate(self) -> GateId {
        self.gate
    }

    /// The zero-based input position on the gate.
    #[inline]
    pub const fn input(self) -> u32 {
        self.input
    }

    /// The input position as a `usize`, for indexing pin vectors.
    #[inline]
    pub const fn input_index(self) -> usize {
        self.input as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for PinRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.in{}", self.gate, self.input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_round_trip_indices() {
        assert_eq!(GateId::new(5).index(), 5);
        assert_eq!(NetId::new(9).index(), 9);
        assert_eq!(GateId::from_usize(12), GateId::new(12));
        assert_eq!(NetId::from_usize(3), NetId::new(3));
    }

    #[test]
    fn pin_ref_accessors() {
        let pin = PinRef::new(GateId::new(4), 2);
        assert_eq!(pin.gate(), GateId::new(4));
        assert_eq!(pin.input(), 2);
        assert_eq!(pin.input_index(), 2);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        assert!(GateId::new(1) < GateId::new(2));
        assert!(NetId::new(0) < NetId::new(10));
        assert!(PinRef::new(GateId::new(1), 0) < PinRef::new(GateId::new(1), 1));
        let set: HashSet<PinRef> = [
            PinRef::new(GateId::new(0), 0),
            PinRef::new(GateId::new(0), 1),
            PinRef::new(GateId::new(0), 0),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_matches_paper_style_names() {
        assert_eq!(format!("{}", GateId::new(2)), "g2");
        assert_eq!(format!("{}", NetId::new(4)), "n4");
        assert_eq!(format!("{}", PinRef::new(GateId::new(2), 0)), "g2.in0");
    }

    #[test]
    #[should_panic(expected = "gate index exceeds u32::MAX")]
    fn gate_id_from_huge_usize_panics() {
        let _ = GateId::from_usize(u32::MAX as usize + 1);
    }
}
