//! Fixed-point simulation time.
//!
//! HALOTIS is an event-driven simulator: the correctness of the algorithm
//! depends on exact comparisons between event times.  Floating-point time
//! makes those comparisons fragile (two mathematically equal instants can
//! differ in the last bit), so the workspace uses signed 64-bit
//! **femtosecond** fixed-point time everywhere events are ordered, and only
//! converts to `f64` at the analytical-model boundary.
//!
//! Two types are provided, mirroring `std::time`:
//!
//! * [`Time`] — an absolute instant on the simulation time line,
//! * [`TimeDelta`] — a signed span between two instants.
//!
//! One femtosecond resolution with `i64` gives a ±9 200 s range, far beyond
//! any logic-simulation horizon.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::error::CoreError;

/// Femtoseconds per picosecond.
pub const FS_PER_PS: i64 = 1_000;
/// Femtoseconds per nanosecond.
pub const FS_PER_NS: i64 = 1_000_000;
/// Femtoseconds per microsecond.
pub const FS_PER_US: i64 = 1_000_000_000;

/// An absolute instant on the simulation time line, in femtoseconds.
///
/// `Time` is totally ordered and hashable, which makes it suitable as an
/// event-queue key.
///
/// # Example
///
/// ```
/// use halotis_core::{Time, TimeDelta};
/// let t = Time::from_ns(2.5);
/// assert_eq!(t.as_fs(), 2_500_000);
/// assert_eq!(t + TimeDelta::from_ps(500.0), Time::from_ns(3.0));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(i64);

/// A signed span between two [`Time`] instants, in femtoseconds.
///
/// # Example
///
/// ```
/// use halotis_core::TimeDelta;
/// let d = TimeDelta::from_ps(120.0);
/// assert_eq!(d.as_ns(), 0.12);
/// assert_eq!((-d).abs(), d);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeDelta(i64);

impl Time {
    /// The time origin (t = 0).
    pub const ZERO: Time = Time(0);
    /// The largest representable instant, used as an "infinitely far away" sentinel.
    pub const MAX: Time = Time(i64::MAX);
    /// The smallest representable instant.
    pub const MIN: Time = Time(i64::MIN);

    /// Creates a time from raw femtoseconds.
    #[inline]
    pub const fn from_fs(fs: i64) -> Self {
        Time(fs)
    }

    /// Creates a time from picoseconds (rounded to the nearest femtosecond).
    #[inline]
    pub fn from_ps(ps: f64) -> Self {
        Time((ps * FS_PER_PS as f64).round() as i64)
    }

    /// Creates a time from nanoseconds (rounded to the nearest femtosecond).
    #[inline]
    pub fn from_ns(ns: f64) -> Self {
        Time((ns * FS_PER_NS as f64).round() as i64)
    }

    /// Raw femtosecond count.
    #[inline]
    pub const fn as_fs(self) -> i64 {
        self.0
    }

    /// This instant expressed in picoseconds.
    #[inline]
    pub fn as_ps(self) -> f64 {
        self.0 as f64 / FS_PER_PS as f64
    }

    /// This instant expressed in nanoseconds.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / FS_PER_NS as f64
    }

    /// Span from `earlier` to `self` (may be negative).
    #[inline]
    pub fn delta_since(self, earlier: Time) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a delta; clamps at [`Time::MAX`]/[`Time::MIN`].
    #[inline]
    pub fn saturating_add(self, delta: TimeDelta) -> Time {
        Time(self.0.saturating_add(delta.0))
    }

    /// Returns the earlier of two instants.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the later of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl TimeDelta {
    /// The zero-length span.
    pub const ZERO: TimeDelta = TimeDelta(0);
    /// The largest representable span.
    pub const MAX: TimeDelta = TimeDelta(i64::MAX);

    /// Creates a span from raw femtoseconds.
    #[inline]
    pub const fn from_fs(fs: i64) -> Self {
        TimeDelta(fs)
    }

    /// Creates a span from picoseconds (rounded to the nearest femtosecond).
    #[inline]
    pub fn from_ps(ps: f64) -> Self {
        TimeDelta((ps * FS_PER_PS as f64).round() as i64)
    }

    /// Creates a span from nanoseconds (rounded to the nearest femtosecond).
    #[inline]
    pub fn from_ns(ns: f64) -> Self {
        TimeDelta((ns * FS_PER_NS as f64).round() as i64)
    }

    /// Creates a span from seconds (rounded to the nearest femtosecond).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::QuantityOutOfRange`] if the value does not fit in
    /// the femtosecond `i64` range or is not finite.
    pub fn try_from_seconds(seconds: f64) -> Result<Self, CoreError> {
        let fs = seconds * 1e15;
        if !fs.is_finite() || fs.abs() >= i64::MAX as f64 {
            return Err(CoreError::QuantityOutOfRange {
                quantity: "time",
                value: seconds,
            });
        }
        Ok(TimeDelta(fs.round() as i64))
    }

    /// Raw femtosecond count.
    #[inline]
    pub const fn as_fs(self) -> i64 {
        self.0
    }

    /// This span expressed in picoseconds.
    #[inline]
    pub fn as_ps(self) -> f64 {
        self.0 as f64 / FS_PER_PS as f64
    }

    /// This span expressed in nanoseconds.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / FS_PER_NS as f64
    }

    /// Absolute value of the span.
    #[inline]
    pub fn abs(self) -> TimeDelta {
        TimeDelta(self.0.abs())
    }

    /// `true` if the span is negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// `true` if the span is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a dimensionless factor, rounding to the nearest
    /// femtosecond.
    #[inline]
    pub fn scale(self, factor: f64) -> TimeDelta {
        TimeDelta((self.0 as f64 * factor).round() as i64)
    }

    /// Returns the larger of two spans.
    #[inline]
    pub fn max(self, other: TimeDelta) -> TimeDelta {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two spans.
    #[inline]
    pub fn min(self, other: TimeDelta) -> TimeDelta {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add<TimeDelta> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: TimeDelta) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<TimeDelta> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: TimeDelta) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign<TimeDelta> for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 -= rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = TimeDelta;
    #[inline]
    fn sub(self, rhs: Time) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl AddAssign for TimeDelta {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl SubAssign for TimeDelta {
    #[inline]
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 -= rhs.0;
    }
}

impl Neg for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn neg(self) -> TimeDelta {
        TimeDelta(-self.0)
    }
}

impl Mul<i64> for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn mul(self, rhs: i64) -> TimeDelta {
        TimeDelta(self.0 * rhs)
    }
}

impl Div<i64> for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn div(self, rhs: i64) -> TimeDelta {
        TimeDelta(self.0 / rhs)
    }
}

impl Sum for TimeDelta {
    fn sum<I: Iterator<Item = TimeDelta>>(iter: I) -> TimeDelta {
        TimeDelta(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Time({} fs)", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} ns", self.as_ns())
    }
}

impl fmt::Debug for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TimeDelta({} fs)", self.0)
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} ns", self.as_ns())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Time::from_ns(1.0).as_fs(), FS_PER_NS);
        assert_eq!(Time::from_ps(1.0).as_fs(), FS_PER_PS);
        assert_eq!(Time::from_ns(0.25).as_ps(), 250.0);
        assert_eq!(TimeDelta::from_ns(2.0).as_ps(), 2000.0);
    }

    #[test]
    fn arithmetic_behaves_like_integers() {
        let t = Time::from_ns(1.0);
        let d = TimeDelta::from_ps(300.0);
        assert_eq!((t + d) - t, d);
        assert_eq!(t - d + d, t);
        assert_eq!(d * 3, TimeDelta::from_ps(900.0));
        assert_eq!(d / 3, TimeDelta::from_ps(100.0));
        assert_eq!(-d + d, TimeDelta::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let a = Time::from_ps(1.0);
        let b = Time::from_ps(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(Time::MAX > Time::from_ns(1e6));
    }

    #[test]
    fn delta_since_and_saturation() {
        let a = Time::from_ns(3.0);
        let b = Time::from_ns(1.0);
        assert_eq!(a.delta_since(b), TimeDelta::from_ns(2.0));
        assert!(b.delta_since(a).is_negative());
        assert_eq!(Time::MAX.saturating_add(TimeDelta::from_ns(1.0)), Time::MAX);
    }

    #[test]
    fn scale_rounds_to_nearest() {
        let d = TimeDelta::from_fs(10);
        assert_eq!(d.scale(0.25), TimeDelta::from_fs(3)); // 2.5 rounds away from zero
        assert_eq!(d.scale(1.5), TimeDelta::from_fs(15));
    }

    #[test]
    fn try_from_seconds_validates() {
        assert_eq!(
            TimeDelta::try_from_seconds(1e-9).unwrap(),
            TimeDelta::from_ns(1.0)
        );
        assert!(TimeDelta::try_from_seconds(f64::INFINITY).is_err());
        assert!(TimeDelta::try_from_seconds(1e10).is_err());
    }

    #[test]
    fn display_formats_in_ns() {
        assert_eq!(format!("{}", Time::from_ns(1.5)), "1.5000 ns");
        assert_eq!(format!("{}", TimeDelta::from_ps(250.0)), "0.2500 ns");
    }

    #[test]
    fn sum_of_deltas() {
        let total: TimeDelta = (1..=4).map(|i| TimeDelta::from_ps(i as f64)).sum();
        assert_eq!(total, TimeDelta::from_ps(10.0));
    }

    proptest! {
        #[test]
        fn prop_add_sub_inverse(a in -1_000_000_000i64..1_000_000_000, b in -1_000_000_000i64..1_000_000_000) {
            let t = Time::from_fs(a);
            let d = TimeDelta::from_fs(b);
            prop_assert_eq!((t + d) - d, t);
            prop_assert_eq!((t + d) - t, d);
        }

        #[test]
        fn prop_ordering_consistent_with_fs(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
            let ta = Time::from_fs(a);
            let tb = Time::from_fs(b);
            prop_assert_eq!(ta < tb, a < b);
            prop_assert_eq!(ta == tb, a == b);
        }

        #[test]
        fn prop_ns_round_trip(ns in -1_000.0f64..1_000.0) {
            let t = Time::from_ns(ns);
            prop_assert!((t.as_ns() - ns).abs() < 1e-6);
        }
    }
}
