//! Shared vocabulary types for the HALOTIS timing-simulation workspace.
//!
//! This crate defines the small, dependency-free building blocks used by
//! every other crate in the workspace:
//!
//! * [`Time`] and [`TimeDelta`] — femtosecond fixed-point simulation time,
//! * [`Voltage`] and [`Capacitance`] — electrical quantities,
//! * [`LogicLevel`] and [`Edge`] — digital signal abstractions,
//! * [`GateId`], [`NetId`], [`PinRef`] — typed identifiers into a netlist,
//! * [`CoreError`] — error type for quantity parsing/validation.
//!
//! # Example
//!
//! ```
//! use halotis_core::{Time, TimeDelta, Voltage, Edge};
//!
//! let start = Time::from_ns(1.0);
//! let slew = TimeDelta::from_ps(250.0);
//! let end = start + slew;
//! assert_eq!(end.as_ps(), 1250.0);
//! assert_eq!(Edge::Rise.inverted(), Edge::Fall);
//! let vdd = Voltage::from_volts(5.0);
//! assert!(vdd.half() < vdd);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod ids;
pub mod logic;
pub mod quantity;
pub mod time;

pub use error::CoreError;
pub use ids::{GateId, NetId, PinRef};
pub use logic::{Edge, LogicLevel};
pub use quantity::{Capacitance, Voltage};
pub use time::{Time, TimeDelta};
