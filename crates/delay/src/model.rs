//! The unified delay-model entry point used by the simulation engines.
//!
//! A simulator evaluates one timing arc per output transition.  The
//! [`DelayModelKind`] selects between:
//!
//! * [`DelayModelKind::Conventional`] — nominal delay only (the paper's
//!   "HALOTIS-CDM" configuration),
//! * [`DelayModelKind::Degradation`] — nominal delay attenuated by paper
//!   eq. 1 (the paper's "HALOTIS-DDM" configuration).

use std::fmt;

use halotis_core::{Capacitance, TimeDelta, Voltage};

use crate::coeffs::EdgeTiming;
use crate::degradation;
use crate::nominal;

/// Which delay model the simulation engine applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum DelayModelKind {
    /// Conventional delay model: `tp = tp0`, no degradation (HALOTIS-CDM).
    Conventional,
    /// Inertial and degradation delay model: `tp` follows paper eq. 1
    /// (HALOTIS-DDM).
    #[default]
    Degradation,
}

impl DelayModelKind {
    /// Short label used in reports and benchmark output
    /// (`"CDM"` / `"DDM"`), matching the paper's terminology.
    pub const fn label(self) -> &'static str {
        match self {
            DelayModelKind::Conventional => "CDM",
            DelayModelKind::Degradation => "DDM",
        }
    }

    /// Both model kinds, convenient for comparison sweeps.
    pub const fn both() -> [DelayModelKind; 2] {
        [DelayModelKind::Degradation, DelayModelKind::Conventional]
    }
}

impl fmt::Display for DelayModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Opaque cell-classification tag carried by [`DelayContext`].
///
/// Composite delay models (e.g.
/// [`PerCellOverride`](crate::PerCellOverride)) dispatch on the kind of cell
/// being evaluated, but this crate sits *below* the netlist layer and cannot
/// name cell kinds.  `CellClass` is the decoupling: the netlist crate maps
/// each `CellKind` to a stable tag (`CellKind::class()`), the simulation
/// engine stamps it into every [`DelayContext`], and composite models match
/// on it without either crate depending on the other's vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CellClass(pub u16);

impl CellClass {
    /// Tag used when the caller has no cell identity (standalone arc
    /// evaluations, documentation examples).  Composite models fall back to
    /// their default model for it.
    pub const UNSPECIFIED: CellClass = CellClass(u16::MAX);
}

impl Default for CellClass {
    fn default() -> Self {
        CellClass::UNSPECIFIED
    }
}

/// Everything the delay model needs to know about the switching situation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DelayContext {
    /// Supply voltage.
    pub vdd: Voltage,
    /// Output load capacitance `CL` (fanout input capacitance plus wire).
    pub load: Capacitance,
    /// Transition time of the input ramp that triggered this evaluation.
    pub input_slew: TimeDelta,
    /// `T`: time elapsed since the gate's previous output transition, or
    /// `None` when the output has never switched (no degradation possible).
    pub time_since_last_output: Option<TimeDelta>,
    /// Classification tag of the cell being evaluated, for composite models;
    /// [`CellClass::UNSPECIFIED`] when the caller has no cell identity.
    pub cell_class: CellClass,
}

/// The evaluated timing of one output transition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DelayOutcome {
    /// Effective propagation delay actually applied (degraded if DDM).
    pub delay: TimeDelta,
    /// Nominal (undegraded) propagation delay `tp0`.
    pub nominal_delay: TimeDelta,
    /// Output transition time of the generated ramp.
    pub output_slew: TimeDelta,
    /// Degradation attenuation factor `tp / tp0` in `[0, 1]` (always `1` for
    /// the conventional model).
    pub degradation_factor: f64,
}

impl DelayOutcome {
    /// `true` when degradation reduced the delay for this transition.
    pub fn is_degraded(&self) -> bool {
        self.degradation_factor < 1.0 - 1e-12
    }

    /// `true` when the transition was completely collapsed (zero delay
    /// budget); the engine treats such output excitations as producing an
    /// immediate (and typically immediately cancelled) transition.
    pub fn is_fully_collapsed(&self) -> bool {
        self.delay == TimeDelta::ZERO && self.nominal_delay > TimeDelta::ZERO
    }
}

/// Evaluates one timing arc under the selected delay model.
///
/// # Example
///
/// ```
/// use halotis_core::{Capacitance, TimeDelta, Voltage};
/// use halotis_delay::{model, DelayContext, DelayModelKind, EdgeTiming};
///
/// let arc = EdgeTiming::example();
/// let ctx = DelayContext {
///     vdd: Voltage::from_volts(5.0),
///     load: Capacitance::from_femtofarads(15.0),
///     input_slew: TimeDelta::from_ps(150.0),
///     time_since_last_output: Some(TimeDelta::from_ps(80.0)),
///     cell_class: Default::default(),
/// };
/// let ddm = model::evaluate(&arc, DelayModelKind::Degradation, &ctx);
/// let cdm = model::evaluate(&arc, DelayModelKind::Conventional, &ctx);
/// assert!(ddm.delay <= cdm.delay);
/// assert_eq!(cdm.degradation_factor, 1.0);
/// ```
pub fn evaluate(arc: &EdgeTiming, kind: DelayModelKind, ctx: &DelayContext) -> DelayOutcome {
    let nominal = nominal::timing(arc, ctx.load, ctx.input_slew);
    match kind {
        DelayModelKind::Conventional => DelayOutcome {
            delay: nominal.delay,
            nominal_delay: nominal.delay,
            output_slew: nominal.output_slew,
            degradation_factor: 1.0,
        },
        DelayModelKind::Degradation => {
            let eval = degradation::evaluate(
                nominal.delay,
                &arc.degradation,
                ctx.vdd,
                ctx.load,
                ctx.input_slew,
                ctx.time_since_last_output,
            );
            DelayOutcome {
                delay: eval.delay,
                nominal_delay: nominal.delay,
                // The output ramp itself also shrinks with the same factor:
                // a degraded (partial-swing) excitation produces a weaker,
                // but *faster to describe*, ramp.  Keeping the slew at its
                // nominal value is also defensible; scaling it keeps narrow
                // pulses narrow after propagation, which is the behaviour the
                // paper's HSPICE traces show.  Never below 1 fs.
                output_slew: nominal
                    .output_slew
                    .scale(eval.factor.max(0.05))
                    .max(TimeDelta::from_fs(1)),
                degradation_factor: eval.factor,
            }
        }
    }
}

/// One timing arc with every load- and supply-dependent term folded in.
///
/// [`evaluate`] recomputes the load terms, the nominal output slew, the
/// degradation time constant and the dead-band coefficient on every call,
/// although all of them depend only on `(arc, load, vdd)` — constants of a
/// compiled circuit.  A `BoundArc` hoists that work to compile time; only
/// the input-slew- and history-dependent terms remain per event.
///
/// Binding is a pure reassociation of the same IEEE 754 operations in the
/// same order, so [`BoundArc::evaluate`] is **bit-identical** to
/// [`evaluate`] on the same inputs (proven by `prop_bound_arc_matches_free_
/// evaluate` below) — engines may use either interchangeably.
#[derive(Clone, Copy, Debug)]
pub struct BoundArc {
    /// `propagation.t_intrinsic`, unchanged.
    t_intrinsic: TimeDelta,
    /// `propagation.s_slew`, unchanged.
    s_slew: f64,
    /// `propagation`'s load term `R * CL`, rounded exactly as
    /// [`PropagationCoeffs::nominal_delay`](crate::PropagationCoeffs::nominal_delay)
    /// rounds it.
    load_term: TimeDelta,
    /// The full nominal output slew (it depends on the load alone).
    output_slew: TimeDelta,
    /// Degradation time constant `tau` (paper eq. 2; load and Vdd only).
    tau: TimeDelta,
    /// Dead-band coefficient: `T0 = input_slew * t_zero_factor` (paper
    /// eq. 3 with the Vdd division folded in, already clamped at zero).
    t_zero_factor: f64,
}

impl BoundArc {
    /// Folds `load` and `vdd` into `arc`.
    pub fn bind(arc: &EdgeTiming, vdd: Voltage, load: Capacitance) -> Self {
        BoundArc {
            t_intrinsic: arc.propagation.t_intrinsic,
            s_slew: arc.propagation.s_slew,
            load_term: TimeDelta::try_from_seconds(arc.propagation.r_load_ohms * load.as_farads())
                .unwrap_or(TimeDelta::MAX),
            output_slew: arc.output_slew.output_slew(load),
            tau: arc.degradation.tau(vdd, load),
            t_zero_factor: (0.5 - arc.degradation.c_volts / vdd.as_volts()).max(0.0),
        }
    }

    /// Evaluates the arc for one output transition — bit-identical to
    /// [`evaluate`] with the bound load and Vdd.
    pub fn evaluate(
        &self,
        kind: DelayModelKind,
        input_slew: TimeDelta,
        time_since_last_output: Option<TimeDelta>,
    ) -> DelayOutcome {
        let nominal_delay = (self.t_intrinsic + self.load_term + input_slew.scale(self.s_slew))
            .max(TimeDelta::ZERO);
        match kind {
            DelayModelKind::Conventional => DelayOutcome {
                delay: nominal_delay,
                nominal_delay,
                output_slew: self.output_slew,
                degradation_factor: 1.0,
            },
            DelayModelKind::Degradation => {
                let factor = match time_since_last_output {
                    None => 1.0,
                    Some(elapsed) => degradation::degradation_factor(
                        elapsed,
                        input_slew.scale(self.t_zero_factor),
                        self.tau,
                    ),
                };
                DelayOutcome {
                    delay: nominal_delay.scale(factor),
                    nominal_delay,
                    output_slew: self
                        .output_slew
                        .scale(factor.max(0.05))
                        .max(TimeDelta::from_fs(1)),
                    degradation_factor: factor,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ctx(elapsed_ps: Option<f64>) -> DelayContext {
        DelayContext {
            vdd: Voltage::from_volts(5.0),
            load: Capacitance::from_femtofarads(20.0),
            input_slew: TimeDelta::from_ps(150.0),
            time_since_last_output: elapsed_ps.map(TimeDelta::from_ps),
            cell_class: CellClass::default(),
        }
    }

    #[test]
    fn conventional_ignores_history() {
        let arc = EdgeTiming::example();
        let quiet = evaluate(&arc, DelayModelKind::Conventional, &ctx(None));
        let busy = evaluate(&arc, DelayModelKind::Conventional, &ctx(Some(5.0)));
        assert_eq!(quiet, busy);
        assert_eq!(quiet.degradation_factor, 1.0);
        assert!(!quiet.is_degraded());
    }

    #[test]
    fn degradation_reduces_delay_for_recent_activity() {
        let arc = EdgeTiming::example();
        let quiet = evaluate(&arc, DelayModelKind::Degradation, &ctx(None));
        let busy = evaluate(&arc, DelayModelKind::Degradation, &ctx(Some(50.0)));
        assert_eq!(quiet.delay, quiet.nominal_delay);
        assert!(busy.delay < quiet.delay);
        assert!(busy.is_degraded());
    }

    #[test]
    fn fully_collapsed_is_detected() {
        let arc = EdgeTiming::example();
        let collapsed = evaluate(&arc, DelayModelKind::Degradation, &ctx(Some(0.0)));
        assert!(collapsed.is_fully_collapsed());
        // Output slew stays strictly positive even when fully collapsed.
        assert!(collapsed.output_slew > TimeDelta::ZERO);
    }

    #[test]
    fn labels_match_paper_terms() {
        assert_eq!(DelayModelKind::Conventional.label(), "CDM");
        assert_eq!(DelayModelKind::Degradation.label(), "DDM");
        assert_eq!(DelayModelKind::default(), DelayModelKind::Degradation);
        assert_eq!(format!("{}", DelayModelKind::Conventional), "CDM");
        assert_eq!(DelayModelKind::both().len(), 2);
    }

    proptest! {
        #[test]
        fn prop_ddm_never_slower_than_cdm(elapsed in 0.0f64..1e5, load in 1.0f64..200.0, slew in 10.0f64..800.0) {
            let arc = EdgeTiming::example();
            let ctx = DelayContext {
                vdd: Voltage::from_volts(5.0),
                load: Capacitance::from_femtofarads(load),
                input_slew: TimeDelta::from_ps(slew),
                time_since_last_output: Some(TimeDelta::from_ps(elapsed)),
                cell_class: CellClass::default(),
            };
            let ddm = evaluate(&arc, DelayModelKind::Degradation, &ctx);
            let cdm = evaluate(&arc, DelayModelKind::Conventional, &ctx);
            prop_assert!(ddm.delay <= cdm.delay);
            prop_assert_eq!(ddm.nominal_delay, cdm.delay);
            prop_assert!(ddm.output_slew <= cdm.output_slew);
        }

        #[test]
        fn prop_factor_in_unit_interval(elapsed in 0.0f64..1e6) {
            let arc = EdgeTiming::example();
            let out = evaluate(&arc, DelayModelKind::Degradation, &ctx(Some(elapsed)));
            prop_assert!((0.0..=1.0).contains(&out.degradation_factor));
        }

        /// Hoisting the load/Vdd terms must not change a single bit: the
        /// engines treat [`BoundArc::evaluate`] and [`evaluate`] as
        /// interchangeable, and the corpus golden stats rely on it.
        #[test]
        fn prop_bound_arc_matches_free_evaluate(
            t_intrinsic in 0.0f64..2_000.0,
            r_load in 0.0f64..1.0e4,
            s_slew in 0.0f64..1.5,
            slew_base in 1.0f64..1_000.0,
            slew_factor in 0.0f64..1.0e4,
            a in 0.0f64..5.0e-9,
            b in 0.0f64..5.0e5,
            c in -3.0f64..3.0,
            vdd in 1.0f64..6.0,
            load in 0.5f64..500.0,
            input_slew in 1.0f64..2_000.0,
            // Negative means "no previous output" (None downstream).
            elapsed in -100.0f64..1.0e5,
        ) {
            let arc = EdgeTiming {
                propagation: crate::PropagationCoeffs {
                    t_intrinsic: TimeDelta::from_ps(t_intrinsic),
                    r_load_ohms: r_load,
                    s_slew,
                },
                output_slew: crate::SlewCoeffs {
                    base: TimeDelta::from_ps(slew_base),
                    load_factor_ohms: slew_factor,
                },
                degradation: crate::DegradationCoeffs {
                    a_volt_seconds: a,
                    b_volt_per_farad_seconds: b,
                    c_volts: c,
                },
            };
            let vdd = Voltage::from_volts(vdd);
            let load = Capacitance::from_femtofarads(load);
            let context = DelayContext {
                vdd,
                load,
                input_slew: TimeDelta::from_ps(input_slew),
                time_since_last_output: (elapsed >= 0.0).then(|| TimeDelta::from_ps(elapsed)),
                cell_class: CellClass::default(),
            };
            let bound = BoundArc::bind(&arc, vdd, load);
            for kind in DelayModelKind::both() {
                let free = evaluate(&arc, kind, &context);
                let hoisted = bound.evaluate(
                    kind,
                    context.input_slew,
                    context.time_since_last_output,
                );
                prop_assert_eq!(free, hoisted);
            }
        }
    }
}
