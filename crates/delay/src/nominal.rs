//! The conventional (non-degraded) delay model.
//!
//! This is the "CDM" of the paper: a first-order load- and slew-dependent
//! linear model that provides the nominal propagation delay `tp0` and the
//! output transition time `tau_out`.  It is intentionally simple — the paper
//! cites more elaborate analytical models for `tp0` (\[1\], \[2\] in the paper)
//! but its contribution is orthogonal to how `tp0` itself is obtained.

use halotis_core::{Capacitance, TimeDelta};

use crate::coeffs::EdgeTiming;

/// Nominal (undegraded) timing of one output transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NominalTiming {
    /// Propagation delay `tp0` from the triggering input event to the output
    /// half-swing crossing.
    pub delay: TimeDelta,
    /// Output transition time (full-swing ramp duration).
    pub output_slew: TimeDelta,
}

/// Computes the nominal delay and output slew of a timing arc.
///
/// # Example
///
/// ```
/// use halotis_core::{Capacitance, TimeDelta};
/// use halotis_delay::{nominal, EdgeTiming};
///
/// let arc = EdgeTiming::example();
/// let t = nominal::timing(&arc, Capacitance::from_femtofarads(20.0), TimeDelta::from_ps(100.0));
/// assert!(t.delay > TimeDelta::ZERO);
/// assert!(t.output_slew > TimeDelta::ZERO);
/// ```
pub fn timing(arc: &EdgeTiming, load: Capacitance, input_slew: TimeDelta) -> NominalTiming {
    NominalTiming {
        delay: arc.propagation.nominal_delay(load, input_slew),
        output_slew: arc.output_slew.output_slew(load),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_core::TimeDelta;

    #[test]
    fn timing_uses_both_coefficient_groups() {
        let arc = EdgeTiming::example();
        let load = Capacitance::from_femtofarads(10.0);
        let slew = TimeDelta::from_ps(200.0);
        let t = timing(&arc, load, slew);
        assert_eq!(t.delay, arc.propagation.nominal_delay(load, slew));
        assert_eq!(t.output_slew, arc.output_slew.output_slew(load));
    }

    #[test]
    fn heavier_load_is_slower_and_slewier() {
        let arc = EdgeTiming::example();
        let slew = TimeDelta::from_ps(100.0);
        let light = timing(&arc, Capacitance::from_femtofarads(5.0), slew);
        let heavy = timing(&arc, Capacitance::from_femtofarads(100.0), slew);
        assert!(heavy.delay > light.delay);
        assert!(heavy.output_slew > light.output_slew);
    }

    #[test]
    fn slower_input_means_longer_delay() {
        let arc = EdgeTiming::example();
        let load = Capacitance::from_femtofarads(20.0);
        let fast = timing(&arc, load, TimeDelta::from_ps(50.0));
        let slow = timing(&arc, load, TimeDelta::from_ps(500.0));
        assert!(slow.delay > fast.delay);
    }
}
