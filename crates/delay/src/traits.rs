//! The pluggable delay-model contract of the simulation engines.
//!
//! [`model::evaluate`](crate::model::evaluate()) covers the paper's two fixed
//! configurations (HALOTIS-DDM and HALOTIS-CDM) behind the
//! [`DelayModelKind`] enum.  The [`DelayModel`] trait extracts that
//! gate-evaluation contract — propagation delay and output slew from the
//! input slew, the load and the elapsed-time degradation state carried by a
//! [`DelayContext`] — so the engines can run *any* model:
//!
//! * [`Degradation`] / [`Conventional`] — the built-in kinds as trait
//!   implementations, numerically identical to the enum paths,
//! * [`PerCellOverride`] — a composite mixing models per cell class
//!   (e.g. degradation everywhere except the XOR family),
//! * anything downstream code implements itself, without touching engine
//!   internals.
//!
//! [`DelayModelHandle`] is the cheaply cloneable, shareable form the
//! simulation configuration carries; `DelayModelKind` converts into it, so
//! enum-based call sites migrate mechanically
//! (`config.model = DelayModelKind::Degradation.into()`).
//!
//! # Example: a custom model through the same contract
//!
//! ```
//! use halotis_core::{Capacitance, TimeDelta, Voltage};
//! use halotis_delay::{
//!     model, Conventional, DelayContext, DelayModel, DelayModelHandle, DelayModelKind,
//!     DelayOutcome, EdgeTiming,
//! };
//!
//! /// A pessimistic model: conventional timing, delays padded by 10 %.
//! #[derive(Debug)]
//! struct Padded;
//!
//! impl DelayModel for Padded {
//!     fn label(&self) -> &str {
//!         "CDM+10%"
//!     }
//!     fn evaluate(&self, arc: &EdgeTiming, ctx: &DelayContext) -> DelayOutcome {
//!         let mut out = Conventional.evaluate(arc, ctx);
//!         out.delay = out.delay.scale(1.1);
//!         out
//!     }
//! }
//!
//! let arc = EdgeTiming::example();
//! let ctx = DelayContext {
//!     vdd: Voltage::from_volts(5.0),
//!     load: Capacitance::from_femtofarads(15.0),
//!     input_slew: TimeDelta::from_ps(150.0),
//!     time_since_last_output: None,
//!     cell_class: Default::default(),
//! };
//! let handle = DelayModelHandle::new(Padded);
//! let padded = handle.evaluate(&arc, &ctx);
//! let plain = model::evaluate(&arc, DelayModelKind::Conventional, &ctx);
//! assert!(padded.delay > plain.delay);
//! assert_eq!(handle.kind(), None); // not one of the built-ins
//! ```

use std::fmt;
use std::sync::Arc;

use crate::coeffs::EdgeTiming;
use crate::model::{self, CellClass, DelayContext, DelayModelKind, DelayOutcome};

/// The gate-evaluation contract: one timing arc in, one timed output
/// transition out.
///
/// Implementations must be deterministic — the engines rely on identical
/// inputs producing identical outcomes for run-to-run reproducibility (the
/// batch runner re-executes scenarios on arbitrary worker threads).
pub trait DelayModel: fmt::Debug + Send + Sync {
    /// Short label used in reports and statistics (the built-ins use the
    /// paper's `"DDM"` / `"CDM"` terminology).
    fn label(&self) -> &str;

    /// Evaluates one timing arc under this model.
    fn evaluate(&self, arc: &EdgeTiming, ctx: &DelayContext) -> DelayOutcome;

    /// The built-in [`DelayModelKind`] this model is numerically identical
    /// to, or `None` for custom and composite models.  Engines use this for
    /// reporting and to devirtualise the hot loop: returning `Some(kind)`
    /// promises that `model::evaluate(arc, kind, ctx)` produces bit-identical
    /// outcomes to [`DelayModel::evaluate`], and engines may then bypass the
    /// trait object entirely.
    fn kind(&self) -> Option<DelayModelKind> {
        None
    }

    /// The built-in kind this model is numerically identical to **for one
    /// cell class**, with the same bit-identity promise as
    /// [`kind`](DelayModel::kind).  Composite models whose per-class members
    /// are built-ins override this so engines can resolve every gate to a
    /// direct built-in call at compile time even when the composite as a
    /// whole has no single kind.
    fn kind_for(&self, class: CellClass) -> Option<DelayModelKind> {
        let _ = class;
        self.kind()
    }
}

/// The inertial and degradation delay model (HALOTIS-DDM) as a trait
/// implementation — identical numerics to
/// [`DelayModelKind::Degradation`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Degradation;

impl DelayModel for Degradation {
    fn label(&self) -> &str {
        DelayModelKind::Degradation.label()
    }

    fn evaluate(&self, arc: &EdgeTiming, ctx: &DelayContext) -> DelayOutcome {
        model::evaluate(arc, DelayModelKind::Degradation, ctx)
    }

    fn kind(&self) -> Option<DelayModelKind> {
        Some(DelayModelKind::Degradation)
    }
}

/// The conventional delay model (HALOTIS-CDM) as a trait implementation —
/// identical numerics to [`DelayModelKind::Conventional`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Conventional;

impl DelayModel for Conventional {
    fn label(&self) -> &str {
        DelayModelKind::Conventional.label()
    }

    fn evaluate(&self, arc: &EdgeTiming, ctx: &DelayContext) -> DelayOutcome {
        model::evaluate(arc, DelayModelKind::Conventional, ctx)
    }

    fn kind(&self) -> Option<DelayModelKind> {
        Some(DelayModelKind::Conventional)
    }
}

/// A composite model: a default [`DelayModel`] plus per-cell-class
/// overrides.
///
/// The paper fits degradation coefficients per cell; a library bring-up
/// often has them for only part of the cell set.  `PerCellOverride` expresses
/// the natural in-between: degradation where characterised, the conventional
/// model elsewhere — or any other per-cell mix.
///
/// # Example
///
/// The netlist layer supplies the cell classes
/// (`halotis_netlist::CellKind::class()`); here two raw tags stand in:
///
/// ```
/// use halotis_delay::{CellClass, Conventional, Degradation, DelayModel, PerCellOverride};
///
/// // Degradation everywhere except two cell classes.
/// let mixed = PerCellOverride::new(Degradation)
///     .with(CellClass(6), Conventional)
///     .with(CellClass(7), Conventional);
/// assert_eq!(mixed.label(), "DDM+overrides");
/// assert!(mixed.kind().is_none());
/// ```
#[derive(Clone, Debug)]
pub struct PerCellOverride {
    label: String,
    default: DelayModelHandle,
    overrides: Vec<(CellClass, DelayModelHandle)>,
}

impl PerCellOverride {
    /// A composite applying `default` to every cell class (until overrides
    /// are added with [`with`](PerCellOverride::with)).
    pub fn new(default: impl Into<DelayModelHandle>) -> Self {
        let default = default.into();
        PerCellOverride {
            label: format!("{}+overrides", default.label()),
            default,
            overrides: Vec::new(),
        }
    }

    /// Adds (or replaces) the model applied to one cell class.
    pub fn with(mut self, class: CellClass, model: impl Into<DelayModelHandle>) -> Self {
        let model = model.into();
        match self.overrides.iter_mut().find(|(c, _)| *c == class) {
            Some(slot) => slot.1 = model,
            None => self.overrides.push((class, model)),
        }
        self
    }

    /// Replaces the report label (defaults to `"<default>+overrides"`).
    pub fn labelled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The model the composite applies to `class`.
    pub fn model_for(&self, class: CellClass) -> &DelayModelHandle {
        self.overrides
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, m)| m)
            .unwrap_or(&self.default)
    }
}

impl DelayModel for PerCellOverride {
    fn label(&self) -> &str {
        &self.label
    }

    fn evaluate(&self, arc: &EdgeTiming, ctx: &DelayContext) -> DelayOutcome {
        self.model_for(ctx.cell_class).evaluate(arc, ctx)
    }

    fn kind_for(&self, class: CellClass) -> Option<DelayModelKind> {
        self.model_for(class).kind()
    }
}

/// A cheaply cloneable, shareable handle to a [`DelayModel`].
///
/// This is the form the simulation configuration carries: cloning is an
/// atomic reference-count bump, so scenario sweeps duplicate configurations
/// freely without duplicating model state, and one composite model can be
/// shared by every worker of a batch run.
///
/// Equality is conservative: two handles compare equal when they share the
/// same instance (clones of one handle) or both report the same built-in
/// [`kind`](DelayModelHandle::kind).  Distinct instances of custom or
/// composite models never compare equal — the trait cannot see their
/// parameters, and two differently configured models sharing a label must
/// not be treated as the same configuration.
#[derive(Clone)]
pub struct DelayModelHandle(Arc<dyn DelayModel>);

impl DelayModelHandle {
    /// Wraps a model implementation.
    pub fn new(model: impl DelayModel + 'static) -> Self {
        DelayModelHandle(Arc::new(model))
    }

    /// Wraps an already shared model.
    pub fn from_arc(model: Arc<dyn DelayModel>) -> Self {
        DelayModelHandle(model)
    }

    /// The model's report label.
    pub fn label(&self) -> &str {
        self.0.label()
    }

    /// The built-in kind the model corresponds to, when exact.
    pub fn kind(&self) -> Option<DelayModelKind> {
        self.0.kind()
    }

    /// Evaluates one timing arc (see [`DelayModel::evaluate`]).
    pub fn evaluate(&self, arc: &EdgeTiming, ctx: &DelayContext) -> DelayOutcome {
        self.0.evaluate(arc, ctx)
    }

    /// Borrows the underlying trait object.
    pub fn as_dyn(&self) -> &dyn DelayModel {
        &*self.0
    }
}

impl fmt::Debug for DelayModelHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("DelayModelHandle")
            .field(&self.label())
            .finish()
    }
}

impl fmt::Display for DelayModelHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl Default for DelayModelHandle {
    /// The paper's default configuration: the degradation model.
    fn default() -> Self {
        DelayModelKind::default().into()
    }
}

impl PartialEq for DelayModelHandle {
    fn eq(&self, other: &Self) -> bool {
        if Arc::ptr_eq(&self.0, &other.0) {
            return true;
        }
        match (self.kind(), other.kind()) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }
}

impl PartialEq<DelayModelKind> for DelayModelHandle {
    fn eq(&self, other: &DelayModelKind) -> bool {
        self.kind() == Some(*other)
    }
}

impl From<DelayModelKind> for DelayModelHandle {
    fn from(kind: DelayModelKind) -> Self {
        match kind {
            DelayModelKind::Degradation => DelayModelHandle::new(Degradation),
            DelayModelKind::Conventional => DelayModelHandle::new(Conventional),
        }
    }
}

impl From<Arc<dyn DelayModel>> for DelayModelHandle {
    fn from(model: Arc<dyn DelayModel>) -> Self {
        DelayModelHandle(model)
    }
}

impl From<Degradation> for DelayModelHandle {
    fn from(model: Degradation) -> Self {
        DelayModelHandle::new(model)
    }
}

impl From<Conventional> for DelayModelHandle {
    fn from(model: Conventional) -> Self {
        DelayModelHandle::new(model)
    }
}

impl From<PerCellOverride> for DelayModelHandle {
    fn from(model: PerCellOverride) -> Self {
        DelayModelHandle::new(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_core::{Capacitance, TimeDelta, Voltage};
    use proptest::prelude::*;

    fn ctx(class: CellClass, elapsed_ps: Option<f64>) -> DelayContext {
        DelayContext {
            vdd: Voltage::from_volts(5.0),
            load: Capacitance::from_femtofarads(20.0),
            input_slew: TimeDelta::from_ps(150.0),
            time_since_last_output: elapsed_ps.map(TimeDelta::from_ps),
            cell_class: class,
        }
    }

    #[test]
    fn builtin_impls_mirror_the_enum_paths() {
        let arc = EdgeTiming::example();
        for elapsed in [None, Some(5.0), Some(50.0), Some(1e5)] {
            let ctx = ctx(CellClass::UNSPECIFIED, elapsed);
            assert_eq!(
                Degradation.evaluate(&arc, &ctx),
                model::evaluate(&arc, DelayModelKind::Degradation, &ctx)
            );
            assert_eq!(
                Conventional.evaluate(&arc, &ctx),
                model::evaluate(&arc, DelayModelKind::Conventional, &ctx)
            );
        }
        assert_eq!(Degradation.label(), "DDM");
        assert_eq!(Conventional.label(), "CDM");
        assert_eq!(Degradation.kind(), Some(DelayModelKind::Degradation));
        assert_eq!(Conventional.kind(), Some(DelayModelKind::Conventional));
    }

    #[test]
    fn per_cell_override_dispatches_on_the_cell_class() {
        let arc = EdgeTiming::example();
        let mixed = PerCellOverride::new(Degradation).with(CellClass(3), Conventional);
        let busy_default = ctx(CellClass(0), Some(20.0));
        let busy_override = ctx(CellClass(3), Some(20.0));
        assert_eq!(
            mixed.evaluate(&arc, &busy_default),
            Degradation.evaluate(&arc, &busy_default)
        );
        assert_eq!(
            mixed.evaluate(&arc, &busy_override),
            Conventional.evaluate(&arc, &busy_override)
        );
        // The two really differ for a recently active gate.
        assert_ne!(
            mixed.evaluate(&arc, &busy_default).delay,
            mixed.evaluate(&arc, &busy_override).delay
        );
        assert_eq!(mixed.label(), "DDM+overrides");
        assert_eq!(mixed.kind(), None);
    }

    #[test]
    fn per_cell_override_replaces_and_labels() {
        let mixed = PerCellOverride::new(Conventional)
            .with(CellClass(1), Degradation)
            .with(CellClass(1), Conventional)
            .labelled("custom-mix");
        assert_eq!(
            mixed.model_for(CellClass(1)).kind(),
            Some(DelayModelKind::Conventional)
        );
        assert_eq!(
            mixed.model_for(CellClass(9)).kind(),
            Some(DelayModelKind::Conventional)
        );
        assert_eq!(mixed.label(), "custom-mix");
    }

    #[test]
    fn handle_equality_is_by_kind_or_identity() {
        let a: DelayModelHandle = DelayModelKind::Degradation.into();
        let b = DelayModelHandle::new(Degradation);
        let c: DelayModelHandle = DelayModelKind::Conventional.into();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, DelayModelKind::Degradation);
        assert_ne!(a, DelayModelKind::Conventional);
        let custom = DelayModelHandle::new(PerCellOverride::new(Degradation));
        assert_eq!(custom.clone(), custom);
        assert_ne!(custom, a);
        // Distinct custom instances never compare equal, even with the same
        // label: the handle cannot see their parameters.
        let same_label = DelayModelHandle::new(PerCellOverride::new(Degradation));
        assert_eq!(custom.label(), same_label.label());
        assert_ne!(custom, same_label);
        assert_eq!(DelayModelHandle::default(), DelayModelKind::Degradation);
        assert_eq!(format!("{custom}"), "DDM+overrides");
        assert!(format!("{custom:?}").contains("DDM+overrides"));
    }

    proptest! {
        #[test]
        fn prop_trait_and_enum_paths_are_bit_identical(
            elapsed in 0.0f64..1e5,
            load in 1.0f64..200.0,
            slew in 10.0f64..800.0,
        ) {
            let arc = EdgeTiming::example();
            let ctx = DelayContext {
                vdd: Voltage::from_volts(5.0),
                load: Capacitance::from_femtofarads(load),
                input_slew: TimeDelta::from_ps(slew),
                time_since_last_output: Some(TimeDelta::from_ps(elapsed)),
                cell_class: CellClass::default(),
            };
            for kind in DelayModelKind::both() {
                let handle: DelayModelHandle = kind.into();
                prop_assert_eq!(handle.evaluate(&arc, &ctx), model::evaluate(&arc, kind, &ctx));
            }
        }
    }
}
