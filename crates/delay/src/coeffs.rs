//! Characterisation coefficients stored per cell, per input pin and per
//! output edge.
//!
//! A standard-cell timing arc in this workspace is the pair
//! *(input pin, output edge)*: switching input `i` so that the output makes a
//! rising (or falling) transition.  Each arc carries three coefficient
//! groups:
//!
//! * [`PropagationCoeffs`] — the nominal (non-degraded) propagation delay
//!   `tp0 = t_intrinsic + r_load * CL + s_slew * tau_in`,
//! * [`SlewCoeffs`] — the output transition time
//!   `tau_out = base + load_factor * CL`,
//! * [`DegradationCoeffs`] — the `A`, `B`, `C` constants of paper
//!   eq. 2 and eq. 3 that turn into the degradation time constant `tau` and
//!   dead-band `T0`.

use halotis_core::{Capacitance, TimeDelta, Voltage};

/// Coefficients of the nominal propagation-delay model
/// `tp0 = t_intrinsic + r_load * CL + s_slew * tau_in`.
///
/// `t_intrinsic` is the unloaded step-input delay; `r_load` converts load
/// capacitance into delay (an effective drive resistance); `s_slew` is the
/// dimensionless sensitivity to the input transition time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PropagationCoeffs {
    /// Unloaded, step-input propagation delay.
    pub t_intrinsic: TimeDelta,
    /// Delay per farad of load (seconds / farad = ohms, an effective drive resistance).
    pub r_load_ohms: f64,
    /// Dimensionless sensitivity of the delay to the input transition time.
    pub s_slew: f64,
}

/// Coefficients of the output-slew model `tau_out = base + load_factor * CL`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlewCoeffs {
    /// Output transition time with zero external load.
    pub base: TimeDelta,
    /// Additional transition time per farad of load (ohms).
    pub load_factor_ohms: f64,
}

/// The `A`, `B`, `C` degradation constants of paper eq. 2 and eq. 3.
///
/// * eq. 2: `tau * Vdd = A + B * CL`  →  `tau = (A + B * CL) / Vdd`
/// * eq. 3: `T0 = (1/2 - C / Vdd) * tau_in`
///
/// `A` has units of volt·seconds, `B` volt·seconds per farad (volt·ohms) and
/// `C` volts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradationCoeffs {
    /// Volt·seconds: load-independent part of `tau * Vdd`.
    pub a_volt_seconds: f64,
    /// Volt·ohms: load-dependent part of `tau * Vdd` (multiplied by `CL`).
    pub b_volt_per_farad_seconds: f64,
    /// Volts: shifts the dead-band `T0` relative to half the input slew.
    pub c_volts: f64,
}

/// Full characterisation of one timing arc (input pin, output edge).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeTiming {
    /// Nominal propagation-delay coefficients.
    pub propagation: PropagationCoeffs,
    /// Output-slew coefficients.
    pub output_slew: SlewCoeffs,
    /// Degradation coefficients (paper eq. 2–3).
    pub degradation: DegradationCoeffs,
}

/// The pair of timing arcs of one input pin: one for a rising output edge,
/// one for a falling output edge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PinTiming {
    /// Arc used when the output edge is a rise.
    pub rise: EdgeTiming,
    /// Arc used when the output edge is a fall.
    pub fall: EdgeTiming,
}

impl PropagationCoeffs {
    /// Nominal propagation delay for a given load and input transition time.
    ///
    /// # Example
    ///
    /// ```
    /// use halotis_core::{Capacitance, TimeDelta};
    /// use halotis_delay::PropagationCoeffs;
    /// let coeffs = PropagationCoeffs {
    ///     t_intrinsic: TimeDelta::from_ps(100.0),
    ///     r_load_ohms: 2.0e3, // 2 ps per fF (2 kOhm effective drive)
    ///     s_slew: 0.1,
    /// };
    /// let tp0 = coeffs.nominal_delay(
    ///     Capacitance::from_femtofarads(10.0),
    ///     TimeDelta::from_ps(100.0),
    /// );
    /// assert_eq!(tp0, TimeDelta::from_ps(100.0 + 20.0 + 10.0));
    /// ```
    pub fn nominal_delay(&self, load: Capacitance, input_slew: TimeDelta) -> TimeDelta {
        let load_term = TimeDelta::try_from_seconds(self.r_load_ohms * load.as_farads())
            .unwrap_or(TimeDelta::MAX);
        let slew_term = input_slew.scale(self.s_slew);
        (self.t_intrinsic + load_term + slew_term).max(TimeDelta::ZERO)
    }
}

impl SlewCoeffs {
    /// Output transition time (0 → Vdd ramp duration) for a given load.
    ///
    /// # Example
    ///
    /// ```
    /// use halotis_core::{Capacitance, TimeDelta};
    /// use halotis_delay::SlewCoeffs;
    /// let coeffs = SlewCoeffs { base: TimeDelta::from_ps(150.0), load_factor_ohms: 3.0e3 };
    /// let tau = coeffs.output_slew(Capacitance::from_femtofarads(10.0));
    /// assert_eq!(tau, TimeDelta::from_ps(180.0));
    /// ```
    pub fn output_slew(&self, load: Capacitance) -> TimeDelta {
        let load_term = TimeDelta::try_from_seconds(self.load_factor_ohms * load.as_farads())
            .unwrap_or(TimeDelta::MAX);
        (self.base + load_term).max(TimeDelta::from_fs(1))
    }
}

impl DegradationCoeffs {
    /// The degradation time constant `tau = (A + B * CL) / Vdd` (paper eq. 2).
    pub fn tau(&self, vdd: Voltage, load: Capacitance) -> TimeDelta {
        let seconds = (self.a_volt_seconds + self.b_volt_per_farad_seconds * load.as_farads())
            / vdd.as_volts();
        TimeDelta::try_from_seconds(seconds.max(0.0)).unwrap_or(TimeDelta::MAX)
    }

    /// The degradation dead-band `T0 = (1/2 - C / Vdd) * tau_in` (paper eq. 3).
    ///
    /// Output transitions that follow the previous one by less than `T0`
    /// produce (in the limit) zero additional delay budget: the model treats
    /// the pulse as fully collapsed.
    pub fn t_zero(&self, vdd: Voltage, input_slew: TimeDelta) -> TimeDelta {
        let factor = 0.5 - self.c_volts / vdd.as_volts();
        input_slew.scale(factor.max(0.0))
    }

    /// Coefficients with a zero time constant (`tau == 0`).
    ///
    /// With `tau == 0` the exponential of eq. 1 becomes an abrupt step at
    /// `T0 = tau_in / 2`: the classical, discontinuous filtering behaviour
    /// the paper contrasts against.  Useful in tests and ablations; to fully
    /// disable degradation use
    /// [`DelayModelKind::Conventional`](crate::DelayModelKind::Conventional)
    /// instead.
    pub const fn disabled() -> Self {
        DegradationCoeffs {
            a_volt_seconds: 0.0,
            b_volt_per_farad_seconds: 0.0,
            c_volts: 0.0,
        }
    }
}

impl EdgeTiming {
    /// A representative 0.6 µm-flavoured arc used in documentation examples
    /// and unit tests: ~150 ps intrinsic delay, a few ps per fF, degradation
    /// constants on the order of the gate delay.
    pub fn example() -> Self {
        EdgeTiming {
            propagation: PropagationCoeffs {
                t_intrinsic: TimeDelta::from_ps(150.0),
                r_load_ohms: 3.0e3,
                s_slew: 0.15,
            },
            output_slew: SlewCoeffs {
                base: TimeDelta::from_ps(200.0),
                load_factor_ohms: 4.0e3,
            },
            degradation: DegradationCoeffs {
                a_volt_seconds: 1.0e-9,           // 200 ps * 5 V
                b_volt_per_farad_seconds: 15.0e3, // 3 ps/fF * 5 V
                c_volts: 1.25,
            },
        }
    }
}

impl PinTiming {
    /// Returns the arc for the requested output edge.
    pub fn for_edge(&self, edge: halotis_core::Edge) -> &EdgeTiming {
        match edge {
            halotis_core::Edge::Rise => &self.rise,
            halotis_core::Edge::Fall => &self.fall,
        }
    }

    /// Symmetric timing: the same arc for rising and falling output edges.
    pub fn symmetric(arc: EdgeTiming) -> Self {
        PinTiming {
            rise: arc,
            fall: arc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_core::Edge;
    use proptest::prelude::*;

    fn example_coeffs() -> PropagationCoeffs {
        PropagationCoeffs {
            t_intrinsic: TimeDelta::from_ps(100.0),
            r_load_ohms: 2.0e3,
            s_slew: 0.2,
        }
    }

    #[test]
    fn nominal_delay_combines_three_terms() {
        let c = example_coeffs();
        let d = c.nominal_delay(
            Capacitance::from_femtofarads(25.0),
            TimeDelta::from_ps(100.0),
        );
        // 100 ps intrinsic + 2 ps/fF * 25 fF + 0.2 * 100 ps = 170 ps
        assert_eq!(d, TimeDelta::from_ps(170.0));
    }

    #[test]
    fn nominal_delay_is_clamped_non_negative() {
        let c = PropagationCoeffs {
            t_intrinsic: TimeDelta::from_ps(-500.0),
            r_load_ohms: 0.0,
            s_slew: 0.0,
        };
        assert_eq!(
            c.nominal_delay(Capacitance::ZERO, TimeDelta::ZERO),
            TimeDelta::ZERO
        );
    }

    #[test]
    fn output_slew_grows_with_load_and_never_zero() {
        let s = SlewCoeffs {
            base: TimeDelta::ZERO,
            load_factor_ohms: 1.0e3,
        };
        assert_eq!(s.output_slew(Capacitance::ZERO), TimeDelta::from_fs(1));
        assert_eq!(
            s.output_slew(Capacitance::from_femtofarads(50.0)),
            TimeDelta::from_ps(50.0)
        );
    }

    #[test]
    fn tau_matches_eq2() {
        let d = DegradationCoeffs {
            a_volt_seconds: 1.0e-9,
            b_volt_per_farad_seconds: 10.0e3,
            c_volts: 0.0,
        };
        let vdd = Voltage::from_volts(5.0);
        // (1e-9 + 1e4 * 50e-15) / 5 = (1e-9 + 5e-10)/5 = 3e-10 s = 300 ps
        assert_eq!(
            d.tau(vdd, Capacitance::from_femtofarads(50.0)),
            TimeDelta::from_ps(300.0)
        );
    }

    #[test]
    fn t_zero_matches_eq3() {
        let d = DegradationCoeffs {
            a_volt_seconds: 0.0,
            b_volt_per_farad_seconds: 0.0,
            c_volts: 1.25,
        };
        let vdd = Voltage::from_volts(5.0);
        // (0.5 - 1.25/5) * 400 ps = 0.25 * 400 = 100 ps
        assert_eq!(
            d.t_zero(vdd, TimeDelta::from_ps(400.0)),
            TimeDelta::from_ps(100.0)
        );
    }

    #[test]
    fn t_zero_clamped_when_c_exceeds_half_vdd() {
        let d = DegradationCoeffs {
            a_volt_seconds: 0.0,
            b_volt_per_farad_seconds: 0.0,
            c_volts: 4.0,
        };
        assert_eq!(
            d.t_zero(Voltage::from_volts(5.0), TimeDelta::from_ps(400.0)),
            TimeDelta::ZERO
        );
    }

    #[test]
    fn disabled_degradation_has_zero_tau_and_abrupt_dead_band() {
        let d = DegradationCoeffs::disabled();
        assert_eq!(
            d.tau(
                Voltage::from_volts(5.0),
                Capacitance::from_femtofarads(100.0)
            ),
            TimeDelta::ZERO
        );
        // With C == 0 the dead band is half the input slew (eq. 3).
        assert_eq!(
            d.t_zero(Voltage::from_volts(5.0), TimeDelta::from_ps(500.0)),
            TimeDelta::from_ps(250.0)
        );
    }

    #[test]
    fn pin_timing_selects_edge() {
        let mut rise = EdgeTiming::example();
        rise.propagation.t_intrinsic = TimeDelta::from_ps(111.0);
        let fall = EdgeTiming::example();
        let pin = PinTiming { rise, fall };
        assert_eq!(
            pin.for_edge(Edge::Rise).propagation.t_intrinsic,
            TimeDelta::from_ps(111.0)
        );
        assert_eq!(
            pin.for_edge(Edge::Fall).propagation.t_intrinsic,
            TimeDelta::from_ps(150.0)
        );
        let sym = PinTiming::symmetric(EdgeTiming::example());
        assert_eq!(sym.rise, sym.fall);
    }

    proptest! {
        #[test]
        fn prop_nominal_delay_monotone_in_load(load_a in 0.0f64..500.0, load_b in 0.0f64..500.0) {
            let c = example_coeffs();
            let slew = TimeDelta::from_ps(100.0);
            let da = c.nominal_delay(Capacitance::from_femtofarads(load_a), slew);
            let db = c.nominal_delay(Capacitance::from_femtofarads(load_b), slew);
            prop_assert_eq!(da <= db, load_a <= load_b || (da == db));
        }

        #[test]
        fn prop_tau_monotone_in_load(load_a in 0.0f64..500.0, load_b in 0.0f64..500.0) {
            let d = EdgeTiming::example().degradation;
            let vdd = Voltage::from_volts(5.0);
            let ta = d.tau(vdd, Capacitance::from_femtofarads(load_a));
            let tb = d.tau(vdd, Capacitance::from_femtofarads(load_b));
            if load_a <= load_b {
                prop_assert!(ta <= tb);
            }
        }

        #[test]
        fn prop_t_zero_scales_with_input_slew(slew in 1.0f64..2000.0) {
            let d = EdgeTiming::example().degradation;
            let vdd = Voltage::from_volts(5.0);
            let t0 = d.t_zero(vdd, TimeDelta::from_ps(slew));
            // factor is (0.5 - 1.25/5) = 0.25
            prop_assert!((t0.as_ps() - slew * 0.25).abs() < 0.01);
        }
    }
}
