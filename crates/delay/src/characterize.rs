//! Cell-library characterisation helpers.
//!
//! The paper obtains the degradation constants `A`, `B`, `C` (eq. 2–3) by
//! fitting electrical-simulation measurements of a 0.6 µm CMOS library.  We
//! do not have that library, but the fitting procedure itself is part of the
//! published flow, so this module provides it:
//!
//! * [`fit_tau_coefficients`] — ordinary least squares of
//!   `tau * Vdd = A + B * CL` over `(CL, tau)` samples,
//! * [`fit_c_coefficient`] — least squares of
//!   `T0 = (1/2 - C/Vdd) * tau_in` over `(tau_in, T0)` samples,
//! * [`fit_propagation`] — least squares of the linear `tp0` model over
//!   `(CL, tau_in, tp0)` samples.
//!
//! The `halotis-analog` crate can generate such samples from the reference
//! electrical simulator, closing the loop the paper describes.

use halotis_core::{Capacitance, TimeDelta, Voltage};

use crate::coeffs::{DegradationCoeffs, PropagationCoeffs};

/// Error returned when a fit cannot be performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer samples than unknowns.
    NotEnoughSamples {
        /// Samples provided.
        provided: usize,
        /// Minimum required.
        required: usize,
    },
    /// The design matrix is singular (e.g. all loads identical).
    Degenerate,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::NotEnoughSamples { provided, required } => write!(
                f,
                "not enough samples for fit: {provided} provided, {required} required"
            ),
            FitError::Degenerate => write!(f, "degenerate sample set: cannot solve fit"),
        }
    }
}

impl std::error::Error for FitError {}

/// One degradation-tau measurement: time constant observed at a given load.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TauSample {
    /// Output load during the measurement.
    pub load: Capacitance,
    /// Observed degradation time constant.
    pub tau: TimeDelta,
}

/// One dead-band measurement: `T0` observed for a given input slew.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TZeroSample {
    /// Input transition time during the measurement.
    pub input_slew: TimeDelta,
    /// Observed dead-band.
    pub t_zero: TimeDelta,
}

/// One propagation-delay measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DelaySample {
    /// Output load during the measurement.
    pub load: Capacitance,
    /// Input transition time during the measurement.
    pub input_slew: TimeDelta,
    /// Observed propagation delay.
    pub delay: TimeDelta,
}

/// Simple 2-parameter ordinary least squares: `y = a + b * x`.
fn least_squares_line(points: &[(f64, f64)]) -> Result<(f64, f64), FitError> {
    if points.len() < 2 {
        return Err(FitError::NotEnoughSamples {
            provided: points.len(),
            required: 2,
        });
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|(x, _)| x).sum();
    let sy: f64 = points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-30 {
        return Err(FitError::Degenerate);
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    Ok((a, b))
}

/// Fits `A` and `B` of eq. 2 from `(load, tau)` measurements at a given supply.
///
/// # Errors
///
/// Returns [`FitError`] when fewer than two distinct loads are provided.
pub fn fit_tau_coefficients(samples: &[TauSample], vdd: Voltage) -> Result<(f64, f64), FitError> {
    let points: Vec<(f64, f64)> = samples
        .iter()
        .map(|s| (s.load.as_farads(), s.tau.as_ns() * 1e-9 * vdd.as_volts()))
        .collect();
    least_squares_line(&points)
}

/// Fits `C` of eq. 3 from `(input_slew, T0)` measurements at a given supply.
///
/// # Errors
///
/// Returns [`FitError`] when no sample has a non-zero input slew.
pub fn fit_c_coefficient(samples: &[TZeroSample], vdd: Voltage) -> Result<f64, FitError> {
    // T0 / tau_in = 1/2 - C/Vdd  =>  C = Vdd * (1/2 - mean(T0/tau_in))
    let ratios: Vec<f64> = samples
        .iter()
        .filter(|s| !s.input_slew.is_zero())
        .map(|s| s.t_zero.as_fs() as f64 / s.input_slew.as_fs() as f64)
        .collect();
    if ratios.is_empty() {
        return Err(FitError::NotEnoughSamples {
            provided: 0,
            required: 1,
        });
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    Ok(vdd.as_volts() * (0.5 - mean))
}

/// Fits the three-coefficient propagation model from delay measurements.
///
/// Uses two 1-D projections: the load slope is fitted on samples sharing the
/// smallest slew, and the slew slope on samples sharing the smallest load.
/// This matches how cell characterisation sweeps are normally run (one
/// variable at a time) and avoids a full 3-D solve.
///
/// # Errors
///
/// Returns [`FitError`] when either projection has fewer than two points.
pub fn fit_propagation(samples: &[DelaySample]) -> Result<PropagationCoeffs, FitError> {
    if samples.len() < 3 {
        return Err(FitError::NotEnoughSamples {
            provided: samples.len(),
            required: 3,
        });
    }
    let min_slew = samples
        .iter()
        .map(|s| s.input_slew)
        .min()
        .expect("non-empty samples");
    let min_load = samples
        .iter()
        .map(|s| s.load)
        .fold(None::<Capacitance>, |acc, c| match acc {
            None => Some(c),
            Some(prev) if c < prev => Some(c),
            Some(prev) => Some(prev),
        })
        .expect("non-empty samples");

    let load_sweep: Vec<(f64, f64)> = samples
        .iter()
        .filter(|s| s.input_slew == min_slew)
        .map(|s| (s.load.as_farads(), s.delay.as_ns() * 1e-9))
        .collect();
    let slew_sweep: Vec<(f64, f64)> = samples
        .iter()
        .filter(|s| s.load == min_load)
        .map(|s| (s.input_slew.as_ns() * 1e-9, s.delay.as_ns() * 1e-9))
        .collect();

    let (_, r_load) = least_squares_line(&load_sweep)?;
    let (intercept_slew, s_slew) = least_squares_line(&slew_sweep)?;
    // Intrinsic delay: extrapolate the slew sweep to zero slew and remove the
    // load contribution of the minimum load.
    let intrinsic_seconds = intercept_slew - r_load * min_load.as_farads();
    Ok(PropagationCoeffs {
        t_intrinsic: TimeDelta::try_from_seconds(intrinsic_seconds).unwrap_or(TimeDelta::ZERO),
        r_load_ohms: r_load,
        s_slew,
    })
}

/// Convenience: builds a full [`DegradationCoeffs`] from tau and T0 sample sets.
///
/// # Errors
///
/// Propagates the errors of [`fit_tau_coefficients`] and [`fit_c_coefficient`].
pub fn fit_degradation(
    tau_samples: &[TauSample],
    t_zero_samples: &[TZeroSample],
    vdd: Voltage,
) -> Result<DegradationCoeffs, FitError> {
    let (a, b) = fit_tau_coefficients(tau_samples, vdd)?;
    let c = fit_c_coefficient(t_zero_samples, vdd)?;
    Ok(DegradationCoeffs {
        a_volt_seconds: a,
        b_volt_per_farad_seconds: b,
        c_volts: c,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_fit_recovers_known_coefficients() {
        let vdd = Voltage::from_volts(5.0);
        let truth = DegradationCoeffs {
            a_volt_seconds: 1.0e-9,
            b_volt_per_farad_seconds: 12.0e3,
            c_volts: 0.0,
        };
        let samples: Vec<TauSample> = (0..8)
            .map(|i| {
                let load = Capacitance::from_femtofarads(10.0 * i as f64);
                TauSample {
                    load,
                    tau: truth.tau(vdd, load),
                }
            })
            .collect();
        let (a, b) = fit_tau_coefficients(&samples, vdd).unwrap();
        assert!((a - truth.a_volt_seconds).abs() / truth.a_volt_seconds < 1e-3);
        assert!((b - truth.b_volt_per_farad_seconds).abs() / truth.b_volt_per_farad_seconds < 1e-3);
    }

    #[test]
    fn c_fit_recovers_known_coefficient() {
        let vdd = Voltage::from_volts(5.0);
        let truth = DegradationCoeffs {
            a_volt_seconds: 0.0,
            b_volt_per_farad_seconds: 0.0,
            c_volts: 1.4,
        };
        let samples: Vec<TZeroSample> = (1..6)
            .map(|i| {
                let slew = TimeDelta::from_ps(100.0 * i as f64);
                TZeroSample {
                    input_slew: slew,
                    t_zero: truth.t_zero(vdd, slew),
                }
            })
            .collect();
        let c = fit_c_coefficient(&samples, vdd).unwrap();
        assert!((c - 1.4).abs() < 0.01, "c = {c}");
    }

    #[test]
    fn propagation_fit_recovers_known_coefficients() {
        let truth = PropagationCoeffs {
            t_intrinsic: TimeDelta::from_ps(120.0),
            r_load_ohms: 2.5e3,
            s_slew: 0.2,
        };
        let mut samples = Vec::new();
        for load_ff in [0.0, 10.0, 20.0, 40.0, 80.0] {
            for slew_ps in [50.0, 100.0, 200.0, 400.0] {
                let load = Capacitance::from_femtofarads(load_ff);
                let slew = TimeDelta::from_ps(slew_ps);
                samples.push(DelaySample {
                    load,
                    input_slew: slew,
                    delay: truth.nominal_delay(load, slew),
                });
            }
        }
        let fit = fit_propagation(&samples).unwrap();
        assert!((fit.r_load_ohms - truth.r_load_ohms).abs() / truth.r_load_ohms < 0.02);
        assert!((fit.s_slew - truth.s_slew).abs() < 0.02);
        assert!((fit.t_intrinsic.as_ps() - 120.0).abs() < 15.0);
    }

    #[test]
    fn full_degradation_fit() {
        let vdd = Voltage::from_volts(5.0);
        let truth = DegradationCoeffs {
            a_volt_seconds: 0.8e-9,
            b_volt_per_farad_seconds: 9.0e3,
            c_volts: 1.1,
        };
        let tau_samples: Vec<TauSample> = (0..5)
            .map(|i| {
                let load = Capacitance::from_femtofarads(20.0 * i as f64);
                TauSample {
                    load,
                    tau: truth.tau(vdd, load),
                }
            })
            .collect();
        let t0_samples: Vec<TZeroSample> = (1..5)
            .map(|i| {
                let slew = TimeDelta::from_ps(150.0 * i as f64);
                TZeroSample {
                    input_slew: slew,
                    t_zero: truth.t_zero(vdd, slew),
                }
            })
            .collect();
        let fit = fit_degradation(&tau_samples, &t0_samples, vdd).unwrap();
        assert!((fit.c_volts - truth.c_volts).abs() < 0.02);
        assert!((fit.a_volt_seconds - truth.a_volt_seconds).abs() / truth.a_volt_seconds < 0.02);
    }

    #[test]
    fn errors_on_insufficient_or_degenerate_data() {
        let vdd = Voltage::from_volts(5.0);
        assert!(matches!(
            fit_tau_coefficients(&[], vdd),
            Err(FitError::NotEnoughSamples { .. })
        ));
        let same_load: Vec<TauSample> = (0..3)
            .map(|_| TauSample {
                load: Capacitance::from_femtofarads(10.0),
                tau: TimeDelta::from_ps(100.0),
            })
            .collect();
        assert_eq!(
            fit_tau_coefficients(&same_load, vdd),
            Err(FitError::Degenerate)
        );
        assert!(fit_c_coefficient(&[], vdd).is_err());
        assert!(fit_propagation(&[]).is_err());
        let err = FitError::NotEnoughSamples {
            provided: 1,
            required: 3,
        };
        assert_eq!(
            err.to_string(),
            "not enough samples for fit: 1 provided, 3 required"
        );
    }
}
