//! The classical inertial-delay filtering rule.
//!
//! Conventional event-driven simulators (the VHDL/Verilog semantics the
//! paper argues against) filter pulses *at the driving gate output*: a pulse
//! whose width is smaller than the gate's inertial delay (usually the
//! propagation delay itself) is deleted for **all** fanout gates.  The paper's
//! Fig. 1 shows how this single, output-side decision produces wrong results
//! when fanout gates have different input thresholds.
//!
//! This module implements that classical rule so the baseline simulator
//! (`halotis-sim::classical`) can reproduce the erroneous behaviour for
//! comparison, and so ablation benches can quantify the difference.

use halotis_core::TimeDelta;

/// The decision taken by the classical inertial filter for a scheduled
/// output pulse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InertialDecision {
    /// The pulse is wide enough: both edges are kept.
    Propagate,
    /// The pulse is narrower than the inertial delay: both edges are
    /// cancelled at the gate output (for every fanout).
    Filter,
}

impl InertialDecision {
    /// `true` if the pulse survives.
    pub const fn propagates(self) -> bool {
        matches!(self, InertialDecision::Propagate)
    }
}

/// Applies the classical inertial-delay rule.
///
/// `pulse_width` is the separation between the two scheduled output edges
/// forming the pulse; `inertial_delay` is the filtering threshold (by
/// convention the gate propagation delay).
///
/// # Example
///
/// ```
/// use halotis_core::TimeDelta;
/// use halotis_delay::inertial::{decide, InertialDecision};
///
/// let delay = TimeDelta::from_ps(200.0);
/// assert_eq!(decide(TimeDelta::from_ps(500.0), delay), InertialDecision::Propagate);
/// assert_eq!(decide(TimeDelta::from_ps(100.0), delay), InertialDecision::Filter);
/// ```
pub fn decide(pulse_width: TimeDelta, inertial_delay: TimeDelta) -> InertialDecision {
    if pulse_width >= inertial_delay {
        InertialDecision::Propagate
    } else {
        InertialDecision::Filter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wide_pulses_propagate() {
        assert!(decide(TimeDelta::from_ps(300.0), TimeDelta::from_ps(100.0)).propagates());
    }

    #[test]
    fn narrow_pulses_are_filtered() {
        assert!(!decide(TimeDelta::from_ps(50.0), TimeDelta::from_ps(100.0)).propagates());
    }

    #[test]
    fn equal_width_propagates_by_convention() {
        assert_eq!(
            decide(TimeDelta::from_ps(100.0), TimeDelta::from_ps(100.0)),
            InertialDecision::Propagate
        );
    }

    #[test]
    fn zero_inertial_delay_never_filters() {
        assert!(decide(TimeDelta::ZERO, TimeDelta::ZERO).propagates());
        assert!(decide(TimeDelta::from_ps(1.0), TimeDelta::ZERO).propagates());
    }

    proptest! {
        #[test]
        fn prop_decision_is_abrupt_step(width in 0.0f64..1e4, delay in 0.0f64..1e4) {
            let d = decide(TimeDelta::from_ps(width), TimeDelta::from_ps(delay));
            // The classical rule is a hard step: exactly one of the two outcomes,
            // decided purely by the comparison.
            prop_assert_eq!(d.propagates(), TimeDelta::from_ps(width) >= TimeDelta::from_ps(delay));
        }
    }
}
