//! The degradation delay model (DDM) — paper eq. 1.
//!
//! When a gate output switches again a short time `T` after its previous
//! output transition, the new transition starts from an output node that has
//! not completed its full excursion, so the *effective* propagation delay is
//! smaller than the nominal `tp0`.  The paper models this collapse as an
//! exponential:
//!
//! ```text
//! tp = tp0 * (1 - exp(-(T - T0) / tau))          (eq. 1)
//! ```
//!
//! with `tau` and `T0` given by eq. 2 and eq. 3 (see
//! [`DegradationCoeffs`]).  For `T <= T0` the delay
//! is fully collapsed (clamped at zero); for `T >> tau` it converges to the
//! nominal delay, which is what makes the model *continuous* between the
//! "pulse filtered" and "pulse propagated normally" regimes.

use halotis_core::{Capacitance, TimeDelta, Voltage};

use crate::coeffs::DegradationCoeffs;

/// The result of evaluating eq. 1 for one output transition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradationEvaluation {
    /// The degraded propagation delay `tp`.
    pub delay: TimeDelta,
    /// The attenuation factor `tp / tp0` in `[0, 1]`.
    pub factor: f64,
    /// The time constant `tau` used (eq. 2).
    pub tau: TimeDelta,
    /// The dead-band `T0` used (eq. 3).
    pub t_zero: TimeDelta,
}

impl DegradationEvaluation {
    /// `true` when the transition is completely collapsed (`tp == 0`), i.e.
    /// the gate could not respond at all to this excitation.
    pub fn is_fully_collapsed(&self) -> bool {
        self.delay == TimeDelta::ZERO
    }

    /// `true` when no degradation was applied (`tp == tp0`).
    pub fn is_undegraded(&self) -> bool {
        (self.factor - 1.0).abs() < 1e-12
    }
}

/// Evaluates paper eq. 1.
///
/// * `nominal_delay` — `tp0`, from the conventional delay model.
/// * `coeffs` — the `A`, `B`, `C` degradation constants of this timing arc.
/// * `vdd` — supply voltage.
/// * `load` — output load capacitance `CL`.
/// * `input_slew` — the input transition time `tau_in` that triggered the
///   output transition (enters `T0`, eq. 3).
/// * `time_since_last_output` — `T`, the time elapsed since the previous
///   output transition of the same gate; `None` means the gate has been
///   quiet "forever" and no degradation applies.
///
/// # Example
///
/// ```
/// use halotis_core::{Capacitance, TimeDelta, Voltage};
/// use halotis_delay::{degradation, DegradationCoeffs};
///
/// let coeffs = DegradationCoeffs {
///     a_volt_seconds: 1.0e-9,
///     b_volt_per_farad_seconds: 0.0,
///     c_volts: 0.0,
/// };
/// let tp0 = TimeDelta::from_ps(200.0);
/// let vdd = Voltage::from_volts(5.0);
/// let load = Capacitance::from_femtofarads(10.0);
/// let slew = TimeDelta::from_ps(100.0);
///
/// // Quiet gate: no degradation.
/// let fresh = degradation::evaluate(tp0, &coeffs, vdd, load, slew, None);
/// assert_eq!(fresh.delay, tp0);
///
/// // Re-excited immediately: fully collapsed.
/// let collapsed = degradation::evaluate(tp0, &coeffs, vdd, load, slew, Some(TimeDelta::ZERO));
/// assert!(collapsed.is_fully_collapsed());
/// ```
pub fn evaluate(
    nominal_delay: TimeDelta,
    coeffs: &DegradationCoeffs,
    vdd: Voltage,
    load: Capacitance,
    input_slew: TimeDelta,
    time_since_last_output: Option<TimeDelta>,
) -> DegradationEvaluation {
    let tau = coeffs.tau(vdd, load);
    let t_zero = coeffs.t_zero(vdd, input_slew);

    let factor = match time_since_last_output {
        None => 1.0,
        Some(t) => degradation_factor(t, t_zero, tau),
    };

    DegradationEvaluation {
        delay: nominal_delay.scale(factor),
        factor,
        tau,
        t_zero,
    }
}

/// The bare attenuation factor `1 - exp(-(T - T0)/tau)`, clamped to `[0, 1]`.
///
/// A zero (or negative) `tau` means degradation is disabled and the factor is
/// `1` for any `T > T0` and `0` otherwise (the classical abrupt behaviour).
pub fn degradation_factor(elapsed: TimeDelta, t_zero: TimeDelta, tau: TimeDelta) -> f64 {
    let t_minus_t0 = elapsed - t_zero;
    if t_minus_t0 <= TimeDelta::ZERO {
        return 0.0;
    }
    if tau <= TimeDelta::ZERO {
        return 1.0;
    }
    let ratio = t_minus_t0.as_fs() as f64 / tau.as_fs() as f64;
    // Once exp(-ratio) drops below 2^-54 (half an ULP of 1.0, i.e. for any
    // ratio >= 38 since exp(-38) ≈ 3.1e-17), `1.0 - exp(-ratio)` rounds to
    // exactly 1.0 — skip the libm call for long-idle gates, bit-identically.
    if ratio >= 38.0 {
        return 1.0;
    }
    let factor = 1.0 - (-ratio).exp();
    factor.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn coeffs() -> DegradationCoeffs {
        DegradationCoeffs {
            a_volt_seconds: 1.0e-9, // tau = 200 ps at 5 V, no load term
            b_volt_per_farad_seconds: 0.0,
            c_volts: 1.25, // T0 = 0.25 * tau_in
        }
    }

    fn eval(elapsed_ps: Option<f64>) -> DegradationEvaluation {
        evaluate(
            TimeDelta::from_ps(200.0),
            &coeffs(),
            Voltage::from_volts(5.0),
            Capacitance::from_femtofarads(10.0),
            TimeDelta::from_ps(100.0),
            elapsed_ps.map(TimeDelta::from_ps),
        )
    }

    #[test]
    fn quiet_gate_has_no_degradation() {
        let e = eval(None);
        assert!(e.is_undegraded());
        assert_eq!(e.delay, TimeDelta::from_ps(200.0));
    }

    #[test]
    fn within_dead_band_fully_collapses() {
        // T0 = 25 ps here.
        let e = eval(Some(10.0));
        assert!(e.is_fully_collapsed());
        assert_eq!(e.factor, 0.0);
    }

    #[test]
    fn long_elapsed_time_converges_to_nominal() {
        let e = eval(Some(100_000.0));
        assert!((e.factor - 1.0).abs() < 1e-9);
        assert_eq!(e.delay, TimeDelta::from_ps(200.0));
    }

    #[test]
    fn one_tau_after_dead_band_gives_expected_factor() {
        // T = T0 + tau = 25 + 200 = 225 ps -> factor = 1 - e^-1
        let e = eval(Some(225.0));
        let expected = 1.0 - (-1.0f64).exp();
        assert!((e.factor - expected).abs() < 1e-6, "factor={}", e.factor);
        assert!(e.delay < TimeDelta::from_ps(200.0));
        assert!(e.delay > TimeDelta::ZERO);
    }

    #[test]
    fn reports_tau_and_t0_from_eq2_eq3() {
        let e = eval(Some(50.0));
        assert_eq!(e.tau, TimeDelta::from_ps(200.0));
        assert_eq!(e.t_zero, TimeDelta::from_ps(25.0));
    }

    #[test]
    fn zero_tau_reproduces_abrupt_classical_behaviour() {
        let f_before = degradation_factor(
            TimeDelta::from_ps(10.0),
            TimeDelta::from_ps(25.0),
            TimeDelta::ZERO,
        );
        let f_after = degradation_factor(
            TimeDelta::from_ps(30.0),
            TimeDelta::from_ps(25.0),
            TimeDelta::ZERO,
        );
        assert_eq!(f_before, 0.0);
        assert_eq!(f_after, 1.0);
    }

    #[test]
    fn load_increases_tau_and_slows_recovery() {
        let c = DegradationCoeffs {
            a_volt_seconds: 1.0e-9,
            b_volt_per_farad_seconds: 20.0e3,
            c_volts: 0.0,
        };
        let vdd = Voltage::from_volts(5.0);
        let slew = TimeDelta::from_ps(100.0);
        let t = Some(TimeDelta::from_ps(300.0));
        let light = evaluate(
            TimeDelta::from_ps(200.0),
            &c,
            vdd,
            Capacitance::ZERO,
            slew,
            t,
        );
        let heavy = evaluate(
            TimeDelta::from_ps(200.0),
            &c,
            vdd,
            Capacitance::from_femtofarads(200.0),
            slew,
            t,
        );
        assert!(heavy.tau > light.tau);
        assert!(heavy.factor < light.factor);
    }

    proptest! {
        #[test]
        fn prop_factor_is_bounded(elapsed in 0.0f64..1e6, t0 in 0.0f64..1e3, tau in 0.0f64..1e4) {
            let f = degradation_factor(
                TimeDelta::from_ps(elapsed),
                TimeDelta::from_ps(t0),
                TimeDelta::from_ps(tau),
            );
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn prop_factor_monotone_in_elapsed(a in 0.0f64..1e5, b in 0.0f64..1e5) {
            let t0 = TimeDelta::from_ps(50.0);
            let tau = TimeDelta::from_ps(300.0);
            let fa = degradation_factor(TimeDelta::from_ps(a), t0, tau);
            let fb = degradation_factor(TimeDelta::from_ps(b), t0, tau);
            if a <= b {
                prop_assert!(fa <= fb + 1e-12);
            }
        }

        #[test]
        fn prop_degraded_delay_never_exceeds_nominal(elapsed in 0.0f64..1e6) {
            let e = evaluate(
                TimeDelta::from_ps(200.0),
                &coeffs(),
                Voltage::from_volts(5.0),
                Capacitance::from_femtofarads(25.0),
                TimeDelta::from_ps(150.0),
                Some(TimeDelta::from_ps(elapsed)),
            );
            prop_assert!(e.delay <= TimeDelta::from_ps(200.0));
            prop_assert!(e.delay >= TimeDelta::ZERO);
        }
    }
}
