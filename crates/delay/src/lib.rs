//! Gate delay models for the HALOTIS timing simulator.
//!
//! This crate implements the analytical models of the paper
//! *"HALOTIS: High Accuracy LOgic TIming Simulator with inertial and
//! degradation delay model"* (DATE 2001):
//!
//! * the **conventional delay model** (CDM): a load- and slew-dependent
//!   linear propagation-delay and output-slew model ([`nominal`]),
//! * the **degradation delay model** (DDM): the exponential collapse of the
//!   propagation delay when a gate switches again shortly after its previous
//!   output transition — paper eq. 1–3 ([`degradation`]),
//! * the **classical inertial filtering rule** used by conventional
//!   simulators, needed as a baseline ([`inertial`]),
//! * a small **characterisation** module that fits degradation coefficients
//!   from measurement points, as a cell-library bring-up aid
//!   ([`characterize`]),
//! * the **pluggable model contract** ([`traits`]): the [`DelayModel`] trait
//!   with the built-ins as implementations ([`Degradation`],
//!   [`Conventional`]), the [`PerCellOverride`] composite and the
//!   [`DelayModelHandle`] the simulation configuration carries.
//!
//! The cell library (in `halotis-netlist`) stores one [`EdgeTiming`] per
//! (input pin, output edge) pair; the simulator evaluates it through
//! [`model::evaluate`].
//!
//! # Example
//!
//! ```
//! use halotis_core::{Capacitance, TimeDelta, Voltage};
//! use halotis_delay::{DelayContext, DelayModelKind, EdgeTiming, model};
//!
//! let timing = EdgeTiming::example();
//! let ctx = DelayContext {
//!     vdd: Voltage::from_volts(5.0),
//!     load: Capacitance::from_femtofarads(30.0),
//!     input_slew: TimeDelta::from_ps(200.0),
//!     time_since_last_output: None,
//!     cell_class: Default::default(),
//! };
//! let fresh = model::evaluate(&timing, DelayModelKind::Degradation, &ctx);
//! // A gate that has been quiet for a long time sees no degradation.
//! assert_eq!(fresh.delay, fresh.nominal_delay);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterize;
pub mod coeffs;
pub mod degradation;
pub mod inertial;
pub mod model;
pub mod nominal;
pub mod traits;

pub use coeffs::{DegradationCoeffs, EdgeTiming, PinTiming, PropagationCoeffs, SlewCoeffs};
pub use degradation::DegradationEvaluation;
pub use model::{BoundArc, CellClass, DelayContext, DelayModelKind, DelayOutcome};
pub use traits::{Conventional, Degradation, DelayModel, DelayModelHandle, PerCellOverride};
