//! Reproduction of the paper's **Table 2**: CPU time of the three
//! simulators on the two multiplication sequences.
//!
//! The paper reports (on its 2001 workstation, in seconds):
//!
//! | sequence | HSPICE | HALOTIS-DDM | HALOTIS-CDM |
//! |---|---|---|---|
//! | 0x0, 7x7, 5xA, Ex6, FxF | 112.9 | 0.39 | 0.55 |
//! | 0x0, FxF, 0x0, FxF, ... | 123.0 | 0.48 | 0.76 |
//!
//! The shape to reproduce: the electrical reference is orders of magnitude
//! slower than the event-driven runs, and HALOTIS-DDM is not slower than
//! HALOTIS-CDM.  Run with `cargo bench -p halotis-bench table2`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use halotis::analog::{AnalogConfig, AnalogSimulator};
use halotis::core::{Time, TimeDelta};
use halotis::experiments::{
    multiplier_fixture, multiplier_stimulus, sequence_label, SEQUENCE_FIG6, SEQUENCE_FIG7,
};
use halotis::sim::{classical, SimulationConfig, Simulator};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let fixture = multiplier_fixture();
    let simulator = Simulator::new(&fixture.netlist, &fixture.library);
    let mut group = c.benchmark_group("table2_cpu_time");
    group.sample_size(10);

    for pairs in [SEQUENCE_FIG6, SEQUENCE_FIG7] {
        let label = sequence_label(pairs);
        let stimulus = multiplier_stimulus(&fixture.ports, pairs);

        group.bench_with_input(
            BenchmarkId::new("halotis_ddm", &label),
            &stimulus,
            |b, stimulus| {
                b.iter(|| {
                    black_box(simulator.run(stimulus, &SimulationConfig::ddm()).unwrap());
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("halotis_cdm", &label),
            &stimulus,
            |b, stimulus| {
                b.iter(|| {
                    black_box(simulator.run(stimulus, &SimulationConfig::cdm()).unwrap());
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("classical", &label),
            &stimulus,
            |b, stimulus| {
                b.iter(|| {
                    black_box(
                        classical::run(
                            &fixture.netlist,
                            &fixture.library,
                            stimulus,
                            &SimulationConfig::cdm(),
                        )
                        .unwrap(),
                    );
                })
            },
        );
        // The analog reference is benched at a coarser (4 ps) step so the
        // harness completes in reasonable time; even so it remains orders of
        // magnitude slower per run than the event-driven engines.
        group.bench_with_input(
            BenchmarkId::new("analog_reference", &label),
            &stimulus,
            |b, stimulus| {
                let analog = AnalogSimulator::new(&fixture.netlist, &fixture.library);
                let config = AnalogConfig::default()
                    .with_time_step(TimeDelta::from_ps(4.0))
                    .with_end_time(Time::from_ns(25.0));
                b.iter(|| {
                    black_box(analog.run(stimulus, &config).unwrap());
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
