//! Ablation: per-input inertial handling (HALOTIS) versus output-side
//! classical inertial filtering, on the paper's Fig. 1 circuit.
//!
//! Correctness of the two approaches is compared by `reproduce -- fig1` and
//! the `figure1_behaviour` integration test; this bench measures their cost
//! on the same workload, showing that the richer per-input treatment does
//! not make the simulator slower than the classical baseline.  Run with
//! `cargo bench -p halotis-bench ablation_inertial`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use halotis::core::TimeDelta;
use halotis::netlist::{generators, technology};
use halotis::sim::{classical, SimulationConfig, Simulator};
use halotis_bench::pulse_stimulus;
use std::hint::black_box;

fn bench_inertial_handling(c: &mut Criterion) {
    let (netlist, _nets) = generators::figure1_default();
    let library = technology::cmos06();
    let simulator = Simulator::new(&netlist, &library);
    let mut group = c.benchmark_group("ablation_inertial");
    for width_ps in [200.0f64, 400.0, 1000.0] {
        let stimulus = pulse_stimulus(&library, TimeDelta::from_ps(width_ps));
        group.bench_with_input(
            BenchmarkId::new("halotis_per_input", format!("{width_ps}ps")),
            &stimulus,
            |b, stimulus| {
                b.iter(|| black_box(simulator.run(stimulus, &SimulationConfig::ddm()).unwrap()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("classical_per_output", format!("{width_ps}ps")),
            &stimulus,
            |b, stimulus| {
                b.iter(|| {
                    black_box(
                        classical::run(&netlist, &library, stimulus, &SimulationConfig::cdm())
                            .unwrap(),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_inertial_handling);
criterion_main!(benches);
