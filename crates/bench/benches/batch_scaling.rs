//! Thread scaling of the `BatchRunner` on a ≥64-scenario sweep.
//!
//! One compiled 4×4 multiplier, 64 random-operand scenarios, worker counts
//! from 1 (sequential baseline) up to 8.  On multi-core hardware the
//! wall-clock should drop roughly with the worker count until the core
//! count is reached; on a single-core container the curve is flat, which is
//! itself the interesting datum (the runner adds no measurable overhead).
//! Run with `cargo bench -p halotis_bench batch_scaling`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use halotis::experiments::multiplier_fixture_sized;
use halotis::sim::{BatchRunner, CompiledCircuit};
use halotis_bench::multiplier_batch_scenarios;
use std::hint::black_box;

fn bench_batch_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_scaling");
    group.sample_size(10);
    let fixture = multiplier_fixture_sized(4, 4);
    let circuit = CompiledCircuit::compile(&fixture.netlist, &fixture.library).unwrap();
    let scenarios = multiplier_batch_scenarios(&fixture, 64, 5, 0xBA7C);
    group.throughput(Throughput::Elements(scenarios.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        let runner = BatchRunner::with_threads(threads);
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &scenarios,
            |b, scenarios| {
                b.iter(|| {
                    let report = runner.run(&circuit, scenarios);
                    assert_eq!(report.failed(), 0);
                    black_box(report)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_scaling);
criterion_main!(benches);
