//! Compile-once/run-many against recompile-per-run.
//!
//! `Simulator::run` rebuilds every static table (pin map, thresholds,
//! timing arcs, loads, fanout adjacency) per invocation; the
//! `CompiledCircuit` + reused `SimState` path prepares them once.  This
//! bench measures both on the paper's 4×4 multiplier workload so the
//! compilation overhead the split removes is a single number.  Run with
//! `cargo bench -p halotis_bench compiled_vs_legacy`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use halotis::experiments::multiplier_fixture_sized;
use halotis::sim::{CompiledCircuit, SimulationConfig, Simulator};
use halotis_bench::random_multiplier_stimulus;
use std::hint::black_box;

fn bench_compiled_vs_legacy(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiled_vs_legacy");
    group.sample_size(20);
    for size in [4usize, 6] {
        let fixture = multiplier_fixture_sized(size, size);
        let stimulus = random_multiplier_stimulus(&fixture, 5, 0xC0DE);
        let config = SimulationConfig::ddm();

        let simulator = Simulator::new(&fixture.netlist, &fixture.library);
        group.bench_with_input(
            BenchmarkId::new("recompile_per_run", format!("{size}x{size}")),
            &stimulus,
            |b, stimulus| {
                b.iter(|| black_box(simulator.run(stimulus, &config).unwrap()));
            },
        );

        let circuit = CompiledCircuit::compile(&fixture.netlist, &fixture.library).unwrap();
        let mut state = circuit.new_state();
        group.bench_with_input(
            BenchmarkId::new("compile_once_run_many", format!("{size}x{size}")),
            &stimulus,
            |b, stimulus| {
                b.iter(|| black_box(circuit.run_with(&mut state, stimulus, &config).unwrap()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compiled_vs_legacy);
criterion_main!(benches);
