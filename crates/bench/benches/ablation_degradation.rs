//! Ablation: degradation on versus off (paper §2 / extension E8).
//!
//! A pulse of varying width travels through a 6-stage inverter chain under
//! the degradation model and under the conventional model.  The interesting
//! accuracy quantity (output pulse width) is reported by
//! `reproduce -- pulsewidth`; this bench measures the *cost* side: the DDM
//! run never processes more events than the CDM run, so enabling degradation
//! does not slow the simulator down — the paper's observation that
//! HALOTIS-DDM is the faster configuration.  Run with
//! `cargo bench -p halotis-bench ablation_degradation`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use halotis::core::TimeDelta;
use halotis::netlist::{generators, technology};
use halotis::sim::{SimulationConfig, Simulator};
use halotis_bench::pulse_stimulus;
use std::hint::black_box;

fn bench_pulse_widths(c: &mut Criterion) {
    let netlist = generators::inverter_chain(6);
    let library = technology::cmos06();
    let simulator = Simulator::new(&netlist, &library);
    let mut group = c.benchmark_group("ablation_degradation");
    for width_ps in [150.0f64, 400.0, 800.0, 1600.0] {
        let stimulus = pulse_stimulus(&library, TimeDelta::from_ps(width_ps));
        for (label, config) in [
            ("ddm", SimulationConfig::ddm()),
            ("cdm", SimulationConfig::cdm()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("{width_ps}ps")),
                &stimulus,
                |b, stimulus| {
                    b.iter(|| black_box(simulator.run(stimulus, &config).unwrap()));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pulse_widths);
criterion_main!(benches);
