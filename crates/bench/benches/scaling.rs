//! Extension study E7: how HALOTIS scales beyond the paper's 4×4
//! multiplier.
//!
//! The paper only evaluates one circuit size; this bench sweeps square array
//! multipliers from 2×2 to 8×8 (tens to ~1200 gates) under both delay
//! models, and additionally a large random-logic block, to show that the
//! per-input event handling keeps the cost proportional to the (smaller)
//! DDM event count.  Run with `cargo bench -p halotis-bench scaling`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use halotis::experiments::multiplier_fixture_sized;
use halotis::netlist::{generators, technology};
use halotis::sim::{SimulationConfig, Simulator};
use halotis_bench::{random_multiplier_stimulus, toggle_all_inputs};
use std::hint::black_box;

fn bench_multiplier_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_multiplier");
    group.sample_size(10);
    for size in [2usize, 4, 6, 8] {
        let fixture = multiplier_fixture_sized(size, size);
        let stimulus = random_multiplier_stimulus(&fixture, 5, 0xDA7E);
        let simulator = Simulator::new(&fixture.netlist, &fixture.library);
        group.throughput(Throughput::Elements(fixture.netlist.gate_count() as u64));
        for (label, config) in [
            ("ddm", SimulationConfig::ddm()),
            ("cdm", SimulationConfig::cdm()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("{size}x{size}")),
                &stimulus,
                |b, stimulus| {
                    b.iter(|| black_box(simulator.run(stimulus, &config).unwrap()));
                },
            );
        }
    }
    group.finish();
}

fn bench_random_logic(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_random_logic");
    group.sample_size(10);
    let library = technology::cmos06();
    for gates in [500usize, 2000, 8000] {
        let netlist = generators::random_logic(32, gates, 99);
        let stimulus = toggle_all_inputs(&netlist, halotis::core::Time::from_ns(1.0));
        let simulator = Simulator::new(&netlist, &library);
        group.throughput(Throughput::Elements(gates as u64));
        group.bench_with_input(BenchmarkId::new("ddm", gates), &stimulus, |b, stimulus| {
            b.iter(|| black_box(simulator.run(stimulus, &SimulationConfig::ddm()).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multiplier_scaling, bench_random_logic);
criterion_main!(benches);
