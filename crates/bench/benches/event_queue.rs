//! Micro-benchmark of the HALOTIS event queue (design-choice ablation from
//! `DESIGN.md`): the binary heap with lazy cancellation that implements the
//! Fig. 4 per-input insert/delete rule.
//!
//! Two workloads are measured: a pure insert/pop stream (no cancellations)
//! and a glitch-heavy stream where a large fraction of the scheduled events
//! annihilate, showing that the cancellation path does not slow the common
//! case down.  Run with `cargo bench -p halotis-bench event_queue`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use halotis::core::{GateId, LogicLevel, PinRef, Time, TimeDelta};
use halotis::sim::event::Event;
use halotis::sim::queue::EventQueue;
use std::hint::black_box;

fn event(time_fs: i64, pin: u32) -> Event {
    Event::new(
        Time::from_fs(time_fs),
        PinRef::new(GateId::new(pin), 0),
        LogicLevel::High,
        TimeDelta::from_ps(100.0),
    )
}

fn bench_insert_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &count in &[1_000usize, 10_000, 100_000] {
        group.throughput(Throughput::Elements(count as u64));
        group.bench_with_input(
            BenchmarkId::new("ordered_insert_pop", count),
            &count,
            |b, &count| {
                b.iter(|| {
                    let pins = 64;
                    let mut queue = EventQueue::new(pins);
                    for i in 0..count {
                        // Per-pin strictly increasing times: no cancellations.
                        let pin = (i * 7919) % pins;
                        let time = (i as i64) * 97 + (pin as i64) * 13;
                        queue.schedule(pin, event(time, pin as u32));
                    }
                    while let Some(e) = queue.pop() {
                        black_box(e);
                    }
                    black_box(queue.scheduled());
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("glitchy_insert_cancel", count),
            &count,
            |b, &count| {
                b.iter(|| {
                    let pins = 64;
                    let mut queue = EventQueue::new(pins);
                    for i in 0..count {
                        let pin = (i * 7919) % pins;
                        // Alternate far-future and immediate events on the
                        // same pin so a large fraction of schedules cancel.
                        let time = if i % 2 == 0 {
                            1_000_000 + i as i64
                        } else {
                            500_000 + i as i64 / 2
                        };
                        queue.schedule(pin, event(time, pin as u32));
                    }
                    while let Some(e) = queue.pop() {
                        black_box(e);
                    }
                    black_box(queue.filtered());
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_insert_pop);
criterion_main!(benches);
