//! Micro-benchmark of the HALOTIS event queue (design-choice ablation from
//! `DESIGN.md`): the bucketed time-wheel with serial-bitset lazy
//! cancellation that implements the Fig. 4 per-input insert/delete rule,
//! measured against the retired `BinaryHeap` + `HashSet` implementation
//! (`queue::reference`) on the same streams.
//!
//! Event times use gate-delay spacing (hundreds of picoseconds between
//! events, matching what the simulation engine actually schedules) rather
//! than a femtosecond-dense ramp: a calendar queue's cost profile is set by
//! how many events share a bucket, so a degenerately dense stream would
//! benchmark a distribution the production hot loop never produces.
//!
//! Three workloads are measured: a pure insert/pop stream (no
//! cancellations), a glitch-heavy stream where a large fraction of the
//! scheduled events annihilate, and the same ordered stream through the
//! reference heap — the ablation that justifies the wheel.  Run with
//! `cargo bench -p halotis_bench --bench event_queue`.
//!
//! Note on the larger counts: these streams bulk-insert everything before
//! the first pop, so at 10k/100k events nearly the whole schedule lands
//! beyond the wheel's ~134 ns window and the numbers measure the spill
//! min-heap, not the calendar fast path — expect rough parity with the
//! reference heap there.  The wheel's advantage shows at the 1000-event
//! size and in the interleaved push/pop microbench of
//! `examples/profile_hotloop.rs`, which match how the engine actually
//! drives the queue (one delay generation of look-ahead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use halotis::core::{GateId, LogicLevel, PinRef, Time, TimeDelta};
use halotis::sim::event::Event;
use halotis::sim::queue::reference::ReferenceEventQueue;
use halotis::sim::queue::EventQueue;
use std::hint::black_box;

/// Gate-delay-scale spacing: successive events ~80 ps apart with a per-pin
/// phase shift, so a few events share each 262 ps wheel bucket — the
/// clustering the corpus hot loop produces.
fn gate_delay_time(i: usize, pin: usize) -> i64 {
    (i as i64) * 80_000 + (pin as i64) * 13_300
}

fn event(time_fs: i64, pin: u32) -> Event {
    Event::new(
        Time::from_fs(time_fs),
        PinRef::new(GateId::new(pin), 0),
        LogicLevel::High,
        TimeDelta::from_ps(100.0),
    )
}

fn bench_insert_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &count in &[1_000usize, 10_000, 100_000] {
        group.throughput(Throughput::Elements(count as u64));
        group.bench_with_input(
            BenchmarkId::new("ordered_insert_pop", count),
            &count,
            |b, &count| {
                b.iter(|| {
                    let pins = 64;
                    let mut queue = EventQueue::new(pins);
                    for i in 0..count {
                        // Per-pin strictly increasing times: no cancellations.
                        let pin = (i * 7919) % pins;
                        queue.schedule(pin, event(gate_delay_time(i, pin), pin as u32));
                    }
                    while let Some(e) = queue.pop() {
                        black_box(e);
                    }
                    black_box(queue.scheduled());
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("glitchy_insert_cancel", count),
            &count,
            |b, &count| {
                b.iter(|| {
                    let pins = 64;
                    let mut queue = EventQueue::new(pins);
                    for i in 0..count {
                        let pin = (i * 7919) % pins;
                        // Alternate far-future and near events on the same
                        // pin so a large fraction of schedules cancel.
                        let time = if i % 2 == 0 {
                            80_000_000 + gate_delay_time(i, pin)
                        } else {
                            40_000_000 + gate_delay_time(i / 2, pin)
                        };
                        queue.schedule(pin, event(time, pin as u32));
                    }
                    while let Some(e) = queue.pop() {
                        black_box(e);
                    }
                    black_box(queue.filtered());
                })
            },
        );
        // The ablation: the retired heap queue on the identical ordered
        // stream.  The wheel-vs-heap ratio here is the justification for
        // the calendar-queue design (see README "hot loop").
        group.bench_with_input(
            BenchmarkId::new("reference_heap_insert_pop", count),
            &count,
            |b, &count| {
                b.iter(|| {
                    let pins = 64;
                    let mut queue = ReferenceEventQueue::new(pins);
                    for i in 0..count {
                        let pin = (i * 7919) % pins;
                        queue.schedule(pin, event(gate_delay_time(i, pin), pin as u32));
                    }
                    while let Some(e) = queue.pop() {
                        black_box(e);
                    }
                    black_box(queue.scheduled());
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_insert_pop);
criterion_main!(benches);
