//! The ECO loop: full recompilation against incremental `apply_edits`.
//!
//! An engineering-change workflow edits one gate and re-runs; before the
//! incremental path, every edit paid a from-scratch `CompiledCircuit`
//! rebuild (CSR fanout tables, thresholds, bound arcs, loads).  This bench
//! pins the contrast on single-gate kind swaps of the three largest corpus
//! circuits: `full_compile` is the old cost, `apply_edits` the new one.
//! The CI gate (`BENCH_eco.json`) requires the incremental path to stay an
//! order of magnitude faster.  Run with `cargo bench -p halotis_bench eco`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use halotis::netlist::{generators, iscas, technology, CellKind, Netlist};
use halotis::sim::CompiledCircuit;
use std::hint::black_box;

/// A single-gate ECO fixture: one 2-input gate of the circuit plus the two
/// kinds it alternates between.  Alternating keeps every iteration a real
/// mutation (same-kind swaps are no-ops) while the circuit stays valid.
fn swap_target(netlist: &Netlist) -> (halotis::core::GateId, [CellKind; 2]) {
    let gate = netlist
        .gates()
        .iter()
        .find(|gate| gate.inputs().len() == 2)
        .expect("circuit has a 2-input gate");
    let kinds = if gate.kind() == CellKind::Nand2 {
        [CellKind::Nor2, CellKind::Nand2]
    } else {
        [CellKind::Nand2, gate.kind()]
    };
    (gate.id(), kinds)
}

fn bench_eco(c: &mut Criterion) {
    let library = technology::cmos06();
    let circuits: [(&str, Netlist); 3] = [
        ("c432", iscas::c432()),
        ("c880", iscas::c880()),
        ("wallace6x6", generators::wallace_tree_multiplier(6, 6)),
    ];

    let mut group = c.benchmark_group("eco");
    group.sample_size(30);
    for (name, netlist) in &circuits {
        // The old ECO cost: recompile the whole circuit after the edit.
        group.bench_with_input(
            BenchmarkId::new("full_compile", *name),
            netlist,
            |b, netlist| {
                b.iter(|| black_box(CompiledCircuit::compile(netlist, &library).unwrap()));
            },
        );

        // The new cost: mutate one gate and patch the dirty cone in place.
        let mut circuit = CompiledCircuit::compile(netlist, &library).unwrap();
        let (gate, kinds) = swap_target(netlist);
        let mut flip = 0usize;
        group.bench_with_input(
            BenchmarkId::new("apply_edits", *name),
            netlist,
            |b, _netlist| {
                b.iter(|| {
                    let kind = kinds[flip & 1];
                    flip += 1;
                    black_box(
                        circuit
                            .edit(|session| session.swap_cell_kind(gate, kind))
                            .unwrap(),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_eco);
criterion_main!(benches);
