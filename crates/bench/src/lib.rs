//! Shared fixtures and workload generators for the HALOTIS benchmark
//! harness.
//!
//! Each Criterion bench regenerates one table or figure of the paper (or an
//! ablation listed in `DESIGN.md`); this library holds the pieces the
//! benches share so every target measures exactly the same workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use halotis::core::{LogicLevel, Time, TimeDelta};
use halotis::experiments::{multiplier_stimulus, MultiplierFixture};
use halotis::netlist::{technology, Library, Netlist};
use halotis::sim::{Scenario, SimulationConfig};
use halotis::waveform::Stimulus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `count` random operand pairs for an `bits`-wide multiplier,
/// reproducibly from `seed`.
pub fn random_pairs(seed: u64, count: usize, bits: usize) -> Vec<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mask = (1u64 << bits) - 1;
    (0..count)
        .map(|_| (rng.gen::<u64>() & mask, rng.gen::<u64>() & mask))
        .collect()
}

/// The stimulus used by the scaling benches: `vectors` random operand pairs
/// applied to `fixture` every 5 ns.
pub fn random_multiplier_stimulus(
    fixture: &MultiplierFixture,
    vectors: usize,
    seed: u64,
) -> Stimulus {
    let bits = fixture.ports.a.len().min(fixture.ports.b.len());
    multiplier_stimulus(&fixture.ports, &random_pairs(seed, vectors, bits))
}

/// Builds a batch of `count` scenarios for `fixture`, each applying a
/// distinct reproducible random operand sequence — the workload of the
/// batch-scaling bench and the compiled-vs-legacy comparison.
pub fn multiplier_batch_scenarios(
    fixture: &MultiplierFixture,
    count: usize,
    vectors: usize,
    seed: u64,
) -> Vec<Scenario> {
    (0..count)
        .map(|index| {
            Scenario::new(
                format!("scenario{index}"),
                random_multiplier_stimulus(
                    fixture,
                    vectors,
                    seed ^ (index as u64).wrapping_mul(0x9E37_79B9),
                ),
                SimulationConfig::ddm(),
            )
        })
        .collect()
}

/// A single positive pulse of `width` applied to the `in` input at 2 ns —
/// the workload of the degradation and inertial ablations.
pub fn pulse_stimulus(library: &Library, width: TimeDelta) -> Stimulus {
    let mut stimulus = Stimulus::new(library.default_input_slew());
    stimulus.set_initial("in", LogicLevel::Low);
    stimulus.drive("in", Time::from_ns(2.0), LogicLevel::High);
    stimulus.drive("in", Time::from_ns(2.0) + width, LogicLevel::Low);
    stimulus
}

/// A stimulus toggling every primary input of an arbitrary netlist once —
/// used by the event-queue stress bench on random logic.
pub fn toggle_all_inputs(netlist: &Netlist, at: Time) -> Stimulus {
    let library = technology::cmos06();
    let mut stimulus = Stimulus::new(library.default_input_slew());
    for (index, &input) in netlist.primary_inputs().iter().enumerate() {
        let name = netlist.net(input).name();
        stimulus.set_initial(name, LogicLevel::Low);
        stimulus.drive(
            name,
            at + TimeDelta::from_ps(37.0 * index as f64),
            LogicLevel::High,
        );
    }
    stimulus
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis::experiments::multiplier_fixture;
    use halotis::netlist::generators;

    #[test]
    fn random_pairs_are_reproducible_and_in_range() {
        let a = random_pairs(7, 10, 4);
        let b = random_pairs(7, 10, 4);
        assert_eq!(a, b);
        assert!(a.iter().all(|&(x, y)| x < 16 && y < 16));
    }

    #[test]
    fn stimuli_cover_all_inputs() {
        let fixture = multiplier_fixture();
        let stimulus = random_multiplier_stimulus(&fixture, 5, 1);
        assert_eq!(stimulus.input_names().count(), 8);
        let random = generators::random_logic(6, 50, 3);
        let toggles = toggle_all_inputs(&random, Time::from_ns(1.0));
        assert_eq!(toggles.input_names().count(), 6);
    }

    #[test]
    fn pulse_stimulus_has_two_edges() {
        let library = technology::cmos06();
        let stimulus = pulse_stimulus(&library, TimeDelta::from_ps(300.0));
        assert_eq!(stimulus.waveform("in").unwrap().len(), 2);
    }
}
