//! Deterministic stimulus suites for corpus circuits.
//!
//! A [`StimulusSuite`] turns a netlist into a reproducible set of named
//! [`Stimulus`] objects.  All three suites are pure functions of the
//! netlist and the suite parameters (the random suite goes through a seeded
//! [`StdRng`]), so the same corpus definition always produces bit-identical
//! input waveforms — the foundation of the golden-stats CI gate.

use halotis_core::{LogicLevel, Time, TimeDelta};
use halotis_netlist::{Library, Netlist};
use halotis_waveform::Stimulus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Most input patterns a suite may sweep exhaustively (2^12 vectors).
pub const MAX_EXHAUSTIVE_INPUTS: usize = 12;

/// A reproducible recipe producing one or more stimuli for a circuit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StimulusSuite {
    /// One stimulus applying `vectors` seeded random input patterns to all
    /// primary inputs, one pattern every `period` starting at 1 ns.
    RandomVectors {
        /// Number of random patterns in the sequence.
        vectors: usize,
        /// Spacing between consecutive patterns.
        period: TimeDelta,
        /// PRNG seed; the same seed always yields the same sequence.
        seed: u64,
    },
    /// One stimulus walking through **all** `2^n` input patterns in binary
    /// counting order, one pattern every `period` starting at 1 ns.  Only
    /// valid for circuits with at most [`MAX_EXHAUSTIVE_INPUTS`] inputs.
    Exhaustive {
        /// Spacing between consecutive patterns.
        period: TimeDelta,
    },
    /// One stimulus **per probed input**: the circuit is held at a seeded
    /// random base pattern and the probed input alone emits a single pulse
    /// of width `pulse` at 2 ns — the minimal glitch-injection experiment,
    /// isolating each input's reconvergent paths.
    ToggleProbes {
        /// Seed of the base pattern.
        seed: u64,
        /// Probe at most this many inputs (the first `max_probes` in
        /// primary-input order).
        max_probes: usize,
        /// Width of the injected pulse.
        pulse: TimeDelta,
    },
    /// One stimulus driving a sequential circuit for `cycles` clock
    /// periods: the **first** primary input (the ISCAS-89 clock
    /// convention) gets a periodic waveform — rising at the start of every
    /// cycle, falling `high` later — and the remaining data inputs receive
    /// a fresh seeded random pattern `skew` after each falling edge, so
    /// data settles during the low phase and is captured at the next rising
    /// edge.  All durations are integer femtoseconds.
    Clocked {
        /// Number of whole clock periods to run.
        cycles: usize,
        /// Clock period.
        period: TimeDelta,
        /// Clock high time (the duty cycle, as an absolute duration).
        high: TimeDelta,
        /// Offset from the falling edge to the data-input change.
        skew: TimeDelta,
        /// PRNG seed for the per-cycle data patterns.
        seed: u64,
    },
}

impl StimulusSuite {
    /// Compact suite label used in scenario names (`rand16`, `exh`,
    /// `toggle8`).
    pub fn label(&self) -> String {
        match self {
            StimulusSuite::RandomVectors { vectors, .. } => format!("rand{vectors}"),
            StimulusSuite::Exhaustive { .. } => "exh".to_string(),
            StimulusSuite::ToggleProbes { max_probes, .. } => format!("toggle{max_probes}"),
            StimulusSuite::Clocked { cycles, .. } => format!("clk{cycles}"),
        }
    }

    /// The number of clock cycles a [`Clocked`](StimulusSuite::Clocked)
    /// suite runs, `None` for the combinational suites — the denominator of
    /// the events-per-cycle soak telemetry.
    pub fn cycles(&self) -> Option<usize> {
        match *self {
            StimulusSuite::Clocked { cycles, .. } => Some(cycles),
            _ => None,
        }
    }

    /// Generates the suite's named stimuli for `netlist`, using the
    /// library's default input slew.
    ///
    /// # Panics
    ///
    /// Panics when an [`Exhaustive`](StimulusSuite::Exhaustive) suite is
    /// applied to a circuit with more than [`MAX_EXHAUSTIVE_INPUTS`] primary
    /// inputs, or any suite to a circuit with no primary inputs or more
    /// than 64.
    pub fn stimuli(&self, netlist: &Netlist, library: &Library) -> Vec<(String, Stimulus)> {
        let inputs: Vec<&str> = netlist
            .primary_inputs()
            .iter()
            .map(|&net| netlist.net(net).name())
            .collect();
        assert!(
            !inputs.is_empty(),
            "corpus suites need at least one primary input, {} has none",
            netlist.name()
        );
        assert!(
            inputs.len() <= 64,
            "corpus suites drive at most 64 inputs, {} has {}",
            netlist.name(),
            inputs.len()
        );
        let slew = library.default_input_slew();
        match *self {
            StimulusSuite::RandomVectors {
                vectors,
                period,
                seed,
            } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mask = u64::MAX >> (64 - inputs.len());
                let patterns: Vec<u64> = (0..vectors).map(|_| rng.gen::<u64>() & mask).collect();
                vec![(
                    self.label(),
                    pattern_sequence(&inputs, &patterns, period, slew),
                )]
            }
            StimulusSuite::Exhaustive { period } => {
                assert!(
                    inputs.len() <= MAX_EXHAUSTIVE_INPUTS,
                    "exhaustive sweep limited to {MAX_EXHAUSTIVE_INPUTS} inputs, {} has {}",
                    netlist.name(),
                    inputs.len()
                );
                let patterns: Vec<u64> = (0..1u64 << inputs.len()).collect();
                vec![(
                    self.label(),
                    pattern_sequence(&inputs, &patterns, period, slew),
                )]
            }
            StimulusSuite::ToggleProbes {
                seed,
                max_probes,
                pulse,
            } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mask = u64::MAX >> (64 - inputs.len());
                let base = rng.gen::<u64>() & mask;
                (0..inputs.len().min(max_probes))
                    .map(|probe| {
                        let mut stimulus = Stimulus::new(slew);
                        for (bit, name) in inputs.iter().enumerate() {
                            stimulus
                                .set_initial(*name, LogicLevel::from_bool((base >> bit) & 1 == 1));
                        }
                        let resting = LogicLevel::from_bool((base >> probe) & 1 == 1);
                        let flipped = if resting == LogicLevel::High {
                            LogicLevel::Low
                        } else {
                            LogicLevel::High
                        };
                        stimulus.drive(inputs[probe], Time::from_ns(2.0), flipped);
                        stimulus.drive(inputs[probe], Time::from_ns(2.0) + pulse, resting);
                        (format!("probe{probe}"), stimulus)
                    })
                    .collect()
            }
            StimulusSuite::Clocked {
                cycles,
                period,
                high,
                skew,
                seed,
            } => {
                assert!(
                    TimeDelta::ZERO < high && high + skew < period,
                    "clock shape must satisfy 0 < high and high + skew < period"
                );
                let clock = inputs[0];
                let data = &inputs[1..];
                let mut rng = StdRng::seed_from_u64(seed);
                let mut stimulus = Stimulus::new(slew);
                for name in &inputs {
                    stimulus.set_initial(*name, LogicLevel::Low);
                }
                let mask = if data.is_empty() {
                    0
                } else {
                    u64::MAX >> (64 - data.len())
                };
                let start = Time::from_ns(1.0);
                for cycle in 0..cycles {
                    let rise = start + period * cycle as i64;
                    let fall = rise + high;
                    stimulus.drive(clock, rise, LogicLevel::High);
                    stimulus.drive(clock, fall, LogicLevel::Low);
                    if !data.is_empty() {
                        let pattern = rng.gen::<u64>() & mask;
                        stimulus.drive_bus_value(data, pattern, fall + skew);
                    }
                }
                vec![(self.label(), stimulus)]
            }
        }
    }
}

/// One stimulus applying `patterns` across `inputs` (LSB = `inputs[0]`),
/// one pattern every `period` starting at 1 ns, all inputs initially low.
fn pattern_sequence(
    inputs: &[&str],
    patterns: &[u64],
    period: TimeDelta,
    slew: TimeDelta,
) -> Stimulus {
    let mut stimulus = Stimulus::new(slew);
    for name in inputs {
        stimulus.set_initial(*name, LogicLevel::Low);
    }
    let start = Time::from_ns(1.0);
    for (index, &pattern) in patterns.iter().enumerate() {
        stimulus.drive_bus_value(inputs, pattern, start + period * index as i64);
    }
    stimulus
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_netlist::{generators, technology};

    #[test]
    fn random_vectors_are_reproducible() {
        let netlist = generators::ripple_carry_adder(4);
        let library = technology::cmos06();
        let suite = StimulusSuite::RandomVectors {
            vectors: 8,
            period: TimeDelta::from_ns(5.0),
            seed: 0xFEED,
        };
        assert_eq!(
            suite.stimuli(&netlist, &library),
            suite.stimuli(&netlist, &library)
        );
        let other = StimulusSuite::RandomVectors {
            vectors: 8,
            period: TimeDelta::from_ns(5.0),
            seed: 0xFEEE,
        };
        assert_ne!(
            suite.stimuli(&netlist, &library),
            other.stimuli(&netlist, &library)
        );
        assert_eq!(suite.label(), "rand8");
    }

    #[test]
    fn exhaustive_covers_every_pattern_once() {
        let netlist = generators::c17();
        let library = technology::cmos06();
        let suite = StimulusSuite::Exhaustive {
            period: TimeDelta::from_ns(4.0),
        };
        let stimuli = suite.stimuli(&netlist, &library);
        assert_eq!(stimuli.len(), 1);
        let (label, stimulus) = &stimuli[0];
        assert_eq!(label, "exh");
        assert_eq!(stimulus.input_names().count(), 5);
        // The LSB input toggles on every pattern step: 16 rising + 15
        // falling edges over the 32-pattern count.
        assert_eq!(stimulus.waveform("i1").unwrap().len(), 31);
    }

    #[test]
    #[should_panic(expected = "exhaustive sweep limited")]
    fn exhaustive_refuses_wide_circuits() {
        let netlist = generators::random_logic(16, 20, 1);
        let library = technology::cmos06();
        StimulusSuite::Exhaustive {
            period: TimeDelta::from_ns(4.0),
        }
        .stimuli(&netlist, &library);
    }

    #[test]
    fn toggle_probes_pulse_exactly_one_input() {
        let netlist = generators::parity_tree(8);
        let library = technology::cmos06();
        let suite = StimulusSuite::ToggleProbes {
            seed: 0xF00D,
            max_probes: 8,
            pulse: TimeDelta::from_ps(600.0),
        };
        let stimuli = suite.stimuli(&netlist, &library);
        assert_eq!(stimuli.len(), 8);
        for (probe, (label, stimulus)) in stimuli.iter().enumerate() {
            assert_eq!(label, &format!("probe{probe}"));
            let mut driven = 0;
            for (bit, name) in (0..8).map(|i| (i, format!("in{i}"))) {
                let edges = stimulus.waveform(&name).unwrap().len();
                if bit == probe {
                    assert_eq!(edges, 2, "probed input pulses once");
                    driven += 1;
                } else {
                    assert_eq!(edges, 0, "unprobed inputs hold still");
                }
            }
            assert_eq!(driven, 1);
        }
    }

    #[test]
    fn clocked_suite_shapes_the_clock_and_randomizes_data() {
        let netlist = generators::c17();
        let library = technology::cmos06();
        let suite = StimulusSuite::Clocked {
            cycles: 16,
            period: TimeDelta::from_ns(2.0),
            high: TimeDelta::from_ns(1.0),
            skew: TimeDelta::from_ps(250.0),
            seed: 0xC10C,
        };
        assert_eq!(suite.label(), "clk16");
        assert_eq!(suite.cycles(), Some(16));
        assert_eq!(
            StimulusSuite::Exhaustive {
                period: TimeDelta::from_ns(4.0)
            }
            .cycles(),
            None
        );
        let stimuli = suite.stimuli(&netlist, &library);
        assert_eq!(stimuli.len(), 1);
        let (label, stimulus) = &stimuli[0];
        assert_eq!(label, "clk16");
        // The first input is the clock: one rising + one falling edge per
        // cycle, every edge at an exact period/high offset.
        let clock = stimulus.waveform("i1").unwrap();
        assert_eq!(clock.len(), 32);
        // Data inputs change strictly inside the low phase.
        let rise_fs = Time::from_ns(1.0).as_fs();
        let period_fs = TimeDelta::from_ns(2.0).as_fs();
        let high_fs = TimeDelta::from_ns(1.0).as_fs();
        for name in ["i2", "i3", "i6", "i7"] {
            for edge in stimulus.waveform(name).unwrap().transitions() {
                let offset = (edge.start().as_fs() - rise_fs) % period_fs;
                assert!(offset > high_fs && offset < period_fs, "{name} {offset}");
            }
        }
        // Reproducible: the same definition yields the same waveforms.
        assert_eq!(stimuli, suite.stimuli(&netlist, &library));
    }

    #[test]
    #[should_panic(expected = "clock shape")]
    fn clocked_suite_rejects_degenerate_shapes() {
        let netlist = generators::c17();
        let library = technology::cmos06();
        StimulusSuite::Clocked {
            cycles: 4,
            period: TimeDelta::from_ns(1.0),
            high: TimeDelta::from_ns(1.0),
            skew: TimeDelta::ZERO,
            seed: 1,
        }
        .stimuli(&netlist, &library);
    }

    #[test]
    fn probe_count_clamps_to_input_count() {
        let netlist = generators::c17();
        let library = technology::cmos06();
        let suite = StimulusSuite::ToggleProbes {
            seed: 1,
            max_probes: 64,
            pulse: TimeDelta::from_ps(500.0),
        };
        assert_eq!(suite.stimuli(&netlist, &library).len(), 5);
    }
}
