//! Corpus-specific [`SimObserver`]s: glitch profiling and wall-clock
//! probing, both allocation-light and batch-friendly.

use std::time::{Duration, Instant};

use halotis_core::{LogicLevel, NetId, Time};
use halotis_sim::{CompiledCircuit, SimObserver, SimulationStats};
use halotis_waveform::Transition;

/// Counts glitch pulses per net on the half-swing ideal projection.
///
/// Every transition is folded into the same incremental `(time, level)`
/// change-point projection the VCD streamer uses (an overtaken change is
/// revoked, a level-preserving crossing is dropped, sub-half-swing runt
/// ramps never register).  A net that settles back to its initial level
/// needed zero changes, one that settles to the opposite level needed one —
/// everything beyond that is glitching, and each glitch pulse contributes
/// exactly two settled change points.  Hence per net:
///
/// ```text
/// glitch_pulses = settled_changes / 2   (integer division)
/// ```
///
/// This is the corpus's "glitch count": the number of logically unnecessary
/// full-swing pulses the run produced, the quantity the degradation model
/// suppresses and a conventional model overestimates.
#[derive(Clone, Debug, Default)]
pub struct GlitchProfile {
    initials: Vec<LogicLevel>,
    /// One shared arena for every net's change-point stack: `(settled time,
    /// level, previous node in the same stack or [`NIL`])`.  A per-net
    /// `Vec<Vec<_>>` layout costs one allocation per active net per run —
    /// measurably the most expensive observer in the corpus bundle — while
    /// the arena costs one.  Revoked nodes are simply unlinked; the arena
    /// only grows to the transition count of the run.
    nodes: Vec<(Time, LogicLevel, u32)>,
    /// Per-net top-of-stack arena index, [`NIL`] when the stack is empty.
    tops: Vec<u32>,
    /// Per-net live stack depth (the settled change count).
    depths: Vec<u32>,
}

/// Null link of the per-net change stacks.
const NIL: u32 = u32::MAX;

impl GlitchProfile {
    /// An empty profile; sized on [`begin`](SimObserver::begin).
    pub fn new() -> Self {
        Self::default()
    }

    /// Settled half-swing change points recorded on `net`.
    pub fn settled_changes(&self, net: NetId) -> usize {
        self.depths
            .get(net.index())
            .map_or(0, |&depth| depth as usize)
    }

    /// Glitch pulses attributed to `net`.
    pub fn glitches(&self, net: NetId) -> usize {
        self.settled_changes(net) / 2
    }

    /// Total glitch pulses across all nets.
    pub fn total_glitches(&self) -> usize {
        self.depths.iter().map(|&depth| depth as usize / 2).sum()
    }
}

impl SimObserver for GlitchProfile {
    fn begin(&mut self, _circuit: &CompiledCircuit<'_>, initial_levels: &[LogicLevel]) {
        self.initials.clear();
        self.initials.extend_from_slice(initial_levels);
        self.nodes.clear();
        self.tops.clear();
        self.tops.resize(initial_levels.len(), NIL);
        self.depths.clear();
        self.depths.resize(initial_levels.len(), 0);
    }

    fn on_transition(&mut self, net: NetId, transition: &Transition) {
        // The half-supply fraction is exactly 0.5 for either edge direction
        // ((v/2)/v rounds to exactly 0.5 in IEEE 754 for any normal v), so
        // this is `crossing_time(vdd.half(), vdd)` without the per-event
        // division: bit-identical and measurably cheaper on the hot path.
        let cross = transition.start() + transition.slew().scale(0.5);
        let net_index = net.index();
        let target = transition.edge().target_level();
        // Revoke overtaken change points (the new crossing settles first).
        let mut top = self.tops[net_index];
        while top != NIL {
            let (last_time, _, previous) = self.nodes[top as usize];
            if cross > last_time {
                break;
            }
            top = previous;
            self.depths[net_index] -= 1;
        }
        let current = if top == NIL {
            self.initials[net_index]
        } else {
            self.nodes[top as usize].1
        };
        if current != target {
            self.nodes.push((cross, target, top));
            top = (self.nodes.len() - 1) as u32;
            self.depths[net_index] += 1;
        }
        self.tops[net_index] = top;
    }
}

/// Times one observed run from [`begin`](SimObserver::begin) to
/// [`finish`](SimObserver::finish).
///
/// A run that aborts with an error never reaches `finish`, so
/// [`elapsed`](WallClockProbe::elapsed) stays `None` for it.
#[derive(Clone, Debug, Default)]
pub struct WallClockProbe {
    started: Option<Instant>,
    elapsed: Option<Duration>,
}

impl WallClockProbe {
    /// An idle probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wall-clock duration of the last completed run.
    pub fn elapsed(&self) -> Option<Duration> {
        self.elapsed
    }
}

impl SimObserver for WallClockProbe {
    fn begin(&mut self, _circuit: &CompiledCircuit<'_>, _initial_levels: &[LogicLevel]) {
        self.started = Some(Instant::now());
        self.elapsed = None;
    }

    fn finish(&mut self, _stats: &SimulationStats) {
        self.elapsed = self.started.map(|started| started.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_core::Time;
    use halotis_netlist::{generators, technology};
    use halotis_sim::SimulationConfig;
    use halotis_waveform::Stimulus;

    #[test]
    fn glitch_profile_matches_ideal_waveform_excess() {
        // A staggered double edge into an XOR tree produces output glitching;
        // the profile must equal the recorded ideal waveforms' excess-change
        // count exactly.
        let netlist = generators::parity_tree(4);
        let library = technology::cmos06();
        let circuit = halotis_sim::CompiledCircuit::compile(&netlist, &library).unwrap();
        let mut stimulus = Stimulus::new(library.default_input_slew());
        for i in 0..4 {
            stimulus.set_initial(format!("in{i}"), LogicLevel::Low);
        }
        stimulus.drive("in0", Time::from_ns(1.0), LogicLevel::High);
        stimulus.drive("in3", Time::from_ns(1.3), LogicLevel::High);

        let result = circuit.run(&stimulus, &SimulationConfig::ddm()).unwrap();
        let mut profile = GlitchProfile::new();
        let mut state = circuit.new_state();
        circuit
            .run_observed(
                &mut state,
                &stimulus,
                &SimulationConfig::ddm(),
                &mut profile,
            )
            .unwrap();

        let mut expected_total = 0;
        for net in netlist.nets() {
            let ideal = result.ideal_waveform(net.name()).unwrap();
            let needed = usize::from(ideal.final_level() != ideal.initial());
            let expected = (ideal.changes().len() - needed) / 2;
            assert_eq!(
                profile.glitches(net.id()),
                expected,
                "glitch mismatch on {}",
                net.name()
            );
            assert_eq!(profile.settled_changes(net.id()), ideal.changes().len());
            expected_total += expected;
        }
        assert_eq!(profile.total_glitches(), expected_total);
    }

    #[test]
    fn quiet_run_has_zero_glitches() {
        let netlist = generators::inverter_chain(3);
        let library = technology::cmos06();
        let circuit = halotis_sim::CompiledCircuit::compile(&netlist, &library).unwrap();
        let mut stimulus = Stimulus::new(library.default_input_slew());
        stimulus.set_initial("in", LogicLevel::Low);
        stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
        let mut profile = GlitchProfile::new();
        let mut state = circuit.new_state();
        circuit
            .run_observed(
                &mut state,
                &stimulus,
                &SimulationConfig::ddm(),
                &mut profile,
            )
            .unwrap();
        // One clean edge per net: no glitching anywhere in a chain.
        assert_eq!(profile.total_glitches(), 0);
        let out = netlist.net_id("out").unwrap();
        assert_eq!(profile.settled_changes(out), 1);
    }

    #[test]
    fn wall_clock_probe_times_completed_runs_only() {
        let netlist = generators::inverter_chain(2);
        let library = technology::cmos06();
        let circuit = halotis_sim::CompiledCircuit::compile(&netlist, &library).unwrap();
        let mut probe = WallClockProbe::new();
        assert_eq!(probe.elapsed(), None);
        let mut stimulus = Stimulus::new(library.default_input_slew());
        stimulus.set_initial("in", LogicLevel::Low);
        stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
        let mut state = circuit.new_state();
        circuit
            .run_observed(&mut state, &stimulus, &SimulationConfig::ddm(), &mut probe)
            .unwrap();
        assert!(probe.elapsed().is_some());
    }
}
