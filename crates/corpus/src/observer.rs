//! Corpus-specific [`SimObserver`]s: glitch profiling and wall-clock
//! probing, both allocation-light and batch-friendly.

use std::time::{Duration, Instant};

use halotis_core::{LogicLevel, NetId, Time, Voltage};
use halotis_sim::{CompiledCircuit, SimObserver, SimulationStats};
use halotis_waveform::Transition;

/// Counts glitch pulses per net on the half-swing ideal projection.
///
/// Every transition is folded into the same incremental `(time, level)`
/// change-point projection the VCD streamer uses (an overtaken change is
/// revoked, a level-preserving crossing is dropped, sub-half-swing runt
/// ramps never register).  A net that settles back to its initial level
/// needed zero changes, one that settles to the opposite level needed one —
/// everything beyond that is glitching, and each glitch pulse contributes
/// exactly two settled change points.  Hence per net:
///
/// ```text
/// glitch_pulses = settled_changes / 2   (integer division)
/// ```
///
/// This is the corpus's "glitch count": the number of logically unnecessary
/// full-swing pulses the run produced, the quantity the degradation model
/// suppresses and a conventional model overestimates.
#[derive(Clone, Debug, Default)]
pub struct GlitchProfile {
    vdd: Voltage,
    initials: Vec<LogicLevel>,
    changes: Vec<Vec<(Time, LogicLevel)>>,
}

impl GlitchProfile {
    /// An empty profile; sized on [`begin`](SimObserver::begin).
    pub fn new() -> Self {
        Self::default()
    }

    /// Settled half-swing change points recorded on `net`.
    pub fn settled_changes(&self, net: NetId) -> usize {
        self.changes.get(net.index()).map_or(0, Vec::len)
    }

    /// Glitch pulses attributed to `net`.
    pub fn glitches(&self, net: NetId) -> usize {
        self.settled_changes(net) / 2
    }

    /// Total glitch pulses across all nets.
    pub fn total_glitches(&self) -> usize {
        self.changes.iter().map(|changes| changes.len() / 2).sum()
    }
}

impl SimObserver for GlitchProfile {
    fn begin(&mut self, circuit: &CompiledCircuit<'_>, initial_levels: &[LogicLevel]) {
        self.vdd = circuit.vdd();
        self.initials.clear();
        self.initials.extend_from_slice(initial_levels);
        self.changes.clear();
        self.changes.resize(initial_levels.len(), Vec::new());
    }

    fn on_transition(&mut self, net: NetId, transition: &Transition) {
        let Some(cross) = transition.crossing_time(self.vdd.half(), self.vdd) else {
            return;
        };
        let changes = &mut self.changes[net.index()];
        let target = transition.edge().target_level();
        while let Some(&(last_time, _)) = changes.last() {
            if cross <= last_time {
                changes.pop();
            } else {
                break;
            }
        }
        let current = changes
            .last()
            .map(|&(_, level)| level)
            .unwrap_or(self.initials[net.index()]);
        if current != target {
            changes.push((cross, target));
        }
    }
}

/// Times one observed run from [`begin`](SimObserver::begin) to
/// [`finish`](SimObserver::finish).
///
/// A run that aborts with an error never reaches `finish`, so
/// [`elapsed`](WallClockProbe::elapsed) stays `None` for it.
#[derive(Clone, Debug, Default)]
pub struct WallClockProbe {
    started: Option<Instant>,
    elapsed: Option<Duration>,
}

impl WallClockProbe {
    /// An idle probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wall-clock duration of the last completed run.
    pub fn elapsed(&self) -> Option<Duration> {
        self.elapsed
    }
}

impl SimObserver for WallClockProbe {
    fn begin(&mut self, _circuit: &CompiledCircuit<'_>, _initial_levels: &[LogicLevel]) {
        self.started = Some(Instant::now());
        self.elapsed = None;
    }

    fn finish(&mut self, _stats: &SimulationStats) {
        self.elapsed = self.started.map(|started| started.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_core::Time;
    use halotis_netlist::{generators, technology};
    use halotis_sim::SimulationConfig;
    use halotis_waveform::Stimulus;

    #[test]
    fn glitch_profile_matches_ideal_waveform_excess() {
        // A staggered double edge into an XOR tree produces output glitching;
        // the profile must equal the recorded ideal waveforms' excess-change
        // count exactly.
        let netlist = generators::parity_tree(4);
        let library = technology::cmos06();
        let circuit = halotis_sim::CompiledCircuit::compile(&netlist, &library).unwrap();
        let mut stimulus = Stimulus::new(library.default_input_slew());
        for i in 0..4 {
            stimulus.set_initial(format!("in{i}"), LogicLevel::Low);
        }
        stimulus.drive("in0", Time::from_ns(1.0), LogicLevel::High);
        stimulus.drive("in3", Time::from_ns(1.3), LogicLevel::High);

        let result = circuit.run(&stimulus, &SimulationConfig::ddm()).unwrap();
        let mut profile = GlitchProfile::new();
        let mut state = circuit.new_state();
        circuit
            .run_observed(
                &mut state,
                &stimulus,
                &SimulationConfig::ddm(),
                &mut profile,
            )
            .unwrap();

        let mut expected_total = 0;
        for net in netlist.nets() {
            let ideal = result.ideal_waveform(net.name()).unwrap();
            let needed = usize::from(ideal.final_level() != ideal.initial());
            let expected = (ideal.changes().len() - needed) / 2;
            assert_eq!(
                profile.glitches(net.id()),
                expected,
                "glitch mismatch on {}",
                net.name()
            );
            assert_eq!(profile.settled_changes(net.id()), ideal.changes().len());
            expected_total += expected;
        }
        assert_eq!(profile.total_glitches(), expected_total);
    }

    #[test]
    fn quiet_run_has_zero_glitches() {
        let netlist = generators::inverter_chain(3);
        let library = technology::cmos06();
        let circuit = halotis_sim::CompiledCircuit::compile(&netlist, &library).unwrap();
        let mut stimulus = Stimulus::new(library.default_input_slew());
        stimulus.set_initial("in", LogicLevel::Low);
        stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
        let mut profile = GlitchProfile::new();
        let mut state = circuit.new_state();
        circuit
            .run_observed(
                &mut state,
                &stimulus,
                &SimulationConfig::ddm(),
                &mut profile,
            )
            .unwrap();
        // One clean edge per net: no glitching anywhere in a chain.
        assert_eq!(profile.total_glitches(), 0);
        let out = netlist.net_id("out").unwrap();
        assert_eq!(profile.settled_changes(out), 1);
    }

    #[test]
    fn wall_clock_probe_times_completed_runs_only() {
        let netlist = generators::inverter_chain(2);
        let library = technology::cmos06();
        let circuit = halotis_sim::CompiledCircuit::compile(&netlist, &library).unwrap();
        let mut probe = WallClockProbe::new();
        assert_eq!(probe.elapsed(), None);
        let mut stimulus = Stimulus::new(library.default_input_slew());
        stimulus.set_initial("in", LogicLevel::Low);
        stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
        let mut state = circuit.new_state();
        circuit
            .run_observed(&mut state, &stimulus, &SimulationConfig::ddm(), &mut probe)
            .unwrap();
        assert!(probe.elapsed().is_some());
    }
}
