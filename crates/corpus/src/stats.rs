//! Corpus statistics records and their canonical JSON rendering.
//!
//! The JSON layout is the contract of the `corpus-golden` CI gate: every
//! field except the `wall_time_ns` timing fields is a deterministic
//! function of the corpus definition, so a freshly generated document must
//! match the committed `CORPUS_stats.json` byte for byte once timing is
//! stripped (or never recorded, via
//! [`CorpusStats::strip_timing`] / the CLI's `--deterministic` flag).
//!
//! Serialisation is hand-rolled: the build environment has no serde, and a
//! golden file needs full control over field order and number formatting
//! anyway.  Floats are rendered with Rust's shortest-roundtrip `{:e}`
//! formatting, which is platform-independent.

use std::fmt::Write as _;

use halotis_sim::SimulationStats;

/// Schema identifier embedded in every document.
pub const SCHEMA: &str = "halotis-corpus-v1";

/// Statistics of one scenario (one stimulus under one delay model).
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioRecord {
    /// Full scenario label: `entry/stimulus/model` (e.g. `mult4x4/rand16/ddm`).
    pub label: String,
    /// Delay-model label of the run (e.g. `DDM`, `CDM`).
    pub model: String,
    /// Engine counters of the run.
    pub stats: SimulationStats,
    /// Events processed per clock cycle — the event-budget telemetry of the
    /// clocked soak scenarios.  `None` for unclocked (combinational) suites.
    pub events_per_cycle: Option<f64>,
    /// Glitch pulses on the half-swing projection (see
    /// [`GlitchProfile`](crate::GlitchProfile)).
    pub glitch_pulses: usize,
    /// Switched-capacitance dynamic energy of the run, in joules.
    pub energy_joules: f64,
    /// Wall-clock time of the run in nanoseconds; `None` when timing was
    /// not recorded (deterministic mode).
    pub wall_time_ns: Option<u128>,
}

/// Statistics of one corpus entry: the circuit, its suite, and all its
/// scenarios in submission order.
#[derive(Clone, Debug, PartialEq)]
pub struct EntryRecord {
    /// Corpus entry name (e.g. `mult4x4`).
    pub name: String,
    /// Netlist name of the circuit.
    pub circuit: String,
    /// Gate count of the circuit.
    pub gates: usize,
    /// Net count of the circuit.
    pub nets: usize,
    /// Suite label (e.g. `rand16`).
    pub suite: String,
    /// Per-scenario records, in submission order (model pairs adjacent).
    pub scenarios: Vec<ScenarioRecord>,
    /// Wall-clock time of the entry's whole batch in nanoseconds.
    pub wall_time_ns: Option<u128>,
}

/// The whole corpus run: per-entry records plus aggregate totals.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct CorpusStats {
    /// Per-entry records, in corpus order.
    pub entries: Vec<EntryRecord>,
}

impl CorpusStats {
    /// Total number of scenarios across all entries.
    pub fn scenario_count(&self) -> usize {
        self.entries.iter().map(|entry| entry.scenarios.len()).sum()
    }

    /// Engine counters summed over every scenario.
    pub fn totals(&self) -> SimulationStats {
        let mut totals = SimulationStats::default();
        for entry in &self.entries {
            for scenario in &entry.scenarios {
                totals.merge(&scenario.stats);
            }
        }
        totals
    }

    /// Glitch pulses summed over every scenario.
    pub fn total_glitches(&self) -> usize {
        self.entries
            .iter()
            .flat_map(|entry| &entry.scenarios)
            .map(|scenario| scenario.glitch_pulses)
            .sum()
    }

    /// Dynamic energy summed over every scenario, in joules.
    pub fn total_energy_joules(&self) -> f64 {
        self.entries
            .iter()
            .flat_map(|entry| &entry.scenarios)
            .map(|scenario| scenario.energy_joules)
            .sum()
    }

    /// Removes every wall-clock field, leaving only the deterministic
    /// quantities the golden gate compares.
    pub fn strip_timing(&mut self) {
        for entry in &mut self.entries {
            entry.wall_time_ns = None;
            for scenario in &mut entry.scenarios {
                scenario.wall_time_ns = None;
            }
        }
    }

    /// Renders the canonical JSON document (2-space indent, trailing
    /// newline, fixed field order).
    pub fn to_json(&self) -> String {
        let totals = self.totals();
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_string(SCHEMA));
        let _ = writeln!(out, "  \"scenario_count\": {},", self.scenario_count());
        out.push_str("  \"totals\": {\n");
        write_stats(&mut out, "    ", &totals);
        let _ = writeln!(out, "    \"glitch_pulses\": {},", self.total_glitches());
        let _ = writeln!(
            out,
            "    \"energy_joules\": {}",
            json_f64(self.total_energy_joules())
        );
        out.push_str("  },\n");
        out.push_str("  \"entries\": [");
        for (index, entry) in self.entries.iter().enumerate() {
            out.push_str(if index == 0 { "\n" } else { ",\n" });
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"name\": {},", json_string(&entry.name));
            let _ = writeln!(out, "      \"circuit\": {},", json_string(&entry.circuit));
            let _ = writeln!(out, "      \"gates\": {},", entry.gates);
            let _ = writeln!(out, "      \"nets\": {},", entry.nets);
            let _ = writeln!(out, "      \"suite\": {},", json_string(&entry.suite));
            let _ = writeln!(
                out,
                "      \"wall_time_ns\": {},",
                json_u128(entry.wall_time_ns)
            );
            out.push_str("      \"scenarios\": [");
            for (sindex, scenario) in entry.scenarios.iter().enumerate() {
                out.push_str(if sindex == 0 { "\n" } else { ",\n" });
                out.push_str("        {\n");
                let _ = writeln!(
                    out,
                    "          \"label\": {},",
                    json_string(&scenario.label)
                );
                let _ = writeln!(
                    out,
                    "          \"model\": {},",
                    json_string(&scenario.model)
                );
                write_stats(&mut out, "          ", &scenario.stats);
                let _ = writeln!(
                    out,
                    "          \"events_per_cycle\": {},",
                    match scenario.events_per_cycle {
                        Some(events) => json_f64(events),
                        None => "null".to_string(),
                    }
                );
                let _ = writeln!(
                    out,
                    "          \"glitch_pulses\": {},",
                    scenario.glitch_pulses
                );
                let _ = writeln!(
                    out,
                    "          \"energy_joules\": {},",
                    json_f64(scenario.energy_joules)
                );
                let _ = writeln!(
                    out,
                    "          \"wall_time_ns\": {}",
                    json_u128(scenario.wall_time_ns)
                );
                out.push_str("        }");
            }
            out.push_str("\n      ]\n");
            out.push_str("    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Writes the engine-counter fields of `stats` at `indent`, each line
/// comma-terminated.
fn write_stats(out: &mut String, indent: &str, stats: &SimulationStats) {
    let _ = writeln!(
        out,
        "{indent}\"events_scheduled\": {},",
        stats.events_scheduled
    );
    let _ = writeln!(
        out,
        "{indent}\"events_filtered\": {},",
        stats.events_filtered
    );
    let _ = writeln!(
        out,
        "{indent}\"events_processed\": {},",
        stats.events_processed
    );
    let _ = writeln!(
        out,
        "{indent}\"output_transitions\": {},",
        stats.output_transitions
    );
    let _ = writeln!(
        out,
        "{indent}\"degraded_transitions\": {},",
        stats.degraded_transitions
    );
    let _ = writeln!(
        out,
        "{indent}\"collapsed_transitions\": {},",
        stats.collapsed_transitions
    );
    let _ = writeln!(
        out,
        "{indent}\"queue_high_water\": {},",
        stats.queue_high_water
    );
}

/// JSON string literal with the escapes the corpus's simple labels can need.
fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Shortest-roundtrip exponent rendering — deterministic across platforms.
fn json_f64(value: f64) -> String {
    format!("{value:e}")
}

fn json_u128(value: Option<u128>) -> String {
    match value {
        Some(ns) => ns.to_string(),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CorpusStats {
        CorpusStats {
            entries: vec![EntryRecord {
                name: "e1".into(),
                circuit: "c1".into(),
                gates: 6,
                nets: 11,
                suite: "exh".into(),
                wall_time_ns: Some(1234),
                scenarios: vec![
                    ScenarioRecord {
                        label: "e1/exh/ddm".into(),
                        model: "DDM".into(),
                        stats: SimulationStats {
                            events_scheduled: 10,
                            events_filtered: 2,
                            events_processed: 8,
                            output_transitions: 5,
                            degraded_transitions: 3,
                            collapsed_transitions: 1,
                            queue_high_water: 4,
                        },
                        events_per_cycle: Some(2.5),
                        glitch_pulses: 2,
                        energy_joules: 1.25e-13,
                        wall_time_ns: Some(999),
                    },
                    ScenarioRecord {
                        label: "e1/exh/cdm".into(),
                        model: "CDM".into(),
                        stats: SimulationStats::default(),
                        events_per_cycle: None,
                        glitch_pulses: 0,
                        energy_joules: 0.0,
                        wall_time_ns: None,
                    },
                ],
            }],
        }
    }

    #[test]
    fn json_contains_all_fields_in_order() {
        let json = sample().to_json();
        assert!(json.starts_with("{\n  \"schema\": \"halotis-corpus-v1\",\n"));
        assert!(json.ends_with("\n  ]\n}\n"));
        let schema = json.find("\"schema\"").unwrap();
        let totals = json.find("\"totals\"").unwrap();
        let entries = json.find("\"entries\"").unwrap();
        assert!(schema < totals && totals < entries);
        assert!(json.contains("\"energy_joules\": 1.25e-13"));
        assert!(json.contains("\"wall_time_ns\": 999"));
        assert!(json.contains("\"wall_time_ns\": null"));
        assert!(json.contains("\"glitch_pulses\": 2"));
        assert!(json.contains("\"queue_high_water\": 4"));
        assert!(json.contains("\"events_per_cycle\": 2.5e0"));
        assert!(json.contains("\"events_per_cycle\": null"));
    }

    #[test]
    fn totals_aggregate_scenarios() {
        let stats = sample();
        assert_eq!(stats.scenario_count(), 2);
        assert_eq!(stats.totals().events_scheduled, 10);
        assert_eq!(stats.total_glitches(), 2);
        assert!((stats.total_energy_joules() - 1.25e-13).abs() < 1e-30);
    }

    #[test]
    fn strip_timing_nulls_every_wall_time() {
        let mut stats = sample();
        stats.strip_timing();
        let json = stats.to_json();
        assert!(!json.contains("\"wall_time_ns\": 999"));
        assert!(!json.contains("\"wall_time_ns\": 1234"));
        assert_eq!(json.matches("\"wall_time_ns\": null").count(), 3);
    }

    #[test]
    fn rendering_is_reproducible() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn string_escaping_covers_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn float_rendering_is_exponent_form() {
        assert_eq!(json_f64(0.0), "0e0");
        assert_eq!(json_f64(1.25e-13), "1.25e-13");
    }
}
