//! The HALOTIS benchmark corpus: deterministic workloads, golden
//! statistics, and the substrate of the CI perf/correctness gates.
//!
//! The paper's central claim is that the degradation delay model changes
//! event counts, glitch counts and power *on real circuit workloads* — so
//! the repo needs more than a handful of hand-picked experiments.  This
//! crate pins down a seeded, reproducible corpus:
//!
//! * [`entry`] — [`CorpusEntry`] (circuit × stimulus suite) and
//!   [`standard_corpus`]: array and Wallace-tree multipliers,
//!   ripple/carry-skip/Kogge-Stone adders, parity trees, layered random
//!   logic, and the ISCAS-85 circuits c17, c432 and c880 (the latter two
//!   parsed from committed netlist files); every stimulus runs under three
//!   model columns — DDM, CDM and the [`mixed_model`] per-cell override,
//! * [`stimuli`] — [`StimulusSuite`]: seeded random vector sequences,
//!   exhaustive small-input sweeps, and single-input-toggle glitch probes,
//! * [`observer`] — [`GlitchProfile`] (glitch pulses on the half-swing
//!   projection) and [`WallClockProbe`] (per-scenario timing), composed
//!   with the engine's [`ActivityCounter`](halotis_sim::ActivityCounter)
//!   and [`PowerAccumulator`](halotis_sim::PowerAccumulator),
//! * [`runner`] — [`CorpusRunner`]: every entry compiled once and swept
//!   through [`BatchRunner::run_observed`](halotis_sim::BatchRunner) under
//!   all three model columns, with zero waveform retention,
//! * [`stats`] — [`CorpusStats`]: the canonical JSON document
//!   (`CORPUS_stats.json`) whose non-timing fields are bit-exact
//!   reproducible — the contract of the `corpus-golden` CI gate.
//!
//! # Example
//!
//! ```
//! use halotis_corpus::{standard_corpus, CorpusRunner};
//!
//! let corpus = standard_corpus();
//! let report = CorpusRunner::new().with_threads(2).run(&corpus)?;
//! assert!(report.stats.scenario_count() >= 100);
//! assert!(report.stats.totals().events_processed > 0);
//!
//! // The golden document: strip timing and the rendering is bit-exact
//! // reproducible, run after run, thread count notwithstanding.
//! let mut stats = report.stats;
//! stats.strip_timing();
//! let json = stats.to_json();
//! assert!(json.starts_with("{\n  \"schema\": \"halotis-corpus-v1\""));
//! # Ok::<(), halotis_corpus::CorpusError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod entry;
pub mod observer;
pub mod runner;
pub mod stats;
pub mod stimuli;

pub use entry::{mixed_model, standard_corpus, CorpusEntry};
pub use observer::{GlitchProfile, WallClockProbe};
pub use runner::{CorpusError, CorpusReport, CorpusRunner, EntryTiming, NetHotspot};
pub use stats::{CorpusStats, EntryRecord, ScenarioRecord, SCHEMA};
pub use stimuli::StimulusSuite;
