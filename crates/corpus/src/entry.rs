//! Corpus entry definitions and the standard corpus.

use halotis_core::TimeDelta;
use halotis_netlist::{generators, Library, Netlist};
use halotis_sim::{Scenario, SimulationConfig};

use crate::stimuli::StimulusSuite;

/// One corpus workload: a circuit paired with a stimulus suite.  Every
/// stimulus the suite produces runs under **both** delay models
/// (DDM and CDM), so one entry expands into `2 × stimuli` scenarios.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// Unique entry name, the first segment of its scenario labels.
    pub name: String,
    /// The circuit under test.
    pub netlist: Netlist,
    /// The stimulus recipe.
    pub suite: StimulusSuite,
}

impl CorpusEntry {
    /// Creates an entry.
    pub fn new(name: impl Into<String>, netlist: Netlist, suite: StimulusSuite) -> Self {
        CorpusEntry {
            name: name.into(),
            netlist,
            suite,
        }
    }

    /// Expands the entry into its scenario set: every stimulus of the suite
    /// under both delay models, labelled `entry/stimulus/model`.
    pub fn scenarios(&self, library: &Library) -> Vec<Scenario> {
        self.suite
            .stimuli(&self.netlist, library)
            .into_iter()
            .flat_map(|(stimulus_label, stimulus)| {
                Scenario::both_models(
                    format!("{}/{}", self.name, stimulus_label),
                    stimulus,
                    SimulationConfig::default(),
                )
            })
            .collect()
    }
}

/// The standard HALOTIS corpus: scalable multipliers, ripple- and
/// carry-skip adders, parity trees, layered random logic and the ISCAS-85
/// c17, each paired with the stimulus suite that stresses it best.
///
/// The definition is **frozen by the golden-stats gate**: any change here
/// (an entry, a seed, a size) changes `CORPUS_stats.json` and must
/// regenerate the committed golden in the same commit.
pub fn standard_corpus() -> Vec<CorpusEntry> {
    let ns = TimeDelta::from_ns;
    let ps = TimeDelta::from_ps;
    vec![
        CorpusEntry::new(
            "mult4x4",
            generators::multiplier(4, 4),
            StimulusSuite::RandomVectors {
                vectors: 16,
                period: ns(5.0),
                seed: 0xA11CE,
            },
        ),
        CorpusEntry::new(
            "mult5x3",
            generators::multiplier(5, 3),
            StimulusSuite::RandomVectors {
                vectors: 12,
                period: ns(5.0),
                seed: 0xB0B5,
            },
        ),
        CorpusEntry::new(
            "rca8",
            generators::ripple_carry_adder(8),
            StimulusSuite::RandomVectors {
                vectors: 16,
                period: ns(5.0),
                seed: 0xADD8,
            },
        ),
        CorpusEntry::new(
            "rca12",
            generators::ripple_carry_adder(12),
            StimulusSuite::RandomVectors {
                vectors: 8,
                period: ns(5.0),
                seed: 0xADD12,
            },
        ),
        CorpusEntry::new(
            "cska8b2",
            generators::carry_skip_adder(8, 2),
            StimulusSuite::RandomVectors {
                vectors: 16,
                period: ns(5.0),
                seed: 0x5C1B,
            },
        ),
        CorpusEntry::new(
            "cska12b4",
            generators::carry_skip_adder(12, 4),
            StimulusSuite::RandomVectors {
                vectors: 8,
                period: ns(5.0),
                seed: 0x5C1C,
            },
        ),
        CorpusEntry::new(
            "parity6",
            generators::parity_tree(6),
            StimulusSuite::Exhaustive { period: ns(4.0) },
        ),
        CorpusEntry::new(
            "parity8",
            generators::parity_tree(8),
            StimulusSuite::ToggleProbes {
                seed: 0xF00D,
                max_probes: 8,
                pulse: ps(600.0),
            },
        ),
        CorpusEntry::new(
            "parity16",
            generators::parity_tree(16),
            StimulusSuite::RandomVectors {
                vectors: 16,
                period: ns(4.0),
                seed: 0x9A9,
            },
        ),
        CorpusEntry::new(
            "c17",
            generators::c17(),
            StimulusSuite::Exhaustive { period: ns(4.0) },
        ),
        CorpusEntry::new(
            "c17_probe",
            generators::c17(),
            StimulusSuite::ToggleProbes {
                seed: 0x17,
                max_probes: 5,
                pulse: ps(500.0),
            },
        ),
        CorpusEntry::new(
            "random16x300",
            generators::random_logic(16, 300, 0xC0FFEE),
            StimulusSuite::RandomVectors {
                vectors: 8,
                period: ns(6.0),
                seed: 0xFACADE,
            },
        ),
        CorpusEntry::new(
            "random24x600",
            generators::random_logic(24, 600, 0xDECAF),
            StimulusSuite::RandomVectors {
                vectors: 4,
                period: ns(6.0),
                seed: 0xFEED,
            },
        ),
        CorpusEntry::new(
            "random12x150",
            generators::random_logic(12, 150, 0x7E57),
            StimulusSuite::ToggleProbes {
                seed: 0x7E57,
                max_probes: 6,
                pulse: ps(700.0),
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_netlist::technology;
    use std::collections::HashSet;

    #[test]
    fn standard_corpus_is_deterministic() {
        let a = standard_corpus();
        let b = standard_corpus();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.netlist, y.netlist);
            assert_eq!(x.suite, y.suite);
        }
    }

    #[test]
    fn entry_names_are_unique() {
        let corpus = standard_corpus();
        let names: HashSet<&str> = corpus.iter().map(|entry| entry.name.as_str()).collect();
        assert_eq!(names.len(), corpus.len());
    }

    #[test]
    fn corpus_meets_the_scenario_floor() {
        // The acceptance floor: ≥ 12 distinct scenarios across both models.
        let corpus = standard_corpus();
        let library = technology::cmos06();
        let mut labels = HashSet::new();
        let mut ddm = 0;
        let mut cdm = 0;
        for entry in &corpus {
            for scenario in entry.scenarios(&library) {
                assert!(
                    labels.insert(scenario.label.clone()),
                    "dup {}",
                    scenario.label
                );
                if scenario.label.ends_with("/ddm") {
                    ddm += 1;
                } else if scenario.label.ends_with("/cdm") {
                    cdm += 1;
                }
            }
        }
        assert!(labels.len() >= 24, "only {} scenarios", labels.len());
        assert_eq!(ddm, cdm, "every stimulus runs under both models");
    }

    #[test]
    fn scenario_labels_carry_entry_suite_and_model() {
        let corpus = standard_corpus();
        let library = technology::cmos06();
        let scenarios = corpus[0].scenarios(&library);
        assert_eq!(scenarios[0].label, "mult4x4/rand16/ddm");
        assert_eq!(scenarios[1].label, "mult4x4/rand16/cdm");
    }
}
