//! Corpus entry definitions and the standard corpus.

use halotis_core::TimeDelta;
use halotis_delay::{Conventional, Degradation, DelayModelHandle, PerCellOverride};
use halotis_netlist::{generators, iscas, CellKind, Library, Netlist};
use halotis_sim::{Scenario, SimulationConfig};

use crate::stimuli::StimulusSuite;

/// The corpus's third model column: a [`PerCellOverride`] mix applying the
/// conventional model to the XOR family and the 4-input cells while every
/// other cell keeps the degradation model — the "degradation where
/// characterised" bring-up configuration, exercising the composite dispatch
/// path on every corpus circuit.
///
/// The composition is part of the golden contract: changing it changes
/// `CORPUS_stats.json` and must regenerate the committed golden.
///
/// # Example
///
/// ```
/// let mix = halotis_corpus::mixed_model();
/// assert_eq!(mix.label(), "MIX");
/// assert_eq!(mix.kind(), None); // composite, not a built-in
/// ```
pub fn mixed_model() -> DelayModelHandle {
    let mut mix = PerCellOverride::new(Degradation);
    for kind in [
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::And4,
        CellKind::Or4,
        CellKind::Nand4,
        CellKind::Nor4,
    ] {
        mix = mix.with(kind.class(), Conventional);
    }
    DelayModelHandle::new(mix.labelled("MIX"))
}

/// One corpus workload: a circuit paired with a stimulus suite.  Every
/// stimulus the suite produces runs under **three** model columns — DDM,
/// CDM and the [`mixed_model`] per-cell override — so one entry expands
/// into `3 × stimuli` scenarios.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// Unique entry name, the first segment of its scenario labels.
    pub name: String,
    /// The circuit under test.
    pub netlist: Netlist,
    /// The stimulus recipe.
    pub suite: StimulusSuite,
}

impl CorpusEntry {
    /// Creates an entry.
    pub fn new(name: impl Into<String>, netlist: Netlist, suite: StimulusSuite) -> Self {
        CorpusEntry {
            name: name.into(),
            netlist,
            suite,
        }
    }

    /// Expands the entry into its scenario set: every stimulus of the suite
    /// under all three model columns, labelled `entry/stimulus/model`
    /// (`.../ddm`, `.../cdm`, `.../mix` adjacent, in that order).
    pub fn scenarios(&self, library: &Library) -> Vec<Scenario> {
        let mix = mixed_model();
        self.suite
            .stimuli(&self.netlist, library)
            .into_iter()
            .flat_map(|(stimulus_label, stimulus)| {
                let label = format!("{}/{}", self.name, stimulus_label);
                let mix_scenario = Scenario::new(
                    format!("{label}/mix"),
                    stimulus.clone(),
                    SimulationConfig::default().model(mix.clone()),
                );
                Scenario::both_models(label, stimulus, SimulationConfig::default())
                    .into_iter()
                    .chain(std::iter::once(mix_scenario))
            })
            .collect()
    }
}

/// The standard HALOTIS corpus: scalable multipliers (array and Wallace
/// tree), ripple-/carry-skip/Kogge-Stone adders, parity trees, layered
/// random logic, the ISCAS-85 circuits c17, c432 and c880 (the latter
/// two loaded from committed netlist files through the parser), and the
/// sequential ISCAS-89 s27 under clocked suites — including a
/// multi-thousand-cycle soak — each paired with the stimulus suite that
/// stresses it best.
///
/// The definition is **frozen by the golden-stats gate**: any change here
/// (an entry, a seed, a size) changes `CORPUS_stats.json` and must
/// regenerate the committed golden in the same commit.
pub fn standard_corpus() -> Vec<CorpusEntry> {
    let ns = TimeDelta::from_ns;
    let ps = TimeDelta::from_ps;
    vec![
        CorpusEntry::new(
            "mult4x4",
            generators::multiplier(4, 4),
            StimulusSuite::RandomVectors {
                vectors: 16,
                period: ns(5.0),
                seed: 0xA11CE,
            },
        ),
        CorpusEntry::new(
            "mult5x3",
            generators::multiplier(5, 3),
            StimulusSuite::RandomVectors {
                vectors: 12,
                period: ns(5.0),
                seed: 0xB0B5,
            },
        ),
        CorpusEntry::new(
            "rca8",
            generators::ripple_carry_adder(8),
            StimulusSuite::RandomVectors {
                vectors: 16,
                period: ns(5.0),
                seed: 0xADD8,
            },
        ),
        CorpusEntry::new(
            "rca12",
            generators::ripple_carry_adder(12),
            StimulusSuite::RandomVectors {
                vectors: 8,
                period: ns(5.0),
                seed: 0xADD12,
            },
        ),
        CorpusEntry::new(
            "cska8b2",
            generators::carry_skip_adder(8, 2),
            StimulusSuite::RandomVectors {
                vectors: 16,
                period: ns(5.0),
                seed: 0x5C1B,
            },
        ),
        CorpusEntry::new(
            "cska12b4",
            generators::carry_skip_adder(12, 4),
            StimulusSuite::RandomVectors {
                vectors: 8,
                period: ns(5.0),
                seed: 0x5C1C,
            },
        ),
        CorpusEntry::new(
            "parity6",
            generators::parity_tree(6),
            StimulusSuite::Exhaustive { period: ns(4.0) },
        ),
        CorpusEntry::new(
            "parity8",
            generators::parity_tree(8),
            StimulusSuite::ToggleProbes {
                seed: 0xF00D,
                max_probes: 8,
                pulse: ps(600.0),
            },
        ),
        CorpusEntry::new(
            "parity16",
            generators::parity_tree(16),
            StimulusSuite::RandomVectors {
                vectors: 16,
                period: ns(4.0),
                seed: 0x9A9,
            },
        ),
        CorpusEntry::new(
            "c17",
            generators::c17(),
            StimulusSuite::Exhaustive { period: ns(4.0) },
        ),
        CorpusEntry::new(
            "c17_probe",
            generators::c17(),
            StimulusSuite::ToggleProbes {
                seed: 0x17,
                max_probes: 5,
                pulse: ps(500.0),
            },
        ),
        CorpusEntry::new(
            "random16x300",
            generators::random_logic(16, 300, 0xC0FFEE),
            StimulusSuite::RandomVectors {
                vectors: 8,
                period: ns(6.0),
                seed: 0xFACADE,
            },
        ),
        CorpusEntry::new(
            "random24x600",
            generators::random_logic(24, 600, 0xDECAF),
            StimulusSuite::RandomVectors {
                vectors: 4,
                period: ns(6.0),
                seed: 0xFEED,
            },
        ),
        CorpusEntry::new(
            "random12x150",
            generators::random_logic(12, 150, 0x7E57),
            StimulusSuite::ToggleProbes {
                seed: 0x7E57,
                max_probes: 6,
                pulse: ps(700.0),
            },
        ),
        CorpusEntry::new(
            "ks8",
            generators::kogge_stone_adder(8),
            StimulusSuite::RandomVectors {
                vectors: 16,
                period: ns(5.0),
                seed: 0x5708,
            },
        ),
        CorpusEntry::new(
            "ks16",
            generators::kogge_stone_adder(16),
            StimulusSuite::RandomVectors {
                vectors: 8,
                period: ns(5.0),
                seed: 0x5716,
            },
        ),
        CorpusEntry::new(
            "wallace4x4",
            generators::wallace_tree_multiplier(4, 4),
            StimulusSuite::RandomVectors {
                vectors: 16,
                period: ns(5.0),
                seed: 0x3A44,
            },
        ),
        CorpusEntry::new(
            "wallace6x6",
            generators::wallace_tree_multiplier(6, 6),
            StimulusSuite::RandomVectors {
                vectors: 8,
                period: ns(6.0),
                seed: 0x3A66,
            },
        ),
        CorpusEntry::new(
            "c432",
            iscas::c432(),
            StimulusSuite::RandomVectors {
                vectors: 8,
                period: ns(6.0),
                seed: 0x432,
            },
        ),
        CorpusEntry::new(
            "c432_probe",
            iscas::c432(),
            StimulusSuite::ToggleProbes {
                seed: 0x432,
                max_probes: 6,
                pulse: ps(700.0),
            },
        ),
        CorpusEntry::new(
            "c880",
            iscas::c880(),
            StimulusSuite::RandomVectors {
                vectors: 6,
                period: ns(8.0),
                seed: 0x880,
            },
        ),
        CorpusEntry::new(
            "c880_probe",
            iscas::c880(),
            StimulusSuite::ToggleProbes {
                seed: 0x880,
                max_probes: 4,
                pulse: ps(800.0),
            },
        ),
        // Sequential entries (appended so earlier scenario labels never
        // shift): the ISCAS-89 s27 under a short clocked suite and a
        // multi-thousand-cycle soak whose events-per-cycle and queue
        // high-water telemetry the golden gate pins.  The clock shapes
        // leave well over the circuit's ~1.6 ns data-to-register settle
        // time between the data change (fall + skew) and the next rising
        // edge, so the registers always latch settled values and the runs
        // track the cycle-accurate reference model.
        CorpusEntry::new(
            "s27_clk64",
            iscas::s27(),
            StimulusSuite::Clocked {
                cycles: 64,
                period: ns(6.0),
                high: ns(2.0),
                skew: ps(500.0),
                seed: 0x27,
            },
        ),
        CorpusEntry::new(
            "s27_soak",
            iscas::s27(),
            StimulusSuite::Clocked {
                cycles: 2500,
                period: ns(4.0),
                high: ns(1.0),
                skew: ps(250.0),
                seed: 0x527,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_netlist::technology;
    use std::collections::HashSet;

    #[test]
    fn standard_corpus_is_deterministic() {
        let a = standard_corpus();
        let b = standard_corpus();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.netlist, y.netlist);
            assert_eq!(x.suite, y.suite);
        }
    }

    #[test]
    fn entry_names_are_unique() {
        let corpus = standard_corpus();
        let names: HashSet<&str> = corpus.iter().map(|entry| entry.name.as_str()).collect();
        assert_eq!(names.len(), corpus.len());
    }

    #[test]
    fn corpus_meets_the_scenario_floor() {
        // The acceptance floor: ≥ 22 entries expanding into ≥ 100 distinct
        // scenarios, every stimulus present in all three model columns.
        let corpus = standard_corpus();
        assert!(corpus.len() >= 22, "only {} entries", corpus.len());
        let library = technology::cmos06();
        let mut labels = HashSet::new();
        let (mut ddm, mut cdm, mut mix) = (0, 0, 0);
        for entry in &corpus {
            for scenario in entry.scenarios(&library) {
                assert!(
                    labels.insert(scenario.label.clone()),
                    "dup {}",
                    scenario.label
                );
                if scenario.label.ends_with("/ddm") {
                    ddm += 1;
                } else if scenario.label.ends_with("/cdm") {
                    cdm += 1;
                } else if scenario.label.ends_with("/mix") {
                    mix += 1;
                }
            }
        }
        assert!(labels.len() >= 100, "only {} scenarios", labels.len());
        assert_eq!(ddm, cdm, "every stimulus runs under both built-in models");
        assert_eq!(ddm, mix, "every stimulus runs under the mixed column");
    }

    #[test]
    fn corpus_covers_the_roadmap_circuit_families() {
        let corpus = standard_corpus();
        for name in ["c432", "c880", "ks8", "ks16", "wallace4x4", "wallace6x6"] {
            assert!(
                corpus.iter().any(|entry| entry.name == name),
                "missing corpus entry {name}"
            );
        }
    }

    #[test]
    fn scenario_labels_carry_entry_suite_and_model() {
        let corpus = standard_corpus();
        let library = technology::cmos06();
        let scenarios = corpus[0].scenarios(&library);
        assert_eq!(scenarios[0].label, "mult4x4/rand16/ddm");
        assert_eq!(scenarios[1].label, "mult4x4/rand16/cdm");
        assert_eq!(scenarios[2].label, "mult4x4/rand16/mix");
        assert_eq!(scenarios[0].config.model.label(), "DDM");
        assert_eq!(scenarios[1].config.model.label(), "CDM");
        assert_eq!(scenarios[2].config.model.label(), "MIX");
    }

    #[test]
    fn mixed_model_differs_from_both_builtins_per_cell() {
        use halotis_delay::{Conventional, Degradation, DelayContext, DelayModel, EdgeTiming};
        let mix = mixed_model();
        let arc = EdgeTiming::example();
        // A recently active gate makes DDM and CDM diverge.
        let ctx = |kind: CellKind| DelayContext {
            vdd: halotis_core::Voltage::from_volts(5.0),
            load: halotis_core::Capacitance::from_femtofarads(20.0),
            input_slew: halotis_core::TimeDelta::from_ps(150.0),
            time_since_last_output: Some(halotis_core::TimeDelta::from_ps(20.0)),
            cell_class: kind.class(),
        };
        let nand_ctx = ctx(CellKind::Nand2);
        let xor_ctx = ctx(CellKind::Xor2);
        assert_eq!(
            mix.evaluate(&arc, &nand_ctx),
            Degradation.evaluate(&arc, &nand_ctx)
        );
        assert_eq!(
            mix.evaluate(&arc, &xor_ctx),
            Conventional.evaluate(&arc, &xor_ctx)
        );
        assert_ne!(
            Degradation.evaluate(&arc, &xor_ctx),
            Conventional.evaluate(&arc, &xor_ctx),
            "the override must be observable"
        );
    }
}
