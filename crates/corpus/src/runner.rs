//! Executes a corpus through the no-waveform observed batch path.
//!
//! Every entry compiles once; its scenarios (each stimulus × the three
//! model columns) run through [`BatchRunner::run_observed`] with a composite
//! observer — [`ActivityCounter`] + [`PowerAccumulator`] +
//! [`GlitchProfile`] + [`WallClockProbe`] — so no waveform is ever
//! allocated, exactly the configuration the paper's Table 1 statistics use.
//! The per-entry batch can be repeated to collect timing samples for the
//! criterion-style capture the perf gate consumes.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use halotis_core::Capacitance;
use halotis_netlist::technology;
use halotis_sim::{
    ActivityCounter, BatchRunner, CompiledCircuit, PowerAccumulator, SimulationError,
};

use crate::entry::CorpusEntry;
use crate::observer::{GlitchProfile, WallClockProbe};
use crate::stats::{CorpusStats, EntryRecord, ScenarioRecord};

/// A corpus scenario failed; the corpus is expected to be fully green, so
/// one failure aborts the run with full context.
#[derive(Debug)]
pub struct CorpusError {
    /// Entry whose batch failed.
    pub entry: String,
    /// Failing scenario label, when the failure is scenario-level.
    pub scenario: Option<String>,
    /// The underlying engine error.
    pub source: SimulationError,
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.scenario {
            Some(scenario) => write!(
                f,
                "corpus entry {} scenario {} failed: {}",
                self.entry, scenario, self.source
            ),
            None => write!(f, "corpus entry {} failed: {}", self.entry, self.source),
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Wall-clock samples of one entry's batch, one per repeat.
#[derive(Clone, Debug)]
pub struct EntryTiming {
    /// Corpus entry name.
    pub name: String,
    /// One batch wall-clock duration per repeat, in execution order.
    pub samples: Vec<Duration>,
}

impl EntryTiming {
    /// Renders the sample set as one line of the criterion-style capture
    /// `scripts/bench_to_json.py` parses:
    ///
    /// ```text
    /// corpus/mult4x4    median 1.2ms  mean 1.3ms  min 1.1ms
    /// ```
    pub fn criterion_line(&self) -> String {
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        let min = sorted[0];
        format!(
            "corpus/{}    median {median:?}  mean {mean:?}  min {min:?}",
            self.name
        )
    }
}

/// Total dynamic energy attributed to one net of one corpus entry, summed
/// over every scenario (each stimulus × the three model columns) of the run.
#[derive(Clone, Debug, PartialEq)]
pub struct NetHotspot {
    /// Corpus entry name.
    pub entry: String,
    /// Net name within the entry's circuit.
    pub net: String,
    /// Switched capacitance of the net.
    pub capacitance: Capacitance,
    /// Transitions summed over all scenarios.
    pub transitions: usize,
    /// `C · Vdd² · transitions` summed over all scenarios, in joules.
    pub energy_joules: f64,
}

/// Everything one corpus run produces: the statistics document plus the
/// per-entry timing samples.
#[derive(Clone, Debug)]
pub struct CorpusReport {
    /// The statistics document (golden-gate material).
    pub stats: CorpusStats,
    /// Per-entry timing, in corpus order (perf-capture material).
    pub timings: Vec<EntryTiming>,
    /// Every net that switched at least once, most energetic first; ties
    /// break on `(entry, net)` names so the ranking is fully deterministic.
    /// Derived material — deliberately kept out of the golden-gated
    /// [`CorpusStats`] document.
    pub hotspots: Vec<NetHotspot>,
}

impl CorpusReport {
    /// The `count` most energetic nets of the whole corpus run.
    pub fn top_hotspots(&self, count: usize) -> &[NetHotspot] {
        &self.hotspots[..count.min(self.hotspots.len())]
    }
}

/// The per-scenario observer bundle of a corpus run.
type CorpusObserver = (
    (ActivityCounter, PowerAccumulator),
    (GlitchProfile, WallClockProbe),
);

/// Runs corpus entries through the observed batch path.
#[derive(Clone, Copy, Debug)]
pub struct CorpusRunner {
    threads: usize,
    repeats: usize,
}

impl CorpusRunner {
    /// A runner using every hardware thread and a single timing repeat.
    pub fn new() -> Self {
        CorpusRunner {
            threads: 0,
            repeats: 1,
        }
    }

    /// Fixes the worker-thread count; `0` selects hardware parallelism.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Repeats every entry's batch `repeats` times (clamped to at least 1)
    /// to collect that many timing samples.  Statistics are identical on
    /// every repeat — only wall-clock differs — so the records are taken
    /// from the last repeat.
    pub fn with_repeats(mut self, repeats: usize) -> Self {
        self.repeats = repeats.max(1);
        self
    }

    /// The configured repeat count.
    pub fn repeats(&self) -> usize {
        self.repeats.max(1)
    }

    /// Runs every entry, producing the statistics document and timing
    /// samples.  The first scenario failure aborts the run.
    pub fn run(&self, corpus: &[CorpusEntry]) -> Result<CorpusReport, CorpusError> {
        let library = technology::cmos06();
        let batch = if self.threads == 0 {
            BatchRunner::new()
        } else {
            BatchRunner::with_threads(self.threads)
        };
        let mut stats = CorpusStats::default();
        let mut timings = Vec::with_capacity(corpus.len());
        let mut hotspots = Vec::new();

        for entry in corpus {
            let circuit = CompiledCircuit::compile(&entry.netlist, &library).map_err(|source| {
                CorpusError {
                    entry: entry.name.clone(),
                    scenario: None,
                    source,
                }
            })?;
            let scenarios = entry.scenarios(&library);

            let mut samples = Vec::with_capacity(self.repeats());
            let mut last_report = None;
            for _ in 0..self.repeats() {
                let report = batch.run_observed(&circuit, &scenarios, |_, _| {
                    (
                        (ActivityCounter::new(), PowerAccumulator::new()),
                        (GlitchProfile::new(), WallClockProbe::new()),
                    )
                });
                samples.push(report.wall_time());
                last_report = Some(report);
            }
            let report = last_report.expect("at least one repeat ran");

            // Per-net energy, keyed by net name and summed across the
            // entry's scenarios in scenario order — the float additions
            // happen in one fixed order, so the totals are bit-reproducible
            // regardless of worker-thread count.
            let mut net_energy: BTreeMap<String, NetHotspot> = BTreeMap::new();
            let mut records = Vec::with_capacity(scenarios.len());
            for (scenario, outcome) in scenarios.iter().zip(report.outcomes()) {
                let run_stats = outcome.stats.as_ref().map_err(|source| CorpusError {
                    entry: entry.name.clone(),
                    scenario: Some(outcome.label.clone()),
                    source: source.clone(),
                })?;
                let ((activity, power), (glitches, clock)): &CorpusObserver = &outcome.observer;
                debug_assert_eq!(activity.total_transitions(), run_stats.output_transitions);
                for net in power.report(&entry.netlist).per_net() {
                    if net.transitions == 0 {
                        continue;
                    }
                    let slot = net_energy
                        .entry(net.net.clone())
                        .or_insert_with(|| NetHotspot {
                            entry: entry.name.clone(),
                            net: net.net.clone(),
                            capacitance: net.capacitance,
                            transitions: 0,
                            energy_joules: 0.0,
                        });
                    slot.transitions += net.transitions;
                    slot.energy_joules += net.energy_joules;
                }
                records.push(ScenarioRecord {
                    label: outcome.label.clone(),
                    model: scenario.config.model.label().to_string(),
                    stats: *run_stats,
                    events_per_cycle: entry
                        .suite
                        .cycles()
                        .map(|cycles| run_stats.events_processed as f64 / cycles as f64),
                    glitch_pulses: glitches.total_glitches(),
                    energy_joules: power.total_joules(),
                    wall_time_ns: clock.elapsed().map(|elapsed| elapsed.as_nanos()),
                });
            }

            stats.entries.push(EntryRecord {
                name: entry.name.clone(),
                circuit: entry.netlist.name().to_string(),
                gates: entry.netlist.gate_count(),
                nets: entry.netlist.net_count(),
                suite: entry.suite.label(),
                scenarios: records,
                wall_time_ns: Some(report.wall_time().as_nanos()),
            });
            timings.push(EntryTiming {
                name: entry.name.clone(),
                samples,
            });
            hotspots.extend(net_energy.into_values());
        }
        hotspots.sort_by(|a: &NetHotspot, b: &NetHotspot| {
            b.energy_joules
                .total_cmp(&a.energy_joules)
                .then_with(|| a.entry.cmp(&b.entry))
                .then_with(|| a.net.cmp(&b.net))
        });
        Ok(CorpusReport {
            stats,
            timings,
            hotspots,
        })
    }
}

impl Default for CorpusRunner {
    fn default() -> Self {
        CorpusRunner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::standard_corpus;
    use crate::stimuli::StimulusSuite;
    use halotis_core::TimeDelta;
    use halotis_netlist::generators;

    fn small_corpus() -> Vec<CorpusEntry> {
        vec![
            CorpusEntry::new(
                "c17",
                generators::c17(),
                StimulusSuite::Exhaustive {
                    period: TimeDelta::from_ns(4.0),
                },
            ),
            CorpusEntry::new(
                "parity4",
                generators::parity_tree(4),
                StimulusSuite::ToggleProbes {
                    seed: 7,
                    max_probes: 2,
                    pulse: TimeDelta::from_ps(600.0),
                },
            ),
        ]
    }

    #[test]
    fn runner_produces_one_record_per_scenario() {
        let corpus = small_corpus();
        let report = CorpusRunner::new().run(&corpus).unwrap();
        assert_eq!(report.stats.entries.len(), 2);
        assert_eq!(report.stats.entries[0].scenarios.len(), 3); // exh × 3 models
        assert_eq!(report.stats.entries[1].scenarios.len(), 6); // 2 probes × 3
        assert_eq!(report.stats.scenario_count(), 9);
        assert_eq!(report.timings.len(), 2);
        for entry in &report.stats.entries {
            assert!(entry.wall_time_ns.is_some());
            for scenario in &entry.scenarios {
                assert!(scenario.stats.events_processed > 0, "{}", scenario.label);
                assert!(scenario.energy_joules > 0.0, "{}", scenario.label);
                assert!(scenario.wall_time_ns.is_some());
                assert!(
                    scenario.model == "DDM" || scenario.model == "CDM" || scenario.model == "MIX"
                );
            }
        }
    }

    #[test]
    fn statistics_are_thread_count_independent() {
        let corpus = small_corpus();
        let mut one = CorpusRunner::new()
            .with_threads(1)
            .run(&corpus)
            .unwrap()
            .stats;
        let mut four = CorpusRunner::new()
            .with_threads(4)
            .run(&corpus)
            .unwrap()
            .stats;
        one.strip_timing();
        four.strip_timing();
        assert_eq!(one, four);
        assert_eq!(one.to_json(), four.to_json());
    }

    #[test]
    fn repeats_collect_that_many_samples() {
        let corpus = small_corpus();
        let report = CorpusRunner::new().with_repeats(3).run(&corpus).unwrap();
        for timing in &report.timings {
            assert_eq!(timing.samples.len(), 3);
            let line = timing.criterion_line();
            assert!(line.contains("median"), "{line}");
            assert!(line.contains("mean"), "{line}");
            assert!(line.contains("min"), "{line}");
        }
    }

    #[test]
    fn hotspot_ranking_is_sorted_deterministic_and_complete() {
        let corpus = small_corpus();
        let report = CorpusRunner::new().with_threads(1).run(&corpus).unwrap();
        assert!(!report.hotspots.is_empty());
        // Most-energetic first, names breaking exact ties.
        for pair in report.hotspots.windows(2) {
            assert!(pair[0].energy_joules >= pair[1].energy_joules);
            if pair[0].energy_joules == pair[1].energy_joules {
                assert!((&pair[0].entry, &pair[0].net) < (&pair[1].entry, &pair[1].net));
            }
        }
        // Every ranked net switched, and the ranking conserves energy: the
        // summed hotspot energy matches the summed scenario energy (same
        // numbers, different addition order — hence the relative epsilon).
        let ranked: f64 = report.hotspots.iter().map(|h| h.energy_joules).sum();
        let scenario_total: f64 = report
            .stats
            .entries
            .iter()
            .flat_map(|entry| &entry.scenarios)
            .map(|scenario| scenario.energy_joules)
            .sum();
        assert!(report.hotspots.iter().all(|h| h.transitions > 0));
        assert!((ranked - scenario_total).abs() <= scenario_total * 1e-12);
        // The ranking is part of the determinism contract: a four-worker
        // run produces the identical vector, floats included.
        let four = CorpusRunner::new().with_threads(4).run(&corpus).unwrap();
        assert_eq!(report.hotspots, four.hotspots);
        // top_hotspots clamps like PowerReport::hotspots does.
        assert_eq!(report.top_hotspots(3).len(), 3);
        assert_eq!(report.top_hotspots(usize::MAX).len(), report.hotspots.len());
    }

    #[test]
    fn cdm_overestimates_activity_on_the_standard_corpus() {
        // The paper's headline claim, asserted corpus-wide: summed over all
        // entries, CDM schedules more events and produces at least as many
        // glitches as DDM.
        let corpus = standard_corpus();
        let stats = CorpusRunner::new().run(&corpus).unwrap().stats;
        let mut ddm = halotis_sim::SimulationStats::default();
        let mut cdm = halotis_sim::SimulationStats::default();
        let mut mix = halotis_sim::SimulationStats::default();
        let (mut ddm_glitches, mut cdm_glitches) = (0usize, 0usize);
        for entry in &stats.entries {
            for scenario in &entry.scenarios {
                match scenario.model.as_str() {
                    "DDM" => {
                        ddm.merge(&scenario.stats);
                        ddm_glitches += scenario.glitch_pulses;
                    }
                    "CDM" => {
                        cdm.merge(&scenario.stats);
                        cdm_glitches += scenario.glitch_pulses;
                    }
                    "MIX" => mix.merge(&scenario.stats),
                    other => panic!("unexpected model {other}"),
                }
            }
        }
        assert!(
            cdm.events_scheduled > ddm.events_scheduled,
            "CDM {} <= DDM {}",
            cdm.events_scheduled,
            ddm.events_scheduled
        );
        assert!(
            cdm_glitches >= ddm_glitches,
            "CDM glitches {cdm_glitches} < DDM glitches {ddm_glitches}"
        );
        assert!(ddm.degraded_transitions > 0);
        // The mixed column sits between the two pure models: conventional
        // on part of the cell set cannot filter more than full degradation.
        assert!(
            mix.events_scheduled >= ddm.events_scheduled,
            "MIX {} < DDM {}",
            mix.events_scheduled,
            ddm.events_scheduled
        );
        assert!(
            mix.events_scheduled <= cdm.events_scheduled,
            "MIX {} > CDM {}",
            mix.events_scheduled,
            cdm.events_scheduled
        );
        assert!(mix.degraded_transitions > 0, "MIX still degrades somewhere");
    }
}
