//! Reference electrical simulator — the workspace's HSPICE substitute.
//!
//! The paper validates HALOTIS against HSPICE runs of a 0.6 µm CMOS
//! multiplier.  A transistor-level simulator is outside the scope of this
//! reproduction, so this crate provides the closest behavioural equivalent
//! that exercises the same comparison: every gate output is modelled as a
//! **first-order RC stage** driven towards the rail selected by the gate's
//! boolean function, and the whole circuit is integrated with a fixed time
//! step.
//!
//! The properties the paper relies on are preserved:
//!
//! * full analog waveforms with finite slopes — one net can sit at any
//!   intermediate voltage,
//! * natural glitch attenuation: a brief excitation only partially charges
//!   the output node, so narrow pulses shrink stage after stage and
//!   eventually disappear (the degradation effect the DDM models
//!   analytically),
//! * per-input threshold behaviour: whether a partial-swing pulse toggles a
//!   fanout gate depends on that gate's own switching threshold,
//! * a runtime orders of magnitude above an event-driven logic simulator —
//!   the basis of the paper's Table 2 CPU-time comparison.
//!
//! The per-gate time constant is calibrated so that a step input reproduces
//! the library's nominal propagation delay, which keeps the analog reference
//! and the logic simulators consistent with each other (see
//! [`model::stage_time_constant`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterize;
pub mod config;
pub mod engine;
pub mod model;
pub mod result;

pub use config::AnalogConfig;
pub use engine::AnalogSimulator;
pub use result::AnalogResult;
