//! Fixed-step integration engine.

use std::fmt;
use std::time::Instant;

use halotis_core::{LogicLevel, Time, Voltage};
use halotis_delay::PinTiming;
use halotis_netlist::eval;
use halotis_netlist::library::LibraryError;
use halotis_netlist::{Library, Netlist};
use halotis_waveform::{AnalogWaveform, DigitalWaveform, Stimulus, Trace};

use crate::config::AnalogConfig;
use crate::model;
use crate::result::AnalogResult;

/// Errors that can abort an analog run.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalogError {
    /// A gate uses a cell kind the library does not characterise.
    Library(LibraryError),
    /// A primary input has no stimulus.
    UndrivenPrimaryInput {
        /// The net name.
        net: String,
    },
}

impl fmt::Display for AnalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalogError::Library(err) => write!(f, "library error: {err}"),
            AnalogError::UndrivenPrimaryInput { net } => {
                write!(f, "primary input {net} has no stimulus")
            }
        }
    }
}

impl std::error::Error for AnalogError {}

impl From<LibraryError> for AnalogError {
    fn from(err: LibraryError) -> Self {
        AnalogError::Library(err)
    }
}

/// The behavioural analog simulator.
///
/// # Example
///
/// ```
/// use halotis_analog::{AnalogConfig, AnalogSimulator};
/// use halotis_core::{LogicLevel, Time};
/// use halotis_netlist::{generators, technology};
/// use halotis_waveform::Stimulus;
///
/// let netlist = generators::inverter_chain(2);
/// let library = technology::cmos06();
/// let mut stimulus = Stimulus::new(library.default_input_slew());
/// stimulus.set_initial("in", LogicLevel::Low);
/// stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
/// let simulator = AnalogSimulator::new(&netlist, &library);
/// let result = simulator.run(&stimulus, &AnalogConfig::default())?;
/// assert_eq!(result.ideal_waveform("out").unwrap().final_level(), LogicLevel::High);
/// # Ok::<(), halotis_analog::engine::AnalogError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct AnalogSimulator<'a> {
    netlist: &'a Netlist,
    library: &'a Library,
}

/// The analog voltage of a stimulus waveform at time `t`: the last started
/// ramp wins, rails are held between ramps.
fn stimulus_voltage(waveform: &DigitalWaveform, t: Time, vdd: Voltage) -> Voltage {
    let initial = match waveform.initial() {
        LogicLevel::High => vdd,
        LogicLevel::Low | LogicLevel::Unknown => Voltage::ZERO,
    };
    let mut voltage = initial;
    for transition in waveform.transitions() {
        if transition.start() > t {
            break;
        }
        voltage = transition.voltage_at(t, vdd);
    }
    voltage
}

impl<'a> AnalogSimulator<'a> {
    /// Creates an analog simulator for `netlist` characterised by `library`.
    pub fn new(netlist: &'a Netlist, library: &'a Library) -> Self {
        AnalogSimulator { netlist, library }
    }

    /// Runs the fixed-step integration.
    ///
    /// # Errors
    ///
    /// * [`AnalogError::UndrivenPrimaryInput`] if the stimulus does not cover
    ///   every primary input,
    /// * [`AnalogError::Library`] if a gate uses an uncharacterised cell.
    pub fn run(
        &self,
        stimulus: &Stimulus,
        config: &AnalogConfig,
    ) -> Result<AnalogResult, AnalogError> {
        let started = Instant::now();
        let netlist = self.netlist;
        let library = self.library;
        let vdd = library.vdd();
        let dt = config.time_step;
        let dt_seconds = dt.as_ns() * 1e-9;

        // Static per-gate data: thresholds per input pin and rise/fall time
        // constants calibrated against the nominal delay under the actual
        // load.
        let mut gate_thresholds: Vec<Vec<Voltage>> = Vec::with_capacity(netlist.gate_count());
        let mut gate_taus: Vec<(f64, f64)> = Vec::with_capacity(netlist.gate_count());
        for gate in netlist.gates() {
            let mut thresholds = Vec::with_capacity(gate.inputs().len());
            for input in 0..gate.inputs().len() {
                let pin = halotis_core::PinRef::new(gate.id(), input as u32);
                let fraction = netlist.input_threshold_fraction(pin, library)?;
                thresholds.push(vdd.fraction(fraction));
            }
            gate_thresholds.push(thresholds);
            let timing: PinTiming = library.pin(gate.kind(), 0)?.timing;
            let load = netlist.net_load(gate.output(), library)?;
            let slew = library.default_input_slew();
            gate_taus.push((
                model::stage_time_constant(&timing.rise, load, slew),
                model::stage_time_constant(&timing.fall, load, slew),
            ));
        }

        // Initial conditions from the zero-delay solution of the initial
        // stimulus levels.
        let mut assignments = Vec::with_capacity(netlist.primary_inputs().len());
        for &input in netlist.primary_inputs() {
            let name = netlist.net(input).name();
            let Some(waveform) = stimulus.waveform(name) else {
                return Err(AnalogError::UndrivenPrimaryInput {
                    net: name.to_string(),
                });
            };
            assignments.push((input, waveform.initial()));
        }
        let initial_levels = eval::evaluate(netlist, &assignments);
        let mut voltages: Vec<Voltage> = initial_levels
            .iter()
            .map(|&level| model::target_voltage(level, vdd))
            .collect();

        let end_time = config.end_time.unwrap_or_else(|| {
            stimulus
                .last_activity()
                .unwrap_or(Time::ZERO)
                .saturating_add(config.settle_margin)
        });

        let mut waveform_store: Vec<AnalogWaveform> = netlist
            .nets()
            .iter()
            .map(|_| AnalogWaveform::new())
            .collect();
        for (index, waveform) in waveform_store.iter_mut().enumerate() {
            waveform.push(Time::ZERO, voltages[index]);
        }

        let primary_inputs: Vec<(usize, &DigitalWaveform)> = netlist
            .primary_inputs()
            .iter()
            .map(|&net| {
                (
                    net.index(),
                    stimulus
                        .waveform(netlist.net(net).name())
                        .expect("checked above"),
                )
            })
            .collect();

        let mut targets: Vec<Voltage> = vec![Voltage::ZERO; netlist.net_count()];
        let mut level_scratch: Vec<LogicLevel> = Vec::with_capacity(3);
        let mut time = Time::ZERO;
        let mut steps = 0usize;
        // `record_every` is a public field: a direct write of 0 must mean
        // "every step", not "record nothing" (is_multiple_of(0) is only true
        // at step 0).
        let record_every = config.record_every.max(1);
        while time < end_time {
            time += dt;
            steps += 1;

            // Primary inputs follow the stimulus ramps exactly.
            for &(net_index, waveform) in &primary_inputs {
                voltages[net_index] = stimulus_voltage(waveform, time, vdd);
            }

            // Evaluate each gate's pull target from the *current* voltages
            // (Jacobi update: all outputs then move simultaneously).
            for (gate_index, gate) in netlist.gates().iter().enumerate() {
                level_scratch.clear();
                for (pin, &net) in gate.inputs().iter().enumerate() {
                    level_scratch.push(model::thresholded_level(
                        voltages[net.index()],
                        gate_thresholds[gate_index][pin],
                    ));
                }
                let output_level = gate.kind().evaluate(&level_scratch);
                targets[gate.output().index()] = model::target_voltage(output_level, vdd);
            }
            for (gate_index, gate) in netlist.gates().iter().enumerate() {
                let out = gate.output().index();
                let (rise_tau, fall_tau) = gate_taus[gate_index];
                voltages[out] = model::integrate_step(
                    voltages[out],
                    targets[out],
                    rise_tau,
                    fall_tau,
                    dt_seconds,
                    vdd,
                );
            }

            if steps.is_multiple_of(record_every) {
                for (index, waveform) in waveform_store.iter_mut().enumerate() {
                    waveform.push(time, voltages[index]);
                }
            }
        }
        // Always record the final state.
        for (index, waveform) in waveform_store.iter_mut().enumerate() {
            if waveform.end_time() != Some(time) {
                waveform.push(time, voltages[index]);
            }
        }

        let mut waveforms = Trace::new();
        for net in netlist.nets() {
            waveforms.insert(
                net.name(),
                std::mem::take(&mut waveform_store[net.id().index()]),
            );
        }
        let output_names = netlist
            .primary_outputs()
            .iter()
            .map(|&net| netlist.net(net).name().to_string())
            .collect();
        Ok(AnalogResult::new(
            vdd,
            waveforms,
            output_names,
            steps,
            started.elapsed(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_core::TimeDelta;
    use halotis_netlist::{generators, technology};

    fn library() -> Library {
        technology::cmos06()
    }

    fn step_stimulus(lib: &Library) -> Stimulus {
        let mut stimulus = Stimulus::new(lib.default_input_slew());
        stimulus.set_initial("in", LogicLevel::Low);
        stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
        stimulus
    }

    #[test]
    fn inverter_chain_settles_to_the_boolean_solution() {
        let netlist = generators::inverter_chain(3);
        let lib = library();
        let simulator = AnalogSimulator::new(&netlist, &lib);
        let result = simulator
            .run(&step_stimulus(&lib), &AnalogConfig::default())
            .unwrap();
        // Odd number of inversions: out ends low after the rising input.
        assert_eq!(
            result.ideal_waveform("out").unwrap().final_level(),
            LogicLevel::Low
        );
        assert_eq!(
            result.ideal_waveform("in").unwrap().final_level(),
            LogicLevel::High
        );
        assert!(result.steps() > 1000);
    }

    #[test]
    fn step_delay_is_close_to_the_library_nominal_delay() {
        let netlist = generators::inverter_chain(1);
        let lib = library();
        let simulator = AnalogSimulator::new(&netlist, &lib);
        let result = simulator
            .run(&step_stimulus(&lib), &AnalogConfig::default())
            .unwrap();
        let input = result.ideal_waveform("in").unwrap();
        let output = result.ideal_waveform("out").unwrap();
        let input_edge = input.changes()[0].0;
        let output_edge = output.changes()[0].0;
        let measured = output_edge - input_edge;
        // The lone inverter drives only the wire capacitance; its nominal
        // delay is on the order of 120-200 ps.  The analog stage is
        // calibrated to reproduce that within a factor of ~2 (the boolean
        // target flips at the input threshold, not at the 50 % point).
        assert!(
            measured > TimeDelta::from_ps(40.0) && measured < TimeDelta::from_ps(500.0),
            "measured step delay {measured}"
        );
    }

    #[test]
    fn narrow_pulses_attenuate_through_the_chain() {
        let netlist = generators::inverter_chain(6);
        let lib = library();
        let simulator = AnalogSimulator::new(&netlist, &lib);
        let mut stimulus = Stimulus::new(lib.default_input_slew());
        stimulus.set_initial("in", LogicLevel::Low);
        stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
        stimulus.drive("in", Time::from_ns(1.15), LogicLevel::Low);
        let result = simulator.run(&stimulus, &AnalogConfig::default()).unwrap();
        // The pulse is visible early in the chain but vanishes at the end.
        let first_stage = result.ideal_waveform("n1").unwrap().edge_count();
        let last_stage = result.ideal_waveform("out").unwrap().edge_count();
        assert!(
            last_stage < first_stage.max(1) || last_stage == 0,
            "pulse did not attenuate: first {first_stage} edges, last {last_stage} edges"
        );
        // Peak excursion on the last net stays well below the rail.
        let (lo, hi) = result.waveform("out").unwrap().voltage_range().unwrap();
        assert!(hi <= lib.vdd());
        assert!(lo >= Voltage::ZERO);
    }

    #[test]
    fn undriven_input_is_rejected() {
        let netlist = generators::c17();
        let lib = library();
        let simulator = AnalogSimulator::new(&netlist, &lib);
        let stimulus = Stimulus::new(lib.default_input_slew());
        let err = simulator
            .run(&stimulus, &AnalogConfig::default())
            .unwrap_err();
        assert!(matches!(err, AnalogError::UndrivenPrimaryInput { .. }));
        assert!(err.to_string().contains("no stimulus"));
    }

    #[test]
    fn explicit_end_time_bounds_the_run() {
        let netlist = generators::inverter_chain(2);
        let lib = library();
        let simulator = AnalogSimulator::new(&netlist, &lib);
        let config = AnalogConfig::default()
            .with_end_time(Time::from_ns(2.0))
            .with_time_step(TimeDelta::from_ps(2.0));
        let result = simulator.run(&step_stimulus(&lib), &config).unwrap();
        assert_eq!(result.steps(), 1000);
        let end = result.waveform("out").unwrap().end_time().unwrap();
        assert!(end >= Time::from_ns(2.0));
    }

    #[test]
    fn stimulus_voltage_tracks_ramps_and_rails() {
        let vdd = Voltage::from_volts(5.0);
        let mut w = DigitalWaveform::new(LogicLevel::Low);
        w.push(halotis_waveform::Transition::new(
            Time::from_ns(1.0),
            TimeDelta::from_ps(400.0),
            halotis_core::Edge::Rise,
        ));
        assert_eq!(stimulus_voltage(&w, Time::ZERO, vdd), Voltage::ZERO);
        let mid = stimulus_voltage(&w, Time::from_ns(1.2), vdd);
        assert!((mid.as_volts() - 2.5).abs() < 1e-9);
        assert_eq!(stimulus_voltage(&w, Time::from_ns(3.0), vdd), vdd);
    }
}
