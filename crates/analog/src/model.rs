//! The first-order behavioural gate model.
//!
//! Each gate output is a single RC node: the gate's boolean function (taken
//! over the *thresholded* input voltages) selects which rail the node is
//! pulled towards, and the pull strength is a time constant calibrated so a
//! step input reproduces the library's nominal propagation delay.
//!
//! For a first-order stage the 50 % point of a step response is reached
//! after `tau * ln 2`, so calibrating
//! `tau = nominal_delay / ln 2` makes the analog model agree with the logic
//! simulators on isolated, full-swing transitions — differences then come
//! only from the dynamic effects this crate is meant to expose (partial
//! swings, glitch attenuation), which is exactly how the paper uses HSPICE.

use halotis_core::{Capacitance, Edge, LogicLevel, TimeDelta, Voltage};
use halotis_delay::EdgeTiming;

/// `ln 2`, the step-response 50 % factor of a first-order stage.
pub const LN2: f64 = std::f64::consts::LN_2;

/// The time constant (in seconds) of a gate output stage for the given
/// timing arc, load and assumed input transition time.
///
/// # Example
///
/// ```
/// use halotis_analog::model;
/// use halotis_core::{Capacitance, TimeDelta};
/// use halotis_delay::EdgeTiming;
///
/// let arc = EdgeTiming::example();
/// let tau = model::stage_time_constant(&arc, Capacitance::from_femtofarads(20.0), TimeDelta::from_ps(200.0));
/// assert!(tau > 0.0);
/// ```
pub fn stage_time_constant(arc: &EdgeTiming, load: Capacitance, input_slew: TimeDelta) -> f64 {
    let delay = arc.propagation.nominal_delay(load, input_slew);
    (delay.as_ns().max(1e-3) * 1e-9) / LN2
}

/// Converts an analog input voltage into the logic level seen by a gate
/// input with threshold `vt`.
pub fn thresholded_level(voltage: Voltage, vt: Voltage) -> LogicLevel {
    LogicLevel::from_bool(voltage >= vt)
}

/// The rail voltage a gate output is pulled towards for a given boolean
/// output value.
pub fn target_voltage(output: LogicLevel, vdd: Voltage) -> Voltage {
    match output {
        LogicLevel::High => vdd,
        LogicLevel::Low | LogicLevel::Unknown => Voltage::ZERO,
    }
}

/// One forward-Euler step of the output node:
/// `v += dt * (target - v) / tau`, with `tau` selected from the rise or fall
/// arc depending on the pull direction.
pub fn integrate_step(
    voltage: Voltage,
    target: Voltage,
    rise_tau: f64,
    fall_tau: f64,
    dt_seconds: f64,
    vdd: Voltage,
) -> Voltage {
    let tau = if target > voltage { rise_tau } else { fall_tau };
    let delta = (target.as_volts() - voltage.as_volts()) * (dt_seconds / tau).min(1.0);
    Voltage::from_volts(voltage.as_volts() + delta).clamp(Voltage::ZERO, vdd)
}

/// Chooses which timing arc describes the current pull direction.
pub fn pull_edge(voltage: Voltage, target: Voltage) -> Edge {
    if target > voltage {
        Edge::Rise
    } else {
        Edge::Fall
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vdd() -> Voltage {
        Voltage::from_volts(5.0)
    }

    #[test]
    fn time_constant_reproduces_nominal_delay_at_half_swing() {
        let arc = EdgeTiming::example();
        let load = Capacitance::from_femtofarads(20.0);
        let slew = TimeDelta::from_ps(200.0);
        let tau = stage_time_constant(&arc, load, slew);
        let delay = arc.propagation.nominal_delay(load, slew).as_ns() * 1e-9;
        // After `delay` seconds a step response reaches 50 %.
        let reached = 1.0 - (-(delay / tau)).exp();
        assert!((reached - 0.5).abs() < 1e-9);
    }

    #[test]
    fn thresholding_matches_comparison() {
        assert_eq!(
            thresholded_level(Voltage::from_volts(3.0), Voltage::from_volts(2.5)),
            LogicLevel::High
        );
        assert_eq!(
            thresholded_level(Voltage::from_volts(1.0), Voltage::from_volts(2.5)),
            LogicLevel::Low
        );
    }

    #[test]
    fn targets_are_the_rails() {
        assert_eq!(target_voltage(LogicLevel::High, vdd()), vdd());
        assert_eq!(target_voltage(LogicLevel::Low, vdd()), Voltage::ZERO);
        assert_eq!(target_voltage(LogicLevel::Unknown, vdd()), Voltage::ZERO);
    }

    #[test]
    fn integration_converges_to_target() {
        let mut v = Voltage::ZERO;
        let tau = 200e-12;
        for _ in 0..10_000 {
            v = integrate_step(v, vdd(), tau, tau, 1e-12, vdd());
        }
        assert!((v.as_volts() - 5.0).abs() < 0.01);
    }

    #[test]
    fn integration_is_stable_for_large_steps() {
        // A step larger than tau must not overshoot thanks to the (dt/tau)
        // clamp.
        let v = integrate_step(Voltage::ZERO, vdd(), 1e-12, 1e-12, 1e-9, vdd());
        assert!(v <= vdd());
        assert!(v >= Voltage::ZERO);
    }

    #[test]
    fn pull_edge_tracks_direction() {
        assert_eq!(pull_edge(Voltage::ZERO, vdd()), Edge::Rise);
        assert_eq!(pull_edge(vdd(), Voltage::ZERO), Edge::Fall);
    }
}
