//! Degradation-coefficient characterisation against the analog reference.
//!
//! The paper's flow obtains the DDM constants `A`, `B`, `C` (eq. 2–3) by
//! fitting electrical-simulation measurements of each cell.  This module
//! reproduces that bring-up step using the workspace's own analog reference:
//!
//! 1. [`measure_step_delays`] — sweep the output load and measure the
//!    isolated-step propagation delay of a cell (used to sanity-check the
//!    nominal model),
//! 2. [`measure_degradation`] — apply pulse pairs with a decreasing gap `T`
//!    and measure the *degraded* delay of the second transition, producing
//!    `(T, tp/tp0)` curves,
//! 3. [`fit_tau`] — fit the exponential of eq. 1 to those curves and return
//!    the effective time constant, which can then be compared against (or
//!    used to build) the library's [`DegradationCoeffs`].
//!
//! [`DegradationCoeffs`]: halotis_delay::DegradationCoeffs

use halotis_core::{LogicLevel, Time, TimeDelta};
use halotis_netlist::{CellKind, Library, NetlistBuilder};
use halotis_waveform::Stimulus;

use crate::config::AnalogConfig;
use crate::engine::{AnalogError, AnalogSimulator};

/// One isolated-step delay measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepDelaySample {
    /// Number of identical inverter loads attached to the output.
    pub fanout: usize,
    /// Measured 50 %-to-50 % propagation delay.
    pub delay: TimeDelta,
}

/// One degradation measurement: the second edge of a pulse pair arriving
/// `elapsed` after the first produced a delay `degraded`, against the
/// isolated-step delay `nominal`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradationSample {
    /// Time between the two output excitations, `T` in eq. 1.
    pub elapsed: TimeDelta,
    /// The degraded delay of the second transition.
    pub degraded: TimeDelta,
    /// The isolated (nominal) delay measured on the same setup.
    pub nominal: TimeDelta,
}

impl DegradationSample {
    /// The attenuation factor `tp / tp0` in `[0, 1]`.
    pub fn factor(&self) -> f64 {
        if self.nominal.is_zero() {
            return 1.0;
        }
        (self.degraded.as_fs() as f64 / self.nominal.as_fs() as f64).clamp(0.0, 1.0)
    }
}

/// Builds a device-under-test netlist: one inverter driving `fanout`
/// inverter loads.
fn dut(fanout: usize) -> halotis_netlist::Netlist {
    let mut builder = NetlistBuilder::new(format!("dut_inv_f{fanout}"));
    let input = builder.add_input("in");
    let out = builder.add_net("out");
    builder
        .add_gate(CellKind::Inv, "dut", &[input], out)
        .expect("dut gate is valid");
    builder.mark_output(out);
    for index in 0..fanout {
        let sink = builder.add_net(format!("sink{index}"));
        builder
            .add_gate(CellKind::Inv, format!("load{index}"), &[out], sink)
            .expect("load gate is valid");
        builder.mark_output(sink);
    }
    builder.build().expect("dut netlist is valid")
}

fn falling_input_step(library: &Library, at: Time) -> Stimulus {
    let mut stimulus = Stimulus::new(library.default_input_slew());
    stimulus.set_initial("in", LogicLevel::Low);
    stimulus.drive("in", at, LogicLevel::High);
    stimulus
}

fn measure_output_delay(
    library: &Library,
    netlist: &halotis_netlist::Netlist,
    stimulus: &Stimulus,
    input_edge_index: usize,
    output_edge_index: usize,
    end: Time,
) -> Result<Option<TimeDelta>, AnalogError> {
    let result = AnalogSimulator::new(netlist, library).run(
        stimulus,
        &AnalogConfig::default()
            .with_time_step(TimeDelta::from_ps(1.0))
            .with_end_time(end),
    )?;
    let input = result.ideal_waveform("in").expect("in exists");
    let output = result.ideal_waveform("out").expect("out exists");
    let input_edge = input.changes().get(input_edge_index).map(|&(t, _)| t);
    let output_edge = output.changes().get(output_edge_index).map(|&(t, _)| t);
    Ok(match (input_edge, output_edge) {
        (Some(i), Some(o)) if o > i => Some(o - i),
        _ => None,
    })
}

/// Measures the isolated-step delay of an inverter for each fanout in
/// `fanouts`.
///
/// # Errors
///
/// Propagates analog-simulation errors.
pub fn measure_step_delays(
    library: &Library,
    fanouts: &[usize],
) -> Result<Vec<StepDelaySample>, AnalogError> {
    let mut samples = Vec::with_capacity(fanouts.len());
    for &fanout in fanouts {
        let netlist = dut(fanout);
        let stimulus = falling_input_step(library, Time::from_ns(1.0));
        let delay = measure_output_delay(library, &netlist, &stimulus, 0, 0, Time::from_ns(5.0))?
            .unwrap_or(TimeDelta::ZERO);
        samples.push(StepDelaySample { fanout, delay });
    }
    Ok(samples)
}

/// Measures degradation: the input makes a rising edge at 1 ns and a falling
/// edge `gap` later, so the output (an inverter) is re-excited after roughly
/// `T = gap`.  The delay of the second output transition is compared against
/// the delay measured with a very large gap.
///
/// # Errors
///
/// Propagates analog-simulation errors.
pub fn measure_degradation(
    library: &Library,
    fanout: usize,
    gaps: &[TimeDelta],
) -> Result<Vec<DegradationSample>, AnalogError> {
    let netlist = dut(fanout);
    // Nominal: second edge far away from the first.
    let nominal = {
        let mut stimulus = falling_input_step(library, Time::from_ns(1.0));
        stimulus.drive("in", Time::from_ns(6.0), LogicLevel::Low);
        measure_output_delay(library, &netlist, &stimulus, 1, 1, Time::from_ns(10.0))?
            .unwrap_or(TimeDelta::ZERO)
    };
    let mut samples = Vec::with_capacity(gaps.len());
    for &gap in gaps {
        let mut stimulus = falling_input_step(library, Time::from_ns(1.0));
        stimulus.drive("in", Time::from_ns(1.0) + gap, LogicLevel::Low);
        let degraded =
            measure_output_delay(library, &netlist, &stimulus, 1, 1, Time::from_ns(10.0))?;
        if let Some(degraded) = degraded {
            samples.push(DegradationSample {
                elapsed: gap,
                degraded,
                nominal,
            });
        }
    }
    Ok(samples)
}

/// Fits the eq. 1 exponential `factor = 1 - exp(-(T - T0)/tau)` to measured
/// degradation samples by a least-squares over the linearised form
/// `-ln(1 - factor) = (T - T0)/tau`, returning `(tau, t_zero)`.
///
/// Returns `None` when fewer than two usable samples exist (factors of
/// exactly 1 carry no information about `tau`).
pub fn fit_tau(samples: &[DegradationSample]) -> Option<(TimeDelta, TimeDelta)> {
    let points: Vec<(f64, f64)> = samples
        .iter()
        .filter(|sample| sample.factor() < 0.999 && sample.factor() > 0.001)
        .map(|sample| {
            let y = -(1.0 - sample.factor()).ln();
            (sample.elapsed.as_ps(), y)
        })
        .collect();
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|(x, _)| x).sum();
    let sy: f64 = points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let denominator = n * sxx - sx * sx;
    if denominator.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denominator;
    let intercept = (sy - slope * sx) / n;
    if slope <= 0.0 {
        return None;
    }
    let tau_ps = 1.0 / slope;
    let t_zero_ps = (-intercept / slope).max(0.0);
    Some((TimeDelta::from_ps(tau_ps), TimeDelta::from_ps(t_zero_ps)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_netlist::technology;

    #[test]
    fn step_delay_grows_with_fanout() {
        let library = technology::cmos06();
        let samples = measure_step_delays(&library, &[1, 4, 8]).unwrap();
        assert_eq!(samples.len(), 3);
        assert!(samples[0].delay > TimeDelta::ZERO);
        assert!(
            samples[2].delay > samples[0].delay,
            "fanout 8 ({}) not slower than fanout 1 ({})",
            samples[2].delay,
            samples[0].delay
        );
    }

    #[test]
    fn degradation_factor_shrinks_for_tight_pulses() {
        let library = technology::cmos06();
        let gaps: Vec<TimeDelta> = [250.0, 400.0, 800.0, 2000.0]
            .iter()
            .map(|&ps| TimeDelta::from_ps(ps))
            .collect();
        let samples = measure_degradation(&library, 2, &gaps).unwrap();
        assert!(samples.len() >= 2, "too few usable samples: {samples:?}");
        // The widest gap is essentially undegraded; the tightest usable gap
        // shows a clearly reduced factor.
        let first = samples.first().unwrap();
        let last = samples.last().unwrap();
        assert!(last.factor() > 0.9, "wide-gap factor {}", last.factor());
        assert!(
            first.factor() < last.factor() + 1e-9,
            "factors not monotone: {} vs {}",
            first.factor(),
            last.factor()
        );
    }

    #[test]
    fn fitted_tau_is_on_the_order_of_the_gate_delay() {
        let library = technology::cmos06();
        let gaps: Vec<TimeDelta> = (1..=8)
            .map(|i| TimeDelta::from_ps(200.0 + 150.0 * i as f64))
            .collect();
        let samples = measure_degradation(&library, 2, &gaps).unwrap();
        if let Some((tau, t_zero)) = fit_tau(&samples) {
            assert!(
                tau > TimeDelta::from_ps(30.0) && tau < TimeDelta::from_ns(3.0),
                "implausible tau {tau}"
            );
            assert!(t_zero < TimeDelta::from_ns(1.5), "implausible T0 {t_zero}");
        } else {
            // All measured factors were ~1 (no degradation observed): that is
            // only acceptable if even the tightest gap is generous compared
            // with the gate delay, which is not the case here.
            panic!("degradation fit found no usable samples: {samples:?}");
        }
    }

    #[test]
    fn fit_tau_rejects_degenerate_inputs() {
        assert_eq!(fit_tau(&[]), None);
        let flat = vec![
            DegradationSample {
                elapsed: TimeDelta::from_ps(100.0),
                degraded: TimeDelta::from_ps(200.0),
                nominal: TimeDelta::from_ps(200.0),
            };
            3
        ];
        assert_eq!(fit_tau(&flat), None);
    }

    #[test]
    fn sample_factor_is_clamped() {
        let sample = DegradationSample {
            elapsed: TimeDelta::from_ps(100.0),
            degraded: TimeDelta::from_ps(300.0),
            nominal: TimeDelta::from_ps(200.0),
        };
        assert_eq!(sample.factor(), 1.0);
        let zero_nominal = DegradationSample {
            elapsed: TimeDelta::from_ps(100.0),
            degraded: TimeDelta::from_ps(300.0),
            nominal: TimeDelta::ZERO,
        };
        assert_eq!(zero_nominal.factor(), 1.0);
    }
}
