//! Analog-simulation configuration.

use halotis_core::{Time, TimeDelta};

/// Knobs of the fixed-step analog integrator.
///
/// # Example
///
/// ```
/// use halotis_analog::AnalogConfig;
/// use halotis_core::{Time, TimeDelta};
///
/// let config = AnalogConfig::default()
///     .with_time_step(TimeDelta::from_ps(2.0))
///     .with_end_time(Time::from_ns(25.0));
/// assert_eq!(config.time_step, TimeDelta::from_ps(2.0));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnalogConfig {
    /// Integration step.  Must be well below the fastest gate time constant
    /// (the default 1 ps is ~100× smaller than the synthetic 0.6 µm gate
    /// delays).
    pub time_step: TimeDelta,
    /// End of the simulated window.  When `None`, the engine runs until the
    /// last stimulus edge plus a settle margin.
    pub end_time: Option<Time>,
    /// Extra quiet time appended after the last stimulus edge when no
    /// explicit end time is given.
    pub settle_margin: TimeDelta,
    /// Record one voltage sample every this many integration steps (1 =
    /// every step).  Decimation keeps waveform memory reasonable on long
    /// runs without affecting the integration itself.
    pub record_every: usize,
}

impl AnalogConfig {
    /// Replaces the integration step.
    pub fn with_time_step(mut self, step: TimeDelta) -> Self {
        self.time_step = step.max(TimeDelta::from_fs(1));
        self
    }

    /// Replaces the end time.
    pub fn with_end_time(mut self, end: Time) -> Self {
        self.end_time = Some(end);
        self
    }

    /// Replaces the sample decimation factor.
    pub fn with_record_every(mut self, every: usize) -> Self {
        self.record_every = every.max(1);
        self
    }
}

impl Default for AnalogConfig {
    fn default() -> Self {
        AnalogConfig {
            time_step: TimeDelta::from_ps(1.0),
            end_time: None,
            settle_margin: TimeDelta::from_ns(5.0),
            record_every: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let config = AnalogConfig::default();
        assert_eq!(config.time_step, TimeDelta::from_ps(1.0));
        assert!(config.end_time.is_none());
        assert!(config.record_every >= 1);
    }

    #[test]
    fn builders_clamp_degenerate_values() {
        let config = AnalogConfig::default()
            .with_time_step(TimeDelta::ZERO)
            .with_record_every(0)
            .with_end_time(Time::from_ns(10.0));
        assert!(config.time_step > TimeDelta::ZERO);
        assert_eq!(config.record_every, 1);
        assert_eq!(config.end_time, Some(Time::from_ns(10.0)));
    }
}
