//! Analog-simulation results.

use std::time::Duration;

use halotis_core::Voltage;
use halotis_waveform::{AnalogWaveform, IdealWaveform, Trace};

/// The waveforms and metadata produced by one analog run.
#[derive(Clone, Debug)]
pub struct AnalogResult {
    vdd: Voltage,
    waveforms: Trace<AnalogWaveform>,
    output_names: Vec<String>,
    steps: usize,
    wall_time: Duration,
}

impl AnalogResult {
    pub(crate) fn new(
        vdd: Voltage,
        waveforms: Trace<AnalogWaveform>,
        output_names: Vec<String>,
        steps: usize,
        wall_time: Duration,
    ) -> Self {
        AnalogResult {
            vdd,
            waveforms,
            output_names,
            steps,
            wall_time,
        }
    }

    /// The supply voltage of the run.
    pub fn vdd(&self) -> Voltage {
        self.vdd
    }

    /// The analog waveform of every net, keyed by net name.
    pub fn waveforms(&self) -> &Trace<AnalogWaveform> {
        &self.waveforms
    }

    /// The analog waveform of one net.
    pub fn waveform(&self, net: &str) -> Option<&AnalogWaveform> {
        self.waveforms.get(net)
    }

    /// One net digitised with a half-swing observer.
    pub fn ideal_waveform(&self, net: &str) -> Option<IdealWaveform> {
        self.waveforms.get(net).map(|w| w.digitize(self.vdd.half()))
    }

    /// One net digitised with an arbitrary observation threshold.
    pub fn ideal_waveform_at(&self, net: &str, vt: Voltage) -> Option<IdealWaveform> {
        self.waveforms.get(net).map(|w| w.digitize(vt))
    }

    /// The primary-output names, in netlist declaration order.
    pub fn output_names(&self) -> &[String] {
        &self.output_names
    }

    /// All primary outputs digitised at half swing, in declaration order —
    /// directly comparable with
    /// [`SimulationResult::output_trace`](halotis_sim::SimulationResult::output_trace).
    pub fn output_trace(&self) -> Trace<IdealWaveform> {
        self.output_names
            .iter()
            .filter_map(|name| {
                self.waveforms
                    .get(name)
                    .map(|w| (name.clone(), w.digitize(self.vdd.half())))
            })
            .collect()
    }

    /// Number of integration steps taken.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Wall-clock time of the integration loop (Table 2 metric).
    pub fn wall_time(&self) -> Duration {
        self.wall_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_core::{LogicLevel, Time};

    fn sample() -> AnalogResult {
        let vdd = Voltage::from_volts(5.0);
        let mut w = AnalogWaveform::new();
        w.push(Time::ZERO, Voltage::ZERO);
        w.push(Time::from_ns(1.0), vdd);
        let mut trace = Trace::new();
        trace.insert("out", w);
        AnalogResult::new(
            vdd,
            trace,
            vec!["out".to_string()],
            1000,
            Duration::from_millis(12),
        )
    }

    #[test]
    fn accessors_and_digitisation() {
        let result = sample();
        assert_eq!(result.vdd(), Voltage::from_volts(5.0));
        assert_eq!(result.steps(), 1000);
        assert_eq!(result.wall_time(), Duration::from_millis(12));
        assert_eq!(result.output_names(), &["out".to_string()]);
        assert!(result.waveform("out").is_some());
        assert!(result.waveform("missing").is_none());
        let ideal = result.ideal_waveform("out").unwrap();
        assert_eq!(ideal.final_level(), LogicLevel::High);
        let strict = result
            .ideal_waveform_at("out", Voltage::from_volts(4.9))
            .unwrap();
        assert_eq!(strict.final_level(), LogicLevel::High);
        assert_eq!(result.output_trace().len(), 1);
        assert_eq!(result.waveforms().len(), 1);
    }
}
