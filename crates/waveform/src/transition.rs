//! The linear-ramp transition of the HALOTIS paper.
//!
//! Paper §3.1: *"A transition is a signal changing from 0 to 1 or 1 to 0.
//! They are approximated by a linear curve and determined by the rise or
//! fall time (tau_x) and the instant when the transition begins (t0)."*

use halotis_core::{Edge, Time, TimeDelta, Voltage};

/// A linear voltage ramp on a net: the paper's *transition*.
///
/// The signal starts moving at [`start`](Transition::start) and completes its
/// full swing after [`slew`](Transition::slew).  The direction is given by
/// [`edge`](Transition::edge).
///
/// # Example
///
/// ```
/// use halotis_core::{Edge, Time, TimeDelta, Voltage};
/// use halotis_waveform::Transition;
///
/// let vdd = Voltage::from_volts(5.0);
/// let t = Transition::new(Time::from_ns(1.0), TimeDelta::from_ps(400.0), Edge::Rise);
/// // The ramp crosses 2.5 V (half swing) half-way through its slew.
/// assert_eq!(t.crossing_time(vdd.half(), vdd), Some(Time::from_ns(1.2)));
/// assert_eq!(t.end(), Time::from_ns(1.4));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Transition {
    start: Time,
    slew: TimeDelta,
    edge: Edge,
}

impl Transition {
    /// Creates a transition beginning at `start`, completing its swing in
    /// `slew`, in the direction `edge`.
    ///
    /// A non-positive `slew` is clamped to 1 fs so the ramp always has a
    /// well-defined, strictly increasing crossing time for every threshold.
    pub fn new(start: Time, slew: TimeDelta, edge: Edge) -> Self {
        Transition {
            start,
            slew: slew.max(TimeDelta::from_fs(1)),
            edge,
        }
    }

    /// The instant the ramp starts moving (`t0` in the paper).
    pub fn start(&self) -> Time {
        self.start
    }

    /// The full-swing ramp duration (`tau_x` in the paper).
    pub fn slew(&self) -> TimeDelta {
        self.slew
    }

    /// The direction of the transition.
    pub fn edge(&self) -> Edge {
        self.edge
    }

    /// The instant the ramp reaches its final rail.
    pub fn end(&self) -> Time {
        self.start + self.slew
    }

    /// The instant the ramp crosses half the supply, the conventional single
    /// observation threshold.
    pub fn midpoint(&self, vdd: Voltage) -> Time {
        self.crossing_time(vdd.half(), vdd)
            .expect("half-supply threshold is always crossed")
    }

    /// The voltage of the ramp at time `t`, clamped to the rails outside the
    /// ramp interval.
    pub fn voltage_at(&self, t: Time, vdd: Voltage) -> Voltage {
        let (v_from, v_to) = match self.edge {
            Edge::Rise => (Voltage::ZERO, vdd),
            Edge::Fall => (vdd, Voltage::ZERO),
        };
        if t <= self.start {
            return v_from;
        }
        if t >= self.end() {
            return v_to;
        }
        let frac = (t - self.start).as_fs() as f64 / self.slew.as_fs() as f64;
        v_from + (v_to - v_from) * frac
    }

    /// The instant this ramp crosses the threshold `vt`, or `None` when the
    /// threshold lies outside the `(0, Vdd)` swing and is therefore never
    /// crossed.
    ///
    /// This is exactly the paper's *event* generation: one transition
    /// produces one event per fanout input, each at the time the ramp
    /// crosses that input's own threshold (paper Fig. 3).
    pub fn crossing_time(&self, vt: Voltage, vdd: Voltage) -> Option<Time> {
        let fraction = vt / vdd;
        if !(0.0..=1.0).contains(&fraction) {
            return None;
        }
        let progress = match self.edge {
            Edge::Rise => fraction,
            Edge::Fall => 1.0 - fraction,
        };
        Some(self.start + self.slew.scale(progress))
    }

    /// Shifts the transition in time by `offset`.
    pub fn shifted(&self, offset: TimeDelta) -> Transition {
        Transition {
            start: self.start + offset,
            slew: self.slew,
            edge: self.edge,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn vdd() -> Voltage {
        Voltage::from_volts(5.0)
    }

    #[test]
    fn accessors_and_end() {
        let t = Transition::new(Time::from_ns(2.0), TimeDelta::from_ps(300.0), Edge::Fall);
        assert_eq!(t.start(), Time::from_ns(2.0));
        assert_eq!(t.slew(), TimeDelta::from_ps(300.0));
        assert_eq!(t.edge(), Edge::Fall);
        assert_eq!(t.end(), Time::from_ns(2.3));
    }

    #[test]
    fn zero_slew_is_clamped() {
        let t = Transition::new(Time::ZERO, TimeDelta::ZERO, Edge::Rise);
        assert_eq!(t.slew(), TimeDelta::from_fs(1));
        assert!(t.end() > t.start());
    }

    #[test]
    fn rising_crossings_are_ordered_by_threshold() {
        let t = Transition::new(Time::from_ns(1.0), TimeDelta::from_ps(500.0), Edge::Rise);
        let lo = t.crossing_time(Voltage::from_volts(1.0), vdd()).unwrap();
        let mid = t.crossing_time(Voltage::from_volts(2.5), vdd()).unwrap();
        let hi = t.crossing_time(Voltage::from_volts(4.0), vdd()).unwrap();
        assert!(lo < mid && mid < hi);
        assert_eq!(mid, Time::from_ns(1.25));
    }

    #[test]
    fn falling_crossings_are_reversed() {
        let t = Transition::new(Time::from_ns(1.0), TimeDelta::from_ps(500.0), Edge::Fall);
        let lo = t.crossing_time(Voltage::from_volts(1.0), vdd()).unwrap();
        let hi = t.crossing_time(Voltage::from_volts(4.0), vdd()).unwrap();
        // A falling ramp reaches the high threshold first.
        assert!(hi < lo);
    }

    #[test]
    fn out_of_swing_thresholds_are_never_crossed() {
        let t = Transition::new(Time::ZERO, TimeDelta::from_ps(100.0), Edge::Rise);
        assert_eq!(t.crossing_time(Voltage::from_volts(6.0), vdd()), None);
        assert_eq!(t.crossing_time(Voltage::from_volts(-0.1), vdd()), None);
    }

    #[test]
    fn voltage_profile_is_clamped_linear() {
        let t = Transition::new(Time::from_ns(1.0), TimeDelta::from_ps(400.0), Edge::Rise);
        assert_eq!(t.voltage_at(Time::ZERO, vdd()), Voltage::ZERO);
        assert_eq!(t.voltage_at(Time::from_ns(2.0), vdd()), vdd());
        let mid = t.voltage_at(Time::from_ns(1.2), vdd());
        assert!((mid.as_volts() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn falling_voltage_profile() {
        let t = Transition::new(Time::from_ns(1.0), TimeDelta::from_ps(400.0), Edge::Fall);
        assert_eq!(t.voltage_at(Time::ZERO, vdd()), vdd());
        assert_eq!(t.voltage_at(Time::from_ns(2.0), vdd()), Voltage::ZERO);
    }

    #[test]
    fn shifted_preserves_shape() {
        let t = Transition::new(Time::from_ns(1.0), TimeDelta::from_ps(250.0), Edge::Rise);
        let s = t.shifted(TimeDelta::from_ns(1.0));
        assert_eq!(s.start(), Time::from_ns(2.0));
        assert_eq!(s.slew(), t.slew());
        assert_eq!(s.edge(), t.edge());
    }

    #[test]
    fn midpoint_equals_half_supply_crossing() {
        let t = Transition::new(Time::from_ns(3.0), TimeDelta::from_ps(600.0), Edge::Fall);
        assert_eq!(t.midpoint(vdd()), Time::from_ns(3.3));
    }

    proptest! {
        #[test]
        fn prop_crossing_within_ramp(start in 0.0f64..10.0, slew in 1.0f64..1000.0, frac in 0.0f64..1.0, rise in proptest::bool::ANY) {
            let edge = if rise { Edge::Rise } else { Edge::Fall };
            let t = Transition::new(Time::from_ns(start), TimeDelta::from_ps(slew), edge);
            let vt = vdd().fraction(frac);
            let cross = t.crossing_time(vt, vdd()).unwrap();
            prop_assert!(cross >= t.start());
            prop_assert!(cross <= t.end());
        }

        #[test]
        fn prop_voltage_bounded_by_rails(at in -5.0f64..15.0) {
            let t = Transition::new(Time::from_ns(1.0), TimeDelta::from_ps(777.0), Edge::Rise);
            let v = t.voltage_at(Time::from_ns(at), vdd());
            prop_assert!(v >= Voltage::ZERO && v <= vdd());
        }
    }
}
