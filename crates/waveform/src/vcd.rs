//! Value-change-dump (VCD) export.
//!
//! Writes [`IdealWaveform`] traces in the standard
//! IEEE 1364 VCD text format so simulation results can be inspected in any
//! waveform viewer (GTKWave, Surfer, ...).

use std::io::{self, Write};

use halotis_core::{LogicLevel, Time};

use crate::digital::IdealWaveform;
use crate::trace::Trace;

/// Timescale declared in the VCD header.  Femtoseconds keep full resolution.
const TIMESCALE: &str = "1 fs";

fn identifier(index: usize) -> String {
    // VCD identifiers are short printable-ASCII strings; base-94 encode.
    let mut n = index;
    let mut id = String::new();
    loop {
        id.push((33 + (n % 94)) as u8 as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    id
}

fn level_char(level: LogicLevel) -> char {
    level.as_char()
}

/// Incremental VCD emission: header once, then time-ordered value changes.
///
/// [`write()`] needs the whole trace up front; simulation observers that
/// stream results (e.g. `halotis_sim`'s `VcdStreamer`) instead declare the
/// signal set once and push `(time, signal, level)` changes as they become
/// final.  Changes must arrive in non-decreasing time order — the VCD format
/// has no way to rewind a timestamp ([`change`](StreamWriter::change)
/// enforces it).
///
/// # Example
///
/// ```
/// use halotis_core::{LogicLevel, Time};
/// use halotis_waveform::vcd::StreamWriter;
///
/// let mut out = Vec::new();
/// let mut vcd = StreamWriter::new(&mut out, "top", &[("a", LogicLevel::Low)])?;
/// vcd.change(Time::from_ns(1.0), 0, LogicLevel::High)?;
/// vcd.change(Time::from_ns(2.0), 0, LogicLevel::Low)?;
/// drop(vcd);
/// let text = String::from_utf8(out).unwrap();
/// assert!(text.contains("$var wire 1 ! a $end"));
/// assert!(text.contains("#1000000"));
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct StreamWriter<W: Write> {
    out: W,
    ids: Vec<String>,
    current_time: Option<Time>,
}

impl<W: Write> StreamWriter<W> {
    /// Writes the VCD header for `signals` (name, initial level) under the
    /// module name `scope` and returns the writer ready for changes.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error of the underlying writer.
    pub fn new(mut out: W, scope: &str, signals: &[(&str, LogicLevel)]) -> io::Result<Self> {
        writeln!(out, "$date HALOTIS simulation $end")?;
        writeln!(out, "$version halotis-waveform $end")?;
        writeln!(out, "$timescale {TIMESCALE} $end")?;
        writeln!(out, "$scope module {scope} $end")?;
        let ids: Vec<String> = (0..signals.len()).map(identifier).collect();
        for (index, (name, _)) in signals.iter().enumerate() {
            writeln!(out, "$var wire 1 {} {} $end", ids[index], name)?;
        }
        writeln!(out, "$upscope $end")?;
        writeln!(out, "$enddefinitions $end")?;

        writeln!(out, "#0")?;
        writeln!(out, "$dumpvars")?;
        for (index, (_, initial)) in signals.iter().enumerate() {
            writeln!(out, "{}{}", level_char(*initial), ids[index])?;
        }
        writeln!(out, "$end")?;
        Ok(StreamWriter {
            out,
            ids,
            current_time: None,
        })
    }

    /// Number of declared signals.
    pub fn signal_count(&self) -> usize {
        self.ids.len()
    }

    /// Records one value change of signal `signal` (its index in the
    /// `signals` slice passed to [`new`](StreamWriter::new)) at `time`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the underlying writer.
    ///
    /// # Panics
    ///
    /// Panics when `signal` is out of range or `time` precedes an already
    /// emitted timestamp (VCD documents are strictly forward in time).
    pub fn change(&mut self, time: Time, signal: usize, level: LogicLevel) -> io::Result<()> {
        if self.current_time != Some(time) {
            assert!(
                self.current_time.is_none_or(|current| time > current),
                "VCD timestamps must be non-decreasing: {time} after {}",
                self.current_time.expect("checked: current time exists"),
            );
            writeln!(self.out, "#{}", time.as_fs().max(0))?;
            self.current_time = Some(time);
        }
        writeln!(self.out, "{}{}", level_char(level), self.ids[signal])?;
        Ok(())
    }

    /// Consumes the writer, returning the underlying output.
    pub fn into_inner(self) -> W {
        self.out
    }
}

/// Writes a VCD document for `trace` under the module name `scope`.
///
/// # Errors
///
/// Propagates any I/O error of the underlying writer.
///
/// # Example
///
/// ```
/// use halotis_core::{LogicLevel, Time};
/// use halotis_waveform::{vcd, IdealWaveform, Trace};
///
/// let mut trace = Trace::new();
/// trace.insert(
///     "s0",
///     IdealWaveform::from_changes(LogicLevel::Low, vec![(Time::from_ns(1.0), LogicLevel::High)]),
/// );
/// let mut out = Vec::new();
/// vcd::write(&mut out, "multiplier", &trace)?;
/// let text = String::from_utf8(out).unwrap();
/// assert!(text.contains("$var wire 1"));
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write<W: Write>(out: W, scope: &str, trace: &Trace<IdealWaveform>) -> io::Result<()> {
    let signals: Vec<(&str, LogicLevel)> = trace
        .iter()
        .map(|(name, waveform)| (name, waveform.initial()))
        .collect();
    let mut writer = StreamWriter::new(out, scope, &signals)?;

    // Merge all change points in time order.
    let mut events: Vec<(Time, usize, LogicLevel)> = Vec::new();
    for (index, (_, waveform)) in trace.iter().enumerate() {
        for &(t, level) in waveform.changes() {
            events.push((t, index, level));
        }
    }
    events.sort_by_key(|&(t, index, _)| (t, index));

    for (t, index, level) in events {
        writer.change(t, index, level)?;
    }
    Ok(())
}

/// Renders the VCD document into a `String` (convenience wrapper over
/// [`write()`]).
pub fn to_string(scope: &str, trace: &Trace<IdealWaveform>) -> String {
    let mut buffer = Vec::new();
    write(&mut buffer, scope, trace).expect("writing to a Vec cannot fail");
    String::from_utf8(buffer).expect("VCD output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace<IdealWaveform> {
        let mut trace = Trace::new();
        trace.insert(
            "a",
            IdealWaveform::from_changes(
                LogicLevel::Low,
                vec![
                    (Time::from_ns(1.0), LogicLevel::High),
                    (Time::from_ns(2.0), LogicLevel::Low),
                ],
            ),
        );
        trace.insert(
            "b",
            IdealWaveform::from_changes(
                LogicLevel::Unknown,
                vec![(Time::from_ns(1.5), LogicLevel::High)],
            ),
        );
        trace
    }

    #[test]
    fn header_declares_all_signals() {
        let text = to_string("top", &sample_trace());
        assert!(text.contains("$scope module top $end"));
        assert!(text.contains("$var wire 1 ! a $end"));
        assert!(text.contains("$var wire 1 \" b $end"));
        assert!(text.contains("$timescale 1 fs $end"));
    }

    #[test]
    fn initial_values_are_dumped() {
        let text = to_string("top", &sample_trace());
        assert!(text.contains("$dumpvars"));
        assert!(text.contains("0!"));
        assert!(text.contains("x\""));
    }

    #[test]
    fn changes_appear_in_time_order() {
        let text = to_string("top", &sample_trace());
        let t1 = text.find("#1000000").expect("1 ns timestamp");
        let t15 = text.find("#1500000").expect("1.5 ns timestamp");
        let t2 = text.find("#2000000").expect("2 ns timestamp");
        assert!(t1 < t15 && t15 < t2);
    }

    #[test]
    fn identifiers_are_unique_for_many_signals() {
        let ids: Vec<String> = (0..200).map(identifier).collect();
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len());
    }

    #[test]
    fn empty_trace_still_produces_valid_header() {
        let trace: Trace<IdealWaveform> = Trace::new();
        let text = to_string("empty", &trace);
        assert!(text.contains("$enddefinitions $end"));
    }
}
