//! Value-change-dump (VCD) export.
//!
//! Writes [`IdealWaveform`] traces in the standard
//! IEEE 1364 VCD text format so simulation results can be inspected in any
//! waveform viewer (GTKWave, Surfer, ...).

use std::io::{self, Write};

use halotis_core::{LogicLevel, Time};

use crate::digital::IdealWaveform;
use crate::trace::Trace;

/// Timescale declared in the VCD header.  Femtoseconds keep full resolution.
const TIMESCALE: &str = "1 fs";

fn identifier(index: usize) -> String {
    // VCD identifiers are short printable-ASCII strings; base-94 encode.
    let mut n = index;
    let mut id = String::new();
    loop {
        id.push((33 + (n % 94)) as u8 as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    id
}

fn level_char(level: LogicLevel) -> char {
    level.as_char()
}

/// Writes a VCD document for `trace` under the module name `scope`.
///
/// # Errors
///
/// Propagates any I/O error of the underlying writer.
///
/// # Example
///
/// ```
/// use halotis_core::{LogicLevel, Time};
/// use halotis_waveform::{vcd, IdealWaveform, Trace};
///
/// let mut trace = Trace::new();
/// trace.insert(
///     "s0",
///     IdealWaveform::from_changes(LogicLevel::Low, vec![(Time::from_ns(1.0), LogicLevel::High)]),
/// );
/// let mut out = Vec::new();
/// vcd::write(&mut out, "multiplier", &trace)?;
/// let text = String::from_utf8(out).unwrap();
/// assert!(text.contains("$var wire 1"));
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write<W: Write>(mut out: W, scope: &str, trace: &Trace<IdealWaveform>) -> io::Result<()> {
    writeln!(out, "$date HALOTIS simulation $end")?;
    writeln!(out, "$version halotis-waveform $end")?;
    writeln!(out, "$timescale {TIMESCALE} $end")?;
    writeln!(out, "$scope module {scope} $end")?;
    let ids: Vec<String> = (0..trace.len()).map(identifier).collect();
    for (index, (name, _)) in trace.iter().enumerate() {
        writeln!(out, "$var wire 1 {} {} $end", ids[index], name)?;
    }
    writeln!(out, "$upscope $end")?;
    writeln!(out, "$enddefinitions $end")?;

    // Initial values.
    writeln!(out, "#0")?;
    writeln!(out, "$dumpvars")?;
    for (index, (_, waveform)) in trace.iter().enumerate() {
        writeln!(out, "{}{}", level_char(waveform.initial()), ids[index])?;
    }
    writeln!(out, "$end")?;

    // Merge all change points in time order.
    let mut events: Vec<(Time, usize, LogicLevel)> = Vec::new();
    for (index, (_, waveform)) in trace.iter().enumerate() {
        for &(t, level) in waveform.changes() {
            events.push((t, index, level));
        }
    }
    events.sort_by_key(|&(t, index, _)| (t, index));

    let mut current_time: Option<Time> = None;
    for (t, index, level) in events {
        if current_time != Some(t) {
            writeln!(out, "#{}", t.as_fs().max(0))?;
            current_time = Some(t);
        }
        writeln!(out, "{}{}", level_char(level), ids[index])?;
    }
    Ok(())
}

/// Renders the VCD document into a `String` (convenience wrapper over
/// [`write()`]).
pub fn to_string(scope: &str, trace: &Trace<IdealWaveform>) -> String {
    let mut buffer = Vec::new();
    write(&mut buffer, scope, trace).expect("writing to a Vec cannot fail");
    String::from_utf8(buffer).expect("VCD output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace<IdealWaveform> {
        let mut trace = Trace::new();
        trace.insert(
            "a",
            IdealWaveform::from_changes(
                LogicLevel::Low,
                vec![
                    (Time::from_ns(1.0), LogicLevel::High),
                    (Time::from_ns(2.0), LogicLevel::Low),
                ],
            ),
        );
        trace.insert(
            "b",
            IdealWaveform::from_changes(
                LogicLevel::Unknown,
                vec![(Time::from_ns(1.5), LogicLevel::High)],
            ),
        );
        trace
    }

    #[test]
    fn header_declares_all_signals() {
        let text = to_string("top", &sample_trace());
        assert!(text.contains("$scope module top $end"));
        assert!(text.contains("$var wire 1 ! a $end"));
        assert!(text.contains("$var wire 1 \" b $end"));
        assert!(text.contains("$timescale 1 fs $end"));
    }

    #[test]
    fn initial_values_are_dumped() {
        let text = to_string("top", &sample_trace());
        assert!(text.contains("$dumpvars"));
        assert!(text.contains("0!"));
        assert!(text.contains("x\""));
    }

    #[test]
    fn changes_appear_in_time_order() {
        let text = to_string("top", &sample_trace());
        let t1 = text.find("#1000000").expect("1 ns timestamp");
        let t15 = text.find("#1500000").expect("1.5 ns timestamp");
        let t2 = text.find("#2000000").expect("2 ns timestamp");
        assert!(t1 < t15 && t15 < t2);
    }

    #[test]
    fn identifiers_are_unique_for_many_signals() {
        let ids: Vec<String> = (0..200).map(identifier).collect();
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len());
    }

    #[test]
    fn empty_trace_still_produces_valid_header() {
        let trace: Trace<IdealWaveform> = Trace::new();
        let text = to_string("empty", &trace);
        assert!(text.contains("$enddefinitions $end"));
    }
}
