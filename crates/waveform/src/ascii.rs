//! ASCII waveform rendering.
//!
//! The paper's figures 6 and 7 show the multiplier outputs `s7..s0` as
//! stacked digital waveforms over a 25 ns window.  This module reproduces
//! that presentation in plain text so the `reproduce` binary can print a
//! directly comparable picture:
//!
//! ```text
//! s1 ____/▔▔▔\____/▔\______
//! ```
//!
//! Each column is one sample of the observed level on a uniform time grid;
//! `_` is low, `▔` is high, `/` and `\` mark the sample where a change
//! happens, and `?` is an unknown level.

use halotis_core::{LogicLevel, Time, TimeDelta};

use crate::digital::IdealWaveform;
use crate::trace::Trace;

/// Rendering options for [`render`] / [`render_trace`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AsciiOptions {
    /// Start of the rendered window.
    pub start: Time,
    /// End of the rendered window.
    pub end: Time,
    /// Number of character columns.
    pub columns: usize,
}

impl AsciiOptions {
    /// A window from `start` to `end` rendered with `columns` characters.
    pub fn new(start: Time, end: Time, columns: usize) -> Self {
        AsciiOptions {
            start,
            end,
            columns: columns.max(1),
        }
    }

    fn sample_time(&self, column: usize) -> Time {
        let span = self.end - self.start;
        let step = span.as_fs() as f64 / self.columns as f64;
        self.start + TimeDelta::from_fs((step * (column as f64 + 0.5)).round() as i64)
    }
}

fn glyph(previous: LogicLevel, current: LogicLevel) -> char {
    match (previous, current) {
        (LogicLevel::Low, LogicLevel::High) => '/',
        (LogicLevel::High, LogicLevel::Low) => '\\',
        (_, LogicLevel::High) => '\u{2594}', // '▔'
        (_, LogicLevel::Low) => '_',
        (_, LogicLevel::Unknown) => '?',
    }
}

/// Renders one waveform as a single text line.
///
/// # Example
///
/// ```
/// use halotis_core::{LogicLevel, Time};
/// use halotis_waveform::{ascii, IdealWaveform};
///
/// let w = IdealWaveform::from_changes(
///     LogicLevel::Low,
///     vec![(Time::from_ns(5.0), LogicLevel::High)],
/// );
/// let line = ascii::render(&w, &ascii::AsciiOptions::new(Time::ZERO, Time::from_ns(10.0), 10));
/// assert_eq!(line.chars().count(), 10);
/// assert!(line.contains('/'));
/// ```
pub fn render(waveform: &IdealWaveform, options: &AsciiOptions) -> String {
    let mut line = String::with_capacity(options.columns);
    let mut previous = waveform.level_at(options.start);
    for column in 0..options.columns {
        let level = waveform.level_at(options.sample_time(column));
        line.push(glyph(previous, level));
        previous = level;
    }
    line
}

/// Renders a whole trace, one named line per signal, aligned on the name
/// column — the textual equivalent of the paper's stacked waveform plots.
pub fn render_trace(trace: &Trace<IdealWaveform>, options: &AsciiOptions) -> String {
    let width = trace.names().map(str::len).max().unwrap_or(0);
    let mut out = String::new();
    for (name, waveform) in trace.iter() {
        out.push_str(&format!(
            "{name:>width$} {}\n",
            render(waveform, options),
            width = width
        ));
    }
    out
}

/// Renders a time axis line matching the rendering window, with a tick label
/// every `tick` interval (in ns).
pub fn render_axis(options: &AsciiOptions, tick: TimeDelta, label_width: usize) -> String {
    let mut out = " ".repeat(label_width + 1);
    let span = (options.end - options.start).as_fs() as f64;
    let mut t = options.start;
    while t <= options.end {
        let column = ((t - options.start).as_fs() as f64 / span * options.columns as f64) as usize;
        let label = format!("{:.0}", t.as_ns());
        let position = label_width + 1 + column;
        while out.chars().count() < position {
            out.push(' ');
        }
        out.push_str(&label);
        t += tick;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pulse() -> IdealWaveform {
        IdealWaveform::from_changes(
            LogicLevel::Low,
            vec![
                (Time::from_ns(2.0), LogicLevel::High),
                (Time::from_ns(6.0), LogicLevel::Low),
            ],
        )
    }

    #[test]
    fn render_has_requested_width() {
        let options = AsciiOptions::new(Time::ZERO, Time::from_ns(10.0), 40);
        assert_eq!(render(&pulse(), &options).chars().count(), 40);
    }

    #[test]
    fn render_shows_rise_high_fall_low() {
        let options = AsciiOptions::new(Time::ZERO, Time::from_ns(10.0), 20);
        let line = render(&pulse(), &options);
        assert!(line.starts_with('_'));
        assert!(line.contains('/'));
        assert!(line.contains('\u{2594}'));
        assert!(line.contains('\\'));
        assert!(line.ends_with('_'));
    }

    #[test]
    fn unknown_levels_render_as_question_marks() {
        let w = IdealWaveform::from_changes(LogicLevel::Unknown, vec![]);
        let options = AsciiOptions::new(Time::ZERO, Time::from_ns(1.0), 5);
        assert_eq!(render(&w, &options), "?????");
    }

    #[test]
    fn trace_rendering_aligns_names() {
        let mut trace = Trace::new();
        trace.insert("s10", pulse());
        trace.insert("s0", pulse());
        let options = AsciiOptions::new(Time::ZERO, Time::from_ns(10.0), 10);
        let text = render_trace(&trace, &options);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("s10 "));
        assert!(lines[1].starts_with(" s0 "));
    }

    #[test]
    fn axis_contains_tick_labels() {
        let options = AsciiOptions::new(Time::ZERO, Time::from_ns(25.0), 50);
        let axis = render_axis(&options, TimeDelta::from_ns(5.0), 3);
        for label in ["0", "5", "10", "15", "20", "25"] {
            assert!(axis.contains(label), "missing label {label} in {axis:?}");
        }
    }

    #[test]
    fn zero_columns_is_clamped() {
        let options = AsciiOptions::new(Time::ZERO, Time::from_ns(1.0), 0);
        assert_eq!(options.columns, 1);
    }
}
