//! Input stimulus description.
//!
//! A [`Stimulus`] assigns each primary input a starting level and a list of
//! driven transitions.  The helper [`Stimulus::drive_bus_value`] applies a
//! numeric value across a bus of named inputs, which is how the paper's
//! multiplication sequences (`0x0, 7x7, 5xA, Ex6, FxF`) are expressed.

use halotis_core::{Edge, LogicLevel, Time, TimeDelta};

use crate::digital::DigitalWaveform;
use crate::trace::Trace;
use crate::transition::Transition;

/// A set of driven primary-input waveforms.
///
/// # Example
///
/// ```
/// use halotis_core::{LogicLevel, Time, TimeDelta};
/// use halotis_waveform::Stimulus;
///
/// let mut stim = Stimulus::new(TimeDelta::from_ps(200.0));
/// stim.set_initial("a", LogicLevel::Low);
/// stim.drive("a", Time::from_ns(1.0), LogicLevel::High);
/// stim.drive("a", Time::from_ns(4.0), LogicLevel::Low);
/// assert_eq!(stim.waveform("a").unwrap().len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Stimulus {
    default_slew: TimeDelta,
    inputs: Trace<DigitalWaveform>,
}

impl Stimulus {
    /// Creates an empty stimulus whose driven edges use `default_slew` as
    /// their input transition time.
    pub fn new(default_slew: TimeDelta) -> Self {
        Stimulus {
            default_slew: default_slew.max(TimeDelta::from_fs(1)),
            inputs: Trace::new(),
        }
    }

    /// The transition time applied to driven edges.
    pub fn default_slew(&self) -> TimeDelta {
        self.default_slew
    }

    /// Declares an input and its initial level (before any driven edge).
    /// Re-declaring an input resets its waveform.
    pub fn set_initial(&mut self, input: impl Into<String>, level: LogicLevel) {
        self.inputs.insert(input, DigitalWaveform::new(level));
    }

    /// Drives `input` towards `level` at `time` using the default slew.
    ///
    /// Driving the level the input already targets is a no-op, so vector
    /// sequences can be applied blindly.  Inputs that were never declared
    /// with [`set_initial`](Stimulus::set_initial) start at
    /// [`LogicLevel::Low`].
    pub fn drive(&mut self, input: impl Into<String>, time: Time, level: LogicLevel) {
        let name = input.into();
        if self.inputs.get(&name).is_none() {
            self.inputs
                .insert(name.clone(), DigitalWaveform::new(LogicLevel::Low));
        }
        let slew = self.default_slew;
        let waveform = self.inputs.get_mut(&name).expect("just inserted");
        let current = waveform.final_target();
        if let Some(edge) = Edge::between(current, level) {
            waveform.push(Transition::new(time, slew, edge));
        } else if current == LogicLevel::Unknown && level.is_defined() {
            // First defined value of an unknown input: drive it as an edge
            // from the opposite rail so downstream gates see a transition.
            let edge = if level == LogicLevel::High {
                Edge::Rise
            } else {
                Edge::Fall
            };
            waveform.push(Transition::new(time, slew, edge));
        }
    }

    /// Drives an ordered list of single-bit inputs (`bits[0]` = LSB) with the
    /// binary representation of `value` at `time`.
    pub fn drive_bus_value(&mut self, bits: &[&str], value: u64, time: Time) {
        for (position, bit) in bits.iter().enumerate() {
            let level = LogicLevel::from_bool((value >> position) & 1 == 1);
            self.drive(*bit, time, level);
        }
    }

    /// The waveform driven on `input`, if that input exists.
    pub fn waveform(&self, input: &str) -> Option<&DigitalWaveform> {
        self.inputs.get(input)
    }

    /// All driven inputs as a trace, in declaration order.
    pub fn as_trace(&self) -> &Trace<DigitalWaveform> {
        &self.inputs
    }

    /// Names of all driven inputs.
    pub fn input_names(&self) -> impl Iterator<Item = &str> {
        self.inputs.names()
    }

    /// The latest driven edge end time, or `None` for an empty stimulus.
    /// Simulators use this to size their time horizon.
    pub fn last_activity(&self) -> Option<Time> {
        self.inputs
            .iter()
            .flat_map(|(_, w)| w.transitions().iter().map(|t| t.end()))
            .max()
    }
}

/// Builds the multiplier stimulus used throughout the paper's evaluation:
/// a sequence of `(a, b)` operand pairs applied every `period` on buses
/// `a_bits` / `b_bits` (LSB first), starting at `start`.
///
/// # Example
///
/// ```
/// use halotis_core::{Time, TimeDelta};
/// use halotis_waveform::stimulus::vector_sequence;
///
/// let a = ["a0", "a1", "a2", "a3"];
/// let b = ["b0", "b1", "b2", "b3"];
/// // The paper's Figure 6 sequence: 0x0, 7x7, 5xA, Ex6, FxF.
/// let stim = vector_sequence(
///     &a, &b,
///     &[(0x0, 0x0), (0x7, 0x7), (0x5, 0xA), (0xE, 0x6), (0xF, 0xF)],
///     Time::from_ns(0.0),
///     TimeDelta::from_ns(5.0),
///     TimeDelta::from_ps(200.0),
/// );
/// assert_eq!(stim.input_names().count(), 8);
/// ```
pub fn vector_sequence(
    a_bits: &[&str],
    b_bits: &[&str],
    pairs: &[(u64, u64)],
    start: Time,
    period: TimeDelta,
    slew: TimeDelta,
) -> Stimulus {
    let mut stim = Stimulus::new(slew);
    for bit in a_bits.iter().chain(b_bits.iter()) {
        stim.set_initial(*bit, LogicLevel::Low);
    }
    for (index, &(a, b)) in pairs.iter().enumerate() {
        let at = start + period * index as i64;
        stim.drive_bus_value(a_bits, a, at);
        stim.drive_bus_value(b_bits, b, at);
    }
    stim
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drive_only_records_real_changes() {
        let mut stim = Stimulus::new(TimeDelta::from_ps(100.0));
        stim.set_initial("x", LogicLevel::Low);
        stim.drive("x", Time::from_ns(1.0), LogicLevel::Low); // no-op
        stim.drive("x", Time::from_ns(2.0), LogicLevel::High);
        stim.drive("x", Time::from_ns(3.0), LogicLevel::High); // no-op
        stim.drive("x", Time::from_ns(4.0), LogicLevel::Low);
        assert_eq!(stim.waveform("x").unwrap().len(), 2);
    }

    #[test]
    fn undeclared_inputs_default_to_low() {
        let mut stim = Stimulus::new(TimeDelta::from_ps(100.0));
        stim.drive("y", Time::from_ns(1.0), LogicLevel::High);
        let w = stim.waveform("y").unwrap();
        assert_eq!(w.initial(), LogicLevel::Low);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn unknown_initial_gets_explicit_edge() {
        let mut stim = Stimulus::new(TimeDelta::from_ps(100.0));
        stim.set_initial("z", LogicLevel::Unknown);
        stim.drive("z", Time::from_ns(1.0), LogicLevel::Low);
        assert_eq!(stim.waveform("z").unwrap().len(), 1);
        assert_eq!(
            stim.waveform("z").unwrap().transitions()[0].edge(),
            Edge::Fall
        );
    }

    #[test]
    fn bus_values_drive_individual_bits() {
        let mut stim = Stimulus::new(TimeDelta::from_ps(100.0));
        let bits = ["d0", "d1", "d2", "d3"];
        for b in bits {
            stim.set_initial(b, LogicLevel::Low);
        }
        stim.drive_bus_value(&bits, 0xA, Time::from_ns(1.0)); // 1010
        assert_eq!(stim.waveform("d0").unwrap().len(), 0);
        assert_eq!(stim.waveform("d1").unwrap().len(), 1);
        assert_eq!(stim.waveform("d2").unwrap().len(), 0);
        assert_eq!(stim.waveform("d3").unwrap().len(), 1);
    }

    #[test]
    fn vector_sequence_covers_paper_figure6_inputs() {
        let a = ["a0", "a1", "a2", "a3"];
        let b = ["b0", "b1", "b2", "b3"];
        let stim = vector_sequence(
            &a,
            &b,
            &[(0x0, 0x0), (0x7, 0x7), (0x5, 0xA), (0xE, 0x6), (0xF, 0xF)],
            Time::from_ns(0.0),
            TimeDelta::from_ns(5.0),
            TimeDelta::from_ps(200.0),
        );
        // a0: 0,1,1,0,1 -> edges at 5 (rise), 15 (fall), 20 (rise)
        let a0 = stim.waveform("a0").unwrap();
        assert_eq!(a0.len(), 3);
        assert_eq!(a0.transitions()[0].start(), Time::from_ns(5.0));
        assert_eq!(a0.transitions()[1].start(), Time::from_ns(15.0));
        // b3: 0, 0, 1, 0, 1 -> edges at 10 (rise), 15 (fall), 20 (rise)
        let b3 = stim.waveform("b3").unwrap();
        assert_eq!(b3.len(), 3);
        assert!(stim.last_activity().unwrap() >= Time::from_ns(20.0));
    }

    #[test]
    fn default_slew_is_clamped_positive() {
        let stim = Stimulus::new(TimeDelta::ZERO);
        assert!(stim.default_slew() > TimeDelta::ZERO);
        assert_eq!(stim.last_activity(), None);
    }
}
