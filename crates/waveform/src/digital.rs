//! Per-net digital waveforms built from linear-ramp transitions.
//!
//! A [`DigitalWaveform`] is what a HALOTIS net carries: an initial logic
//! level followed by a time-ordered sequence of [`Transition`]s (the paper's
//! list-type structure of `tau_x`, `t0` pairs).  Because HALOTIS keeps *all*
//! output transitions — even runt pulses that a given observer never sees —
//! turning a waveform into a classical two-level view requires choosing an
//! observation threshold; [`DigitalWaveform::ideal`] performs that
//! projection and returns an [`IdealWaveform`].

use halotis_core::{Edge, LogicLevel, Time, TimeDelta, Voltage};

use crate::transition::Transition;

/// A net waveform: an initial level plus a time-ordered list of ramp
/// transitions.
///
/// # Example
///
/// ```
/// use halotis_core::{Edge, LogicLevel, Time, TimeDelta, Voltage};
/// use halotis_waveform::{DigitalWaveform, Transition};
///
/// let vdd = Voltage::from_volts(5.0);
/// let mut w = DigitalWaveform::new(LogicLevel::Low);
/// w.push(Transition::new(Time::from_ns(1.0), TimeDelta::from_ps(200.0), Edge::Rise));
/// w.push(Transition::new(Time::from_ns(3.0), TimeDelta::from_ps(200.0), Edge::Fall));
/// let ideal = w.ideal(vdd.half(), vdd);
/// assert_eq!(ideal.level_at(Time::from_ns(2.0)), LogicLevel::High);
/// assert_eq!(ideal.level_at(Time::from_ns(4.0)), LogicLevel::Low);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DigitalWaveform {
    initial: LogicLevel,
    transitions: Vec<Transition>,
}

impl DigitalWaveform {
    /// Creates an empty waveform resting at `initial`.
    pub fn new(initial: LogicLevel) -> Self {
        DigitalWaveform {
            initial,
            transitions: Vec::new(),
        }
    }

    /// The level the net holds before any transition.
    pub fn initial(&self) -> LogicLevel {
        self.initial
    }

    /// Appends a transition, keeping the list ordered by start time.
    ///
    /// Out-of-order pushes (a transition starting before an already recorded
    /// one) are inserted at their correct position; this happens in HALOTIS
    /// when a strongly degraded transition is scheduled with a near-zero
    /// delay.
    pub fn push(&mut self, transition: Transition) {
        match self
            .transitions
            .iter()
            .rposition(|t| t.start() <= transition.start())
        {
            Some(pos) => self.transitions.insert(pos + 1, transition),
            None => self.transitions.insert(0, transition),
        }
    }

    /// The recorded transitions in start-time order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Number of recorded transitions (the net's raw switching count).
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// `true` when no transition has been recorded.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// The level the net is heading towards after the last transition
    /// (or the initial level when there is none).
    pub fn final_target(&self) -> LogicLevel {
        self.transitions
            .last()
            .map(|t| t.edge().target_level())
            .unwrap_or(self.initial)
    }

    /// Projects the waveform onto an observer with threshold `vt`.
    ///
    /// Each transition contributes the instant it crosses `vt`; crossings
    /// that would move *backwards* in time relative to the previously
    /// accepted crossing cancel it (the pulse never existed for this
    /// observer), mirroring the per-input inertial rule of the paper.
    /// Crossings that do not change the observed level are dropped.
    pub fn ideal(&self, vt: Voltage, vdd: Voltage) -> IdealWaveform {
        let mut changes: Vec<(Time, LogicLevel)> = Vec::new();
        for transition in &self.transitions {
            let Some(cross) = transition.crossing_time(vt, vdd) else {
                continue;
            };
            let target = transition.edge().target_level();
            // Cancel any previously accepted change that this crossing overtakes.
            while let Some(&(last_time, _)) = changes.last() {
                if cross <= last_time {
                    changes.pop();
                } else {
                    break;
                }
            }
            let current = changes.last().map(|&(_, l)| l).unwrap_or(self.initial);
            if current != target {
                changes.push((cross, target));
            }
        }
        IdealWaveform {
            initial: self.initial,
            changes,
        }
    }

    /// Convenience projection at the conventional `Vdd/2` threshold.
    pub fn ideal_half_swing(&self, vdd: Voltage) -> IdealWaveform {
        self.ideal(vdd.half(), vdd)
    }
}

/// A classical two-level waveform: an initial level plus strictly
/// time-increasing level changes.
#[derive(Clone, Debug, PartialEq)]
pub struct IdealWaveform {
    initial: LogicLevel,
    changes: Vec<(Time, LogicLevel)>,
}

impl IdealWaveform {
    /// Builds an ideal waveform from raw `(time, level)` change points.
    ///
    /// Changes are sorted by time; repeated levels and out-of-order
    /// duplicates are collapsed so the result is well formed.
    pub fn from_changes(initial: LogicLevel, mut raw: Vec<(Time, LogicLevel)>) -> Self {
        raw.sort_by_key(|&(t, _)| t);
        let mut changes: Vec<(Time, LogicLevel)> = Vec::new();
        for (t, level) in raw {
            let current = changes.last().map(|&(_, l)| l).unwrap_or(initial);
            if level != current {
                changes.push((t, level));
            }
        }
        IdealWaveform { initial, changes }
    }

    /// The level before the first change.
    pub fn initial(&self) -> LogicLevel {
        self.initial
    }

    /// The `(time, level)` change points, strictly increasing in time.
    pub fn changes(&self) -> &[(Time, LogicLevel)] {
        &self.changes
    }

    /// Number of level changes (edges) seen by this observer.
    pub fn edge_count(&self) -> usize {
        self.changes.len()
    }

    /// The observed level at time `t`.
    pub fn level_at(&self, t: Time) -> LogicLevel {
        match self.changes.iter().rev().find(|&&(ct, _)| ct <= t) {
            Some(&(_, level)) => level,
            None => self.initial,
        }
    }

    /// The level after the last change.
    pub fn final_level(&self) -> LogicLevel {
        self.changes.last().map(|&(_, l)| l).unwrap_or(self.initial)
    }

    /// The constant-level intervals `(start, end, level)` between changes,
    /// excluding the unbounded first and last intervals.
    pub fn pulses(&self) -> Vec<(Time, Time, LogicLevel)> {
        self.changes
            .windows(2)
            .map(|w| (w[0].0, w[1].0, w[0].1))
            .collect()
    }

    /// Number of pulses strictly narrower than `max_width` — a simple glitch
    /// metric used by the experiment reports.
    pub fn glitch_count(&self, max_width: TimeDelta) -> usize {
        self.pulses()
            .iter()
            .filter(|(start, end, _)| *end - *start < max_width)
            .count()
    }

    /// The times of all edges in a direction (`Some(edge)`) or of all edges
    /// (`None`).
    pub fn edge_times(&self, direction: Option<Edge>) -> Vec<Time> {
        let mut previous = self.initial;
        let mut times = Vec::new();
        for &(t, level) in &self.changes {
            if let Some(edge) = Edge::between(previous, level) {
                if direction.is_none() || direction == Some(edge) {
                    times.push(t);
                }
            }
            previous = level;
        }
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn vdd() -> Voltage {
        Voltage::from_volts(5.0)
    }

    fn rise(ns: f64) -> Transition {
        Transition::new(Time::from_ns(ns), TimeDelta::from_ps(200.0), Edge::Rise)
    }

    fn fall(ns: f64) -> Transition {
        Transition::new(Time::from_ns(ns), TimeDelta::from_ps(200.0), Edge::Fall)
    }

    #[test]
    fn push_keeps_transitions_ordered() {
        let mut w = DigitalWaveform::new(LogicLevel::Low);
        w.push(rise(3.0));
        w.push(fall(5.0));
        w.push(rise(1.0)); // out of order
        let starts: Vec<f64> = w.transitions().iter().map(|t| t.start().as_ns()).collect();
        assert_eq!(starts, vec![1.0, 3.0, 5.0]);
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
    }

    #[test]
    fn final_target_tracks_last_transition() {
        let mut w = DigitalWaveform::new(LogicLevel::Low);
        assert_eq!(w.final_target(), LogicLevel::Low);
        w.push(rise(1.0));
        assert_eq!(w.final_target(), LogicLevel::High);
        w.push(fall(2.0));
        assert_eq!(w.final_target(), LogicLevel::Low);
    }

    #[test]
    fn ideal_projection_sees_wide_pulse() {
        let mut w = DigitalWaveform::new(LogicLevel::Low);
        w.push(rise(1.0));
        w.push(fall(3.0));
        let ideal = w.ideal_half_swing(vdd());
        assert_eq!(ideal.edge_count(), 2);
        assert_eq!(ideal.level_at(Time::from_ns(2.0)), LogicLevel::High);
        assert_eq!(ideal.final_level(), LogicLevel::Low);
    }

    #[test]
    fn overtaking_crossing_cancels_previous_change() {
        // A slow rise at 1.0 ns interrupted by a fall at 1.5 ns: the ramp only
        // reaches ~62 % of the swing.  A high-threshold observer (4.5 V) sees
        // the fall crossing *before* the rise crossing, so the pulse is
        // cancelled for it; a low-threshold observer (0.5 V) still sees it.
        // This is the per-input selectivity the paper's Fig. 1 relies on.
        let mut w = DigitalWaveform::new(LogicLevel::Low);
        w.push(Transition::new(
            Time::from_ns(1.0),
            TimeDelta::from_ps(800.0),
            Edge::Rise,
        ));
        w.push(Transition::new(
            Time::from_ns(1.5),
            TimeDelta::from_ps(800.0),
            Edge::Fall,
        ));
        let high_observer = w.ideal(Voltage::from_volts(4.5), vdd());
        assert_eq!(high_observer.edge_count(), 0);
        let low_observer = w.ideal(Voltage::from_volts(0.5), vdd());
        assert_eq!(low_observer.edge_count(), 2);
    }

    #[test]
    fn redundant_transitions_do_not_create_changes() {
        let mut w = DigitalWaveform::new(LogicLevel::High);
        w.push(rise(1.0)); // already high for the observer
        w.push(fall(2.0));
        let ideal = w.ideal_half_swing(vdd());
        assert_eq!(ideal.edge_count(), 1);
        assert_eq!(ideal.final_level(), LogicLevel::Low);
    }

    #[test]
    fn ideal_from_changes_normalises() {
        let w = IdealWaveform::from_changes(
            LogicLevel::Low,
            vec![
                (Time::from_ns(2.0), LogicLevel::High),
                (Time::from_ns(1.0), LogicLevel::Low), // redundant and out of order
                (Time::from_ns(3.0), LogicLevel::High), // repeated level
                (Time::from_ns(4.0), LogicLevel::Low),
            ],
        );
        assert_eq!(w.edge_count(), 2);
        assert_eq!(w.level_at(Time::from_ns(2.5)), LogicLevel::High);
        assert_eq!(w.final_level(), LogicLevel::Low);
    }

    #[test]
    fn pulses_and_glitch_count() {
        let mut w = DigitalWaveform::new(LogicLevel::Low);
        w.push(rise(1.0));
        w.push(fall(1.3)); // 300 ps pulse
        w.push(rise(4.0));
        w.push(fall(6.0)); // 2 ns pulse
        let ideal = w.ideal_half_swing(vdd());
        assert_eq!(ideal.pulses().len(), 3);
        assert_eq!(ideal.glitch_count(TimeDelta::from_ns(1.0)), 1);
        assert_eq!(ideal.glitch_count(TimeDelta::from_ps(100.0)), 0);
    }

    #[test]
    fn edge_times_filter_by_direction() {
        let mut w = DigitalWaveform::new(LogicLevel::Low);
        w.push(rise(1.0));
        w.push(fall(2.0));
        w.push(rise(3.0));
        let ideal = w.ideal_half_swing(vdd());
        assert_eq!(ideal.edge_times(None).len(), 3);
        assert_eq!(ideal.edge_times(Some(Edge::Rise)).len(), 2);
        assert_eq!(ideal.edge_times(Some(Edge::Fall)).len(), 1);
    }

    #[test]
    fn unknown_initial_level_resolves_on_first_change() {
        let mut w = DigitalWaveform::new(LogicLevel::Unknown);
        w.push(rise(1.0));
        let ideal = w.ideal_half_swing(vdd());
        assert_eq!(ideal.level_at(Time::ZERO), LogicLevel::Unknown);
        assert_eq!(ideal.level_at(Time::from_ns(2.0)), LogicLevel::High);
    }

    proptest! {
        #[test]
        fn prop_ideal_changes_strictly_increase(starts in proptest::collection::vec(0.0f64..100.0, 0..20)) {
            let mut w = DigitalWaveform::new(LogicLevel::Low);
            let mut edge = Edge::Rise;
            for s in starts {
                w.push(Transition::new(Time::from_ns(s), TimeDelta::from_ps(150.0), edge));
                edge = edge.inverted();
            }
            let ideal = w.ideal_half_swing(vdd());
            for pair in ideal.changes().windows(2) {
                prop_assert!(pair[0].0 < pair[1].0);
                prop_assert_ne!(pair[0].1, pair[1].1);
            }
        }

        #[test]
        fn prop_level_at_is_consistent_with_changes(times in proptest::collection::vec(0.0f64..50.0, 1..10)) {
            let mut sorted = times.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut w = DigitalWaveform::new(LogicLevel::Low);
            let mut edge = Edge::Rise;
            for t in &sorted {
                w.push(Transition::new(Time::from_ns(*t), TimeDelta::from_ps(10.0), edge));
                edge = edge.inverted();
            }
            let ideal = w.ideal_half_swing(vdd());
            prop_assert_eq!(ideal.level_at(Time::from_ns(200.0)), ideal.final_level());
        }
    }
}
