//! Waveform comparison metrics.
//!
//! The paper's evaluation compares HALOTIS-DDM, HALOTIS-CDM and HSPICE on
//! the same circuit: qualitatively through the waveform plots (Figs. 6–7)
//! and quantitatively through switching-activity counts (Table 1).  This
//! module provides the metrics behind those comparisons:
//!
//! * [`compare`] — edge counts, matched edges within a tolerance, final-value
//!   agreement and the edge-count overestimation ratio for a pair of ideal
//!   waveforms,
//! * [`compare_traces`] — the same, aggregated over a whole trace,
//! * [`switching_activity`] — total edge count of a trace.

use halotis_core::{Time, TimeDelta};

use crate::digital::IdealWaveform;
use crate::trace::Trace;

/// The result of comparing a waveform under test against a reference.
#[derive(Clone, Debug, PartialEq)]
pub struct WaveformComparison {
    /// Edges in the reference waveform.
    pub reference_edges: usize,
    /// Edges in the waveform under test.
    pub test_edges: usize,
    /// Reference edges that found a same-direction counterpart within the
    /// matching tolerance.
    pub matched_edges: usize,
    /// `true` when both waveforms settle to the same final level.
    pub final_levels_agree: bool,
    /// Largest absolute time difference over matched edges.
    pub worst_edge_error: TimeDelta,
}

impl WaveformComparison {
    /// Fraction of reference edges that were matched (1.0 for a perfect
    /// match, 0.0 when nothing matched or the reference has no edges and the
    /// test does).
    pub fn match_ratio(&self) -> f64 {
        if self.reference_edges == 0 {
            if self.test_edges == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.matched_edges as f64 / self.reference_edges as f64
        }
    }

    /// Edge-count overestimation of the test waveform relative to the
    /// reference, in percent — the metric of the paper's Table 1
    /// (`Overst. CDM (%)`).  Zero when the reference has no edges.
    pub fn overestimation_percent(&self) -> f64 {
        if self.reference_edges == 0 {
            0.0
        } else {
            (self.test_edges as f64 - self.reference_edges as f64) / self.reference_edges as f64
                * 100.0
        }
    }

    /// Merges another comparison into this one (summing counts, and-ing the
    /// final-level agreement, taking the worst edge error).
    pub fn merge(&mut self, other: &WaveformComparison) {
        self.reference_edges += other.reference_edges;
        self.test_edges += other.test_edges;
        self.matched_edges += other.matched_edges;
        self.final_levels_agree &= other.final_levels_agree;
        self.worst_edge_error = self.worst_edge_error.max(other.worst_edge_error);
    }

    /// A neutral element for [`merge`](WaveformComparison::merge).
    pub fn empty() -> Self {
        WaveformComparison {
            reference_edges: 0,
            test_edges: 0,
            matched_edges: 0,
            final_levels_agree: true,
            worst_edge_error: TimeDelta::ZERO,
        }
    }
}

/// Greedy nearest-neighbour matching of two edge lists within `tolerance`.
fn match_edges(reference: &[Time], test: &[Time], tolerance: TimeDelta) -> (usize, TimeDelta) {
    let mut used = vec![false; test.len()];
    let mut matched = 0;
    let mut worst = TimeDelta::ZERO;
    for &r in reference {
        let mut best: Option<(usize, TimeDelta)> = None;
        for (i, &t) in test.iter().enumerate() {
            if used[i] {
                continue;
            }
            let err = (t - r).abs();
            if err <= tolerance && best.is_none_or(|(_, b)| err < b) {
                best = Some((i, err));
            }
        }
        if let Some((i, err)) = best {
            used[i] = true;
            matched += 1;
            worst = worst.max(err);
        }
    }
    (matched, worst)
}

/// Compares `test` against `reference`, matching edges of the same direction
/// that lie within `tolerance` of each other.
///
/// # Example
///
/// ```
/// use halotis_core::{LogicLevel, Time, TimeDelta};
/// use halotis_waveform::{compare, IdealWaveform};
///
/// let reference = IdealWaveform::from_changes(
///     LogicLevel::Low,
///     vec![(Time::from_ns(1.0), LogicLevel::High)],
/// );
/// let test = IdealWaveform::from_changes(
///     LogicLevel::Low,
///     vec![(Time::from_ns(1.1), LogicLevel::High)],
/// );
/// let cmp = compare::compare(&reference, &test, TimeDelta::from_ps(300.0));
/// assert_eq!(cmp.matched_edges, 1);
/// assert!(cmp.final_levels_agree);
/// ```
pub fn compare(
    reference: &IdealWaveform,
    test: &IdealWaveform,
    tolerance: TimeDelta,
) -> WaveformComparison {
    use halotis_core::Edge;
    let mut matched = 0;
    let mut worst = TimeDelta::ZERO;
    for direction in Edge::both() {
        let r = reference.edge_times(Some(direction));
        let t = test.edge_times(Some(direction));
        let (m, w) = match_edges(&r, &t, tolerance);
        matched += m;
        worst = worst.max(w);
    }
    WaveformComparison {
        reference_edges: reference.edge_count(),
        test_edges: test.edge_count(),
        matched_edges: matched,
        final_levels_agree: reference.final_level() == test.final_level(),
        worst_edge_error: worst,
    }
}

/// Compares two traces signal by signal (signals present in only one trace
/// are ignored) and returns the merged comparison.
pub fn compare_traces(
    reference: &Trace<IdealWaveform>,
    test: &Trace<IdealWaveform>,
    tolerance: TimeDelta,
) -> WaveformComparison {
    let mut total = WaveformComparison::empty();
    for (name, r) in reference.iter() {
        if let Some(t) = test.get(name) {
            total.merge(&compare(r, t, tolerance));
        }
    }
    total
}

/// Total number of edges over all signals of a trace — the "switching
/// activity" figure of the paper's Table 1 discussion.
pub fn switching_activity(trace: &Trace<IdealWaveform>) -> usize {
    trace.iter().map(|(_, w)| w.edge_count()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_core::LogicLevel;

    fn wave(edges_ns: &[f64]) -> IdealWaveform {
        let mut level = LogicLevel::Low;
        let changes = edges_ns
            .iter()
            .map(|&t| {
                level = !level;
                (Time::from_ns(t), level)
            })
            .collect();
        IdealWaveform::from_changes(LogicLevel::Low, changes)
    }

    #[test]
    fn identical_waveforms_match_perfectly() {
        let w = wave(&[1.0, 2.0, 3.0]);
        let cmp = compare(&w, &w.clone(), TimeDelta::from_ps(1.0));
        assert_eq!(cmp.match_ratio(), 1.0);
        assert_eq!(cmp.worst_edge_error, TimeDelta::ZERO);
        assert!(cmp.final_levels_agree);
        assert_eq!(cmp.overestimation_percent(), 0.0);
    }

    #[test]
    fn shifted_edges_match_within_tolerance_only() {
        let reference = wave(&[1.0, 2.0]);
        let test = wave(&[1.2, 2.6]);
        let tight = compare(&reference, &test, TimeDelta::from_ps(300.0));
        assert_eq!(tight.matched_edges, 1);
        let loose = compare(&reference, &test, TimeDelta::from_ns(1.0));
        assert_eq!(loose.matched_edges, 2);
        assert_eq!(loose.worst_edge_error, TimeDelta::from_ps(600.0));
    }

    #[test]
    fn extra_glitches_raise_overestimation() {
        let reference = wave(&[1.0, 2.0]);
        let test = wave(&[1.0, 2.0, 3.0, 3.1]); // two extra glitch edges
        let cmp = compare(&reference, &test, TimeDelta::from_ps(100.0));
        assert_eq!(cmp.reference_edges, 2);
        assert_eq!(cmp.test_edges, 4);
        assert!((cmp.overestimation_percent() - 100.0).abs() < 1e-9);
        assert!(cmp.final_levels_agree); // both end low
    }

    #[test]
    fn final_level_disagreement_is_reported() {
        let reference = wave(&[1.0, 2.0]);
        let test = wave(&[1.0]);
        let cmp = compare(&reference, &test, TimeDelta::from_ps(100.0));
        assert!(!cmp.final_levels_agree);
    }

    #[test]
    fn direction_is_respected_when_matching() {
        // Reference rises at 1.0; test falls at 1.0 (different initial phase).
        let reference = wave(&[1.0]);
        let test = IdealWaveform::from_changes(
            LogicLevel::High,
            vec![(Time::from_ns(1.0), LogicLevel::Low)],
        );
        let cmp = compare(&reference, &test, TimeDelta::from_ps(100.0));
        assert_eq!(cmp.matched_edges, 0);
    }

    #[test]
    fn empty_reference_handling() {
        let empty = wave(&[]);
        let busy = wave(&[1.0, 2.0]);
        let cmp = compare(&empty, &busy, TimeDelta::from_ps(100.0));
        assert_eq!(cmp.match_ratio(), 0.0);
        assert_eq!(cmp.overestimation_percent(), 0.0);
        let cmp2 = compare(&empty, &empty.clone(), TimeDelta::from_ps(100.0));
        assert_eq!(cmp2.match_ratio(), 1.0);
    }

    #[test]
    fn trace_comparison_aggregates_signals() {
        let mut reference = Trace::new();
        reference.insert("a", wave(&[1.0, 2.0]));
        reference.insert("b", wave(&[3.0]));
        let mut test = Trace::new();
        test.insert("a", wave(&[1.0, 2.0]));
        test.insert("b", wave(&[3.0, 4.0, 4.1]));
        test.insert("ignored", wave(&[9.0]));
        let cmp = compare_traces(&reference, &test, TimeDelta::from_ps(100.0));
        assert_eq!(cmp.reference_edges, 3);
        assert_eq!(cmp.test_edges, 5);
        assert_eq!(cmp.matched_edges, 3);
        assert_eq!(switching_activity(&test), 6);
    }
}
