//! Named, ordered collections of waveforms.
//!
//! A [`Trace`] is what a whole simulation produces: one waveform per
//! observed signal, in a caller-controlled display order (the paper's
//! figures list `s7` down to `s0`).  It is generic over the waveform type so
//! the same container carries [`DigitalWaveform`](crate::DigitalWaveform),
//! [`IdealWaveform`](crate::IdealWaveform) or
//! [`AnalogWaveform`](crate::AnalogWaveform) values.

use std::fmt;

/// An ordered map from signal name to waveform.
///
/// # Example
///
/// ```
/// use halotis_core::LogicLevel;
/// use halotis_waveform::{DigitalWaveform, Trace};
///
/// let mut trace = Trace::new();
/// trace.insert("s0", DigitalWaveform::new(LogicLevel::Low));
/// trace.insert("s1", DigitalWaveform::new(LogicLevel::High));
/// assert_eq!(trace.len(), 2);
/// assert!(trace.get("s0").is_some());
/// assert_eq!(trace.names().collect::<Vec<_>>(), vec!["s0", "s1"]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Trace<W> {
    entries: Vec<(String, W)>,
}

impl<W> Trace<W> {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace {
            entries: Vec::new(),
        }
    }

    /// Adds (or replaces) a signal.
    pub fn insert(&mut self, name: impl Into<String>, waveform: W) {
        let name = name.into();
        match self.entries.iter_mut().find(|(n, _)| *n == name) {
            Some((_, slot)) => *slot = waveform,
            None => self.entries.push((name, waveform)),
        }
    }

    /// Looks a signal up by name.
    pub fn get(&self, name: &str) -> Option<&W> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, w)| w)
    }

    /// Mutable lookup by name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut W> {
        self.entries
            .iter_mut()
            .find(|(n, _)| n == name)
            .map(|(_, w)| w)
    }

    /// Number of signals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the trace holds no signal.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Signal names in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }

    /// Iterates `(name, waveform)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &W)> {
        self.entries.iter().map(|(n, w)| (n.as_str(), w))
    }

    /// Maps every waveform through `f`, preserving names and order.
    pub fn map<U>(&self, mut f: impl FnMut(&str, &W) -> U) -> Trace<U> {
        Trace {
            entries: self
                .entries
                .iter()
                .map(|(n, w)| (n.clone(), f(n, w)))
                .collect(),
        }
    }

    /// Keeps only the signals whose name satisfies the predicate, preserving
    /// order — used to restrict the multiplier traces to `s0..s7`.
    pub fn filtered(&self, mut keep: impl FnMut(&str) -> bool) -> Trace<W>
    where
        W: Clone,
    {
        Trace {
            entries: self
                .entries
                .iter()
                .filter(|(n, _)| keep(n))
                .cloned()
                .collect(),
        }
    }
}

impl<W> Default for Trace<W> {
    fn default() -> Self {
        Trace::new()
    }
}

impl<W> FromIterator<(String, W)> for Trace<W> {
    fn from_iter<I: IntoIterator<Item = (String, W)>>(iter: I) -> Self {
        let mut trace = Trace::new();
        for (name, w) in iter {
            trace.insert(name, w);
        }
        trace
    }
}

impl<W> Extend<(String, W)> for Trace<W> {
    fn extend<I: IntoIterator<Item = (String, W)>>(&mut self, iter: I) {
        for (name, w) in iter {
            self.insert(name, w);
        }
    }
}

impl<W: fmt::Debug> fmt::Display for Trace<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace with {} signals:", self.len())?;
        for (name, _) in &self.entries {
            writeln!(f, "  {name}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_and_replace() {
        let mut t: Trace<u32> = Trace::new();
        assert!(t.is_empty());
        t.insert("a", 1);
        t.insert("b", 2);
        t.insert("a", 10);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get("a"), Some(&10));
        assert_eq!(t.get("missing"), None);
        *t.get_mut("b").unwrap() = 20;
        assert_eq!(t.get("b"), Some(&20));
    }

    #[test]
    fn order_is_insertion_order() {
        let mut t: Trace<u32> = Trace::new();
        for (i, name) in ["s7", "s3", "s0"].iter().enumerate() {
            t.insert(*name, i as u32);
        }
        assert_eq!(t.names().collect::<Vec<_>>(), vec!["s7", "s3", "s0"]);
        let pairs: Vec<(&str, &u32)> = t.iter().collect();
        assert_eq!(pairs[1], ("s3", &1));
    }

    #[test]
    fn map_and_filter_preserve_structure() {
        let t: Trace<u32> = [("a".to_string(), 1u32), ("b".to_string(), 2)]
            .into_iter()
            .collect();
        let doubled = t.map(|_, v| v * 2);
        assert_eq!(doubled.get("b"), Some(&4));
        let only_a = t.filtered(|n| n == "a");
        assert_eq!(only_a.len(), 1);
        assert_eq!(only_a.get("a"), Some(&1));
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut t: Trace<u8> = vec![("x".to_string(), 1u8)].into_iter().collect();
        t.extend(vec![("y".to_string(), 2u8)]);
        assert_eq!(t.len(), 2);
        assert!(format!("{t}").contains("2 signals"));
    }
}
