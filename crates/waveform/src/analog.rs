//! Piecewise-linear analog waveforms.
//!
//! The reference electrical simulator (`halotis-analog`, this workspace's
//! HSPICE substitute) produces voltage-versus-time samples.  This module
//! stores them, interpolates between them and extracts threshold crossings
//! so analog results can be compared against logic-simulation results.

use halotis_core::{Edge, LogicLevel, Time, Voltage};

use crate::digital::IdealWaveform;

/// A voltage waveform sampled at (not necessarily uniform) time points.
///
/// Samples must be pushed in non-decreasing time order.
///
/// # Example
///
/// ```
/// use halotis_core::{Time, Voltage};
/// use halotis_waveform::AnalogWaveform;
///
/// let mut w = AnalogWaveform::new();
/// w.push(Time::from_ns(0.0), Voltage::from_volts(0.0));
/// w.push(Time::from_ns(1.0), Voltage::from_volts(5.0));
/// let v = w.voltage_at(Time::from_ns(0.5));
/// assert!((v.as_volts() - 2.5).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AnalogWaveform {
    samples: Vec<(Time, Voltage)>,
}

impl AnalogWaveform {
    /// Creates an empty waveform.
    pub fn new() -> Self {
        AnalogWaveform {
            samples: Vec::new(),
        }
    }

    /// Creates an empty waveform with capacity for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        AnalogWaveform {
            samples: Vec::with_capacity(n),
        }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the previously pushed sample: the
    /// integrator always produces monotone time, so this indicates a bug in
    /// the caller.
    pub fn push(&mut self, time: Time, voltage: Voltage) {
        if let Some(&(last, _)) = self.samples.last() {
            assert!(
                time >= last,
                "analog samples must be pushed in time order ({time} < {last})"
            );
        }
        self.samples.push((time, voltage));
    }

    /// The raw samples.
    pub fn samples(&self) -> &[(Time, Voltage)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Linear interpolation of the voltage at `t`; clamps to the first/last
    /// sample outside the recorded range and returns 0 V for an empty
    /// waveform.
    pub fn voltage_at(&self, t: Time) -> Voltage {
        if self.samples.is_empty() {
            return Voltage::ZERO;
        }
        if t <= self.samples[0].0 {
            return self.samples[0].1;
        }
        if t >= self.samples[self.samples.len() - 1].0 {
            return self.samples[self.samples.len() - 1].1;
        }
        let idx = self.samples.partition_point(|&(st, _)| st <= t);
        let (t0, v0) = self.samples[idx - 1];
        let (t1, v1) = self.samples[idx];
        if t1 == t0 {
            return v1;
        }
        let frac = (t - t0).as_fs() as f64 / (t1 - t0).as_fs() as f64;
        v0 + (v1 - v0) * frac
    }

    /// Minimum and maximum sampled voltage, or `None` for an empty waveform.
    pub fn voltage_range(&self) -> Option<(Voltage, Voltage)> {
        self.samples.iter().map(|&(_, v)| v).fold(None, |acc, v| {
            Some(match acc {
                None => (v, v),
                Some((lo, hi)) => (if v < lo { v } else { lo }, if v > hi { v } else { hi }),
            })
        })
    }

    /// The instants where the waveform crosses `vt`, with the crossing
    /// direction.  Linear interpolation is used inside each sample interval.
    pub fn threshold_crossings(&self, vt: Voltage) -> Vec<(Time, Edge)> {
        let mut crossings = Vec::new();
        for pair in self.samples.windows(2) {
            let (t0, v0) = pair[0];
            let (t1, v1) = pair[1];
            let below0 = v0 < vt;
            let below1 = v1 < vt;
            if below0 == below1 {
                continue;
            }
            let frac = (vt - v0) / (v1 - v0);
            let cross = t0 + (t1 - t0).scale(frac);
            let edge = if below0 { Edge::Rise } else { Edge::Fall };
            crossings.push((cross, edge));
        }
        crossings
    }

    /// Converts the analog waveform into an ideal two-level waveform as seen
    /// by an observer with threshold `vt`.
    pub fn digitize(&self, vt: Voltage) -> IdealWaveform {
        let initial = match self.samples.first() {
            None => LogicLevel::Unknown,
            Some(&(_, v)) => LogicLevel::from_bool(v >= vt),
        };
        let changes = self
            .threshold_crossings(vt)
            .into_iter()
            .map(|(t, edge)| (t, edge.target_level()))
            .collect();
        IdealWaveform::from_changes(initial, changes)
    }

    /// Time of the last sample, or `None` for an empty waveform.
    pub fn end_time(&self) -> Option<Time> {
        self.samples.last().map(|&(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_core::TimeDelta;

    fn ramp_up() -> AnalogWaveform {
        let mut w = AnalogWaveform::new();
        w.push(Time::from_ns(0.0), Voltage::from_volts(0.0));
        w.push(Time::from_ns(1.0), Voltage::from_volts(0.0));
        w.push(Time::from_ns(2.0), Voltage::from_volts(5.0));
        w
    }

    #[test]
    fn interpolation_and_clamping() {
        let w = ramp_up();
        assert_eq!(w.voltage_at(Time::from_ns(-1.0)), Voltage::from_volts(0.0));
        assert_eq!(w.voltage_at(Time::from_ns(5.0)), Voltage::from_volts(5.0));
        let mid = w.voltage_at(Time::from_ns(1.5));
        assert!((mid.as_volts() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn empty_waveform_reads_zero() {
        let w = AnalogWaveform::new();
        assert!(w.is_empty());
        assert_eq!(w.voltage_at(Time::from_ns(1.0)), Voltage::ZERO);
        assert_eq!(w.voltage_range(), None);
        assert_eq!(w.end_time(), None);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_push_panics() {
        let mut w = AnalogWaveform::new();
        w.push(Time::from_ns(2.0), Voltage::ZERO);
        w.push(Time::from_ns(1.0), Voltage::ZERO);
    }

    #[test]
    fn crossings_of_a_single_ramp() {
        let w = ramp_up();
        let crossings = w.threshold_crossings(Voltage::from_volts(2.5));
        assert_eq!(crossings.len(), 1);
        let (t, edge) = crossings[0];
        assert_eq!(edge, Edge::Rise);
        assert!((t.as_ns() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn crossings_of_a_pulse_depend_on_threshold() {
        // Triangle pulse peaking at 3 V.
        let mut w = AnalogWaveform::new();
        w.push(Time::from_ns(0.0), Voltage::from_volts(0.0));
        w.push(Time::from_ns(1.0), Voltage::from_volts(3.0));
        w.push(Time::from_ns(2.0), Voltage::from_volts(0.0));
        assert_eq!(w.threshold_crossings(Voltage::from_volts(2.0)).len(), 2);
        // An observer above the peak never sees the pulse: this is the
        // analog ground truth for the paper's per-input inertial argument.
        assert_eq!(w.threshold_crossings(Voltage::from_volts(4.0)).len(), 0);
    }

    #[test]
    fn digitize_produces_ideal_waveform() {
        let w = ramp_up();
        let ideal = w.digitize(Voltage::from_volts(2.5));
        assert_eq!(ideal.initial(), LogicLevel::Low);
        assert_eq!(ideal.edge_count(), 1);
        assert_eq!(ideal.final_level(), LogicLevel::High);
        assert_eq!(ideal.glitch_count(TimeDelta::from_ns(10.0)), 0);
    }

    #[test]
    fn voltage_range_tracks_extremes() {
        let w = ramp_up();
        let (lo, hi) = w.voltage_range().unwrap();
        assert_eq!(lo, Voltage::from_volts(0.0));
        assert_eq!(hi, Voltage::from_volts(5.0));
        assert_eq!(w.end_time(), Some(Time::from_ns(2.0)));
        assert_eq!(w.len(), 3);
    }
}
