//! Signal representations for the HALOTIS timing simulator.
//!
//! The central idea of the HALOTIS paper is the distinction between a
//! **transition** — a linear voltage ramp on a net, described by its start
//! time and its rise/fall time — and an **event** — the instant that ramp
//! crosses the threshold voltage of one particular gate input.  This crate
//! provides the transition side of that story plus everything needed to
//! observe, export and compare simulated signals:
//!
//! * [`Transition`] — the linear-ramp transition (`tau_x`, `t0`) of the paper,
//! * [`DigitalWaveform`] — a sequence of transitions on one net, with
//!   threshold-observer conversion to ideal two-level waveforms,
//! * [`AnalogWaveform`] — a piecewise-linear voltage waveform, produced by
//!   the reference electrical simulator,
//! * [`Trace`] — an ordered, named collection of waveforms,
//! * [`Stimulus`] — input vector sequences (the paper's `0x0, 7x7, 5xA, ...`
//!   multiplications),
//! * [`vcd`] / [`ascii`] — exports, and [`compare`] — waveform metrics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analog;
pub mod ascii;
pub mod compare;
pub mod digital;
pub mod stimulus;
pub mod trace;
pub mod transition;
pub mod vcd;

pub use analog::AnalogWaveform;
pub use compare::WaveformComparison;
pub use digital::{DigitalWaveform, IdealWaveform};
pub use stimulus::Stimulus;
pub use trace::Trace;
pub use transition::Transition;
