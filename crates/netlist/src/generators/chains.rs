//! Chain and tree generators: inverter chains and buffer fanout trees.

use crate::cell::CellKind;
use crate::netlist::{Netlist, NetlistBuilder};

/// Builds an `n`-stage inverter chain: `in -> inv g0 -> n1 -> inv g1 -> ... -> out`.
///
/// The output of the last stage is the primary output `out`; intermediate
/// nets are called `n1`, `n2`, ....
///
/// # Panics
///
/// Panics if `stages == 0`.
///
/// # Example
///
/// ```
/// use halotis_netlist::generators;
/// let chain = generators::inverter_chain(5);
/// assert_eq!(chain.gate_count(), 5);
/// assert_eq!(chain.primary_outputs().len(), 1);
/// ```
pub fn inverter_chain(stages: usize) -> Netlist {
    assert!(stages > 0, "an inverter chain needs at least one stage");
    let mut builder = NetlistBuilder::new(format!("inv_chain_{stages}"));
    let mut current = builder.add_input("in");
    for stage in 0..stages {
        let next = if stage + 1 == stages {
            builder.add_net("out")
        } else {
            builder.add_net(format!("n{}", stage + 1))
        };
        builder
            .add_gate(CellKind::Inv, format!("g{stage}"), &[current], next)
            .expect("chain gates are always valid");
        current = next;
    }
    builder.mark_output(current);
    builder.build().expect("inverter chain is a valid netlist")
}

/// Builds a buffer tree: one input driving `leaves` buffers through a
/// binary tree of buffers of the given `depth`.  Used to study load and
/// fanout effects on the delay models.
///
/// The leaf outputs are named `leaf0, leaf1, ...` and are all primary
/// outputs.
///
/// # Panics
///
/// Panics if `depth == 0`.
pub fn buffer_fanout_tree(depth: usize) -> Netlist {
    assert!(depth > 0, "a fanout tree needs depth >= 1");
    let mut builder = NetlistBuilder::new(format!("buf_tree_{depth}"));
    let root = builder.add_input("in");
    let mut frontier = vec![root];
    let mut gate_index = 0usize;
    for level in 0..depth {
        let mut next_frontier = Vec::with_capacity(frontier.len() * 2);
        for &net in &frontier {
            for branch in 0..2 {
                let is_leaf_level = level + 1 == depth;
                let name = if is_leaf_level {
                    format!("leaf{}", next_frontier.len())
                } else {
                    format!("t{}_{}", level + 1, next_frontier.len())
                };
                let out = builder.add_net(name);
                builder
                    .add_gate(
                        CellKind::Buf,
                        format!("b{gate_index}_{branch}"),
                        &[net],
                        out,
                    )
                    .expect("tree gates are always valid");
                gate_index += 1;
                next_frontier.push(out);
            }
        }
        frontier = next_frontier;
    }
    for &leaf in &frontier {
        builder.mark_output(leaf);
    }
    builder.build().expect("fanout tree is a valid netlist")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use crate::levelize;
    use halotis_core::LogicLevel;

    #[test]
    fn chain_parity_follows_stage_count() {
        for stages in 1..6 {
            let chain = inverter_chain(stages);
            let input = chain.net_id("in").unwrap();
            let out = chain.net_id("out").unwrap();
            let levels = eval::evaluate(&chain, &[(input, LogicLevel::Low)]);
            let expected = LogicLevel::from_bool(stages % 2 == 1);
            assert_eq!(levels[out.index()], expected, "stages = {stages}");
            assert_eq!(levelize::levelize(&chain).unwrap().depth(), stages);
        }
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stage_chain_panics() {
        inverter_chain(0);
    }

    #[test]
    fn fanout_tree_has_power_of_two_leaves() {
        let tree = buffer_fanout_tree(3);
        assert_eq!(tree.primary_outputs().len(), 8);
        assert_eq!(tree.gate_count(), 2 + 4 + 8);
        // All leaves follow the input.
        let input = tree.net_id("in").unwrap();
        let levels = eval::evaluate(&tree, &[(input, LogicLevel::High)]);
        for &out in tree.primary_outputs() {
            assert_eq!(levels[out.index()], LogicLevel::High);
        }
    }
}
