//! The paper's Fig. 1 circuit.
//!
//! Fig. 1 demonstrates why the classical inertial-delay rule is wrong: a
//! pulse-shaping inverter chain drives a net `out0` that fans out to two
//! inverters `g1` and `g2` whose transfer characteristics differ — `g1`
//! switches at a low input threshold `VT1`, `g2` at a high threshold `VT2`.
//! A partial-swing pulse on `out0` is seen by `g1` but not by `g2`; a
//! simulator that filters the pulse once, at the driving output, gets at
//! least one of the two fanout branches wrong.
//!
//! Each branch is followed by one more inverter (`out1c`, `out2c`) so the
//! effect is observable on full-swing outputs, exactly as in the figure.

use crate::cell::CellKind;
use crate::netlist::{Netlist, NetlistBuilder};

/// Default low input threshold of branch gate `g1` (fraction of `Vdd`),
/// mirroring the `VT1` marking in the figure's transfer characteristic.
pub const FIGURE1_LOW_VT: f64 = 0.28;
/// Default high input threshold of branch gate `g2` (fraction of `Vdd`),
/// mirroring `VT2`.
pub const FIGURE1_HIGH_VT: f64 = 0.72;

/// The signal names of the Fig. 1 circuit, for convenient lookup.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Figure1Nets {
    /// Primary input.
    pub input: String,
    /// Output of the pulse-shaping chain; the fanout node of interest.
    pub out0: String,
    /// Output of the low-threshold branch inverter `g1`.
    pub out1: String,
    /// Output of the inverter following `out1`.
    pub out1c: String,
    /// Output of the high-threshold branch inverter `g2`.
    pub out2: String,
    /// Output of the inverter following `out2`.
    pub out2c: String,
}

impl Figure1Nets {
    /// The conventional names used by [`figure1`].
    pub fn standard() -> Self {
        Figure1Nets {
            input: "in".to_string(),
            out0: "out0".to_string(),
            out1: "out1".to_string(),
            out1c: "out1c".to_string(),
            out2: "out2".to_string(),
            out2c: "out2c".to_string(),
        }
    }
}

/// Builds the Fig. 1 circuit with the given branch input thresholds
/// (fractions of `Vdd`).
///
/// `low_vt` is assigned to `g1`, `high_vt` to `g2`; the chain and the
/// follower inverters use the library characterisation.
///
/// # Example
///
/// ```
/// use halotis_netlist::generators::{figure1, Figure1Nets};
///
/// let (netlist, nets) = figure1(0.3, 0.7);
/// assert_eq!(nets, Figure1Nets::standard());
/// assert_eq!(netlist.primary_outputs().len(), 5);
/// ```
pub fn figure1(low_vt: f64, high_vt: f64) -> (Netlist, Figure1Nets) {
    let names = Figure1Nets::standard();
    let mut builder = NetlistBuilder::new("figure1");
    let input = builder.add_input(&names.input);

    // Two-stage pulse-shaping chain: in -> chain0 -> out0.  Keeping the
    // chain non-inverting overall means a pulse applied at `in` appears with
    // the same polarity (and a softened edge) on `out0`.
    let chain0 = builder.add_net("chain0");
    let out0 = builder.add_net(&names.out0);
    builder
        .add_gate(CellKind::Inv, "chain_a", &[input], chain0)
        .expect("figure1 gates are valid");
    builder
        .add_gate(CellKind::Inv, "chain_b", &[chain0], out0)
        .expect("figure1 gates are valid");

    // Branch 1: low-threshold inverter followed by a plain inverter.
    let out1 = builder.add_net(&names.out1);
    let out1c = builder.add_net(&names.out1c);
    builder
        .add_gate_with_thresholds(CellKind::Inv, "g1", &[out0], out1, &[low_vt])
        .expect("figure1 gates are valid");
    builder
        .add_gate(CellKind::Inv, "g1c", &[out1], out1c)
        .expect("figure1 gates are valid");

    // Branch 2: high-threshold inverter followed by a plain inverter.
    let out2 = builder.add_net(&names.out2);
    let out2c = builder.add_net(&names.out2c);
    builder
        .add_gate_with_thresholds(CellKind::Inv, "g2", &[out0], out2, &[high_vt])
        .expect("figure1 gates are valid");
    builder
        .add_gate(CellKind::Inv, "g2c", &[out2], out2c)
        .expect("figure1 gates are valid");

    for net in [out0, out1, out1c, out2, out2c] {
        builder.mark_output(net);
    }
    (builder.build().expect("figure1 is a valid netlist"), names)
}

/// [`figure1`] with the default thresholds
/// [`FIGURE1_LOW_VT`] / [`FIGURE1_HIGH_VT`].
pub fn figure1_default() -> (Netlist, Figure1Nets) {
    figure1(FIGURE1_LOW_VT, FIGURE1_HIGH_VT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technology;
    use halotis_core::PinRef;

    #[test]
    fn structure_matches_the_figure() {
        let (netlist, nets) = figure1_default();
        assert_eq!(netlist.gate_count(), 6);
        assert_eq!(netlist.primary_inputs().len(), 1);
        assert_eq!(netlist.primary_outputs().len(), 5);
        // out0 fans out to exactly the two branch inverters.
        let out0 = netlist.net_id(&nets.out0).unwrap();
        assert_eq!(netlist.net(out0).loads().len(), 2);
    }

    #[test]
    fn branch_gates_carry_their_threshold_overrides() {
        let (netlist, _) = figure1(0.25, 0.8);
        let library = technology::cmos06();
        let g1 = netlist.gates().iter().find(|g| g.name() == "g1").unwrap();
        let g2 = netlist.gates().iter().find(|g| g.name() == "g2").unwrap();
        assert_eq!(
            netlist
                .input_threshold_fraction(PinRef::new(g1.id(), 0), &library)
                .unwrap(),
            0.25
        );
        assert_eq!(
            netlist
                .input_threshold_fraction(PinRef::new(g2.id(), 0), &library)
                .unwrap(),
            0.8
        );
        // The follower inverters use the library threshold.
        let g1c = netlist.gates().iter().find(|g| g.name() == "g1c").unwrap();
        let default = library.pin(CellKind::Inv, 0).unwrap().threshold_fraction;
        assert_eq!(
            netlist
                .input_threshold_fraction(PinRef::new(g1c.id(), 0), &library)
                .unwrap(),
            default
        );
    }

    #[test]
    fn default_thresholds_bracket_the_midpoint() {
        const { assert!(FIGURE1_LOW_VT < 0.5) };
        const { assert!(FIGURE1_HIGH_VT > 0.5) };
        let (netlist, _) = figure1_default();
        assert!(crate::validate::check(&netlist, &technology::cmos06()).is_empty());
    }
}
