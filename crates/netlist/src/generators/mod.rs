//! Circuit generators for the paper's experiments and the extension studies.
//!
//! * [`inverter_chain`] — the simplest delay-line circuit, used in unit
//!   tests and the degradation pulse-width sweeps,
//! * [`figure1`] — the paper's Fig. 1 circuit: one pulse-shaping inverter
//!   chain fanning out to two inverters with deliberately different input
//!   thresholds, which exposes the error of classical inertial filtering,
//! * [`ripple_carry_adder`] — an n-bit adder built from XOR/AND/OR full
//!   adders,
//! * [`carry_skip_adder`] — the same arithmetic with AND-OR skip blocks,
//!   giving the carry network a different glitching topology,
//! * [`kogge_stone_adder`] — the same arithmetic again through a
//!   logarithmic-depth parallel-prefix carry network,
//! * [`wallace_tree_multiplier`] — the array multiplier's arithmetic
//!   re-expressed as 3:2-compressor columns with a final carry-propagate
//!   pass,
//! * [`parity_tree`] — a balanced XOR reduction tree, the classic glitch
//!   amplifier and the sharpest probe for pulse degradation,
//! * [`multiplier`] — the paper's Fig. 5 array multiplier (parametric in
//!   both operand widths; the paper uses 4×4),
//! * [`c17`] — the tiny ISCAS-85 C17 benchmark, a convenient NAND-only test
//!   circuit,
//! * [`random_logic`] — a seeded random DAG generator for scaling studies.

mod adder;
mod chains;
mod figure1;
mod kogge_stone;
mod multiplier;
mod parity;
pub(crate) mod random;
mod wallace;

pub use adder::{carry_skip_adder, full_adder_cell, ripple_carry_adder};
pub use chains::{buffer_fanout_tree, inverter_chain};
pub use figure1::{figure1, figure1_default, Figure1Nets, FIGURE1_HIGH_VT, FIGURE1_LOW_VT};
pub use kogge_stone::kogge_stone_adder;
pub use multiplier::{multiplier, MultiplierPorts};
pub use parity::parity_tree;
pub use random::random_logic;
pub use wallace::wallace_tree_multiplier;

use crate::cell::CellKind;
use crate::netlist::{Netlist, NetlistBuilder};

/// The ISCAS-85 C17 benchmark: six 2-input NAND gates, five inputs
/// (`i1, i2, i3, i6, i7`), two outputs (`o22, o23`).
///
/// # Example
///
/// ```
/// use halotis_netlist::generators;
/// let c17 = generators::c17();
/// assert_eq!(c17.gate_count(), 6);
/// assert_eq!(c17.primary_outputs().len(), 2);
/// ```
pub fn c17() -> Netlist {
    let mut builder = NetlistBuilder::new("c17");
    let i1 = builder.add_input("i1");
    let i2 = builder.add_input("i2");
    let i3 = builder.add_input("i3");
    let i6 = builder.add_input("i6");
    let i7 = builder.add_input("i7");
    let n10 = builder.add_net("n10");
    let n11 = builder.add_net("n11");
    let n16 = builder.add_net("n16");
    let n19 = builder.add_net("n19");
    let o22 = builder.add_net("o22");
    let o23 = builder.add_net("o23");
    builder
        .add_gate(CellKind::Nand2, "g10", &[i1, i3], n10)
        .expect("valid c17 gate");
    builder
        .add_gate(CellKind::Nand2, "g11", &[i3, i6], n11)
        .expect("valid c17 gate");
    builder
        .add_gate(CellKind::Nand2, "g16", &[i2, n11], n16)
        .expect("valid c17 gate");
    builder
        .add_gate(CellKind::Nand2, "g19", &[n11, i7], n19)
        .expect("valid c17 gate");
    builder
        .add_gate(CellKind::Nand2, "g22", &[n10, n16], o22)
        .expect("valid c17 gate");
    builder
        .add_gate(CellKind::Nand2, "g23", &[n16, n19], o23)
        .expect("valid c17 gate");
    builder.mark_output(o22);
    builder.mark_output(o23);
    builder.build().expect("c17 is a valid netlist")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use halotis_core::LogicLevel;

    #[test]
    fn c17_matches_reference_function() {
        let netlist = c17();
        let inputs: Vec<_> = ["i1", "i2", "i3", "i6", "i7"]
            .iter()
            .map(|n| netlist.net_id(n).unwrap())
            .collect();
        let o22 = netlist.net_id("o22").unwrap();
        let o23 = netlist.net_id("o23").unwrap();
        for pattern in 0..32u64 {
            let assignment = eval::bus_assignment(&inputs, pattern);
            let levels = eval::evaluate(&netlist, &assignment);
            let bit = |i: usize| (pattern >> i) & 1 == 1;
            let (i1, i2, i3, i6, i7) = (bit(0), bit(1), bit(2), bit(3), bit(4));
            let n10 = !(i1 && i3);
            let n11 = !(i3 && i6);
            let n16 = !(i2 && n11);
            let n19 = !(n11 && i7);
            let expected22 = !(n10 && n16);
            let expected23 = !(n16 && n19);
            assert_eq!(levels[o22.index()], LogicLevel::from_bool(expected22));
            assert_eq!(levels[o23.index()], LogicLevel::from_bool(expected23));
        }
    }
}
