//! The array multiplier of the paper's Fig. 5.
//!
//! The circuit multiplies an `n`-bit operand `a` by an `m`-bit operand `b`:
//! AND gates form the partial products `pp[i][j] = a[j] & b[i]`, and rows of
//! full adders accumulate them exactly as in the figure.  Where the figure
//! feeds constant zeroes into the first row, this generator instead
//! instantiates half adders (the constant-propagation-simplified version of
//! the same array), which keeps the netlist free of constant nets without
//! changing the logic function or the glitching structure of the deeper
//! rows.
//!
//! Primary inputs are `a0..a{n-1}`, `b0..b{m-1}`; primary outputs are
//! `s0..s{n+m-1}` (the paper's `s0..s7` for the 4×4 instance).

use halotis_core::NetId;

use crate::cell::CellKind;
use crate::netlist::{Netlist, NetlistBuilder};

use super::adder::full_adder_cell;

/// The named ports of a generated multiplier, for convenient stimulus
/// construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiplierPorts {
    /// Operand `a` input names, LSB first (`a0, a1, ...`).
    pub a: Vec<String>,
    /// Operand `b` input names, LSB first (`b0, b1, ...`).
    pub b: Vec<String>,
    /// Product output names, LSB first (`s0, s1, ...`).
    pub s: Vec<String>,
}

impl MultiplierPorts {
    /// The port names of an `a_bits` × `b_bits` multiplier.
    ///
    /// The product has `a_bits + b_bits` bits when both operands are at
    /// least 2 bits wide; when either operand is a single bit the top bit is
    /// identically zero and the generator omits it, so only
    /// `a_bits + b_bits - 1` outputs exist.
    pub fn new(a_bits: usize, b_bits: usize) -> Self {
        let product_bits = if a_bits == 1 || b_bits == 1 {
            a_bits + b_bits - 1
        } else {
            a_bits + b_bits
        };
        MultiplierPorts {
            a: (0..a_bits).map(|i| format!("a{i}")).collect(),
            b: (0..b_bits).map(|i| format!("b{i}")).collect(),
            s: (0..product_bits).map(|i| format!("s{i}")).collect(),
        }
    }

    /// The `a` port names as `&str` slices (handy for the stimulus helpers).
    pub fn a_refs(&self) -> Vec<&str> {
        self.a.iter().map(String::as_str).collect()
    }

    /// The `b` port names as `&str` slices.
    pub fn b_refs(&self) -> Vec<&str> {
        self.b.iter().map(String::as_str).collect()
    }

    /// The `s` port names as `&str` slices.
    pub fn s_refs(&self) -> Vec<&str> {
        self.s.iter().map(String::as_str).collect()
    }
}

/// Builds an `a_bits` × `b_bits` unsigned array multiplier
/// (the paper uses 4 × 4).
///
/// # Panics
///
/// Panics if either width is zero or if the product would exceed 63 bits
/// (the functional tests compare against `u64` arithmetic).
///
/// # Example
///
/// ```
/// use halotis_netlist::generators;
/// let multiplier = generators::multiplier(4, 4);
/// assert_eq!(multiplier.primary_inputs().len(), 8);
/// assert_eq!(multiplier.primary_outputs().len(), 8);
/// ```
pub fn multiplier(a_bits: usize, b_bits: usize) -> Netlist {
    assert!(
        a_bits > 0 && b_bits > 0,
        "multiplier widths must be non-zero"
    );
    assert!(
        a_bits + b_bits <= 63,
        "multiplier product width must fit in u64 arithmetic"
    );
    let ports = MultiplierPorts::new(a_bits, b_bits);
    let mut builder = NetlistBuilder::new(format!("mult{a_bits}x{b_bits}"));
    let a: Vec<NetId> = ports.a.iter().map(|n| builder.add_input(n)).collect();
    let b: Vec<NetId> = ports.b.iter().map(|n| builder.add_input(n)).collect();

    // Partial products.
    let mut pp = vec![vec![NetId::new(0); a_bits]; b_bits];
    for (i, &bi) in b.iter().enumerate() {
        for (j, &aj) in a.iter().enumerate() {
            let net = builder.add_net(format!("pp{i}_{j}"));
            builder
                .add_gate(CellKind::And2, format!("and{i}_{j}"), &[aj, bi], net)
                .expect("partial-product gates are valid");
            pp[i][j] = net;
        }
    }

    let mut product: Vec<NetId> = Vec::with_capacity(a_bits + b_bits);

    if b_bits == 1 {
        // Degenerate case: the product is just the partial-product row.
        product.extend(pp[0].iter().copied());
    } else {
        // Row-by-row accumulation.  Invariant before processing row `i`
        // (1-based over partial-product rows): `acc[j]` carries weight
        // `(i - 1) + j` and `high` (if present) carries weight `(i - 1) + a_bits`.
        let mut acc: Vec<NetId> = pp[0].clone();
        let mut high: Option<NetId> = None;
        for (i, row) in pp.iter().enumerate().take(b_bits).skip(1) {
            product.push(acc[0]);
            let mut carry: Option<NetId> = None;
            let mut next_acc: Vec<NetId> = Vec::with_capacity(a_bits);
            for j in 0..a_bits {
                let addend = row[j];
                let from_previous = if j + 1 < a_bits {
                    Some(acc[j + 1])
                } else {
                    high
                };
                let prefix = format!("fa{i}_{j}");
                let (sum, cout) = match (from_previous, carry) {
                    (None, None) => {
                        // Nothing to add: the partial product passes through.
                        (addend, None)
                    }
                    (Some(x), None) | (None, Some(x)) => {
                        let sum = builder.add_net(format!("{prefix}_s"));
                        let cout = builder.add_net(format!("{prefix}_c"));
                        full_adder_cell(&mut builder, &prefix, addend, x, None, sum, cout);
                        (sum, Some(cout))
                    }
                    (Some(x), Some(c)) => {
                        let sum = builder.add_net(format!("{prefix}_s"));
                        let cout = builder.add_net(format!("{prefix}_c"));
                        full_adder_cell(&mut builder, &prefix, addend, x, Some(c), sum, cout);
                        (sum, Some(cout))
                    }
                };
                next_acc.push(sum);
                carry = cout;
            }
            acc = next_acc;
            high = carry;
        }
        product.extend(acc);
        if let Some(high) = high {
            product.push(high);
        }
    }

    // Name and expose the product bits.  Low-order bits come straight out of
    // partial-product or adder nets; a buffer per output gives every `s<k>`
    // net its conventional name and a uniform output load, as a pad driver
    // would in the real design.
    for (k, &bit) in product.iter().enumerate() {
        let out = builder.add_net(&ports.s[k]);
        builder
            .add_gate(CellKind::Buf, format!("outbuf{k}"), &[bit], out)
            .expect("output buffers are valid");
        builder.mark_output(out);
    }
    debug_assert_eq!(product.len(), ports.s.len());

    builder
        .build()
        .expect("array multiplier is a valid netlist")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;

    fn check_all_products(a_bits: usize, b_bits: usize) {
        let netlist = multiplier(a_bits, b_bits);
        let ports = MultiplierPorts::new(a_bits, b_bits);
        let a: Vec<NetId> = ports.a.iter().map(|n| netlist.net_id(n).unwrap()).collect();
        let b: Vec<NetId> = ports.b.iter().map(|n| netlist.net_id(n).unwrap()).collect();
        let s: Vec<NetId> = ports.s.iter().map(|n| netlist.net_id(n).unwrap()).collect();
        for av in 0..(1u64 << a_bits) {
            for bv in 0..(1u64 << b_bits) {
                let mut assignment = eval::bus_assignment(&a, av);
                assignment.extend(eval::bus_assignment(&b, bv));
                let got = eval::evaluate_bus(&netlist, &assignment, &s).unwrap();
                assert_eq!(got, av * bv, "{av} x {bv}");
            }
        }
    }

    #[test]
    fn four_by_four_matches_integer_multiplication() {
        check_all_products(4, 4);
    }

    #[test]
    fn rectangular_multipliers_are_correct() {
        check_all_products(3, 2);
        check_all_products(2, 3);
        check_all_products(5, 3);
    }

    #[test]
    fn tiny_multipliers_are_correct() {
        check_all_products(1, 1);
        check_all_products(2, 1);
        check_all_products(1, 2);
        check_all_products(2, 2);
    }

    #[test]
    fn four_by_four_has_paper_scale_structure() {
        let netlist = multiplier(4, 4);
        // 16 partial-product AND gates plus the adder array and output buffers.
        let histogram = netlist.gate_histogram();
        let ands = histogram
            .iter()
            .find(|(k, _)| *k == CellKind::And2)
            .map(|&(_, c)| c)
            .unwrap();
        assert!(ands >= 16);
        assert_eq!(netlist.primary_outputs().len(), 8);
        assert!(netlist.gate_count() > 50);
    }

    #[test]
    fn port_helper_names_are_consistent() {
        let ports = MultiplierPorts::new(4, 4);
        assert_eq!(ports.a_refs()[0], "a0");
        assert_eq!(ports.b_refs()[3], "b3");
        assert_eq!(ports.s_refs()[7], "s7");
        assert_eq!(ports.s.len(), 8);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_width_panics() {
        multiplier(0, 4);
    }
}
