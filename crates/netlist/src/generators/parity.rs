//! Balanced XOR-tree (parity) generator.
//!
//! Parity trees are the classic glitch amplifier: every input edge races
//! through `log2(width)` XOR levels, and any arrival-time skew between the
//! two operands of a node produces an output pulse.  That makes them a
//! sharp probe for the degradation model — short pulses born in the first
//! level must shrink (and eventually vanish) on their way up the tree,
//! which a conventional delay model cannot reproduce.

use halotis_core::NetId;

use crate::cell::CellKind;
use crate::netlist::{Netlist, NetlistBuilder};

/// Builds a balanced XOR reduction tree over `width` primary inputs
/// (`in0..in{width-1}`) with the single primary output `parity`.
///
/// Odd-sized levels forward their last net to the next level unchanged, so
/// the tree uses exactly `width - 1` XOR gates at depth `ceil(log2(width))`.
/// A `width` of 1 degenerates into a single buffer so the circuit still has
/// one gate and one observable output.
///
/// # Panics
///
/// Panics if `width == 0`.
///
/// # Example
///
/// ```
/// use halotis_netlist::generators;
/// let tree = generators::parity_tree(8);
/// assert_eq!(tree.gate_count(), 7);
/// assert_eq!(tree.primary_inputs().len(), 8);
/// assert_eq!(tree.primary_outputs().len(), 1);
/// ```
pub fn parity_tree(width: usize) -> Netlist {
    assert!(width > 0, "a parity tree needs at least one input");
    let mut builder = NetlistBuilder::new(format!("parity{width}"));
    let mut frontier: Vec<NetId> = (0..width)
        .map(|i| builder.add_input(format!("in{i}")))
        .collect();

    if width == 1 {
        let out = builder.add_net("parity");
        builder
            .add_gate(CellKind::Buf, "pbuf", &[frontier[0]], out)
            .expect("buffer output net must be undriven");
        builder.mark_output(out);
        return builder.build().expect("parity tree is a valid netlist");
    }

    let mut level = 0usize;
    let mut gate_index = 0usize;
    while frontier.len() > 1 {
        let mut next: Vec<NetId> = Vec::with_capacity(frontier.len().div_ceil(2));
        for pair in frontier.chunks(2) {
            match pair {
                [left, right] => {
                    let is_root = frontier.len() == 2;
                    let out = if is_root {
                        builder.add_net("parity")
                    } else {
                        builder.add_net(format!("x{}_{}", level, next.len()))
                    };
                    builder
                        .add_gate(
                            CellKind::Xor2,
                            format!("xor{gate_index}"),
                            &[*left, *right],
                            out,
                        )
                        .expect("tree node net must be undriven");
                    gate_index += 1;
                    next.push(out);
                }
                [odd] => next.push(*odd),
                _ => unreachable!("chunks(2) yields one or two elements"),
            }
        }
        frontier = next;
        level += 1;
    }
    builder.mark_output(frontier[0]);
    builder.build().expect("parity tree is a valid netlist")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use crate::levelize;

    #[test]
    fn parity_matches_popcount_for_exhaustive_patterns() {
        for width in [1usize, 2, 3, 5, 8] {
            let tree = parity_tree(width);
            let inputs: Vec<NetId> = (0..width)
                .map(|i| tree.net_id(&format!("in{i}")).unwrap())
                .collect();
            let out = tree.net_id("parity").unwrap();
            for pattern in 0..(1u64 << width) {
                let assignment = eval::bus_assignment(&inputs, pattern);
                let value = eval::evaluate_bus(&tree, &assignment, &[out]).unwrap();
                assert_eq!(
                    value,
                    u64::from(pattern.count_ones() % 2 == 1),
                    "width {width}, pattern {pattern:b}"
                );
            }
        }
    }

    #[test]
    fn tree_is_balanced_and_minimal() {
        for width in [2usize, 4, 7, 16] {
            let tree = parity_tree(width);
            assert_eq!(tree.gate_count(), width - 1, "width {width}");
            let depth = levelize::levelize(&tree).unwrap().depth();
            let expected = (usize::BITS - (width - 1).leading_zeros()) as usize;
            assert_eq!(depth, expected, "width {width}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn zero_width_parity_panics() {
        parity_tree(0);
    }
}
