//! Kogge-Stone (parallel-prefix / carry-lookahead) adder generator.
//!
//! A ripple-carry adder's carry chain is `n` gates deep; the Kogge-Stone
//! network computes every carry through a `log2(n)`-level prefix tree of
//! generate/propagate pairs instead.  That gives the corpus an adder whose
//! arithmetic matches [`ripple_carry_adder`](super::ripple_carry_adder)
//! bit-for-bit while the *timing topology* is radically different: shallow,
//! wide, with high-fanout prefix nets — the glitch profile of real
//! carry-lookahead datapaths.

use halotis_core::NetId;

use crate::cell::CellKind;
use crate::netlist::{Netlist, NetlistBuilder};

/// Builds an `n`-bit Kogge-Stone adder with primary inputs `a0..`, `b0..`
/// and `cin`, and primary outputs `s0..` and `cout` — the same port profile
/// (and the same arithmetic) as
/// [`ripple_carry_adder`](super::ripple_carry_adder).
///
/// Per bit, propagate `p_i = a_i ^ b_i` and generate `g_i = a_i · b_i` feed
/// `ceil(log2(n))` prefix levels; at level `k` (span `d = 2^k`) position
/// `i >= d` combines with position `i - d`:
///
/// ```text
/// G'_i = G_i + P_i · G_{i-d}        (one AND2, one OR2)
/// P'_i = P_i · P_{i-d}              (one AND2)
/// ```
///
/// The carry into bit `i` is then `c_i = G_{i-1} + P_{i-1} · cin` and the
/// sum `s_i = p_i ^ c_i`.
///
/// # Panics
///
/// Panics if `bits == 0`.
///
/// # Example
///
/// ```
/// use halotis_netlist::{generators, levelize};
///
/// let ks = generators::kogge_stone_adder(8);
/// assert_eq!(ks.primary_inputs().len(), 17); // a0..a7, b0..b7, cin
/// assert_eq!(ks.primary_outputs().len(), 9); // s0..s7, cout
/// // The prefix network is shallower than the 8-bit ripple carry chain.
/// let ripple = generators::ripple_carry_adder(8);
/// assert!(levelize::levelize(&ks).unwrap().depth() < levelize::levelize(&ripple).unwrap().depth());
/// ```
pub fn kogge_stone_adder(bits: usize) -> Netlist {
    assert!(bits > 0, "an adder needs at least one bit");
    let mut builder = NetlistBuilder::new(format!("ks{bits}"));
    let a: Vec<NetId> = (0..bits)
        .map(|i| builder.add_input(format!("a{i}")))
        .collect();
    let b: Vec<NetId> = (0..bits)
        .map(|i| builder.add_input(format!("b{i}")))
        .collect();
    let cin = builder.add_input("cin");

    // Per-bit propagate / generate.
    let p: Vec<NetId> = (0..bits)
        .map(|i| {
            let net = builder.add_net(format!("p{i}"));
            builder
                .add_gate(CellKind::Xor2, format!("pxor{i}"), &[a[i], b[i]], net)
                .expect("propagate net must be undriven");
            net
        })
        .collect();
    let g: Vec<NetId> = (0..bits)
        .map(|i| {
            let net = builder.add_net(format!("g{i}"));
            builder
                .add_gate(CellKind::And2, format!("gand{i}"), &[a[i], b[i]], net)
                .expect("generate net must be undriven");
            net
        })
        .collect();

    // Prefix levels: after level k, position i holds (G, P) over the span
    // `i ..= i - (2^(k+1) - 1)` (clamped at bit 0).
    let mut big_g = g;
    let mut big_p = p.clone();
    let mut distance = 1usize;
    let mut level = 0usize;
    while distance < bits {
        let mut next_g = big_g.clone();
        let mut next_p = big_p.clone();
        for i in distance..bits {
            let and_net = builder.add_net(format!("ks{level}_pg{i}"));
            builder
                .add_gate(
                    CellKind::And2,
                    format!("ks{level}_and{i}"),
                    &[big_p[i], big_g[i - distance]],
                    and_net,
                )
                .expect("prefix net must be undriven");
            let g_net = builder.add_net(format!("ks{level}_g{i}"));
            builder
                .add_gate(
                    CellKind::Or2,
                    format!("ks{level}_or{i}"),
                    &[big_g[i], and_net],
                    g_net,
                )
                .expect("prefix net must be undriven");
            next_g[i] = g_net;
            let p_net = builder.add_net(format!("ks{level}_p{i}"));
            builder
                .add_gate(
                    CellKind::And2,
                    format!("ks{level}_pand{i}"),
                    &[big_p[i], big_p[i - distance]],
                    p_net,
                )
                .expect("prefix net must be undriven");
            next_p[i] = p_net;
        }
        big_g = next_g;
        big_p = next_p;
        distance *= 2;
        level += 1;
    }

    // Carries: c_0 = cin, c_i = G_{i-1} + P_{i-1} · cin, cout = c_bits.
    let mut carries: Vec<NetId> = Vec::with_capacity(bits + 1);
    carries.push(cin);
    for i in 1..=bits {
        let and_net = builder.add_net(format!("ccin{i}"));
        builder
            .add_gate(
                CellKind::And2,
                format!("ccand{i}"),
                &[big_p[i - 1], cin],
                and_net,
            )
            .expect("carry net must be undriven");
        let carry = if i == bits {
            builder.add_net("cout")
        } else {
            builder.add_net(format!("c{i}"))
        };
        builder
            .add_gate(
                CellKind::Or2,
                format!("ccor{i}"),
                &[big_g[i - 1], and_net],
                carry,
            )
            .expect("carry net must be undriven");
        carries.push(carry);
    }

    for i in 0..bits {
        let sum = builder.add_net(format!("s{i}"));
        builder
            .add_gate(CellKind::Xor2, format!("sxor{i}"), &[p[i], carries[i]], sum)
            .expect("sum net must be undriven");
        builder.mark_output(sum);
    }
    builder.mark_output(carries[bits]);
    builder
        .build()
        .expect("Kogge-Stone adder is a valid netlist")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use crate::generators::ripple_carry_adder;
    use crate::levelize;

    fn adder_ports(adder: &Netlist, bits: usize) -> (Vec<NetId>, Vec<NetId>, NetId, Vec<NetId>) {
        let a: Vec<NetId> = (0..bits)
            .map(|i| adder.net_id(&format!("a{i}")).unwrap())
            .collect();
        let b: Vec<NetId> = (0..bits)
            .map(|i| adder.net_id(&format!("b{i}")).unwrap())
            .collect();
        let cin = adder.net_id("cin").unwrap();
        let mut outputs: Vec<NetId> = (0..bits)
            .map(|i| adder.net_id(&format!("s{i}")).unwrap())
            .collect();
        outputs.push(adder.net_id("cout").unwrap());
        (a, b, cin, outputs)
    }

    #[test]
    fn kogge_stone_matches_integer_addition() {
        for bits in [1usize, 2, 3, 4, 5, 8] {
            let adder = kogge_stone_adder(bits);
            let (a, b, cin, outputs) = adder_ports(&adder, bits);
            let max = 1u64 << bits;
            for av in 0..max.min(16) {
                for bv in [0, 1, max / 2, max - 1] {
                    for c in 0..2u64 {
                        let mut assignment = eval::bus_assignment(&a, av);
                        assignment.extend(eval::bus_assignment(&b, bv));
                        assignment.extend(eval::bus_assignment(&[cin], c));
                        let result = eval::evaluate_bus(&adder, &assignment, &outputs).unwrap();
                        assert_eq!(result, av + bv + c, "{bits}b: {av} + {bv} + {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn prefix_depth_is_logarithmic() {
        // p/g (1) + log2(n) prefix levels (2 each) + carry combine (2) +
        // sum xor (1).
        for bits in [4usize, 8, 16] {
            let depth = levelize::levelize(&kogge_stone_adder(bits))
                .unwrap()
                .depth();
            let levels = bits.next_power_of_two().trailing_zeros() as usize;
            assert!(
                depth <= 2 + 2 * levels + 3,
                "{bits}b depth {depth} not logarithmic"
            );
        }
        let ks = levelize::levelize(&kogge_stone_adder(16)).unwrap().depth();
        let ripple = levelize::levelize(&ripple_carry_adder(16)).unwrap().depth();
        assert!(ks < ripple, "ks {ks} >= ripple {ripple}");
    }

    #[test]
    fn port_profile_matches_ripple_carry() {
        let ks = kogge_stone_adder(8);
        let ripple = ripple_carry_adder(8);
        assert_eq!(ks.primary_inputs().len(), ripple.primary_inputs().len());
        assert_eq!(ks.primary_outputs().len(), ripple.primary_outputs().len());
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bit_adder_panics() {
        kogge_stone_adder(0);
    }
}
