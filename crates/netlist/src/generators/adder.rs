//! Full-adder, ripple-carry-adder and carry-skip-adder generators.

use halotis_core::NetId;

use crate::cell::CellKind;
use crate::netlist::{Netlist, NetlistBuilder};

/// Instantiates a full-adder cell (`sum = a ^ b ^ cin`,
/// `cout = a·b + (a^b)·cin`) into an existing builder using XOR/AND/OR
/// gates, writing the results onto the caller-provided `sum` and `cout`
/// nets.
///
/// When `cin` is `None` the cell degenerates into a half adder (2 gates
/// instead of 5).  Internal nets and gate names are prefixed with `prefix`.
///
/// # Panics
///
/// Panics if `sum` or `cout` already have a driver (the builder reports it
/// as a multiple-driver error, which generators treat as a programming
/// mistake).
pub fn full_adder_cell(
    builder: &mut NetlistBuilder,
    prefix: &str,
    a: NetId,
    b: NetId,
    cin: Option<NetId>,
    sum: NetId,
    cout: NetId,
) {
    match cin {
        None => {
            builder
                .add_gate(CellKind::Xor2, format!("{prefix}_xor"), &[a, b], sum)
                .expect("half adder sum net must be undriven");
            builder
                .add_gate(CellKind::And2, format!("{prefix}_and"), &[a, b], cout)
                .expect("half adder carry net must be undriven");
        }
        Some(cin) => {
            let axb = builder.add_net(format!("{prefix}_axb"));
            let and1 = builder.add_net(format!("{prefix}_ab"));
            let and2 = builder.add_net(format!("{prefix}_axbc"));
            builder
                .add_gate(CellKind::Xor2, format!("{prefix}_xor1"), &[a, b], axb)
                .expect("full adder internal net must be undriven");
            builder
                .add_gate(CellKind::Xor2, format!("{prefix}_xor2"), &[axb, cin], sum)
                .expect("full adder sum net must be undriven");
            builder
                .add_gate(CellKind::And2, format!("{prefix}_and1"), &[a, b], and1)
                .expect("full adder internal net must be undriven");
            builder
                .add_gate(CellKind::And2, format!("{prefix}_and2"), &[axb, cin], and2)
                .expect("full adder internal net must be undriven");
            builder
                .add_gate(CellKind::Or2, format!("{prefix}_or"), &[and1, and2], cout)
                .expect("full adder carry net must be undriven");
        }
    }
}

/// Builds an `n`-bit ripple-carry adder with primary inputs `a0..`, `b0..`
/// and `cin`, and primary outputs `s0..` and `cout`.
///
/// # Panics
///
/// Panics if `bits == 0`.
///
/// # Example
///
/// ```
/// use halotis_netlist::generators;
/// let adder = generators::ripple_carry_adder(4);
/// assert_eq!(adder.primary_inputs().len(), 9); // a0..a3, b0..b3, cin
/// assert_eq!(adder.primary_outputs().len(), 5); // s0..s3, cout
/// assert!(adder.net_id("s2").is_some());
/// ```
pub fn ripple_carry_adder(bits: usize) -> Netlist {
    assert!(bits > 0, "an adder needs at least one bit");
    let mut builder = NetlistBuilder::new(format!("rca{bits}"));
    let a: Vec<NetId> = (0..bits)
        .map(|i| builder.add_input(format!("a{i}")))
        .collect();
    let b: Vec<NetId> = (0..bits)
        .map(|i| builder.add_input(format!("b{i}")))
        .collect();
    let cin = builder.add_input("cin");

    let mut carry = cin;
    for bit in 0..bits {
        let sum = builder.add_net(format!("s{bit}"));
        let cout = if bit + 1 == bits {
            builder.add_net("cout")
        } else {
            builder.add_net(format!("c{}", bit + 1))
        };
        full_adder_cell(
            &mut builder,
            &format!("fa{bit}"),
            a[bit],
            b[bit],
            Some(carry),
            sum,
            cout,
        );
        builder.mark_output(sum);
        carry = cout;
    }
    builder.mark_output(carry);
    builder
        .build()
        .expect("ripple-carry adder is a valid netlist")
}

/// Builds an `n`-bit carry-skip adder: ripple-carry blocks of `block_bits`
/// bits augmented with the classical AND-OR skip path (`cout_block =
/// ripple_cout | (P_block & cin_block)`, where `P_block` is the AND of the
/// per-bit propagate signals `a_i ^ b_i`).
///
/// The function computed is identical to [`ripple_carry_adder`]; what
/// changes is the carry network's topology, which gives the corpus a
/// structurally different glitching profile for the same arithmetic.
/// Primary inputs are `a0..`, `b0..` and `cin`; primary outputs `s0..` and
/// `cout`.  The per-bit propagate nets reuse the full adders' internal
/// `fa{i}_axb` XOR outputs, so the skip logic adds only the AND tree and
/// one AND/OR pair per block.
///
/// # Panics
///
/// Panics if `bits == 0` or `block_bits == 0`.
///
/// # Example
///
/// ```
/// use halotis_netlist::generators;
/// let adder = generators::carry_skip_adder(8, 4);
/// assert_eq!(adder.primary_inputs().len(), 17); // a0..a7, b0..b7, cin
/// assert_eq!(adder.primary_outputs().len(), 9); // s0..s7, cout
/// ```
pub fn carry_skip_adder(bits: usize, block_bits: usize) -> Netlist {
    assert!(bits > 0, "an adder needs at least one bit");
    assert!(block_bits > 0, "a skip block needs at least one bit");
    let mut builder = NetlistBuilder::new(format!("cska{bits}b{block_bits}"));
    let a: Vec<NetId> = (0..bits)
        .map(|i| builder.add_input(format!("a{i}")))
        .collect();
    let b: Vec<NetId> = (0..bits)
        .map(|i| builder.add_input(format!("b{i}")))
        .collect();
    let cin = builder.add_input("cin");

    let mut block_cin = cin;
    let mut block_index = 0usize;
    let mut bit = 0usize;
    while bit < bits {
        let block_end = (bit + block_bits).min(bits);
        let block_cin_net = block_cin;
        let mut carry = block_cin_net;
        let mut propagates: Vec<NetId> = Vec::with_capacity(block_end - bit);
        for i in bit..block_end {
            let sum = builder.add_net(format!("s{i}"));
            let ripple_cout = builder.add_net(format!("rc{}", i + 1));
            full_adder_cell(
                &mut builder,
                &format!("fa{i}"),
                a[i],
                b[i],
                Some(carry),
                sum,
                ripple_cout,
            );
            builder.mark_output(sum);
            // The full adder already computed the propagate a_i ^ b_i as its
            // internal `fa{i}_axb` net; look it up by name instead of
            // duplicating the XOR.
            propagates.push(builder.add_net(format!("fa{i}_axb")));
            carry = ripple_cout;
        }

        // Block propagate: AND-fold the per-bit propagates.
        let mut block_p = propagates[0];
        for (fold, &p) in propagates.iter().enumerate().skip(1) {
            let next = builder.add_net(format!("bp{block_index}_{fold}"));
            builder
                .add_gate(
                    CellKind::And2,
                    format!("bpand{block_index}_{fold}"),
                    &[block_p, p],
                    next,
                )
                .expect("block propagate net must be undriven");
            block_p = next;
        }

        // Skip path: cout_block = ripple_cout | (P_block & cin_block).
        let skip = builder.add_net(format!("skip{block_index}"));
        builder
            .add_gate(
                CellKind::And2,
                format!("skipand{block_index}"),
                &[block_p, block_cin_net],
                skip,
            )
            .expect("skip net must be undriven");
        let block_cout = if block_end == bits {
            builder.add_net("cout")
        } else {
            builder.add_net(format!("bc{block_index}"))
        };
        builder
            .add_gate(
                CellKind::Or2,
                format!("skipor{block_index}"),
                &[carry, skip],
                block_cout,
            )
            .expect("block carry-out net must be undriven");

        block_cin = block_cout;
        block_index += 1;
        bit = block_end;
    }
    builder.mark_output(block_cin);
    builder
        .build()
        .expect("carry-skip adder is a valid netlist")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;

    #[test]
    fn four_bit_adder_matches_integer_addition() {
        let bits = 4;
        let adder = ripple_carry_adder(bits);
        let a: Vec<NetId> = (0..bits)
            .map(|i| adder.net_id(&format!("a{i}")).unwrap())
            .collect();
        let b: Vec<NetId> = (0..bits)
            .map(|i| adder.net_id(&format!("b{i}")).unwrap())
            .collect();
        let cin = adder.net_id("cin").unwrap();
        let mut outputs: Vec<NetId> = (0..bits)
            .map(|i| adder.net_id(&format!("s{i}")).unwrap())
            .collect();
        outputs.push(adder.net_id("cout").unwrap());
        for av in 0..(1u64 << bits) {
            for bv in [0u64, 1, 5, 9, 15] {
                for c in 0..2u64 {
                    let mut assignment = eval::bus_assignment(&a, av);
                    assignment.extend(eval::bus_assignment(&b, bv));
                    assignment.extend(eval::bus_assignment(&[cin], c));
                    let result = eval::evaluate_bus(&adder, &assignment, &outputs).unwrap();
                    assert_eq!(result, av + bv + c, "{av} + {bv} + {c}");
                }
            }
        }
    }

    #[test]
    fn half_adder_cell_uses_two_gates() {
        let mut builder = NetlistBuilder::new("ha");
        let a = builder.add_input("a");
        let b = builder.add_input("b");
        let sum = builder.add_net("sum");
        let cout = builder.add_net("cout");
        full_adder_cell(&mut builder, "ha0", a, b, None, sum, cout);
        builder.mark_output(sum);
        builder.mark_output(cout);
        let netlist = builder.build().unwrap();
        assert_eq!(netlist.gate_count(), 2);
        for pattern in 0..4u64 {
            let assignment = eval::bus_assignment(&[a, b], pattern);
            let value = eval::evaluate_bus(&netlist, &assignment, &[sum, cout]).unwrap();
            assert_eq!(value, pattern.count_ones() as u64);
        }
    }

    #[test]
    fn full_adder_cell_uses_five_gates() {
        let mut builder = NetlistBuilder::new("fa");
        let a = builder.add_input("a");
        let b = builder.add_input("b");
        let c = builder.add_input("c");
        let sum = builder.add_net("sum");
        let cout = builder.add_net("cout");
        full_adder_cell(&mut builder, "fa0", a, b, Some(c), sum, cout);
        builder.mark_output(sum);
        builder.mark_output(cout);
        let netlist = builder.build().unwrap();
        assert_eq!(netlist.gate_count(), 5);
        for pattern in 0..8u64 {
            let assignment = eval::bus_assignment(&[a, b, c], pattern);
            let value = eval::evaluate_bus(&netlist, &assignment, &[sum, cout]).unwrap();
            let ones = pattern.count_ones() as u64;
            assert_eq!(value, ones, "pattern {pattern:03b}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bit_adder_panics() {
        ripple_carry_adder(0);
    }

    #[test]
    fn carry_skip_adder_matches_integer_addition() {
        for (bits, block) in [(4usize, 2usize), (5, 3), (6, 2), (8, 4), (3, 8)] {
            let adder = carry_skip_adder(bits, block);
            let a: Vec<NetId> = (0..bits)
                .map(|i| adder.net_id(&format!("a{i}")).unwrap())
                .collect();
            let b: Vec<NetId> = (0..bits)
                .map(|i| adder.net_id(&format!("b{i}")).unwrap())
                .collect();
            let cin = adder.net_id("cin").unwrap();
            let mut outputs: Vec<NetId> = (0..bits)
                .map(|i| adder.net_id(&format!("s{i}")).unwrap())
                .collect();
            outputs.push(adder.net_id("cout").unwrap());
            let max = 1u64 << bits;
            for av in [0, 1, max / 2, max - 2, max - 1] {
                for bv in [0, 1, 3, max / 2 + 1, max - 1] {
                    for c in 0..2u64 {
                        let mut assignment = eval::bus_assignment(&a, av);
                        assignment.extend(eval::bus_assignment(&b, bv));
                        assignment.extend(eval::bus_assignment(&[cin], c));
                        let result = eval::evaluate_bus(&adder, &assignment, &outputs).unwrap();
                        assert_eq!(result, av + bv + c, "{bits}b/{block}: {av} + {bv} + {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn carry_skip_adder_has_more_gates_than_ripple() {
        // The skip network is an addition on top of the ripple structure.
        let ripple = ripple_carry_adder(8);
        let skip = carry_skip_adder(8, 4);
        assert!(skip.gate_count() > ripple.gate_count());
        assert_eq!(skip.primary_inputs().len(), ripple.primary_inputs().len());
        assert_eq!(skip.primary_outputs().len(), ripple.primary_outputs().len());
    }

    #[test]
    #[should_panic(expected = "skip block needs at least one bit")]
    fn zero_block_carry_skip_panics() {
        carry_skip_adder(4, 0);
    }
}
