//! Seeded random combinational-logic generator.
//!
//! Scaling and queue benches need circuits much larger than the paper's 4×4
//! multiplier.  [`random_logic`] produces a reproducible random DAG of
//! 1- and 2-input cells: every gate draws its inputs from already existing
//! nets (biased towards recent ones so the circuit develops depth), so the
//! result is loop-free by construction.
//!
//! The generator uses a small internal SplitMix64 PRNG so that the netlist
//! crate stays free of external dependencies and the same seed always yields
//! the same circuit.

use halotis_core::NetId;

use crate::cell::CellKind;
use crate::netlist::{Netlist, NetlistBuilder};

/// Minimal SplitMix64 PRNG (public-domain algorithm), enough for structural
/// randomisation and for seeded in-crate test vectors.
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound > 0).
    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

const RANDOM_CELLS: [CellKind; 6] = [
    CellKind::Inv,
    CellKind::Nand2,
    CellKind::Nor2,
    CellKind::And2,
    CellKind::Or2,
    CellKind::Xor2,
];

/// Builds a random combinational circuit with `inputs` primary inputs and
/// `gates` gate instances, deterministically derived from `seed`.
///
/// Nets that end up with no fanout become primary outputs, so the circuit
/// is always fully observable.
///
/// # Panics
///
/// Panics if `inputs == 0` or `gates == 0`.
///
/// # Example
///
/// ```
/// use halotis_netlist::generators;
/// let a = generators::random_logic(16, 300, 7);
/// let b = generators::random_logic(16, 300, 7);
/// assert_eq!(a.gate_count(), 300);
/// // Same seed, same circuit.
/// assert_eq!(a.net_count(), b.net_count());
/// ```
pub fn random_logic(inputs: usize, gates: usize, seed: u64) -> Netlist {
    assert!(inputs > 0, "random circuit needs at least one input");
    assert!(gates > 0, "random circuit needs at least one gate");
    let mut rng = SplitMix64::new(seed);
    let mut builder = NetlistBuilder::new(format!("random_{inputs}x{gates}_{seed}"));
    let mut nets: Vec<NetId> = (0..inputs)
        .map(|i| builder.add_input(format!("in{i}")))
        .collect();

    for index in 0..gates {
        let kind = RANDOM_CELLS[rng.below(RANDOM_CELLS.len())];
        // Bias the input choice towards recently created nets: pick from the
        // last `window` nets half of the time.
        let pick = |rng: &mut SplitMix64, nets: &[NetId]| -> NetId {
            let window = nets.len().min(3 * inputs.max(4));
            if rng.below(2) == 0 {
                nets[nets.len() - 1 - rng.below(window)]
            } else {
                nets[rng.below(nets.len())]
            }
        };
        let gate_inputs: Vec<NetId> = (0..kind.input_count())
            .map(|_| pick(&mut rng, &nets))
            .collect();
        let output = builder.add_net(format!("w{index}"));
        builder
            .add_gate(kind, format!("rg{index}"), &gate_inputs, output)
            .expect("random gates reference existing nets only");
        nets.push(output);
    }

    let netlist_preview = builder.clone().build().expect("random DAG is loop-free");
    for net in netlist_preview.nets() {
        if net.loads().is_empty() && !net.is_primary_input() {
            let id = builder.add_net(net.name());
            builder.mark_output(id);
        }
    }
    builder.build().expect("random DAG is loop-free")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use crate::levelize;
    use halotis_core::LogicLevel;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = random_logic(8, 100, 42);
        let b = random_logic(8, 100, 42);
        let c = random_logic(8, 100, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn every_gate_output_is_observable_or_used() {
        let netlist = random_logic(8, 200, 1);
        for net in netlist.nets() {
            if !net.is_primary_input() {
                assert!(
                    !net.loads().is_empty() || net.is_primary_output(),
                    "net {} is dangling",
                    net.name()
                );
            }
        }
    }

    #[test]
    fn circuits_are_levelizable_and_evaluable() {
        let netlist = random_logic(6, 150, 9);
        let depth = levelize::levelize(&netlist).unwrap().depth();
        assert!(depth >= 2, "depth = {depth}");
        let assignment: Vec<_> = netlist
            .primary_inputs()
            .iter()
            .map(|&n| (n, LogicLevel::High))
            .collect();
        let levels = eval::evaluate(&netlist, &assignment);
        // With all inputs defined, every net settles to a defined level.
        for net in netlist.nets() {
            assert!(levels[net.id().index()].is_defined());
        }
    }

    #[test]
    fn size_parameters_are_respected() {
        let netlist = random_logic(12, 333, 5);
        assert_eq!(netlist.gate_count(), 333);
        assert_eq!(netlist.primary_inputs().len(), 12);
        assert!(!netlist.primary_outputs().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one gate")]
    fn zero_gates_panics() {
        random_logic(4, 0, 1);
    }
}
