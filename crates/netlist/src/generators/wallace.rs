//! Wallace-tree multiplier generator.
//!
//! The array multiplier of the paper's Fig. 5 accumulates partial products
//! row by row — a deep, regular adder array.  A Wallace tree instead
//! reduces every bit-weight column with layers of 3:2 compressors (full
//! adders) until at most two summands remain per column, then resolves the
//! final pair with one ripple carry pass.  Same arithmetic as
//! [`multiplier`](super::multiplier), logarithmic reduction depth, and a
//! much more irregular arrival-time profile — the classic glitch-heavy
//! multiplier topology the degradation model is meant to tame.

use halotis_core::NetId;

use crate::cell::CellKind;
use crate::netlist::{Netlist, NetlistBuilder};

use super::adder::full_adder_cell;

/// Builds an `a_bits` × `b_bits` unsigned Wallace-tree multiplier.
///
/// Primary inputs are `a0..a{n-1}` and `b0..b{m-1}` (LSB first), primary
/// outputs `p0..p{n+m-1}` (for single-bit operands the identically-zero top
/// bit is omitted, as in the array multiplier).  Partial products
/// `pp{i}_{j} = a_i · b_j` are grouped by weight `i + j`; each reduction
/// round replaces three nets of one column with a full adder (sum staying,
/// carry moving one column up) and pairs of leftover nets with half adders,
/// until every column holds at most two nets; a final carry-propagate pass
/// produces the product bits.
///
/// # Panics
///
/// Panics if either width is zero or if the product would exceed 63 bits
/// (functional tests compare against `u64` arithmetic).
///
/// # Example
///
/// ```
/// use halotis_netlist::{generators, levelize};
///
/// let wallace = generators::wallace_tree_multiplier(4, 4);
/// assert_eq!(wallace.primary_inputs().len(), 8);
/// assert_eq!(wallace.primary_outputs().len(), 8); // p0..p7
/// // Same arithmetic as the array multiplier, different topology.
/// let array = generators::multiplier(4, 4);
/// assert_ne!(
///     levelize::levelize(&wallace).unwrap().depth(),
///     levelize::levelize(&array).unwrap().depth()
/// );
/// ```
pub fn wallace_tree_multiplier(a_bits: usize, b_bits: usize) -> Netlist {
    assert!(a_bits > 0 && b_bits > 0, "operands need at least one bit");
    assert!(
        a_bits + b_bits <= 63,
        "product limited to 63 bits for u64 reference checks"
    );
    let mut builder = NetlistBuilder::new(format!("wallace{a_bits}x{b_bits}"));
    let a: Vec<NetId> = (0..a_bits)
        .map(|i| builder.add_input(format!("a{i}")))
        .collect();
    let b: Vec<NetId> = (0..b_bits)
        .map(|i| builder.add_input(format!("b{i}")))
        .collect();

    let product_bits = if a_bits == 1 || b_bits == 1 {
        a_bits + b_bits - 1
    } else {
        a_bits + b_bits
    };

    // Partial products, grouped into columns by weight.
    let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); product_bits];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let pp = builder.add_net(format!("pp{i}_{j}"));
            builder
                .add_gate(CellKind::And2, format!("ppand{i}_{j}"), &[ai, bj], pp)
                .expect("partial-product net must be undriven");
            columns[i + j].push(pp);
        }
    }

    // Reduction rounds: 3:2-compress every column until none holds more
    // than two nets.  Sums stay in their column, carries move one up.
    let mut round = 0usize;
    while columns.iter().any(|column| column.len() > 2) {
        let mut next: Vec<Vec<NetId>> = vec![Vec::new(); product_bits];
        for (weight, column) in columns.iter().enumerate() {
            let mut chunks = column.chunks_exact(3);
            let mut compressor = 0usize;
            for chunk in chunks.by_ref() {
                let prefix = format!("w{round}_{weight}_{compressor}");
                let sum = builder.add_net(format!("{prefix}_s"));
                let carry = builder.add_net(format!("{prefix}_c"));
                full_adder_cell(
                    &mut builder,
                    &prefix,
                    chunk[0],
                    chunk[1],
                    Some(chunk[2]),
                    sum,
                    carry,
                );
                next[weight].push(sum);
                next[weight + 1].push(carry);
                compressor += 1;
            }
            match chunks.remainder() {
                // A leftover pair in a still-oversized column shrinks via a
                // half adder; columns already at <= 2 pass through untouched.
                [x, y] if column.len() > 2 => {
                    let prefix = format!("w{round}_{weight}_{compressor}");
                    let sum = builder.add_net(format!("{prefix}_s"));
                    let carry = builder.add_net(format!("{prefix}_c"));
                    full_adder_cell(&mut builder, &prefix, *x, *y, None, sum, carry);
                    next[weight].push(sum);
                    next[weight + 1].push(carry);
                }
                rest => next[weight].extend_from_slice(rest),
            }
        }
        columns = next;
        round += 1;
    }

    // Final carry-propagate pass over the (at most two deep) columns.
    let mut carry: Option<NetId> = None;
    for (weight, column) in columns.iter().enumerate() {
        let product = builder.add_net(format!("p{weight}"));
        let mut summands = column.clone();
        if let Some(c) = carry.take() {
            summands.push(c);
        }
        match summands.as_slice() {
            [] => unreachable!("every product column receives at least one summand"),
            [single] => {
                builder
                    .add_gate(CellKind::Buf, format!("fbuf{weight}"), &[*single], product)
                    .expect("product net must be undriven");
            }
            [x, y] => {
                if weight + 1 == product_bits {
                    // The topmost column cannot overflow: a plain XOR
                    // (whose carry would be constant zero) closes the sum.
                    builder
                        .add_gate(CellKind::Xor2, format!("fxor{weight}"), &[*x, *y], product)
                        .expect("product net must be undriven");
                } else {
                    let cnet = builder.add_net(format!("fc{weight}"));
                    full_adder_cell(
                        &mut builder,
                        &format!("fha{weight}"),
                        *x,
                        *y,
                        None,
                        product,
                        cnet,
                    );
                    carry = Some(cnet);
                }
            }
            [x, y, z] => {
                let cnet = builder.add_net(format!("fc{weight}"));
                full_adder_cell(
                    &mut builder,
                    &format!("ffa{weight}"),
                    *x,
                    *y,
                    Some(*z),
                    product,
                    cnet,
                );
                carry = Some(cnet);
            }
            _ => unreachable!("columns are reduced to two nets before the final pass"),
        }
        builder.mark_output(product);
    }
    debug_assert!(carry.is_none(), "final carry must land in the top column");
    builder
        .build()
        .expect("Wallace-tree multiplier is a valid netlist")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use crate::generators::multiplier;
    use crate::levelize;

    fn ports(
        netlist: &Netlist,
        a_bits: usize,
        b_bits: usize,
    ) -> (Vec<NetId>, Vec<NetId>, Vec<NetId>) {
        let a: Vec<NetId> = (0..a_bits)
            .map(|i| netlist.net_id(&format!("a{i}")).unwrap())
            .collect();
        let b: Vec<NetId> = (0..b_bits)
            .map(|i| netlist.net_id(&format!("b{i}")).unwrap())
            .collect();
        let outputs: Vec<NetId> = (0..netlist.primary_outputs().len())
            .map(|i| netlist.net_id(&format!("p{i}")).unwrap())
            .collect();
        (a, b, outputs)
    }

    #[test]
    fn wallace_matches_integer_multiplication_exhaustively() {
        for (a_bits, b_bits) in [(1usize, 1usize), (1, 3), (2, 2), (3, 4), (4, 4)] {
            let netlist = wallace_tree_multiplier(a_bits, b_bits);
            let (a, b, outputs) = ports(&netlist, a_bits, b_bits);
            for av in 0..(1u64 << a_bits) {
                for bv in 0..(1u64 << b_bits) {
                    let mut assignment = eval::bus_assignment(&a, av);
                    assignment.extend(eval::bus_assignment(&b, bv));
                    let result = eval::evaluate_bus(&netlist, &assignment, &outputs).unwrap();
                    assert_eq!(result, av * bv, "{a_bits}x{b_bits}: {av} * {bv}");
                }
            }
        }
    }

    #[test]
    fn six_by_six_matches_on_corners_and_samples() {
        let netlist = wallace_tree_multiplier(6, 6);
        let (a, b, outputs) = ports(&netlist, 6, 6);
        for av in [0u64, 1, 31, 32, 63] {
            for bv in [0u64, 1, 21, 42, 63] {
                let mut assignment = eval::bus_assignment(&a, av);
                assignment.extend(eval::bus_assignment(&b, bv));
                let result = eval::evaluate_bus(&netlist, &assignment, &outputs).unwrap();
                assert_eq!(result, av * bv, "{av} * {bv}");
            }
        }
    }

    #[test]
    fn reduction_is_shallower_than_the_array_for_wide_operands() {
        let wallace = levelize::levelize(&wallace_tree_multiplier(6, 6))
            .unwrap()
            .depth();
        let array = levelize::levelize(&multiplier(6, 6)).unwrap().depth();
        assert!(wallace < array, "wallace {wallace} >= array {array}");
    }

    #[test]
    fn product_width_matches_the_array_multiplier() {
        for (a_bits, b_bits) in [(1usize, 1usize), (1, 4), (4, 4), (6, 6)] {
            let wallace = wallace_tree_multiplier(a_bits, b_bits);
            let array = multiplier(a_bits, b_bits);
            assert_eq!(
                wallace.primary_outputs().len(),
                array.primary_outputs().len(),
                "{a_bits}x{b_bits}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_width_panics() {
        wallace_tree_multiplier(0, 4);
    }
}
