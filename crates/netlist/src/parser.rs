//! Parser for the structural netlist text format.
//!
//! The format is deliberately tiny — enough to store the paper's circuits in
//! version control and to feed hand-written test cases:
//!
//! ```text
//! # comments start with '#'
//! circuit half_adder
//! input a b
//! output sum carry
//! gate xor2 gx a b -> sum
//! gate and2 ga a b -> carry
//! # optional per-instance thresholds (fraction of Vdd, one per input):
//! gate inv  gl a -> n1 vt=0.30
//! ```
//!
//! Keywords: `circuit <name>`, `input <net>...`, `output <net>...`,
//! `wire <net>...`,
//! `gate <cell> <instance> <input net>... -> <output net> [vt=<f>,<f>,...]`.
//!
//! `wire` lines are optional: they pre-declare nets so their numbering is
//! exactly the declaration order rather than first-mention order.  The
//! [`writer`](crate::writer) always emits them, which makes
//! `parse(to_text(netlist))` reconstruct the original net numbering — and
//! therefore an identical event schedule — bit for bit.

use std::fmt;

use crate::cell::CellKind;
use crate::netlist::{Netlist, NetlistBuilder, NetlistError};

/// Errors produced while parsing netlist text.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// A line could not be understood.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The text was syntactically fine but the resulting circuit is invalid.
    Netlist(NetlistError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::Netlist(err) => write!(f, "invalid netlist: {err}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<NetlistError> for ParseError {
    fn from(err: NetlistError) -> Self {
        ParseError::Netlist(err)
    }
}

fn syntax(line: usize, message: impl Into<String>) -> ParseError {
    ParseError::Syntax {
        line,
        message: message.into(),
    }
}

/// One gate statement, format-agnostic: what cell, which nets, where in the
/// source it came from.  Both the `.net` parser and the structural-Verilog
/// parser ([`verilog`](crate::verilog)) lower their surface syntax into this
/// shape.
pub(crate) struct GateSpec {
    /// 1-based source line of the statement, for error anchoring.
    pub(crate) line: usize,
    pub(crate) kind: CellKind,
    pub(crate) instance: String,
    pub(crate) inputs: Vec<String>,
    pub(crate) output: String,
    pub(crate) thresholds: Option<Vec<f64>>,
}

/// A whole circuit as named sections — the format-independent intermediate
/// form between tokenization and [`NetlistBuilder`] assembly.
pub(crate) struct CircuitSpec {
    pub(crate) name: String,
    pub(crate) inputs: Vec<String>,
    pub(crate) outputs: Vec<String>,
    /// Pre-declared nets in declaration order.  When present, these pin the
    /// [`NetId`](halotis_core::NetId) numbering exactly (see the module
    /// docs); nets first mentioned by a gate statement are appended after.
    pub(crate) wires: Vec<String>,
    pub(crate) gates: Vec<GateSpec>,
}

/// Errors produced while assembling a [`CircuitSpec`] into a [`Netlist`].
pub(crate) enum AssembleError {
    /// A per-gate error (wrong arity, malformed threshold list) anchored to
    /// the source line of the offending statement.
    Gate { line: usize, message: String },
    /// A whole-circuit structural error.
    Netlist(NetlistError),
}

/// Builds the validated netlist from a format-independent [`CircuitSpec`].
///
/// This is the shared back half of every netlist parser: `wire` entries
/// pre-create nets so numbering is exactly the declaration order, primary
/// inputs keep their input-driver role regardless of which section mentions
/// them first, and nets first referenced by a gate are created on the spot.
pub(crate) fn assemble(spec: CircuitSpec) -> Result<Netlist, AssembleError> {
    let mut builder = NetlistBuilder::new(spec.name);
    // `wire` entries fix net numbering to declaration order; primary inputs
    // keep their input-driver role regardless of which line declares them
    // first.  Declaring a net no gate drives is still an error in `build`.
    for wire in &spec.wires {
        if spec.inputs.iter().any(|input| input == wire) {
            builder.add_input(wire);
        } else {
            builder.add_net(wire);
        }
    }
    for input in &spec.inputs {
        builder.add_input(input);
    }
    for gate in &spec.gates {
        let input_ids: Vec<_> = gate.inputs.iter().map(|n| builder.add_net(n)).collect();
        let output_id = builder.add_net(&gate.output);
        let result = match &gate.thresholds {
            Some(vt) => builder.add_gate_with_thresholds(
                gate.kind,
                &gate.instance,
                &input_ids,
                output_id,
                vt,
            ),
            None => builder.add_gate(gate.kind, &gate.instance, &input_ids, output_id),
        };
        result.map_err(|err| match err {
            NetlistError::ArityMismatch { .. } | NetlistError::ThresholdOverrideArity { .. } => {
                AssembleError::Gate {
                    line: gate.line,
                    message: err.to_string(),
                }
            }
            other => AssembleError::Netlist(other),
        })?;
    }
    for output in &spec.outputs {
        let id = builder.add_net(output);
        builder.mark_output(id);
    }
    builder.build().map_err(AssembleError::Netlist)
}

/// Parses netlist text into a validated [`Netlist`].
///
/// # Errors
///
/// Returns [`ParseError::Syntax`] for malformed lines and
/// [`ParseError::Netlist`] when the described circuit is structurally
/// invalid.
///
/// # Example
///
/// ```
/// use halotis_netlist::parser;
///
/// let text = "\
/// circuit buffer_pair
/// input a
/// output y
/// gate inv g1 a -> n1
/// gate inv g2 n1 -> y
/// ";
/// let netlist = parser::parse(text)?;
/// assert_eq!(netlist.gate_count(), 2);
/// # Ok::<(), halotis_netlist::parser::ParseError>(())
/// ```
pub fn parse(text: &str) -> Result<Netlist, ParseError> {
    let mut name = String::from("unnamed");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut wires: Vec<String> = Vec::new();
    let mut gate_lines: Vec<GateSpec> = Vec::new();

    for (index, raw) in text.lines().enumerate() {
        let line_number = index + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("circuit") => {
                name = tokens
                    .next()
                    .ok_or_else(|| syntax(line_number, "circuit needs a name"))?
                    .to_string();
            }
            Some("input") => inputs.extend(tokens.map(str::to_string)),
            Some("output") => outputs.extend(tokens.map(str::to_string)),
            Some("wire") => wires.extend(tokens.map(str::to_string)),
            Some("gate") => {
                let kind_token = tokens
                    .next()
                    .ok_or_else(|| syntax(line_number, "gate needs a cell kind"))?;
                let kind: CellKind = kind_token
                    .parse()
                    .map_err(|_| syntax(line_number, format!("unknown cell kind {kind_token}")))?;
                let instance = tokens
                    .next()
                    .ok_or_else(|| syntax(line_number, "gate needs an instance name"))?
                    .to_string();
                let rest: Vec<&str> = tokens.collect();
                let arrow = rest
                    .iter()
                    .position(|&t| t == "->")
                    .ok_or_else(|| syntax(line_number, "gate needs '-> <output net>'"))?;
                let gate_inputs: Vec<String> =
                    rest[..arrow].iter().map(|s| s.to_string()).collect();
                let mut after = rest[arrow + 1..].iter();
                let output = after
                    .next()
                    .ok_or_else(|| syntax(line_number, "missing output net after '->'"))?
                    .to_string();
                let mut thresholds = None;
                for extra in after {
                    if let Some(list) = extra.strip_prefix("vt=") {
                        let parsed: Result<Vec<f64>, _> =
                            list.split(',').map(str::parse::<f64>).collect();
                        thresholds = Some(parsed.map_err(|_| {
                            syntax(line_number, format!("invalid threshold list {list}"))
                        })?);
                    } else {
                        return Err(syntax(line_number, format!("unexpected token {extra}")));
                    }
                }
                gate_lines.push(GateSpec {
                    line: line_number,
                    kind,
                    instance,
                    inputs: gate_inputs,
                    output,
                    thresholds,
                });
            }
            Some(other) => return Err(syntax(line_number, format!("unknown keyword {other}"))),
            None => unreachable!("blank lines are skipped"),
        }
    }

    assemble(CircuitSpec {
        name,
        inputs,
        outputs,
        wires,
        gates: gate_lines,
    })
    .map_err(ParseError::from)
}

impl From<AssembleError> for ParseError {
    fn from(err: AssembleError) -> Self {
        match err {
            AssembleError::Gate { line, message } => syntax(line, message),
            AssembleError::Netlist(err) => ParseError::Netlist(err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetDriver;

    const HALF_ADDER: &str = "\
# a tiny half adder
circuit half_adder
input a b
output sum carry
gate xor2 gx a b -> sum
gate and2 ga a b -> carry
";

    #[test]
    fn parses_a_simple_circuit() {
        let netlist = parse(HALF_ADDER).unwrap();
        assert_eq!(netlist.name(), "half_adder");
        assert_eq!(netlist.gate_count(), 2);
        assert_eq!(netlist.primary_inputs().len(), 2);
        assert_eq!(netlist.primary_outputs().len(), 2);
        let sum = netlist.net_id("sum").unwrap();
        assert!(matches!(netlist.net(sum).driver(), NetDriver::Gate(_)));
    }

    #[test]
    fn parses_threshold_overrides() {
        let text = "\
circuit vt_test
input a
output y
gate inv g1 a -> n1 vt=0.30
gate inv g2 n1 -> y
";
        let netlist = parse(text).unwrap();
        let g1 = netlist.gates().iter().find(|g| g.name() == "g1").unwrap();
        assert_eq!(g1.threshold_overrides(), Some(&[0.30][..]));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text =
            "\n# nothing\ncircuit c\ninput a\n\noutput y\ngate buf g a -> y # trailing comment\n";
        let netlist = parse(text).unwrap();
        assert_eq!(netlist.gate_count(), 1);
    }

    #[test]
    fn nets_can_be_referenced_before_their_driver() {
        let text = "\
circuit order
input a
output y
gate inv g2 n1 -> y
gate inv g1 a -> n1
";
        let netlist = parse(text).unwrap();
        assert_eq!(netlist.gate_count(), 2);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let bad_kind = parse("circuit c\ninput a\ngate frob g a -> y\n").unwrap_err();
        assert!(bad_kind.to_string().contains("line 3"));
        let bad_arrow = parse("circuit c\ninput a\ngate inv g a y\n").unwrap_err();
        assert!(bad_arrow.to_string().contains("->"));
        let bad_keyword = parse("wires a b\n").unwrap_err();
        assert!(bad_keyword.to_string().contains("unknown keyword"));
        let bad_vt = parse("circuit c\ninput a\ngate inv g a -> y vt=abc\n").unwrap_err();
        assert!(bad_vt.to_string().contains("invalid threshold list"));
        let bad_arity = parse("circuit c\ninput a\ngate nand2 g a -> y\n").unwrap_err();
        assert!(bad_arity.to_string().contains("expects 2 inputs"));
    }

    #[test]
    fn structurally_invalid_circuits_are_rejected() {
        let undriven = parse("circuit c\ninput a\noutput y\ngate and2 g a n_missing -> y\n");
        assert!(matches!(
            undriven,
            Err(ParseError::Netlist(NetlistError::UndrivenNet { .. }))
        ));
    }
}
