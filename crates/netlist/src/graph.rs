//! Petgraph-style adjacency view of a [`Netlist`].
//!
//! A netlist *is* a directed graph — nets are nodes, and every gate input
//! pin contributes one edge from the net feeding the pin to the net the
//! gate drives — but the [`Netlist`] stores it driver-first (each net knows
//! what drives it, gates know their pins).  This module adds the
//! fanout-first view that graph algorithms want: [`NetlistGraph`] with
//! [`nodes()`](NetlistGraph::nodes) / [`edges()`](NetlistGraph::edges)
//! iterators in the style of petgraph's `MultiDiGraph` bridge, and
//! [`CsrGraph`], a compressed-sparse-row snapshot with O(1) fanout slices.
//!
//! The compiled simulator shares this shape:
//! `halotis_sim::CompiledCircuit::fanout_csr()` exports its already-built
//! fanout tables as the same [`CsrGraph`] type, so an analysis written
//! against the CSR (the static-timing pass in `halotis_sim::sta`, for
//! instance) runs identically on a raw netlist or a compiled circuit.
//!
//! # Example
//!
//! ```
//! use halotis_netlist::{generators, graph::NetlistGraph};
//!
//! let netlist = generators::ripple_carry_adder(2);
//! let graph = NetlistGraph::new(&netlist);
//! assert_eq!(graph.node_count(), netlist.net_count());
//! // Every gate input pin is one edge.
//! let pin_count: usize = netlist.gates().iter().map(|g| g.inputs().len()).sum();
//! assert_eq!(graph.edge_count(), pin_count);
//!
//! // CSR export: fanout of a primary input in O(1).
//! let csr = graph.to_csr();
//! let a0 = netlist.net_id("a0").unwrap();
//! assert!(!csr.outgoing(a0).is_empty());
//! ```

use halotis_core::{GateId, NetId};

use crate::netlist::Netlist;

/// One edge of the circuit graph: a gate input pin, viewed as the arc from
/// the net feeding the pin (`source`) to the net the gate drives
/// (`target`).  Parallel edges are real — a gate fed twice by the same net
/// contributes two edges that differ only in `pin`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GraphEdge {
    /// The net feeding the gate input pin.
    pub source: NetId,
    /// The net driven by the gate's output.
    pub target: NetId,
    /// The gate the pin belongs to.
    pub gate: GateId,
    /// Zero-based input position on the gate.
    pub pin: u32,
}

/// A borrowed adjacency view of a [`Netlist`] — nodes are nets, edges are
/// gate input pins.  See the [module docs](self) for the shape.
#[derive(Clone, Copy, Debug)]
pub struct NetlistGraph<'a> {
    netlist: &'a Netlist,
}

impl<'a> NetlistGraph<'a> {
    /// Wraps a netlist in its graph view (no allocation).
    pub fn new(netlist: &'a Netlist) -> Self {
        NetlistGraph { netlist }
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// Number of nodes (= nets).
    pub fn node_count(&self) -> usize {
        self.netlist.net_count()
    }

    /// Number of edges (= gate input pins).
    pub fn edge_count(&self) -> usize {
        self.netlist
            .gates()
            .iter()
            .map(|gate| gate.inputs().len())
            .sum()
    }

    /// All nodes in [`NetId`] order.
    pub fn nodes(&self) -> impl Iterator<Item = NetId> + 'a {
        (0..self.netlist.net_count()).map(NetId::from_usize)
    }

    /// All edges, grouped by gate in [`GateId`] order, pins in position
    /// order within each gate — a deterministic ordering tests can pin.
    pub fn edges(&self) -> impl Iterator<Item = GraphEdge> + 'a {
        self.netlist
            .gates()
            .iter()
            .enumerate()
            .flat_map(|(gate_index, gate)| {
                let gate_id = GateId::from_usize(gate_index);
                let target = gate.output();
                gate.inputs()
                    .iter()
                    .enumerate()
                    .map(move |(pin, &source)| GraphEdge {
                        source,
                        target,
                        gate: gate_id,
                        pin: pin as u32,
                    })
            })
    }

    /// Builds the compressed-sparse-row snapshot of this graph.
    pub fn to_csr(&self) -> CsrGraph {
        CsrGraph::from_edges(self.node_count(), self.edges())
    }
}

/// A compressed-sparse-row directed multigraph over [`NetId`] nodes:
/// per-node fanout edge slices in O(1), edges within a node's slice sorted
/// by `(gate, pin)`.
///
/// Build one from a netlist via [`NetlistGraph::to_csr`], from any edge
/// iterator via [`CsrGraph::from_edges`], or from an already-compiled
/// circuit via `halotis_sim::CompiledCircuit::fanout_csr()` (which reuses
/// the engine's fanout tables instead of re-walking the netlist).
#[derive(Clone, Debug, PartialEq)]
pub struct CsrGraph {
    /// `offsets[n]..offsets[n + 1]` indexes `edges` for node `n`.
    offsets: Vec<u32>,
    /// Edge records grouped by source node.
    edges: Vec<GraphEdge>,
}

impl CsrGraph {
    /// Builds the CSR from an arbitrary edge iterator by counting sort on
    /// the source node — O(nodes + edges), stable within each node for
    /// equal sources.
    ///
    /// # Panics
    ///
    /// Panics if an edge's `source` or `target` index is `>= node_count`.
    pub fn from_edges(node_count: usize, edges: impl IntoIterator<Item = GraphEdge>) -> Self {
        let mut collected: Vec<GraphEdge> = edges.into_iter().collect();
        for edge in &collected {
            assert!(
                edge.source.index() < node_count && edge.target.index() < node_count,
                "edge {} -> {} outside the {node_count}-node graph",
                edge.source,
                edge.target,
            );
        }
        collected.sort_by_key(|edge| (edge.source, edge.gate, edge.pin));
        let mut offsets = vec![0u32; node_count + 1];
        for edge in &collected {
            offsets[edge.source.index() + 1] += 1;
        }
        for index in 0..node_count {
            offsets[index + 1] += offsets[index];
        }
        CsrGraph {
            offsets,
            edges: collected,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All nodes in [`NetId`] order.
    pub fn nodes(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.node_count()).map(NetId::from_usize)
    }

    /// All edges, grouped by source node.
    pub fn edges(&self) -> impl Iterator<Item = GraphEdge> + '_ {
        self.edges.iter().copied()
    }

    /// The fanout edges of one node, as a slice (O(1)).
    pub fn outgoing(&self, node: NetId) -> &[GraphEdge] {
        let start = self.offsets[node.index()] as usize;
        let end = self.offsets[node.index() + 1] as usize;
        &self.edges[start..end]
    }

    /// Out-degree of one node (O(1)).
    pub fn out_degree(&self, node: NetId) -> usize {
        self.outgoing(node).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use crate::netlist::NetlistBuilder;
    use crate::{generators, parser, writer};

    fn diamond() -> Netlist {
        // a -> inv g1 -> n1 -+
        //   \                 +-> and2 g3 -> y
        //    -> inv g2 -> n2 -+
        let mut builder = NetlistBuilder::new("diamond");
        let a = builder.add_input("a");
        let n1 = builder.add_net("n1");
        let n2 = builder.add_net("n2");
        let y = builder.add_net("y");
        builder.add_gate(CellKind::Inv, "g1", &[a], n1).unwrap();
        builder.add_gate(CellKind::Inv, "g2", &[a], n2).unwrap();
        builder
            .add_gate(CellKind::And2, "g3", &[n1, n2], y)
            .unwrap();
        builder.mark_output(y);
        builder.build().unwrap()
    }

    #[test]
    fn counts_match_the_netlist_shape() {
        let netlist = diamond();
        let graph = NetlistGraph::new(&netlist);
        assert_eq!(graph.node_count(), 4);
        assert_eq!(graph.edge_count(), 4); // two inv pins + two and2 pins
        assert_eq!(graph.nodes().count(), 4);
        assert_eq!(graph.edges().count(), 4);
    }

    #[test]
    fn edges_carry_gate_and_pin_provenance() {
        let netlist = diamond();
        let graph = NetlistGraph::new(&netlist);
        let a = netlist.net_id("a").unwrap();
        let y = netlist.net_id("y").unwrap();
        let n1 = netlist.net_id("n1").unwrap();
        let from_a: Vec<GraphEdge> = graph.edges().filter(|e| e.source == a).collect();
        assert_eq!(from_a.len(), 2);
        assert!(from_a.iter().all(|e| e.pin == 0));
        let into_y: Vec<GraphEdge> = graph.edges().filter(|e| e.target == y).collect();
        assert_eq!(into_y.len(), 2);
        assert_eq!(into_y[0].source, n1);
        assert_eq!(into_y[0].pin, 0);
        assert_eq!(into_y[1].pin, 1);
        assert_eq!(into_y[0].gate, into_y[1].gate);
    }

    #[test]
    fn csr_slices_agree_with_the_edge_iterator() {
        let netlist = generators::ripple_carry_adder(3);
        let graph = NetlistGraph::new(&netlist);
        let csr = graph.to_csr();
        assert_eq!(csr.node_count(), graph.node_count());
        assert_eq!(csr.edge_count(), graph.edge_count());
        for node in graph.nodes() {
            let mut expected: Vec<GraphEdge> = graph.edges().filter(|e| e.source == node).collect();
            expected.sort_by_key(|e| (e.gate, e.pin));
            assert_eq!(csr.outgoing(node), expected.as_slice(), "fanout of {node}");
            assert_eq!(csr.out_degree(node), expected.len());
        }
    }

    #[test]
    fn parallel_edges_are_preserved() {
        // Same net on both pins of one gate: two distinct edges.
        let mut builder = NetlistBuilder::new("par");
        let a = builder.add_input("a");
        let y = builder.add_net("y");
        builder.add_gate(CellKind::And2, "g", &[a, a], y).unwrap();
        builder.mark_output(y);
        let netlist = builder.build().unwrap();
        let csr = NetlistGraph::new(&netlist).to_csr();
        let fanout = csr.outgoing(a);
        assert_eq!(fanout.len(), 2);
        assert_eq!(fanout[0].pin, 0);
        assert_eq!(fanout[1].pin, 1);
    }

    #[test]
    fn graph_is_stable_across_a_text_round_trip() {
        let original = generators::wallace_tree_multiplier(3, 3);
        let reparsed = parser::parse(&writer::to_text(&original)).unwrap();
        let before: Vec<GraphEdge> = NetlistGraph::new(&original).edges().collect();
        let after: Vec<GraphEdge> = NetlistGraph::new(&reparsed).edges().collect();
        assert_eq!(before, after);
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn out_of_range_edges_are_rejected() {
        let edge = GraphEdge {
            source: NetId::new(5),
            target: NetId::new(0),
            gate: GateId::new(0),
            pin: 0,
        };
        let _ = CsrGraph::from_edges(2, [edge]);
    }
}
