//! Topological levelization of a combinational netlist.
//!
//! Level 0 gates depend only on primary inputs; level `n` gates depend on at
//! least one gate of level `n - 1`.  Levelization gives the evaluation order
//! used by the zero-delay functional checker and bounds the logic depth
//! reported in circuit statistics.

use halotis_core::GateId;

use crate::netlist::{NetDriver, Netlist};

/// The levelization result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Levelization {
    levels: Vec<Vec<GateId>>,
    gate_level: Vec<usize>,
}

impl Levelization {
    /// The gates of each level, level 0 first.
    pub fn levels(&self) -> &[Vec<GateId>] {
        &self.levels
    }

    /// The level of one gate.
    pub fn level_of(&self, gate: GateId) -> usize {
        self.gate_level[gate.index()]
    }

    /// The logic depth (number of levels).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// All gates in a valid topological evaluation order.
    pub fn topological_order(&self) -> impl Iterator<Item = GateId> + '_ {
        self.levels.iter().flatten().copied()
    }

    /// Incrementally re-levelizes after an edit session, visiting only the
    /// affected cones instead of the whole netlist.
    ///
    /// The log's structural ops are replayed first so the id space matches
    /// the mutated netlist, then a worklist fixpoint of
    /// `level(g) = max(level of gate-driven fanin) + 1` runs outward from
    /// the dirty gates.  The result is identical to a fresh
    /// [`levelize`] of the mutated netlist — including within-level
    /// ordering, which both paths keep ascending by gate id.
    ///
    /// # Panics
    ///
    /// May panic (or loop forever in release builds) if `netlist` is not the
    /// netlist this levelization was built from with exactly the edits in
    /// `log` applied.
    pub fn update(&mut self, netlist: &Netlist, log: &crate::edit::EditLog) {
        use crate::edit::EditOp;

        // Phase 1: replay the shape ops so gate ids line up again.  An
        // appended gate enters at the unresolved sentinel level; a removal
        // mirrors the session's `swap_remove` renumbering.
        for op in log.ops() {
            match op {
                EditOp::GateAppended { .. } => self.gate_level.push(usize::MAX),
                EditOp::GateRemoved { gate_index, .. } => {
                    let removed = *gate_index as usize;
                    let removed_level = self.gate_level[removed];
                    if removed_level != usize::MAX {
                        remove_sorted(&mut self.levels[removed_level], GateId::from_usize(removed));
                    }
                    self.gate_level.swap_remove(removed);
                    let old_last = self.gate_level.len();
                    if removed != old_last {
                        let moved_level = self.gate_level[removed];
                        if moved_level != usize::MAX {
                            let list = &mut self.levels[moved_level];
                            remove_sorted(list, GateId::from_usize(old_last));
                            insert_sorted(list, GateId::from_usize(removed));
                        }
                    }
                }
                EditOp::NetExposed { .. } | EditOp::NetUnexposed { .. } => {}
            }
        }

        // Phase 2: chaotic iteration from the dirty set.  A gate whose
        // driver is still unresolved is skipped — it is re-enqueued when
        // that driver resolves (resolution is always a level change).
        let mut queue: Vec<GateId> = log.dirty_gates().to_vec();
        let mut queued = vec![false; netlist.gate_count()];
        for gate in &queue {
            queued[gate.index()] = true;
        }
        while let Some(gate) = queue.pop() {
            queued[gate.index()] = false;
            let mut level = 0usize;
            let mut unresolved = false;
            for &input in netlist.gate(gate).inputs() {
                if let NetDriver::Gate(driver) = netlist.net(input).driver() {
                    match self.gate_level[driver.index()] {
                        usize::MAX => {
                            unresolved = true;
                            break;
                        }
                        driver_level => level = level.max(driver_level + 1),
                    }
                }
            }
            if unresolved {
                continue;
            }
            let old = self.gate_level[gate.index()];
            if old == level {
                continue;
            }
            if old != usize::MAX {
                remove_sorted(&mut self.levels[old], gate);
            }
            if self.levels.len() <= level {
                self.levels.resize_with(level + 1, Vec::new);
            }
            insert_sorted(&mut self.levels[level], gate);
            self.gate_level[gate.index()] = level;
            for pin in netlist.net(netlist.gate(gate).output()).loads() {
                let fanout = pin.gate();
                if !queued[fanout.index()] {
                    queued[fanout.index()] = true;
                    queue.push(fanout);
                }
            }
        }

        // Emptied levels can only occur at the tail: removals require a
        // fanout-free output, and rewires re-fill intermediate levels via
        // the worklist.
        while self.levels.last().is_some_and(|level| level.is_empty()) {
            self.levels.pop();
        }
        debug_assert!(
            self.gate_level.iter().all(|&level| level != usize::MAX),
            "unresolved gate level after incremental update"
        );
    }
}

/// Removes `gate` from an ascending-sorted level list.
fn remove_sorted(list: &mut Vec<GateId>, gate: GateId) {
    let index = list
        .binary_search(&gate)
        .expect("gate missing from its level list");
    list.remove(index);
}

/// Inserts `gate` into an ascending-sorted level list.
fn insert_sorted(list: &mut Vec<GateId>, gate: GateId) {
    let index = list
        .binary_search(&gate)
        .expect_err("gate already present in level list");
    list.insert(index, gate);
}

/// Levelizes a netlist.
///
/// # Panics
///
/// Panics if the netlist contains a combinational loop; [`NetlistBuilder`]
/// (and the parser) reject such circuits, so a loop here indicates internal
/// corruption.
///
/// [`NetlistBuilder`]: crate::NetlistBuilder
///
/// # Example
///
/// ```
/// use halotis_netlist::{levelize, generators};
///
/// let chain = generators::inverter_chain(4);
/// let levels = levelize::levelize(&chain);
/// assert_eq!(levels.depth(), 4);
/// ```
pub fn levelize(netlist: &Netlist) -> Levelization {
    let mut gate_level = vec![usize::MAX; netlist.gate_count()];
    let mut remaining: Vec<usize> = (0..netlist.gate_count()).collect();
    let mut current_level = 0usize;
    let mut levels: Vec<Vec<GateId>> = Vec::new();

    while !remaining.is_empty() {
        let mut this_level = Vec::new();
        for &index in &remaining {
            let gate = &netlist.gates()[index];
            let ready = gate
                .inputs()
                .iter()
                .all(|&net| match netlist.net(net).driver() {
                    NetDriver::PrimaryInput => true,
                    NetDriver::Gate(driver) => gate_level[driver.index()] < current_level,
                });
            if ready {
                this_level.push(gate.id());
            }
        }
        assert!(
            !this_level.is_empty(),
            "combinational loop survived netlist validation"
        );
        for id in &this_level {
            gate_level[id.index()] = current_level;
        }
        remaining.retain(|&index| gate_level[index] == usize::MAX);
        levels.push(this_level);
        current_level += 1;
    }

    Levelization { levels, gate_level }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use crate::netlist::NetlistBuilder;

    fn diamond() -> Netlist {
        // a -> inv g1 -> x ; a -> inv g2 -> y ; (x, y) -> nand g3 -> out
        let mut builder = NetlistBuilder::new("diamond");
        let a = builder.add_input("a");
        let x = builder.add_net("x");
        let y = builder.add_net("y");
        let out = builder.add_net("out");
        builder.add_gate(CellKind::Inv, "g1", &[a], x).unwrap();
        builder.add_gate(CellKind::Inv, "g2", &[a], y).unwrap();
        builder
            .add_gate(CellKind::Nand2, "g3", &[x, y], out)
            .unwrap();
        builder.mark_output(out);
        builder.build().unwrap()
    }

    #[test]
    fn diamond_has_two_levels() {
        let netlist = diamond();
        let levels = levelize(&netlist);
        assert_eq!(levels.depth(), 2);
        assert_eq!(levels.levels()[0].len(), 2);
        assert_eq!(levels.levels()[1].len(), 1);
        let g3 = netlist
            .gates()
            .iter()
            .find(|g| g.name() == "g3")
            .unwrap()
            .id();
        assert_eq!(levels.level_of(g3), 1);
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let netlist = diamond();
        let levels = levelize(&netlist);
        let order: Vec<GateId> = levels.topological_order().collect();
        assert_eq!(order.len(), netlist.gate_count());
        let position = |id: GateId| order.iter().position(|&g| g == id).unwrap();
        for gate in netlist.gates() {
            for &input in gate.inputs() {
                if let NetDriver::Gate(driver) = netlist.net(input).driver() {
                    assert!(position(driver) < position(gate.id()));
                }
            }
        }
    }

    #[test]
    fn incremental_update_matches_fresh_levelize() {
        let mut netlist = crate::generators::c17();
        let mut levels = levelize(&netlist);

        // Insert a gate reading a mid-cone net, expose it, rewire, remove.
        let n11 = netlist.net_id("n11").unwrap();
        let i1 = netlist.net_id("i1").unwrap();
        let mut edit = netlist.begin_edit();
        let (gate, output) = edit
            .insert_gate(CellKind::Nand2, "extra", &[n11, i1], "extra_out")
            .unwrap();
        edit.expose_net(output).unwrap();
        let log = edit.finish();
        levels.update(&netlist, &log);
        assert_eq!(levels, levelize(&netlist));
        assert!(
            levels.level_of(gate) > 0,
            "grafted gate reads a gate-driven net"
        );

        // Rewiring the new gate fully onto primary inputs drops its level.
        let i2 = netlist.net_id("i2").unwrap();
        let mut edit = netlist.begin_edit();
        edit.rewire_input(gate, 0, i2).unwrap();
        let log = edit.finish();
        levels.update(&netlist, &log);
        assert_eq!(levels, levelize(&netlist));
        assert_eq!(levels.level_of(gate), 0);

        // Removal renumbers via swap_remove; update must follow.
        let mut netlist2 = netlist.clone();
        let mut edit = netlist2.begin_edit();
        // Cannot remove a primary output directly: first un-expose is not
        // supported, so remove a different fanout-free gate if one exists;
        // otherwise insert-and-remove to exercise the path.
        let (tmp, _) = edit
            .insert_gate(CellKind::Inv, "tmp", &[i1], "tmp_out")
            .unwrap();
        edit.remove_gate(tmp).unwrap();
        let log = edit.finish();
        let mut levels2 = levels.clone();
        levels2.update(&netlist2, &log);
        assert_eq!(levels2, levelize(&netlist2));
    }

    #[test]
    fn incremental_update_handles_random_edit_bursts() {
        let mut netlist = crate::generators::random_logic(8, 60, 0x5EED);
        let mut levels = levelize(&netlist);
        let kinds = [CellKind::Nand2, CellKind::Nor2, CellKind::Xor2];
        for (round, kind) in kinds.into_iter().enumerate() {
            let mut edit = netlist.begin_edit();
            // Swap the kind of every fourth two-input gate.
            let targets: Vec<GateId> = edit
                .netlist()
                .gates()
                .iter()
                .filter(|gate| gate.inputs().len() == 2 && gate.id().index() % 4 == round)
                .map(|gate| gate.id())
                .collect();
            for target in targets {
                edit.swap_cell_kind(target, kind).unwrap();
            }
            // And graft a fresh gate deep into the cone.
            let feed = edit.netlist().gates()[round * 3].output();
            let pi = edit.netlist().primary_inputs()[round];
            edit.insert_gate(
                kind,
                format!("graft{round}"),
                &[feed, pi],
                format!("graft{round}_out"),
            )
            .unwrap();
            let log = edit.finish();
            levels.update(&netlist, &log);
            assert_eq!(levels, levelize(&netlist), "round {round}");
        }
    }

    #[test]
    fn single_gate_circuit_has_depth_one() {
        let mut builder = NetlistBuilder::new("single");
        let a = builder.add_input("a");
        let y = builder.add_net("y");
        builder.add_gate(CellKind::Inv, "g", &[a], y).unwrap();
        builder.mark_output(y);
        let levels = levelize(&builder.build().unwrap());
        assert_eq!(levels.depth(), 1);
    }
}
