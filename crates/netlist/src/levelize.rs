//! Topological levelization of a combinational netlist.
//!
//! Level 0 gates depend only on primary inputs; level `n` gates depend on at
//! least one gate of level `n - 1`.  Levelization gives the evaluation order
//! used by the zero-delay functional checker and bounds the logic depth
//! reported in circuit statistics.

use halotis_core::GateId;

use crate::netlist::{NetDriver, Netlist};

/// The levelization result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Levelization {
    levels: Vec<Vec<GateId>>,
    gate_level: Vec<usize>,
}

impl Levelization {
    /// The gates of each level, level 0 first.
    pub fn levels(&self) -> &[Vec<GateId>] {
        &self.levels
    }

    /// The level of one gate.
    pub fn level_of(&self, gate: GateId) -> usize {
        self.gate_level[gate.index()]
    }

    /// The logic depth (number of levels).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// All gates in a valid topological evaluation order.
    pub fn topological_order(&self) -> impl Iterator<Item = GateId> + '_ {
        self.levels.iter().flatten().copied()
    }
}

/// Levelizes a netlist.
///
/// # Panics
///
/// Panics if the netlist contains a combinational loop; [`NetlistBuilder`]
/// (and the parser) reject such circuits, so a loop here indicates internal
/// corruption.
///
/// [`NetlistBuilder`]: crate::NetlistBuilder
///
/// # Example
///
/// ```
/// use halotis_netlist::{levelize, generators};
///
/// let chain = generators::inverter_chain(4);
/// let levels = levelize::levelize(&chain);
/// assert_eq!(levels.depth(), 4);
/// ```
pub fn levelize(netlist: &Netlist) -> Levelization {
    let mut gate_level = vec![usize::MAX; netlist.gate_count()];
    let mut remaining: Vec<usize> = (0..netlist.gate_count()).collect();
    let mut current_level = 0usize;
    let mut levels: Vec<Vec<GateId>> = Vec::new();

    while !remaining.is_empty() {
        let mut this_level = Vec::new();
        for &index in &remaining {
            let gate = &netlist.gates()[index];
            let ready = gate
                .inputs()
                .iter()
                .all(|&net| match netlist.net(net).driver() {
                    NetDriver::PrimaryInput => true,
                    NetDriver::Gate(driver) => gate_level[driver.index()] < current_level,
                });
            if ready {
                this_level.push(gate.id());
            }
        }
        assert!(
            !this_level.is_empty(),
            "combinational loop survived netlist validation"
        );
        for id in &this_level {
            gate_level[id.index()] = current_level;
        }
        remaining.retain(|&index| gate_level[index] == usize::MAX);
        levels.push(this_level);
        current_level += 1;
    }

    Levelization { levels, gate_level }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use crate::netlist::NetlistBuilder;

    fn diamond() -> Netlist {
        // a -> inv g1 -> x ; a -> inv g2 -> y ; (x, y) -> nand g3 -> out
        let mut builder = NetlistBuilder::new("diamond");
        let a = builder.add_input("a");
        let x = builder.add_net("x");
        let y = builder.add_net("y");
        let out = builder.add_net("out");
        builder.add_gate(CellKind::Inv, "g1", &[a], x).unwrap();
        builder.add_gate(CellKind::Inv, "g2", &[a], y).unwrap();
        builder
            .add_gate(CellKind::Nand2, "g3", &[x, y], out)
            .unwrap();
        builder.mark_output(out);
        builder.build().unwrap()
    }

    #[test]
    fn diamond_has_two_levels() {
        let netlist = diamond();
        let levels = levelize(&netlist);
        assert_eq!(levels.depth(), 2);
        assert_eq!(levels.levels()[0].len(), 2);
        assert_eq!(levels.levels()[1].len(), 1);
        let g3 = netlist
            .gates()
            .iter()
            .find(|g| g.name() == "g3")
            .unwrap()
            .id();
        assert_eq!(levels.level_of(g3), 1);
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let netlist = diamond();
        let levels = levelize(&netlist);
        let order: Vec<GateId> = levels.topological_order().collect();
        assert_eq!(order.len(), netlist.gate_count());
        let position = |id: GateId| order.iter().position(|&g| g == id).unwrap();
        for gate in netlist.gates() {
            for &input in gate.inputs() {
                if let NetDriver::Gate(driver) = netlist.net(input).driver() {
                    assert!(position(driver) < position(gate.id()));
                }
            }
        }
    }

    #[test]
    fn single_gate_circuit_has_depth_one() {
        let mut builder = NetlistBuilder::new("single");
        let a = builder.add_input("a");
        let y = builder.add_net("y");
        builder.add_gate(CellKind::Inv, "g", &[a], y).unwrap();
        builder.mark_output(y);
        let levels = levelize(&builder.build().unwrap());
        assert_eq!(levels.depth(), 1);
    }
}
