//! Topological levelization of a netlist.
//!
//! Level 0 gates depend only on primary inputs (or register outputs); level
//! `n` gates depend on at least one gate of level `n - 1`.  Levelization
//! gives the evaluation order used by the zero-delay functional checker and
//! bounds the logic depth reported in circuit statistics.
//!
//! Sequential cells break the dependency graph: a register is always a level
//! source (its output at any instant is stored state, not a function of its
//! inputs), so feedback *through* a register levelizes cleanly.  Only purely
//! combinational cycles are errors, and they are reported as
//! [`NetlistError::CombinationalLoop`] instead of panicking or looping
//! forever.

use halotis_core::GateId;

use crate::netlist::{NetDriver, Netlist, NetlistError};

/// The levelization result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Levelization {
    levels: Vec<Vec<GateId>>,
    gate_level: Vec<usize>,
}

impl Levelization {
    /// The gates of each level, level 0 first.
    pub fn levels(&self) -> &[Vec<GateId>] {
        &self.levels
    }

    /// The level of one gate.
    pub fn level_of(&self, gate: GateId) -> usize {
        self.gate_level[gate.index()]
    }

    /// The logic depth (number of levels).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// All gates in a valid topological evaluation order.
    pub fn topological_order(&self) -> impl Iterator<Item = GateId> + '_ {
        self.levels.iter().flatten().copied()
    }

    /// Incrementally re-levelizes after an edit session, visiting only the
    /// affected cones instead of the whole netlist.
    ///
    /// The log's structural ops are replayed first so the id space matches
    /// the mutated netlist, then a worklist fixpoint of
    /// `level(g) = max(level of gate-driven fanin) + 1` runs outward from
    /// the dirty gates (sequential gates are pinned to level 0 and their
    /// outputs contribute nothing, exactly as in a fresh pass).  The result
    /// is identical to a fresh [`levelize`] of the mutated netlist —
    /// including within-level ordering, which both paths keep ascending by
    /// gate id.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalLoop`] if the edits introduced a
    /// register-free cycle: a computed level exceeding the gate count (the
    /// acyclic maximum) or a gate left unresolved once the worklist drains
    /// both prove one.  The edit API rejects cycle-forming rewires up front,
    /// so this is a defence-in-depth bound that replaces the former
    /// may-loop-forever-in-release behaviour.  On error the levelization is
    /// left inconsistent and must be rebuilt from scratch.
    pub fn update(
        &mut self,
        netlist: &Netlist,
        log: &crate::edit::EditLog,
    ) -> Result<(), NetlistError> {
        use crate::edit::EditOp;

        // Phase 1: replay the shape ops so gate ids line up again.  An
        // appended gate enters at the unresolved sentinel level; a removal
        // mirrors the session's `swap_remove` renumbering.
        for op in log.ops() {
            match op {
                EditOp::GateAppended { .. } => self.gate_level.push(usize::MAX),
                EditOp::GateRemoved { gate_index, .. } => {
                    let removed = *gate_index as usize;
                    let removed_level = self.gate_level[removed];
                    if removed_level != usize::MAX {
                        remove_sorted(&mut self.levels[removed_level], GateId::from_usize(removed));
                    }
                    self.gate_level.swap_remove(removed);
                    let old_last = self.gate_level.len();
                    if removed != old_last {
                        let moved_level = self.gate_level[removed];
                        if moved_level != usize::MAX {
                            let list = &mut self.levels[moved_level];
                            remove_sorted(list, GateId::from_usize(old_last));
                            insert_sorted(list, GateId::from_usize(removed));
                        }
                    }
                }
                EditOp::NetExposed { .. } | EditOp::NetUnexposed { .. } => {}
            }
        }

        // Phase 2: chaotic iteration from the dirty set.  A gate whose
        // driver is still unresolved is skipped — it is re-enqueued when
        // that driver resolves (resolution is always a level change).
        // The immediate fanout of every dirty gate is seeded too: a kind
        // swap across the sequential boundary changes how the gate's output
        // counts for its readers (register outputs are sources) without
        // necessarily changing the gate's own level, so waiting for a level
        // change would leave the fanout stale.
        let mut queue: Vec<GateId> = Vec::new();
        let mut queued = vec![false; netlist.gate_count()];
        for &gate in log.dirty_gates() {
            if !queued[gate.index()] {
                queued[gate.index()] = true;
                queue.push(gate);
            }
            for pin in netlist.net(netlist.gate(gate).output()).loads() {
                let fanout = pin.gate();
                if !queued[fanout.index()] {
                    queued[fanout.index()] = true;
                    queue.push(fanout);
                }
            }
        }
        while let Some(gate) = queue.pop() {
            queued[gate.index()] = false;
            let mut level = 0usize;
            let mut unresolved = false;
            if !netlist.gate(gate).kind().is_sequential() {
                for &input in netlist.gate(gate).inputs() {
                    if let NetDriver::Gate(driver) = netlist.net(input).driver() {
                        if netlist.gate(driver).kind().is_sequential() {
                            continue;
                        }
                        match self.gate_level[driver.index()] {
                            usize::MAX => {
                                unresolved = true;
                                break;
                            }
                            driver_level => level = level.max(driver_level + 1),
                        }
                    }
                }
            }
            if unresolved {
                continue;
            }
            if level >= netlist.gate_count() {
                // An acyclic graph cannot be deeper than its gate count:
                // a level past that bound proves the worklist is chasing a
                // combinational cycle.
                return Err(NetlistError::CombinationalLoop {
                    gate: netlist.gate(gate).name().to_string(),
                });
            }
            let old = self.gate_level[gate.index()];
            if old == level {
                continue;
            }
            if old != usize::MAX {
                remove_sorted(&mut self.levels[old], gate);
            }
            if self.levels.len() <= level {
                self.levels.resize_with(level + 1, Vec::new);
            }
            insert_sorted(&mut self.levels[level], gate);
            self.gate_level[gate.index()] = level;
            for pin in netlist.net(netlist.gate(gate).output()).loads() {
                let fanout = pin.gate();
                if !queued[fanout.index()] {
                    queued[fanout.index()] = true;
                    queue.push(fanout);
                }
            }
        }

        // Emptied levels can only occur at the tail: removals require a
        // fanout-free output, and rewires re-fill intermediate levels via
        // the worklist.
        while self.levels.last().is_some_and(|level| level.is_empty()) {
            self.levels.pop();
        }
        if let Some(stuck) = self
            .gate_level
            .iter()
            .position(|&level| level == usize::MAX)
        {
            // A gate the worklist could never resolve is waiting on itself
            // through a register-free cycle among the inserted gates.
            return Err(NetlistError::CombinationalLoop {
                gate: netlist.gate(GateId::from_usize(stuck)).name().to_string(),
            });
        }
        Ok(())
    }
}

/// Removes `gate` from an ascending-sorted level list.
fn remove_sorted(list: &mut Vec<GateId>, gate: GateId) {
    let index = list
        .binary_search(&gate)
        .expect("gate missing from its level list");
    list.remove(index);
}

/// Inserts `gate` into an ascending-sorted level list.
fn insert_sorted(list: &mut Vec<GateId>, gate: GateId) {
    let index = list
        .binary_search(&gate)
        .expect_err("gate already present in level list");
    list.insert(index, gate);
}

/// Levelizes a netlist.
///
/// Sequential gates (see [`CellKind::is_sequential`]) are level sources:
/// they sit at level 0 and their outputs satisfy a reader's readiness just
/// like a primary input, so register feedback loops levelize cleanly.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalLoop`] (naming one gate on the
/// cycle) if the netlist contains a register-free cycle.  [`NetlistBuilder`]
/// and the parsers reject such circuits up front, so this is the checked
/// backstop for internally constructed or mutated netlists — it replaces the
/// panic the earlier combinational-only implementation documented.
///
/// [`NetlistBuilder`]: crate::NetlistBuilder
/// [`CellKind::is_sequential`]: crate::CellKind::is_sequential
///
/// # Example
///
/// ```
/// use halotis_netlist::{levelize, generators};
///
/// let chain = generators::inverter_chain(4);
/// let levels = levelize::levelize(&chain).expect("chains are acyclic");
/// assert_eq!(levels.depth(), 4);
/// ```
pub fn levelize(netlist: &Netlist) -> Result<Levelization, NetlistError> {
    let mut gate_level = vec![usize::MAX; netlist.gate_count()];
    let mut remaining: Vec<usize> = (0..netlist.gate_count()).collect();
    let mut current_level = 0usize;
    let mut levels: Vec<Vec<GateId>> = Vec::new();

    while !remaining.is_empty() {
        let mut this_level = Vec::new();
        for &index in &remaining {
            let gate = &netlist.gates()[index];
            let ready = gate.kind().is_sequential()
                || gate
                    .inputs()
                    .iter()
                    .all(|&net| match netlist.net(net).driver() {
                        NetDriver::PrimaryInput => true,
                        NetDriver::Gate(driver) => {
                            netlist.gate(driver).kind().is_sequential()
                                || gate_level[driver.index()] < current_level
                        }
                    });
            if ready {
                this_level.push(gate.id());
            }
        }
        if this_level.is_empty() {
            return Err(NetlistError::CombinationalLoop {
                gate: netlist.gates()[remaining[0]].name().to_string(),
            });
        }
        for id in &this_level {
            gate_level[id.index()] = current_level;
        }
        remaining.retain(|&index| gate_level[index] == usize::MAX);
        levels.push(this_level);
        current_level += 1;
    }

    Ok(Levelization { levels, gate_level })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use crate::netlist::NetlistBuilder;

    fn diamond() -> Netlist {
        // a -> inv g1 -> x ; a -> inv g2 -> y ; (x, y) -> nand g3 -> out
        let mut builder = NetlistBuilder::new("diamond");
        let a = builder.add_input("a");
        let x = builder.add_net("x");
        let y = builder.add_net("y");
        let out = builder.add_net("out");
        builder.add_gate(CellKind::Inv, "g1", &[a], x).unwrap();
        builder.add_gate(CellKind::Inv, "g2", &[a], y).unwrap();
        builder
            .add_gate(CellKind::Nand2, "g3", &[x, y], out)
            .unwrap();
        builder.mark_output(out);
        builder.build().unwrap()
    }

    #[test]
    fn diamond_has_two_levels() {
        let netlist = diamond();
        let levels = levelize(&netlist).unwrap();
        assert_eq!(levels.depth(), 2);
        assert_eq!(levels.levels()[0].len(), 2);
        assert_eq!(levels.levels()[1].len(), 1);
        let g3 = netlist
            .gates()
            .iter()
            .find(|g| g.name() == "g3")
            .unwrap()
            .id();
        assert_eq!(levels.level_of(g3), 1);
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let netlist = diamond();
        let levels = levelize(&netlist).unwrap();
        let order: Vec<GateId> = levels.topological_order().collect();
        assert_eq!(order.len(), netlist.gate_count());
        let position = |id: GateId| order.iter().position(|&g| g == id).unwrap();
        for gate in netlist.gates() {
            for &input in gate.inputs() {
                if let NetDriver::Gate(driver) = netlist.net(input).driver() {
                    assert!(position(driver) < position(gate.id()));
                }
            }
        }
    }

    #[test]
    fn incremental_update_matches_fresh_levelize() {
        let mut netlist = crate::generators::c17();
        let mut levels = levelize(&netlist).unwrap();

        // Insert a gate reading a mid-cone net, expose it, rewire, remove.
        let n11 = netlist.net_id("n11").unwrap();
        let i1 = netlist.net_id("i1").unwrap();
        let mut edit = netlist.begin_edit();
        let (gate, output) = edit
            .insert_gate(CellKind::Nand2, "extra", &[n11, i1], "extra_out")
            .unwrap();
        edit.expose_net(output).unwrap();
        let log = edit.finish();
        levels.update(&netlist, &log).unwrap();
        assert_eq!(levels, levelize(&netlist).unwrap());
        assert!(
            levels.level_of(gate) > 0,
            "grafted gate reads a gate-driven net"
        );

        // Rewiring the new gate fully onto primary inputs drops its level.
        let i2 = netlist.net_id("i2").unwrap();
        let mut edit = netlist.begin_edit();
        edit.rewire_input(gate, 0, i2).unwrap();
        let log = edit.finish();
        levels.update(&netlist, &log).unwrap();
        assert_eq!(levels, levelize(&netlist).unwrap());
        assert_eq!(levels.level_of(gate), 0);

        // Removal renumbers via swap_remove; update must follow.
        let mut netlist2 = netlist.clone();
        let mut edit = netlist2.begin_edit();
        // Cannot remove a primary output directly: first un-expose is not
        // supported, so remove a different fanout-free gate if one exists;
        // otherwise insert-and-remove to exercise the path.
        let (tmp, _) = edit
            .insert_gate(CellKind::Inv, "tmp", &[i1], "tmp_out")
            .unwrap();
        edit.remove_gate(tmp).unwrap();
        let log = edit.finish();
        let mut levels2 = levels.clone();
        levels2.update(&netlist2, &log).unwrap();
        assert_eq!(levels2, levelize(&netlist2).unwrap());
    }

    #[test]
    fn incremental_update_handles_random_edit_bursts() {
        let mut netlist = crate::generators::random_logic(8, 60, 0x5EED);
        let mut levels = levelize(&netlist).unwrap();
        let kinds = [CellKind::Nand2, CellKind::Nor2, CellKind::Xor2];
        for (round, kind) in kinds.into_iter().enumerate() {
            let mut edit = netlist.begin_edit();
            // Swap the kind of every fourth two-input gate.
            let targets: Vec<GateId> = edit
                .netlist()
                .gates()
                .iter()
                .filter(|gate| gate.inputs().len() == 2 && gate.id().index() % 4 == round)
                .map(|gate| gate.id())
                .collect();
            for target in targets {
                edit.swap_cell_kind(target, kind).unwrap();
            }
            // And graft a fresh gate deep into the cone.
            let feed = edit.netlist().gates()[round * 3].output();
            let pi = edit.netlist().primary_inputs()[round];
            edit.insert_gate(
                kind,
                format!("graft{round}"),
                &[feed, pi],
                format!("graft{round}_out"),
            )
            .unwrap();
            let log = edit.finish();
            levels.update(&netlist, &log).unwrap();
            assert_eq!(levels, levelize(&netlist).unwrap(), "round {round}");
        }
    }

    #[test]
    fn single_gate_circuit_has_depth_one() {
        let mut builder = NetlistBuilder::new("single");
        let a = builder.add_input("a");
        let y = builder.add_net("y");
        builder.add_gate(CellKind::Inv, "g", &[a], y).unwrap();
        builder.mark_output(y);
        let levels = levelize(&builder.build().unwrap()).unwrap();
        assert_eq!(levels.depth(), 1);
    }

    /// A DFF whose D input is fed from logic computed off its own Q output:
    /// the canonical sequential feedback loop (a toggle register).
    fn toggle_register() -> Netlist {
        let mut builder = NetlistBuilder::new("toggle");
        let ck = builder.add_input("ck");
        let q = builder.add_net("q");
        let nq = builder.add_net("nq");
        builder.add_gate(CellKind::Inv, "inv", &[q], nq).unwrap();
        builder.add_gate(CellKind::Dff, "ff", &[nq, ck], q).unwrap();
        builder.mark_output(q);
        builder.build().unwrap()
    }

    #[test]
    fn register_feedback_levelizes_with_the_register_as_source() {
        let netlist = toggle_register();
        let levels = levelize(&netlist).unwrap();
        let gate = |name: &str| {
            netlist
                .gates()
                .iter()
                .find(|g| g.name() == name)
                .unwrap()
                .id()
        };
        assert_eq!(levels.level_of(gate("ff")), 0);
        // The inverter reads the register's output, which counts as a
        // source, so it also sits at level 0.
        assert_eq!(levels.level_of(gate("inv")), 0);
        assert_eq!(levels.depth(), 1);
    }

    #[test]
    fn logic_behind_a_register_still_stacks_levels() {
        // ck, d -> dff -> q ; q -> inv -> a ; (a, q) -> nand -> out
        let mut builder = NetlistBuilder::new("behind");
        let ck = builder.add_input("ck");
        let d = builder.add_input("d");
        let q = builder.add_net("q");
        let a = builder.add_net("a");
        let out = builder.add_net("out");
        builder.add_gate(CellKind::Dff, "ff", &[d, ck], q).unwrap();
        builder.add_gate(CellKind::Inv, "g1", &[q], a).unwrap();
        builder
            .add_gate(CellKind::Nand2, "g2", &[a, q], out)
            .unwrap();
        builder.mark_output(out);
        let netlist = builder.build().unwrap();
        let levels = levelize(&netlist).unwrap();
        let gate = |name: &str| {
            netlist
                .gates()
                .iter()
                .find(|g| g.name() == name)
                .unwrap()
                .id()
        };
        assert_eq!(levels.level_of(gate("ff")), 0);
        assert_eq!(levels.level_of(gate("g1")), 0);
        assert_eq!(levels.level_of(gate("g2")), 1);
    }

    /// A kind swap across the sequential boundary can leave the swapped
    /// gate's own level unchanged while still changing its *readers'*
    /// levels (register outputs are sources).  The incremental pass must
    /// recompute the fanout even though no level on the dirty gate moved.
    #[test]
    fn incremental_update_follows_kind_swaps_across_the_sequential_boundary() {
        // a, b -> nand g1 -> x ; x -> inv g2 -> y
        let mut builder = NetlistBuilder::new("swap");
        let a = builder.add_input("a");
        let b = builder.add_input("b");
        let x = builder.add_net("x");
        let y = builder.add_net("y");
        builder.add_gate(CellKind::Nand2, "g1", &[a, b], x).unwrap();
        builder.add_gate(CellKind::Inv, "g2", &[x], y).unwrap();
        builder.mark_output(y);
        let mut netlist = builder.build().unwrap();
        let mut levels = levelize(&netlist).unwrap();
        let g1 = netlist.gates()[0].id();
        let g2 = netlist.gates()[1].id();
        assert_eq!((levels.level_of(g1), levels.level_of(g2)), (0, 1));

        // nand -> latch: g1 stays at level 0, but g2's driver is now a
        // register output, so g2 drops to level 0 as well.
        let mut edit = netlist.begin_edit();
        edit.swap_cell_kind(g1, CellKind::LatchD).unwrap();
        let log = edit.finish();
        levels.update(&netlist, &log).unwrap();
        assert_eq!(levels, levelize(&netlist).unwrap());
        assert_eq!(levels.level_of(g2), 0);

        // And back: g2 must climb again.
        let mut edit = netlist.begin_edit();
        edit.swap_cell_kind(g1, CellKind::And2).unwrap();
        let log = edit.finish();
        levels.update(&netlist, &log).unwrap();
        assert_eq!(levels, levelize(&netlist).unwrap());
        assert_eq!(levels.level_of(g2), 1);
    }

    #[test]
    fn incremental_update_follows_sequential_inserts() {
        let mut netlist = toggle_register();
        let mut levels = levelize(&netlist).unwrap();
        let q = netlist.net_id("q").unwrap();
        let ck = netlist.net_id("ck").unwrap();
        let mut edit = netlist.begin_edit();
        let (_, shadow_q) = edit
            .insert_gate(CellKind::LatchD, "shadow", &[q, ck], "shadow_q")
            .unwrap();
        edit.expose_net(shadow_q).unwrap();
        let log = edit.finish();
        levels.update(&netlist, &log).unwrap();
        assert_eq!(levels, levelize(&netlist).unwrap());
    }
}
