//! Cell kinds: combinational boolean behaviour and sequential state.

use std::fmt;
use std::str::FromStr;

use halotis_core::LogicLevel;

/// The cells understood by the simulator.
///
/// The combinational set covers what the paper's circuits need (inverters,
/// buffers, the AND/OR/XOR family in 2- and 3-input flavours and NAND/NOR) —
/// enough to express the Fig. 5 multiplier, full adders and the ISCAS-style
/// test circuits used by the benches.  The sequential tail (`Dff`, `DffRn`,
/// `LatchD`) adds the registers the ISCAS-89 s-series and clocked soak
/// scenarios require; see [`is_sequential`](Self::is_sequential).
///
/// # Example
///
/// ```
/// use halotis_core::LogicLevel::{High, Low};
/// use halotis_netlist::CellKind;
///
/// assert_eq!(CellKind::Nand2.evaluate(&[High, High]), Low);
/// assert_eq!(CellKind::Xor2.evaluate(&[High, Low]), High);
/// assert_eq!(CellKind::Inv.input_count(), 1);
/// assert_eq!("nand2".parse::<CellKind>().unwrap(), CellKind::Nand2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 3-input AND.
    And3,
    /// 3-input OR.
    Or3,
    /// 3-input NAND.
    Nand3,
    /// 3-input NOR.
    Nor3,
    /// 4-input AND.
    And4,
    /// 4-input OR.
    Or4,
    /// 4-input NAND.
    Nand4,
    /// 4-input NOR.
    Nor4,
    /// Positive-edge-triggered D flip-flop; pins `[d, ck]`.
    Dff,
    /// Positive-edge-triggered D flip-flop with an active-low asynchronous
    /// reset; pins `[d, ck, rn]`.
    DffRn,
    /// Transparent-high D latch; pins `[d, en]`.
    LatchD,
}

impl CellKind {
    /// All supported cell kinds.
    ///
    /// New kinds are appended at the end: the order fixes each kind's
    /// [`class`](Self::class) tag, which composite delay models and the
    /// committed corpus golden depend on.
    pub const ALL: [CellKind; 19] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::And3,
        CellKind::Or3,
        CellKind::Nand3,
        CellKind::Nor3,
        CellKind::And4,
        CellKind::Or4,
        CellKind::Nand4,
        CellKind::Nor4,
        CellKind::Dff,
        CellKind::DffRn,
        CellKind::LatchD,
    ];

    /// Number of input pins.
    pub const fn input_count(self) -> usize {
        match self {
            CellKind::Inv | CellKind::Buf => 1,
            CellKind::And2
            | CellKind::Or2
            | CellKind::Nand2
            | CellKind::Nor2
            | CellKind::Xor2
            | CellKind::Xnor2
            | CellKind::Dff
            | CellKind::LatchD => 2,
            CellKind::And3 | CellKind::Or3 | CellKind::Nand3 | CellKind::Nor3 | CellKind::DffRn => {
                3
            }
            CellKind::And4 | CellKind::Or4 | CellKind::Nand4 | CellKind::Nor4 => 4,
        }
    }

    /// `true` for state-holding cells (flip-flops and latches).
    ///
    /// Sequential cells break combinational paths: levelization treats their
    /// outputs as level sources, cycle detection does not follow edges
    /// through them, and the event engine computes their next state from the
    /// stored output instead of a boolean function of the inputs.
    pub const fn is_sequential(self) -> bool {
        matches!(self, CellKind::Dff | CellKind::DffRn | CellKind::LatchD)
    }

    /// The delay-model dispatch tag of this cell kind.
    ///
    /// Composite delay models (e.g. `halotis_delay::PerCellOverride`) select
    /// a model per [`CellClass`](halotis_delay::CellClass); this is the
    /// canonical mapping the simulation engine stamps into every
    /// `DelayContext`.  Stable per kind within one build of the library.
    ///
    /// # Example
    ///
    /// ```
    /// use halotis_netlist::CellKind;
    ///
    /// assert_ne!(CellKind::Inv.class(), CellKind::Nand2.class());
    /// assert_eq!(CellKind::Xor2.class(), CellKind::Xor2.class());
    /// ```
    pub const fn class(self) -> halotis_delay::CellClass {
        halotis_delay::CellClass(self as u16)
    }

    /// `true` for cells whose output is the complement of the underlying
    /// AND/OR/identity function (inverting cells are a transistor stage
    /// cheaper in CMOS and get slightly different default characterisation).
    pub const fn is_inverting(self) -> bool {
        matches!(
            self,
            CellKind::Inv
                | CellKind::Nand2
                | CellKind::Nor2
                | CellKind::Xnor2
                | CellKind::Nand3
                | CellKind::Nor3
                | CellKind::Nand4
                | CellKind::Nor4
        )
    }

    /// The canonical lower-case name used by the netlist text format.
    pub const fn name(self) -> &'static str {
        match self {
            CellKind::Inv => "inv",
            CellKind::Buf => "buf",
            CellKind::And2 => "and2",
            CellKind::Or2 => "or2",
            CellKind::Nand2 => "nand2",
            CellKind::Nor2 => "nor2",
            CellKind::Xor2 => "xor2",
            CellKind::Xnor2 => "xnor2",
            CellKind::And3 => "and3",
            CellKind::Or3 => "or3",
            CellKind::Nand3 => "nand3",
            CellKind::Nor3 => "nor3",
            CellKind::And4 => "and4",
            CellKind::Or4 => "or4",
            CellKind::Nand4 => "nand4",
            CellKind::Nor4 => "nor4",
            CellKind::Dff => "dff",
            CellKind::DffRn => "dffrn",
            CellKind::LatchD => "latchd",
        }
    }

    /// Evaluates the cell on the given input levels.
    ///
    /// Any [`LogicLevel::Unknown`] input makes the output unknown unless the
    /// defined inputs already force the output (e.g. a low input of an AND
    /// gate forces a low output) — the usual three-valued gate semantics.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`input_count`](Self::input_count),
    /// or if the cell is sequential — state-holding cells have no boolean
    /// function of their inputs; use [`next_state`](Self::next_state).
    pub fn evaluate(self, inputs: &[LogicLevel]) -> LogicLevel {
        assert_eq!(
            inputs.len(),
            self.input_count(),
            "cell {self} expects {} inputs, got {}",
            self.input_count(),
            inputs.len()
        );
        use LogicLevel::{High, Low, Unknown};
        let and_all = |inputs: &[LogicLevel]| -> LogicLevel {
            if inputs.contains(&Low) {
                Low
            } else if inputs.iter().all(|&l| l == High) {
                High
            } else {
                Unknown
            }
        };
        let or_all = |inputs: &[LogicLevel]| -> LogicLevel {
            if inputs.contains(&High) {
                High
            } else if inputs.iter().all(|&l| l == Low) {
                Low
            } else {
                Unknown
            }
        };
        let xor_all = |inputs: &[LogicLevel]| -> LogicLevel {
            let mut acc = Low;
            for &l in inputs {
                acc = match (acc, l) {
                    (Unknown, _) | (_, Unknown) => return Unknown,
                    (a, b) => {
                        if a != b {
                            High
                        } else {
                            Low
                        }
                    }
                };
            }
            acc
        };
        match self {
            CellKind::Buf => inputs[0],
            CellKind::Inv => !inputs[0],
            CellKind::And2 | CellKind::And3 | CellKind::And4 => and_all(inputs),
            CellKind::Nand2 | CellKind::Nand3 | CellKind::Nand4 => !and_all(inputs),
            CellKind::Or2 | CellKind::Or3 | CellKind::Or4 => or_all(inputs),
            CellKind::Nor2 | CellKind::Nor3 | CellKind::Nor4 => !or_all(inputs),
            CellKind::Xor2 => xor_all(inputs),
            CellKind::Xnor2 => !xor_all(inputs),
            CellKind::Dff | CellKind::DffRn | CellKind::LatchD => {
                panic!("sequential cell {self} has no combinational function")
            }
        }
    }

    /// Computes a sequential cell's next stored state after a pin event.
    ///
    /// `inputs` are the pin levels *after* the event has been applied,
    /// `stored` is the current output state, `pin` is the pin index that just
    /// changed, and `was` is that pin's level *before* the event — edge
    /// detection (the D flip-flop's positive clock edge) needs both sides of
    /// the transition.
    ///
    /// Semantics: `Dff` (`[d, ck]`) captures `d` on a `Low → High` clock
    /// edge and holds otherwise; `DffRn` (`[d, ck, rn]`) additionally clears
    /// to `Low` asynchronously while `rn` is `Low`; `LatchD` (`[d, en]`) is
    /// transparent while `en` is `High` and holds while `en` is `Low`.
    /// Unknown clock edges and unknown enables conservatively produce
    /// [`LogicLevel::Unknown`] unless the stored state is provably
    /// unaffected.
    ///
    /// # Panics
    ///
    /// Panics on combinational cells or an out-of-arity `inputs`/`pin`.
    pub fn next_state(
        self,
        inputs: &[LogicLevel],
        stored: LogicLevel,
        pin: usize,
        was: LogicLevel,
    ) -> LogicLevel {
        use LogicLevel::{High, Low, Unknown};
        assert_eq!(
            inputs.len(),
            self.input_count(),
            "cell {self} expects {} inputs, got {}",
            self.input_count(),
            inputs.len()
        );
        assert!(pin < inputs.len(), "pin {pin} out of range for {self}");
        let posedge = |was: LogicLevel, now: LogicLevel, captured: LogicLevel| match (was, now) {
            (Low, High) => captured,
            (Unknown, High) | (Low, Unknown) => {
                // The clock may or may not have risen — the state is only
                // certain if the capture would not have changed it.
                if captured == stored {
                    stored
                } else {
                    Unknown
                }
            }
            _ => stored,
        };
        match self {
            CellKind::Dff => {
                if pin == 1 {
                    posedge(was, inputs[1], inputs[0])
                } else {
                    stored
                }
            }
            CellKind::DffRn => match inputs[2] {
                Low => Low,
                Unknown => {
                    if stored == Low {
                        Low
                    } else {
                        Unknown
                    }
                }
                High => {
                    if pin == 1 {
                        posedge(was, inputs[1], inputs[0])
                    } else {
                        stored
                    }
                }
            },
            CellKind::LatchD => match inputs[1] {
                High => inputs[0],
                Low => stored,
                Unknown => {
                    if inputs[0] == stored {
                        stored
                    } else {
                        Unknown
                    }
                }
            },
            _ => panic!("combinational cell {self} has no stored state"),
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown cell name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCellKindError {
    name: String,
}

impl fmt::Display for ParseCellKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown cell kind: {}", self.name)
    }
}

impl std::error::Error for ParseCellKindError {}

impl FromStr for CellKind {
    type Err = ParseCellKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CellKind::ALL
            .into_iter()
            .find(|kind| kind.name() == s)
            .ok_or_else(|| ParseCellKindError {
                name: s.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_core::LogicLevel::{High, Low, Unknown};

    #[test]
    fn truth_tables_of_two_input_cells() {
        let cases = [
            (CellKind::And2, [Low, Low, Low, High]),
            (CellKind::Or2, [Low, High, High, High]),
            (CellKind::Nand2, [High, High, High, Low]),
            (CellKind::Nor2, [High, Low, Low, Low]),
            (CellKind::Xor2, [Low, High, High, Low]),
            (CellKind::Xnor2, [High, Low, Low, High]),
        ];
        let inputs = [[Low, Low], [Low, High], [High, Low], [High, High]];
        for (kind, expected) in cases {
            for (pattern, want) in inputs.iter().zip(expected) {
                assert_eq!(kind.evaluate(pattern), want, "{kind} on {pattern:?}");
            }
        }
    }

    #[test]
    fn inverter_and_buffer() {
        assert_eq!(CellKind::Inv.evaluate(&[Low]), High);
        assert_eq!(CellKind::Inv.evaluate(&[High]), Low);
        assert_eq!(CellKind::Buf.evaluate(&[High]), High);
        assert_eq!(CellKind::Inv.evaluate(&[Unknown]), Unknown);
    }

    #[test]
    fn three_input_cells() {
        assert_eq!(CellKind::And3.evaluate(&[High, High, High]), High);
        assert_eq!(CellKind::And3.evaluate(&[High, Low, High]), Low);
        assert_eq!(CellKind::Nand3.evaluate(&[High, High, High]), Low);
        assert_eq!(CellKind::Or3.evaluate(&[Low, Low, Low]), Low);
        assert_eq!(CellKind::Nor3.evaluate(&[Low, Low, High]), Low);
    }

    #[test]
    fn unknown_propagation_respects_controlling_values() {
        assert_eq!(CellKind::And2.evaluate(&[Low, Unknown]), Low);
        assert_eq!(CellKind::And2.evaluate(&[High, Unknown]), Unknown);
        assert_eq!(CellKind::Or2.evaluate(&[High, Unknown]), High);
        assert_eq!(CellKind::Or2.evaluate(&[Low, Unknown]), Unknown);
        assert_eq!(CellKind::Xor2.evaluate(&[High, Unknown]), Unknown);
    }

    #[test]
    fn four_input_cells() {
        assert_eq!(CellKind::And4.evaluate(&[High, High, High, High]), High);
        assert_eq!(CellKind::And4.evaluate(&[High, High, Low, High]), Low);
        assert_eq!(CellKind::Nand4.evaluate(&[High, High, High, High]), Low);
        assert_eq!(CellKind::Or4.evaluate(&[Low, Low, Low, Low]), Low);
        assert_eq!(CellKind::Or4.evaluate(&[Low, Low, High, Low]), High);
        assert_eq!(CellKind::Nor4.evaluate(&[Low, Low, Low, Low]), High);
        assert_eq!(CellKind::And4.evaluate(&[Low, Unknown, High, High]), Low);
        assert_eq!(CellKind::Or4.evaluate(&[Low, Unknown, Low, Low]), Unknown);
        assert_eq!(CellKind::And4.input_count(), 4);
        assert!(CellKind::Nand4.is_inverting() && CellKind::Nor4.is_inverting());
        assert!(!CellKind::And4.is_inverting() && !CellKind::Or4.is_inverting());
    }

    #[test]
    fn class_tags_of_preexisting_kinds_are_stable() {
        // Composite delay models and the committed corpus golden key off
        // these discriminants; appending new kinds must not shift them.
        use halotis_delay::CellClass;
        assert_eq!(CellKind::Inv.class(), CellClass(0));
        assert_eq!(CellKind::Nor3.class(), CellClass(11));
        assert_eq!(CellKind::And4.class(), CellClass(12));
        assert_eq!(CellKind::Nor4.class(), CellClass(15));
        // The sequential kinds append after the combinational family.
        assert_eq!(CellKind::Dff.class(), CellClass(16));
        assert_eq!(CellKind::DffRn.class(), CellClass(17));
        assert_eq!(CellKind::LatchD.class(), CellClass(18));
    }

    #[test]
    fn sequential_classification_and_arity() {
        let sequential: Vec<CellKind> = CellKind::ALL
            .into_iter()
            .filter(|kind| kind.is_sequential())
            .collect();
        assert_eq!(
            sequential,
            vec![CellKind::Dff, CellKind::DffRn, CellKind::LatchD]
        );
        assert_eq!(CellKind::Dff.input_count(), 2);
        assert_eq!(CellKind::DffRn.input_count(), 3);
        assert_eq!(CellKind::LatchD.input_count(), 2);
        assert!(!CellKind::Dff.is_inverting());
        assert!(!CellKind::DffRn.is_inverting());
        assert!(!CellKind::LatchD.is_inverting());
    }

    #[test]
    fn dff_captures_on_the_positive_clock_edge_only() {
        let k = CellKind::Dff;
        // Rising edge captures D.
        assert_eq!(k.next_state(&[High, High], Low, 1, Low), High);
        assert_eq!(k.next_state(&[Low, High], High, 1, Low), Low);
        // Falling edge and data changes hold.
        assert_eq!(k.next_state(&[High, Low], Low, 1, High), Low);
        assert_eq!(k.next_state(&[High, Low], High, 0, Low), High);
        assert_eq!(k.next_state(&[Low, High], High, 0, High), High);
        // An ambiguous clock edge poisons the state unless the capture
        // would be a no-op.
        assert_eq!(k.next_state(&[High, High], Low, 1, Unknown), Unknown);
        assert_eq!(k.next_state(&[High, High], High, 1, Unknown), High);
        assert_eq!(k.next_state(&[High, Unknown], Low, 1, Low), Unknown);
    }

    #[test]
    fn dffrn_clears_asynchronously_while_reset_is_low() {
        let k = CellKind::DffRn;
        // rn low forces low regardless of the trigger pin.
        assert_eq!(k.next_state(&[High, High, Low], High, 2, High), Low);
        assert_eq!(k.next_state(&[High, High, Low], High, 1, Low), Low);
        // rn high behaves like a plain DFF.
        assert_eq!(k.next_state(&[High, High, High], Low, 1, Low), High);
        assert_eq!(k.next_state(&[High, Low, High], Low, 1, High), Low);
        // Releasing reset does not capture by itself.
        assert_eq!(k.next_state(&[High, High, High], Low, 2, Low), Low);
        // An unknown reset is only safe when the state is already low.
        assert_eq!(k.next_state(&[High, High, Unknown], Low, 1, Low), Low);
        assert_eq!(k.next_state(&[High, High, Unknown], High, 0, Low), Unknown);
    }

    #[test]
    fn latch_is_transparent_while_enabled() {
        let k = CellKind::LatchD;
        // Enabled: output follows D on any pin event.
        assert_eq!(k.next_state(&[High, High], Low, 0, Low), High);
        assert_eq!(k.next_state(&[Low, High], High, 1, Low), Low);
        // Disabled: holds.
        assert_eq!(k.next_state(&[High, Low], Low, 1, High), Low);
        assert_eq!(k.next_state(&[Low, Low], High, 0, High), High);
        // Unknown enable only matters when D disagrees with the state.
        assert_eq!(k.next_state(&[High, Unknown], High, 1, High), High);
        assert_eq!(k.next_state(&[Low, Unknown], High, 1, High), Unknown);
    }

    #[test]
    #[should_panic(expected = "has no combinational function")]
    fn sequential_evaluate_panics() {
        CellKind::Dff.evaluate(&[High, High]);
    }

    #[test]
    #[should_panic(expected = "has no stored state")]
    fn combinational_next_state_panics() {
        CellKind::Nand2.next_state(&[High, High], Low, 0, Low);
    }

    #[test]
    fn names_round_trip_through_parsing() {
        for kind in CellKind::ALL {
            assert_eq!(kind.name().parse::<CellKind>().unwrap(), kind);
            assert_eq!(format!("{kind}"), kind.name());
        }
        let err = "nand9".parse::<CellKind>().unwrap_err();
        assert_eq!(err.to_string(), "unknown cell kind: nand9");
    }

    #[test]
    fn inverting_classification() {
        assert!(CellKind::Inv.is_inverting());
        assert!(CellKind::Nand2.is_inverting());
        assert!(!CellKind::And2.is_inverting());
        assert!(!CellKind::Buf.is_inverting());
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn wrong_arity_panics() {
        CellKind::And2.evaluate(&[High]);
    }
}
