//! Combinational cell kinds and their boolean behaviour.

use std::fmt;
use std::str::FromStr;

use halotis_core::LogicLevel;

/// The combinational cells understood by the simulator.
///
/// The set covers what the paper's circuits need (inverters, buffers, the
/// AND/OR/XOR family in 2- and 3-input flavours and NAND/NOR) — enough to
/// express the Fig. 5 multiplier, full adders and the ISCAS-style test
/// circuits used by the benches.
///
/// # Example
///
/// ```
/// use halotis_core::LogicLevel::{High, Low};
/// use halotis_netlist::CellKind;
///
/// assert_eq!(CellKind::Nand2.evaluate(&[High, High]), Low);
/// assert_eq!(CellKind::Xor2.evaluate(&[High, Low]), High);
/// assert_eq!(CellKind::Inv.input_count(), 1);
/// assert_eq!("nand2".parse::<CellKind>().unwrap(), CellKind::Nand2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 3-input AND.
    And3,
    /// 3-input OR.
    Or3,
    /// 3-input NAND.
    Nand3,
    /// 3-input NOR.
    Nor3,
    /// 4-input AND.
    And4,
    /// 4-input OR.
    Or4,
    /// 4-input NAND.
    Nand4,
    /// 4-input NOR.
    Nor4,
}

impl CellKind {
    /// All supported cell kinds.
    ///
    /// New kinds are appended at the end: the order fixes each kind's
    /// [`class`](Self::class) tag, which composite delay models and the
    /// committed corpus golden depend on.
    pub const ALL: [CellKind; 16] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::And3,
        CellKind::Or3,
        CellKind::Nand3,
        CellKind::Nor3,
        CellKind::And4,
        CellKind::Or4,
        CellKind::Nand4,
        CellKind::Nor4,
    ];

    /// Number of input pins.
    pub const fn input_count(self) -> usize {
        match self {
            CellKind::Inv | CellKind::Buf => 1,
            CellKind::And2
            | CellKind::Or2
            | CellKind::Nand2
            | CellKind::Nor2
            | CellKind::Xor2
            | CellKind::Xnor2 => 2,
            CellKind::And3 | CellKind::Or3 | CellKind::Nand3 | CellKind::Nor3 => 3,
            CellKind::And4 | CellKind::Or4 | CellKind::Nand4 | CellKind::Nor4 => 4,
        }
    }

    /// The delay-model dispatch tag of this cell kind.
    ///
    /// Composite delay models (e.g. `halotis_delay::PerCellOverride`) select
    /// a model per [`CellClass`](halotis_delay::CellClass); this is the
    /// canonical mapping the simulation engine stamps into every
    /// `DelayContext`.  Stable per kind within one build of the library.
    ///
    /// # Example
    ///
    /// ```
    /// use halotis_netlist::CellKind;
    ///
    /// assert_ne!(CellKind::Inv.class(), CellKind::Nand2.class());
    /// assert_eq!(CellKind::Xor2.class(), CellKind::Xor2.class());
    /// ```
    pub const fn class(self) -> halotis_delay::CellClass {
        halotis_delay::CellClass(self as u16)
    }

    /// `true` for cells whose output is the complement of the underlying
    /// AND/OR/identity function (inverting cells are a transistor stage
    /// cheaper in CMOS and get slightly different default characterisation).
    pub const fn is_inverting(self) -> bool {
        matches!(
            self,
            CellKind::Inv
                | CellKind::Nand2
                | CellKind::Nor2
                | CellKind::Xnor2
                | CellKind::Nand3
                | CellKind::Nor3
                | CellKind::Nand4
                | CellKind::Nor4
        )
    }

    /// The canonical lower-case name used by the netlist text format.
    pub const fn name(self) -> &'static str {
        match self {
            CellKind::Inv => "inv",
            CellKind::Buf => "buf",
            CellKind::And2 => "and2",
            CellKind::Or2 => "or2",
            CellKind::Nand2 => "nand2",
            CellKind::Nor2 => "nor2",
            CellKind::Xor2 => "xor2",
            CellKind::Xnor2 => "xnor2",
            CellKind::And3 => "and3",
            CellKind::Or3 => "or3",
            CellKind::Nand3 => "nand3",
            CellKind::Nor3 => "nor3",
            CellKind::And4 => "and4",
            CellKind::Or4 => "or4",
            CellKind::Nand4 => "nand4",
            CellKind::Nor4 => "nor4",
        }
    }

    /// Evaluates the cell on the given input levels.
    ///
    /// Any [`LogicLevel::Unknown`] input makes the output unknown unless the
    /// defined inputs already force the output (e.g. a low input of an AND
    /// gate forces a low output) — the usual three-valued gate semantics.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`input_count`](Self::input_count).
    pub fn evaluate(self, inputs: &[LogicLevel]) -> LogicLevel {
        assert_eq!(
            inputs.len(),
            self.input_count(),
            "cell {self} expects {} inputs, got {}",
            self.input_count(),
            inputs.len()
        );
        use LogicLevel::{High, Low, Unknown};
        let and_all = |inputs: &[LogicLevel]| -> LogicLevel {
            if inputs.contains(&Low) {
                Low
            } else if inputs.iter().all(|&l| l == High) {
                High
            } else {
                Unknown
            }
        };
        let or_all = |inputs: &[LogicLevel]| -> LogicLevel {
            if inputs.contains(&High) {
                High
            } else if inputs.iter().all(|&l| l == Low) {
                Low
            } else {
                Unknown
            }
        };
        let xor_all = |inputs: &[LogicLevel]| -> LogicLevel {
            let mut acc = Low;
            for &l in inputs {
                acc = match (acc, l) {
                    (Unknown, _) | (_, Unknown) => return Unknown,
                    (a, b) => {
                        if a != b {
                            High
                        } else {
                            Low
                        }
                    }
                };
            }
            acc
        };
        match self {
            CellKind::Buf => inputs[0],
            CellKind::Inv => !inputs[0],
            CellKind::And2 | CellKind::And3 | CellKind::And4 => and_all(inputs),
            CellKind::Nand2 | CellKind::Nand3 | CellKind::Nand4 => !and_all(inputs),
            CellKind::Or2 | CellKind::Or3 | CellKind::Or4 => or_all(inputs),
            CellKind::Nor2 | CellKind::Nor3 | CellKind::Nor4 => !or_all(inputs),
            CellKind::Xor2 => xor_all(inputs),
            CellKind::Xnor2 => !xor_all(inputs),
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown cell name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCellKindError {
    name: String,
}

impl fmt::Display for ParseCellKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown cell kind: {}", self.name)
    }
}

impl std::error::Error for ParseCellKindError {}

impl FromStr for CellKind {
    type Err = ParseCellKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CellKind::ALL
            .into_iter()
            .find(|kind| kind.name() == s)
            .ok_or_else(|| ParseCellKindError {
                name: s.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_core::LogicLevel::{High, Low, Unknown};

    #[test]
    fn truth_tables_of_two_input_cells() {
        let cases = [
            (CellKind::And2, [Low, Low, Low, High]),
            (CellKind::Or2, [Low, High, High, High]),
            (CellKind::Nand2, [High, High, High, Low]),
            (CellKind::Nor2, [High, Low, Low, Low]),
            (CellKind::Xor2, [Low, High, High, Low]),
            (CellKind::Xnor2, [High, Low, Low, High]),
        ];
        let inputs = [[Low, Low], [Low, High], [High, Low], [High, High]];
        for (kind, expected) in cases {
            for (pattern, want) in inputs.iter().zip(expected) {
                assert_eq!(kind.evaluate(pattern), want, "{kind} on {pattern:?}");
            }
        }
    }

    #[test]
    fn inverter_and_buffer() {
        assert_eq!(CellKind::Inv.evaluate(&[Low]), High);
        assert_eq!(CellKind::Inv.evaluate(&[High]), Low);
        assert_eq!(CellKind::Buf.evaluate(&[High]), High);
        assert_eq!(CellKind::Inv.evaluate(&[Unknown]), Unknown);
    }

    #[test]
    fn three_input_cells() {
        assert_eq!(CellKind::And3.evaluate(&[High, High, High]), High);
        assert_eq!(CellKind::And3.evaluate(&[High, Low, High]), Low);
        assert_eq!(CellKind::Nand3.evaluate(&[High, High, High]), Low);
        assert_eq!(CellKind::Or3.evaluate(&[Low, Low, Low]), Low);
        assert_eq!(CellKind::Nor3.evaluate(&[Low, Low, High]), Low);
    }

    #[test]
    fn unknown_propagation_respects_controlling_values() {
        assert_eq!(CellKind::And2.evaluate(&[Low, Unknown]), Low);
        assert_eq!(CellKind::And2.evaluate(&[High, Unknown]), Unknown);
        assert_eq!(CellKind::Or2.evaluate(&[High, Unknown]), High);
        assert_eq!(CellKind::Or2.evaluate(&[Low, Unknown]), Unknown);
        assert_eq!(CellKind::Xor2.evaluate(&[High, Unknown]), Unknown);
    }

    #[test]
    fn four_input_cells() {
        assert_eq!(CellKind::And4.evaluate(&[High, High, High, High]), High);
        assert_eq!(CellKind::And4.evaluate(&[High, High, Low, High]), Low);
        assert_eq!(CellKind::Nand4.evaluate(&[High, High, High, High]), Low);
        assert_eq!(CellKind::Or4.evaluate(&[Low, Low, Low, Low]), Low);
        assert_eq!(CellKind::Or4.evaluate(&[Low, Low, High, Low]), High);
        assert_eq!(CellKind::Nor4.evaluate(&[Low, Low, Low, Low]), High);
        assert_eq!(CellKind::And4.evaluate(&[Low, Unknown, High, High]), Low);
        assert_eq!(CellKind::Or4.evaluate(&[Low, Unknown, Low, Low]), Unknown);
        assert_eq!(CellKind::And4.input_count(), 4);
        assert!(CellKind::Nand4.is_inverting() && CellKind::Nor4.is_inverting());
        assert!(!CellKind::And4.is_inverting() && !CellKind::Or4.is_inverting());
    }

    #[test]
    fn class_tags_of_preexisting_kinds_are_stable() {
        // Composite delay models and the committed corpus golden key off
        // these discriminants; appending new kinds must not shift them.
        use halotis_delay::CellClass;
        assert_eq!(CellKind::Inv.class(), CellClass(0));
        assert_eq!(CellKind::Nor3.class(), CellClass(11));
        assert_eq!(CellKind::And4.class(), CellClass(12));
        assert_eq!(CellKind::Nor4.class(), CellClass(15));
    }

    #[test]
    fn names_round_trip_through_parsing() {
        for kind in CellKind::ALL {
            assert_eq!(kind.name().parse::<CellKind>().unwrap(), kind);
            assert_eq!(format!("{kind}"), kind.name());
        }
        let err = "nand9".parse::<CellKind>().unwrap_err();
        assert_eq!(err.to_string(), "unknown cell kind: nand9");
    }

    #[test]
    fn inverting_classification() {
        assert!(CellKind::Inv.is_inverting());
        assert!(CellKind::Nand2.is_inverting());
        assert!(!CellKind::And2.is_inverting());
        assert!(!CellKind::Buf.is_inverting());
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn wrong_arity_panics() {
        CellKind::And2.evaluate(&[High]);
    }
}
