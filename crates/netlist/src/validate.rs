//! Post-construction netlist/library consistency checks.
//!
//! [`NetlistBuilder`](crate::NetlistBuilder) already guarantees structural
//! well-formedness (single drivers, no loops).  This module checks the
//! *semantic* properties that only matter once a library and a simulation
//! are involved, and reports them as warnings rather than hard errors:
//!
//! * gates whose cell kind is not characterised in the library,
//! * threshold overrides outside the `(0, 1)` open interval,
//! * dangling nets (no fanout and not a primary output),
//! * primary inputs that drive nothing,
//! * primary outputs driven directly by a primary input (legal but usually a
//!   sign of a netlist bug).

use std::fmt;

use crate::library::Library;
use crate::netlist::Netlist;

/// One validation finding.
#[derive(Clone, Debug, PartialEq)]
pub enum Issue {
    /// A gate's cell kind is missing from the library.
    UncharacterisedCell {
        /// Gate instance name.
        gate: String,
    },
    /// A per-instance threshold override is not strictly inside `(0, 1)`.
    ThresholdOutOfRange {
        /// Gate instance name.
        gate: String,
        /// Pin index.
        pin: usize,
        /// The offending fraction.
        fraction: f64,
    },
    /// An internal net drives no gate input and is not a primary output.
    DanglingNet {
        /// Net name.
        net: String,
    },
    /// A primary input has no fanout.
    UnusedInput {
        /// Net name.
        net: String,
    },
    /// A primary output is directly a primary input.
    PassThroughOutput {
        /// Net name.
        net: String,
    },
}

impl fmt::Display for Issue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Issue::UncharacterisedCell { gate } => {
                write!(f, "gate {gate}: cell kind not in library")
            }
            Issue::ThresholdOutOfRange {
                gate,
                pin,
                fraction,
            } => write!(
                f,
                "gate {gate} pin {pin}: threshold override {fraction} outside (0, 1)"
            ),
            Issue::DanglingNet { net } => write!(f, "net {net} drives nothing"),
            Issue::UnusedInput { net } => write!(f, "primary input {net} is unused"),
            Issue::PassThroughOutput { net } => {
                write!(f, "primary output {net} is directly a primary input")
            }
        }
    }
}

/// Checks a netlist against a library and returns every finding.
///
/// An empty result means the pair is ready for simulation.
///
/// # Example
///
/// ```
/// use halotis_netlist::{generators, technology, validate};
///
/// let netlist = generators::multiplier(4, 4);
/// let issues = validate::check(&netlist, &technology::cmos06());
/// assert!(issues.is_empty());
/// ```
pub fn check(netlist: &Netlist, library: &Library) -> Vec<Issue> {
    let mut issues = Vec::new();

    for gate in netlist.gates() {
        if !library.contains(gate.kind()) {
            issues.push(Issue::UncharacterisedCell {
                gate: gate.name().to_string(),
            });
        }
        if let Some(overrides) = gate.threshold_overrides() {
            for (pin, &fraction) in overrides.iter().enumerate() {
                if !(fraction > 0.0 && fraction < 1.0) {
                    issues.push(Issue::ThresholdOutOfRange {
                        gate: gate.name().to_string(),
                        pin,
                        fraction,
                    });
                }
            }
        }
    }

    for net in netlist.nets() {
        let has_loads = !net.loads().is_empty();
        if net.is_primary_input() {
            if !has_loads {
                issues.push(Issue::UnusedInput {
                    net: net.name().to_string(),
                });
            }
            if net.is_primary_output() {
                issues.push(Issue::PassThroughOutput {
                    net: net.name().to_string(),
                });
            }
        } else if !has_loads && !net.is_primary_output() {
            issues.push(Issue::DanglingNet {
                net: net.name().to_string(),
            });
        }
    }

    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use crate::library::Library;
    use crate::netlist::NetlistBuilder;
    use crate::technology;
    use halotis_core::Voltage;

    #[test]
    fn clean_circuit_has_no_issues() {
        let mut builder = NetlistBuilder::new("clean");
        let a = builder.add_input("a");
        let y = builder.add_net("y");
        builder.add_gate(CellKind::Inv, "g", &[a], y).unwrap();
        builder.mark_output(y);
        let netlist = builder.build().unwrap();
        assert!(check(&netlist, &technology::cmos06()).is_empty());
    }

    #[test]
    fn missing_cell_is_reported() {
        let mut builder = NetlistBuilder::new("missing");
        let a = builder.add_input("a");
        let y = builder.add_net("y");
        builder.add_gate(CellKind::Xor2, "g", &[a, a], y).unwrap();
        builder.mark_output(y);
        let netlist = builder.build().unwrap();
        let empty_library = Library::new("empty", Voltage::from_volts(5.0));
        let issues = check(&netlist, &empty_library);
        assert!(issues
            .iter()
            .any(|i| matches!(i, Issue::UncharacterisedCell { .. })));
    }

    #[test]
    fn bad_threshold_override_is_reported() {
        let mut builder = NetlistBuilder::new("bad_vt");
        let a = builder.add_input("a");
        let y = builder.add_net("y");
        builder
            .add_gate_with_thresholds(CellKind::Inv, "g", &[a], y, &[1.5])
            .unwrap();
        builder.mark_output(y);
        let netlist = builder.build().unwrap();
        let issues = check(&netlist, &technology::cmos06());
        assert_eq!(issues.len(), 1);
        assert!(issues[0].to_string().contains("outside (0, 1)"));
    }

    #[test]
    fn dangling_and_unused_nets_are_reported() {
        let mut builder = NetlistBuilder::new("dangling");
        let a = builder.add_input("a");
        let unused = builder.add_input("unused");
        let y = builder.add_net("y");
        builder.add_gate(CellKind::Inv, "g", &[a], y).unwrap();
        // y is neither an output nor a load: dangling.
        let netlist = builder.build().unwrap();
        let issues = check(&netlist, &technology::cmos06());
        assert!(issues
            .iter()
            .any(|i| matches!(i, Issue::DanglingNet { .. })));
        assert!(issues.iter().any(
            |i| matches!(i, Issue::UnusedInput { net } if net == &netlist.net(unused).name().to_string())
        ));
    }

    #[test]
    fn pass_through_output_is_reported() {
        let mut builder = NetlistBuilder::new("pass");
        let a = builder.add_input("a");
        let y = builder.add_net("y");
        builder.add_gate(CellKind::Inv, "g", &[a], y).unwrap();
        builder.mark_output(y);
        builder.mark_output(a);
        let netlist = builder.build().unwrap();
        let issues = check(&netlist, &technology::cmos06());
        assert!(issues
            .iter()
            .any(|i| matches!(i, Issue::PassThroughOutput { .. })));
    }
}
