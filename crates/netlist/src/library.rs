//! Cell-library characterisation.
//!
//! A [`Library`] holds, for every [`CellKind`], one [`PinSpec`] per input
//! pin: the pin's input capacitance, its input threshold voltage `VT`
//! (expressed as a fraction of the supply) and its [`PinTiming`] — the
//! nominal-delay, output-slew and degradation coefficients of the timing
//! arcs through that pin.
//!
//! The per-pin threshold is the heart of the paper's inertial treatment: a
//! single transition on a net produces a *different event time for every
//! fanout input*, because each input observes the ramp at its own `VT`
//! (paper Fig. 3).

use std::collections::HashMap;
use std::fmt;

use halotis_core::{Capacitance, TimeDelta, Voltage};
use halotis_delay::PinTiming;

use crate::cell::CellKind;

/// Characterisation of one input pin of a cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PinSpec {
    /// Timing arcs (rise/fall output edges) through this pin.
    pub timing: PinTiming,
    /// Capacitance this pin presents to the net driving it.
    pub input_capacitance: Capacitance,
    /// Input threshold voltage as a fraction of the supply (`0.5` = `Vdd/2`).
    pub threshold_fraction: f64,
}

impl PinSpec {
    /// The absolute threshold voltage of this pin under the given supply.
    pub fn threshold_voltage(&self, vdd: Voltage) -> Voltage {
        vdd.fraction(self.threshold_fraction)
    }
}

/// Characterisation of one cell: one [`PinSpec`] per input pin.
#[derive(Clone, Debug, PartialEq)]
pub struct CellTiming {
    pins: Vec<PinSpec>,
}

impl CellTiming {
    /// Builds a cell characterisation from explicit per-pin specs.
    pub fn new(pins: Vec<PinSpec>) -> Self {
        CellTiming { pins }
    }

    /// Builds a cell characterisation that uses the same spec on `count` pins.
    pub fn uniform(count: usize, spec: PinSpec) -> Self {
        CellTiming {
            pins: vec![spec; count],
        }
    }

    /// The spec of input pin `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for this cell.
    pub fn pin(&self, index: usize) -> &PinSpec {
        &self.pins[index]
    }

    /// Number of characterised input pins.
    pub fn pin_count(&self) -> usize {
        self.pins.len()
    }

    /// Iterates the pin specs in pin order.
    pub fn pins(&self) -> impl Iterator<Item = &PinSpec> {
        self.pins.iter()
    }
}

/// Error returned when a cell or pin is missing from a library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LibraryError {
    /// The library has no entry for the requested cell kind.
    MissingCell {
        /// The cell kind that was looked up.
        kind: CellKind,
    },
    /// The cell exists but the requested pin index is out of range.
    MissingPin {
        /// The cell kind that was looked up.
        kind: CellKind,
        /// The requested pin index.
        pin: usize,
    },
}

impl fmt::Display for LibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibraryError::MissingCell { kind } => write!(f, "library has no cell {kind}"),
            LibraryError::MissingPin { kind, pin } => {
                write!(f, "cell {kind} has no input pin {pin}")
            }
        }
    }
}

impl std::error::Error for LibraryError {}

/// A characterised cell library plus its operating conditions.
///
/// # Example
///
/// ```
/// use halotis_netlist::{technology, CellKind};
///
/// let lib = technology::cmos06();
/// assert!(lib.contains(CellKind::Nand2));
/// let vt = lib.pin(CellKind::Nand2, 0).unwrap().threshold_voltage(lib.vdd());
/// assert!(vt > halotis_core::Voltage::ZERO);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Library {
    name: String,
    vdd: Voltage,
    default_input_slew: TimeDelta,
    wire_capacitance: Capacitance,
    cells: HashMap<CellKind, CellTiming>,
}

impl Library {
    /// Creates an empty library operating at `vdd`.
    pub fn new(name: impl Into<String>, vdd: Voltage) -> Self {
        Library {
            name: name.into(),
            vdd,
            default_input_slew: TimeDelta::from_ps(200.0),
            wire_capacitance: Capacitance::ZERO,
            cells: HashMap::new(),
        }
    }

    /// The library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The supply voltage the characterisation was made at.
    pub fn vdd(&self) -> Voltage {
        self.vdd
    }

    /// The input transition time assumed for primary-input edges when the
    /// stimulus does not specify one.
    pub fn default_input_slew(&self) -> TimeDelta {
        self.default_input_slew
    }

    /// Sets the default primary-input transition time.
    pub fn set_default_input_slew(&mut self, slew: TimeDelta) {
        self.default_input_slew = slew.max(TimeDelta::from_fs(1));
    }

    /// Per-net parasitic wire capacitance added to every gate's load.
    pub fn wire_capacitance(&self) -> Capacitance {
        self.wire_capacitance
    }

    /// Sets the per-net parasitic wire capacitance.
    pub fn set_wire_capacitance(&mut self, capacitance: Capacitance) {
        self.wire_capacitance = capacitance;
    }

    /// Adds (or replaces) the characterisation of a cell.
    ///
    /// # Panics
    ///
    /// Panics if the number of pin specs does not match the cell's input
    /// count — a characterisation bug that should never reach simulation.
    pub fn insert(&mut self, kind: CellKind, timing: CellTiming) {
        assert_eq!(
            timing.pin_count(),
            kind.input_count(),
            "cell {kind} needs {} pin specs, got {}",
            kind.input_count(),
            timing.pin_count()
        );
        self.cells.insert(kind, timing);
    }

    /// `true` when the library characterises `kind`.
    pub fn contains(&self, kind: CellKind) -> bool {
        self.cells.contains_key(&kind)
    }

    /// The characterisation of `kind`.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::MissingCell`] when the cell is not present.
    pub fn cell(&self, kind: CellKind) -> Result<&CellTiming, LibraryError> {
        self.cells
            .get(&kind)
            .ok_or(LibraryError::MissingCell { kind })
    }

    /// The spec of pin `pin` of cell `kind`.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError`] when the cell or the pin is missing.
    pub fn pin(&self, kind: CellKind, pin: usize) -> Result<&PinSpec, LibraryError> {
        let cell = self.cell(kind)?;
        if pin >= cell.pin_count() {
            return Err(LibraryError::MissingPin { kind, pin });
        }
        Ok(cell.pin(pin))
    }

    /// Cell kinds characterised by this library, in no particular order.
    pub fn kinds(&self) -> impl Iterator<Item = CellKind> + '_ {
        self.cells.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_delay::EdgeTiming;

    fn spec(threshold: f64) -> PinSpec {
        PinSpec {
            timing: PinTiming::symmetric(EdgeTiming::example()),
            input_capacitance: Capacitance::from_femtofarads(10.0),
            threshold_fraction: threshold,
        }
    }

    #[test]
    fn pin_spec_threshold_voltage() {
        let s = spec(0.4);
        assert_eq!(
            s.threshold_voltage(Voltage::from_volts(5.0)),
            Voltage::from_volts(2.0)
        );
    }

    #[test]
    fn cell_timing_uniform_and_explicit() {
        let uniform = CellTiming::uniform(3, spec(0.5));
        assert_eq!(uniform.pin_count(), 3);
        assert_eq!(uniform.pin(2).threshold_fraction, 0.5);
        let explicit = CellTiming::new(vec![spec(0.4), spec(0.6)]);
        assert_eq!(explicit.pin_count(), 2);
        assert_eq!(explicit.pins().count(), 2);
        assert_eq!(explicit.pin(1).threshold_fraction, 0.6);
    }

    #[test]
    fn library_insert_and_lookup() {
        let mut lib = Library::new("test", Voltage::from_volts(5.0));
        assert_eq!(lib.name(), "test");
        lib.insert(CellKind::Inv, CellTiming::uniform(1, spec(0.5)));
        assert!(lib.contains(CellKind::Inv));
        assert!(!lib.contains(CellKind::Nand2));
        assert!(lib.cell(CellKind::Inv).is_ok());
        assert_eq!(
            lib.cell(CellKind::Nand2).unwrap_err(),
            LibraryError::MissingCell {
                kind: CellKind::Nand2
            }
        );
        assert!(lib.pin(CellKind::Inv, 0).is_ok());
        assert_eq!(
            lib.pin(CellKind::Inv, 3).unwrap_err(),
            LibraryError::MissingPin {
                kind: CellKind::Inv,
                pin: 3
            }
        );
        assert_eq!(lib.kinds().count(), 1);
    }

    #[test]
    #[should_panic(expected = "needs 2 pin specs")]
    fn wrong_pin_count_panics() {
        let mut lib = Library::new("test", Voltage::from_volts(5.0));
        lib.insert(CellKind::Nand2, CellTiming::uniform(1, spec(0.5)));
    }

    #[test]
    fn defaults_are_sane_and_settable() {
        let mut lib = Library::new("test", Voltage::from_volts(3.3));
        assert!(lib.default_input_slew() > TimeDelta::ZERO);
        lib.set_default_input_slew(TimeDelta::from_ps(500.0));
        assert_eq!(lib.default_input_slew(), TimeDelta::from_ps(500.0));
        lib.set_wire_capacitance(Capacitance::from_femtofarads(3.0));
        assert_eq!(lib.wire_capacitance(), Capacitance::from_femtofarads(3.0));
        assert_eq!(lib.vdd(), Voltage::from_volts(3.3));
        let errors = format!(
            "{} / {}",
            LibraryError::MissingCell {
                kind: CellKind::Xor2
            },
            LibraryError::MissingPin {
                kind: CellKind::Xor2,
                pin: 5
            }
        );
        assert!(errors.contains("no cell xor2") && errors.contains("no input pin 5"));
    }
}
