//! The circuit graph: gates, nets and their connectivity.
//!
//! A [`Netlist`] is a flat, index-addressed combinational circuit.  Nets are
//! driven either by a primary input or by exactly one gate output, and fan
//! out to any number of gate input pins ([`PinRef`]).  The structure mirrors
//! the paper's Fig. 2 class diagram: the netlist owns the gates and their
//! input pins, and the simulator attaches transitions to nets and events to
//! pins.
//!
//! Netlists are created through [`NetlistBuilder`], which checks structural
//! well-formedness (single driver per net, correct gate arity, no
//! combinational loops) before releasing the immutable [`Netlist`].

use std::collections::HashMap;
use std::fmt;

use halotis_core::{Capacitance, GateId, NetId, PinRef};

use crate::cell::CellKind;
use crate::library::{Library, LibraryError};

/// What drives a net.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetDriver {
    /// The net is a primary input of the circuit.
    PrimaryInput,
    /// The net is driven by the output of this gate.
    Gate(GateId),
}

/// One gate instance.
#[derive(Clone, Debug, PartialEq)]
pub struct Gate {
    pub(crate) id: GateId,
    pub(crate) name: String,
    pub(crate) kind: CellKind,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) output: NetId,
    pub(crate) threshold_overrides: Option<Vec<f64>>,
}

impl Gate {
    /// The gate's identifier.
    pub fn id(&self) -> GateId {
        self.id
    }

    /// The instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell kind.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// The nets connected to the input pins, in pin order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The net driven by the gate output.
    pub fn output(&self) -> NetId {
        self.output
    }

    /// Per-pin input-threshold overrides (fractions of `Vdd`), if any.
    ///
    /// Overrides let a specific *instance* deviate from the library
    /// characterisation — the mechanism used to build the paper's Fig. 1
    /// circuit, where two inverters on the same net have different `VT`.
    pub fn threshold_overrides(&self) -> Option<&[f64]> {
        self.threshold_overrides.as_deref()
    }
}

/// One net (signal).
#[derive(Clone, Debug, PartialEq)]
pub struct Net {
    pub(crate) id: NetId,
    pub(crate) name: String,
    pub(crate) driver: NetDriver,
    pub(crate) loads: Vec<PinRef>,
    pub(crate) is_primary_output: bool,
}

impl Net {
    /// The net's identifier.
    pub fn id(&self) -> NetId {
        self.id
    }

    /// The net name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// What drives the net.
    pub fn driver(&self) -> NetDriver {
        self.driver
    }

    /// The gate input pins this net fans out to.
    pub fn loads(&self) -> &[PinRef] {
        &self.loads
    }

    /// `true` when the net is a primary output of the circuit.
    pub fn is_primary_output(&self) -> bool {
        self.is_primary_output
    }

    /// `true` when the net is a primary input of the circuit.
    pub fn is_primary_input(&self) -> bool {
        matches!(self.driver, NetDriver::PrimaryInput)
    }
}

/// Returns `true` when the driver of `net` is a primary input — convenient
/// for distinguishing stimulus transitions from gate activity (e.g. when
/// attributing switching counts in tests and reports).
///
/// # Example
///
/// ```
/// use halotis_netlist::{generators, is_primary_input_net};
///
/// let netlist = generators::inverter_chain(2);
/// assert!(is_primary_input_net(&netlist, netlist.net_id("in").unwrap()));
/// assert!(!is_primary_input_net(&netlist, netlist.net_id("out").unwrap()));
/// ```
pub fn is_primary_input_net(netlist: &Netlist, net: NetId) -> bool {
    netlist.net(net).is_primary_input()
}

/// Errors detected while constructing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// Two nets were declared with the same name.
    DuplicateNet {
        /// The clashing name.
        name: String,
    },
    /// A gate was connected with the wrong number of inputs.
    ArityMismatch {
        /// The gate instance name.
        gate: String,
        /// The cell kind.
        kind: CellKind,
        /// Inputs supplied.
        provided: usize,
    },
    /// A net already has a driver and a second one was connected.
    MultipleDrivers {
        /// The net name.
        net: String,
    },
    /// A net has loads (or is a primary output) but nothing drives it.
    UndrivenNet {
        /// The net name.
        net: String,
    },
    /// The circuit contains a combinational feedback loop.
    CombinationalLoop {
        /// The name of one gate on the loop.
        gate: String,
    },
    /// A per-instance threshold override list has the wrong length.
    ThresholdOverrideArity {
        /// The gate instance name.
        gate: String,
        /// Overrides supplied.
        provided: usize,
        /// Inputs of the cell.
        required: usize,
    },
    /// A gate whose output net still has loads (or is a primary output)
    /// cannot be removed — it would leave floating fanin pins.
    GateInUse {
        /// The gate instance name.
        gate: String,
    },
    /// A primary input cannot double as a primary output (the structural
    /// text format has no representation for a pass-through port).
    ExposedPrimaryInput {
        /// The net name.
        net: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateNet { name } => write!(f, "duplicate net name: {name}"),
            NetlistError::ArityMismatch {
                gate,
                kind,
                provided,
            } => write!(
                f,
                "gate {gate}: cell {kind} expects {} inputs, got {provided}",
                kind.input_count()
            ),
            NetlistError::MultipleDrivers { net } => {
                write!(f, "net {net} is driven more than once")
            }
            NetlistError::UndrivenNet { net } => write!(f, "net {net} has no driver"),
            NetlistError::CombinationalLoop { gate } => {
                write!(f, "combinational loop through gate {gate}")
            }
            NetlistError::ThresholdOverrideArity {
                gate,
                provided,
                required,
            } => write!(
                f,
                "gate {gate}: {provided} threshold overrides for {required} inputs"
            ),
            NetlistError::GateInUse { gate } => {
                write!(f, "gate {gate} still drives fanout or a primary output")
            }
            NetlistError::ExposedPrimaryInput { net } => {
                write!(f, "primary input {net} cannot be exposed as an output")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// An immutable, validated combinational circuit.
///
/// # Example
///
/// ```
/// use halotis_netlist::{CellKind, NetlistBuilder};
///
/// let mut builder = NetlistBuilder::new("half_adder");
/// let a = builder.add_input("a");
/// let b = builder.add_input("b");
/// let sum = builder.add_net("sum");
/// let carry = builder.add_net("carry");
/// builder.add_gate(CellKind::Xor2, "gx", &[a, b], sum)?;
/// builder.add_gate(CellKind::And2, "ga", &[a, b], carry)?;
/// builder.mark_output(sum);
/// builder.mark_output(carry);
/// let netlist = builder.build()?;
/// assert_eq!(netlist.gate_count(), 2);
/// assert_eq!(netlist.primary_inputs().len(), 2);
/// # Ok::<(), halotis_netlist::NetlistError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) gates: Vec<Gate>,
    pub(crate) nets: Vec<Net>,
    pub(crate) primary_inputs: Vec<NetId>,
    pub(crate) primary_outputs: Vec<NetId>,
    pub(crate) names: HashMap<String, NetId>,
}

impl Netlist {
    /// The circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of gate instances.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// All gates, indexed by [`GateId`].
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// All nets, indexed by [`NetId`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The gate with the given id.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// The net with the given id.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Looks up a net by name.
    pub fn net_id(&self, name: &str) -> Option<NetId> {
        self.names.get(name).copied()
    }

    /// The primary-input nets, in declaration order.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// The primary-output nets, in declaration order.
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    /// The net connected to a gate input pin.
    pub fn pin_net(&self, pin: PinRef) -> NetId {
        self.gate(pin.gate()).inputs()[pin.input_index()]
    }

    /// The capacitive load seen by the driver of `net`: the sum of the input
    /// capacitances of every fanout pin plus the library's per-net wire
    /// capacitance.
    ///
    /// # Errors
    ///
    /// Returns a [`LibraryError`] if a fanout cell is not characterised.
    pub fn net_load(&self, net: NetId, library: &Library) -> Result<Capacitance, LibraryError> {
        let mut total = library.wire_capacitance();
        for pin in self.net(net).loads() {
            let kind = self.gate(pin.gate()).kind();
            total += library.pin(kind, pin.input_index())?.input_capacitance;
        }
        Ok(total)
    }

    /// The input-threshold fraction of a gate input pin: the per-instance
    /// override when present, otherwise the library characterisation.
    ///
    /// # Errors
    ///
    /// Returns a [`LibraryError`] if the cell is not characterised.
    pub fn input_threshold_fraction(
        &self,
        pin: PinRef,
        library: &Library,
    ) -> Result<f64, LibraryError> {
        let gate = self.gate(pin.gate());
        if let Some(overrides) = gate.threshold_overrides() {
            if let Some(&fraction) = overrides.get(pin.input_index()) {
                return Ok(fraction);
            }
        }
        Ok(library
            .pin(gate.kind(), pin.input_index())?
            .threshold_fraction)
    }

    /// Opens an edit session on this netlist — the mutation API of the ECO
    /// loop.  See [`EditSession`](crate::edit::EditSession) for the available
    /// operations; [`finish`](crate::edit::EditSession::finish) returns the
    /// [`EditLog`](crate::edit::EditLog) that
    /// `CompiledCircuit::apply_edits` consumes to patch its tables
    /// incrementally.
    pub fn begin_edit(&mut self) -> crate::edit::EditSession<'_> {
        crate::edit::EditSession::new(self)
    }

    /// Gate count per cell kind, sorted by kind — the circuit statistics
    /// reported by the experiment harness.
    pub fn gate_histogram(&self) -> Vec<(CellKind, usize)> {
        let mut histogram: HashMap<CellKind, usize> = HashMap::new();
        for gate in &self.gates {
            *histogram.entry(gate.kind()).or_insert(0) += 1;
        }
        let mut counts: Vec<(CellKind, usize)> = histogram.into_iter().collect();
        counts.sort_by_key(|&(kind, _)| kind);
        counts
    }
}

/// Incremental netlist constructor.
#[derive(Clone, Debug)]
pub struct NetlistBuilder {
    name: String,
    gates: Vec<Gate>,
    nets: Vec<Net>,
    names: HashMap<String, NetId>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
}

impl NetlistBuilder {
    /// Starts building a circuit called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            gates: Vec::new(),
            nets: Vec::new(),
            names: HashMap::new(),
            primary_inputs: Vec::new(),
            primary_outputs: Vec::new(),
        }
    }

    fn new_net(&mut self, name: String, driver: NetDriver) -> NetId {
        let id = NetId::from_usize(self.nets.len());
        self.nets.push(Net {
            id,
            name: name.clone(),
            driver,
            loads: Vec::new(),
            is_primary_output: false,
        });
        self.names.insert(name, id);
        id
    }

    /// Declares a primary input and returns its net.
    ///
    /// Declaring the same input name twice returns the existing net.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        if let Some(&id) = self.names.get(&name) {
            return id;
        }
        let id = self.new_net(name, NetDriver::PrimaryInput);
        self.primary_inputs.push(id);
        id
    }

    /// Declares (or retrieves) an internal net by name.  The net has no
    /// driver until a gate output is connected to it.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        if let Some(&id) = self.names.get(&name) {
            return id;
        }
        // Temporarily mark as primary input-less; the driver is patched when a
        // gate output connects.  Undriven nets are rejected in `build`.
        let id = NetId::from_usize(self.nets.len());
        self.nets.push(Net {
            id,
            name: name.clone(),
            driver: NetDriver::Gate(GateId::new(u32::MAX)),
            loads: Vec::new(),
            is_primary_output: false,
        });
        self.names.insert(name, id);
        id
    }

    /// `true` when a net with this name exists.
    pub fn contains_net(&self, name: &str) -> bool {
        self.names.contains_key(name)
    }

    /// Marks a net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        let slot = &mut self.nets[net.index()];
        if !slot.is_primary_output {
            slot.is_primary_output = true;
            self.primary_outputs.push(net);
        }
    }

    /// Adds a gate instance.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] when the number of inputs does
    /// not match the cell, or [`NetlistError::MultipleDrivers`] when the
    /// output net is already driven.
    pub fn add_gate(
        &mut self,
        kind: CellKind,
        name: impl Into<String>,
        inputs: &[NetId],
        output: NetId,
    ) -> Result<GateId, NetlistError> {
        self.add_gate_inner(kind, name.into(), inputs, output, None)
    }

    /// Adds a gate instance with per-pin input-threshold overrides
    /// (fractions of `Vdd`).
    ///
    /// # Errors
    ///
    /// As [`add_gate`](Self::add_gate), plus
    /// [`NetlistError::ThresholdOverrideArity`] when the override list length
    /// does not match the cell's input count.
    pub fn add_gate_with_thresholds(
        &mut self,
        kind: CellKind,
        name: impl Into<String>,
        inputs: &[NetId],
        output: NetId,
        thresholds: &[f64],
    ) -> Result<GateId, NetlistError> {
        let name = name.into();
        if thresholds.len() != kind.input_count() {
            return Err(NetlistError::ThresholdOverrideArity {
                gate: name,
                provided: thresholds.len(),
                required: kind.input_count(),
            });
        }
        self.add_gate_inner(kind, name, inputs, output, Some(thresholds.to_vec()))
    }

    fn add_gate_inner(
        &mut self,
        kind: CellKind,
        name: String,
        inputs: &[NetId],
        output: NetId,
        thresholds: Option<Vec<f64>>,
    ) -> Result<GateId, NetlistError> {
        if inputs.len() != kind.input_count() {
            return Err(NetlistError::ArityMismatch {
                gate: name,
                kind,
                provided: inputs.len(),
            });
        }
        let out_net = &mut self.nets[output.index()];
        match out_net.driver {
            NetDriver::PrimaryInput => {
                return Err(NetlistError::MultipleDrivers {
                    net: out_net.name.clone(),
                })
            }
            NetDriver::Gate(existing) if existing != GateId::new(u32::MAX) => {
                return Err(NetlistError::MultipleDrivers {
                    net: out_net.name.clone(),
                })
            }
            NetDriver::Gate(_) => {}
        }
        let id = GateId::from_usize(self.gates.len());
        out_net.driver = NetDriver::Gate(id);
        for (index, &input) in inputs.iter().enumerate() {
            self.nets[input.index()]
                .loads
                .push(PinRef::new(id, index as u32));
        }
        self.gates.push(Gate {
            id,
            name,
            kind,
            inputs: inputs.to_vec(),
            output,
            threshold_overrides: thresholds,
        });
        Ok(id)
    }

    /// Finalises the netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UndrivenNet`] for nets that are used but never
    /// driven, and [`NetlistError::CombinationalLoop`] when the gate graph is
    /// cyclic.
    pub fn build(self) -> Result<Netlist, NetlistError> {
        // Undriven nets: the add_net placeholder driver is a sentinel GateId.
        for net in &self.nets {
            if let NetDriver::Gate(id) = net.driver {
                if id == GateId::new(u32::MAX) {
                    return Err(NetlistError::UndrivenNet {
                        net: net.name.clone(),
                    });
                }
            }
        }
        // Cycle detection: Kahn's algorithm over gate dependencies.
        // Sequential gates break the graph at both ends — their stored
        // output does not combinationally depend on their inputs — so
        // register feedback loops are legal and only register-free cycles
        // are rejected.
        let mut in_degree: Vec<usize> = self
            .gates
            .iter()
            .map(|gate| {
                if gate.kind.is_sequential() {
                    return 0;
                }
                gate.inputs
                    .iter()
                    .filter(|&&net| match self.nets[net.index()].driver {
                        NetDriver::Gate(driver) => !self.gates[driver.index()].kind.is_sequential(),
                        NetDriver::PrimaryInput => false,
                    })
                    .count()
            })
            .collect();
        let mut ready: Vec<usize> = in_degree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut visited = 0usize;
        while let Some(index) = ready.pop() {
            visited += 1;
            if self.gates[index].kind.is_sequential() {
                // A register's fanout edges were never counted above.
                continue;
            }
            let output = self.gates[index].output;
            for pin in self.nets[output.index()].loads.iter() {
                let successor = pin.gate().index();
                if self.gates[successor].kind.is_sequential() {
                    continue;
                }
                in_degree[successor] -= 1;
                if in_degree[successor] == 0 {
                    ready.push(successor);
                }
            }
        }
        if visited != self.gates.len() {
            let culprit = in_degree
                .iter()
                .position(|&d| d > 0)
                .map(|i| self.gates[i].name.clone())
                .unwrap_or_default();
            return Err(NetlistError::CombinationalLoop { gate: culprit });
        }
        Ok(Netlist {
            name: self.name,
            gates: self.gates,
            nets: self.nets,
            primary_inputs: self.primary_inputs,
            primary_outputs: self.primary_outputs,
            names: self.names,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technology;

    fn half_adder() -> Netlist {
        let mut builder = NetlistBuilder::new("half_adder");
        let a = builder.add_input("a");
        let b = builder.add_input("b");
        let sum = builder.add_net("sum");
        let carry = builder.add_net("carry");
        builder
            .add_gate(CellKind::Xor2, "gx", &[a, b], sum)
            .unwrap();
        builder
            .add_gate(CellKind::And2, "ga", &[a, b], carry)
            .unwrap();
        builder.mark_output(sum);
        builder.mark_output(carry);
        builder.build().unwrap()
    }

    #[test]
    fn builder_produces_connected_netlist() {
        let netlist = half_adder();
        assert_eq!(netlist.name(), "half_adder");
        assert_eq!(netlist.gate_count(), 2);
        assert_eq!(netlist.net_count(), 4);
        assert_eq!(netlist.primary_inputs().len(), 2);
        assert_eq!(netlist.primary_outputs().len(), 2);
        let a = netlist.net_id("a").unwrap();
        assert!(netlist.net(a).is_primary_input());
        assert_eq!(netlist.net(a).loads().len(), 2);
        let sum = netlist.net_id("sum").unwrap();
        assert!(netlist.net(sum).is_primary_output());
        match netlist.net(sum).driver() {
            NetDriver::Gate(id) => assert_eq!(netlist.gate(id).name(), "gx"),
            other => panic!("unexpected driver {other:?}"),
        }
    }

    #[test]
    fn pin_net_maps_back_to_input() {
        let netlist = half_adder();
        let gx = netlist
            .gates()
            .iter()
            .find(|g| g.name() == "gx")
            .unwrap()
            .id();
        let pin = PinRef::new(gx, 1);
        assert_eq!(netlist.pin_net(pin), netlist.net_id("b").unwrap());
    }

    #[test]
    fn net_load_sums_fanout_capacitances() {
        let netlist = half_adder();
        let library = technology::cmos06();
        let a = netlist.net_id("a").unwrap();
        let load = netlist.net_load(a, &library).unwrap();
        let expected = library.wire_capacitance()
            + library.pin(CellKind::Xor2, 0).unwrap().input_capacitance
            + library.pin(CellKind::And2, 0).unwrap().input_capacitance;
        assert!((load.as_femtofarads() - expected.as_femtofarads()).abs() < 1e-9);
        // An output net with no fanout only sees the wire capacitance.
        let sum = netlist.net_id("sum").unwrap();
        assert_eq!(
            netlist.net_load(sum, &library).unwrap(),
            library.wire_capacitance()
        );
    }

    #[test]
    fn threshold_overrides_take_precedence() {
        let mut builder = NetlistBuilder::new("override");
        let a = builder.add_input("a");
        let y = builder.add_net("y");
        let z = builder.add_net("z");
        builder
            .add_gate_with_thresholds(CellKind::Inv, "low_vt", &[a], y, &[0.3])
            .unwrap();
        builder.add_gate(CellKind::Inv, "plain", &[y], z).unwrap();
        builder.mark_output(z);
        let netlist = builder.build().unwrap();
        let library = technology::cmos06();
        let low_vt = netlist
            .gates()
            .iter()
            .find(|g| g.name() == "low_vt")
            .unwrap()
            .id();
        let plain = netlist
            .gates()
            .iter()
            .find(|g| g.name() == "plain")
            .unwrap()
            .id();
        assert_eq!(
            netlist
                .input_threshold_fraction(PinRef::new(low_vt, 0), &library)
                .unwrap(),
            0.3
        );
        let default = library.pin(CellKind::Inv, 0).unwrap().threshold_fraction;
        assert_eq!(
            netlist
                .input_threshold_fraction(PinRef::new(plain, 0), &library)
                .unwrap(),
            default
        );
    }

    #[test]
    fn arity_and_driver_errors() {
        let mut builder = NetlistBuilder::new("bad");
        let a = builder.add_input("a");
        let y = builder.add_net("y");
        let err = builder.add_gate(CellKind::Nand2, "g", &[a], y).unwrap_err();
        assert!(matches!(err, NetlistError::ArityMismatch { .. }));
        builder.add_gate(CellKind::Inv, "g1", &[a], y).unwrap();
        let err = builder.add_gate(CellKind::Inv, "g2", &[a], y).unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers { .. }));
        let err = builder.add_gate(CellKind::Inv, "g3", &[y], a).unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers { .. }));
        let scratch = builder.add_net("scratch");
        let err = builder
            .add_gate_with_thresholds(CellKind::Nand2, "g4", &[a, y], scratch, &[0.5])
            .unwrap_err();
        assert!(matches!(err, NetlistError::ThresholdOverrideArity { .. }));
    }

    #[test]
    fn undriven_net_is_rejected() {
        let mut builder = NetlistBuilder::new("undriven");
        let a = builder.add_input("a");
        let floating = builder.add_net("floating");
        let y = builder.add_net("y");
        builder
            .add_gate(CellKind::And2, "g", &[a, floating], y)
            .unwrap();
        builder.mark_output(y);
        let err = builder.build().unwrap_err();
        assert_eq!(
            err,
            NetlistError::UndrivenNet {
                net: "floating".to_string()
            }
        );
    }

    #[test]
    fn combinational_loop_is_rejected() {
        let mut builder = NetlistBuilder::new("loop");
        let a = builder.add_input("a");
        let x = builder.add_net("x");
        let y = builder.add_net("y");
        builder.add_gate(CellKind::Nand2, "g1", &[a, y], x).unwrap();
        builder.add_gate(CellKind::Inv, "g2", &[x], y).unwrap();
        let err = builder.build().unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalLoop { .. }));
    }

    #[test]
    fn duplicate_declarations_are_idempotent() {
        let mut builder = NetlistBuilder::new("dup");
        let a1 = builder.add_input("a");
        let a2 = builder.add_input("a");
        assert_eq!(a1, a2);
        let n1 = builder.add_net("n");
        let n2 = builder.add_net("n");
        assert_eq!(n1, n2);
        assert!(builder.contains_net("a"));
        builder.add_gate(CellKind::Inv, "g", &[a1], n1).unwrap();
        builder.mark_output(n1);
        builder.mark_output(n1); // second call is a no-op
        let netlist = builder.build().unwrap();
        assert_eq!(netlist.primary_outputs().len(), 1);
    }

    #[test]
    fn histogram_counts_cell_kinds() {
        let netlist = half_adder();
        let histogram = netlist.gate_histogram();
        assert_eq!(histogram, vec![(CellKind::And2, 1), (CellKind::Xor2, 1)]);
    }

    #[test]
    fn error_messages_are_descriptive() {
        let messages = [
            NetlistError::DuplicateNet { name: "n".into() }.to_string(),
            NetlistError::UndrivenNet { net: "x".into() }.to_string(),
            NetlistError::CombinationalLoop { gate: "g".into() }.to_string(),
            NetlistError::MultipleDrivers { net: "y".into() }.to_string(),
        ];
        assert!(messages[0].contains("duplicate net"));
        assert!(messages[1].contains("no driver"));
        assert!(messages[2].contains("loop"));
        assert!(messages[3].contains("driven more than once"));
    }
}
