//! Writer for the structural netlist text format (the inverse of [`parser`]).
//!
//! [`parser`]: crate::parser

use std::fmt::Write as _;

use crate::netlist::Netlist;

/// Serialises a netlist into the text format accepted by
/// [`parser::parse`](crate::parser::parse).
///
/// The emitted `wire` lines pin the [`NetId`](halotis_core::NetId)
/// numbering, making the round trip the **identity**: `parse(to_text(n))`
/// reconstructs `n` exactly — same gate and net ids, load order and
/// primary-port order — so a compile of the reparsed netlist schedules the
/// identical event sequence (the serve daemon's bit-identity depends on
/// this).
///
/// # Example
///
/// ```
/// use halotis_netlist::{generators, parser, writer};
///
/// let original = generators::inverter_chain(3);
/// let text = writer::to_text(&original);
/// let reparsed = parser::parse(&text)?;
/// assert_eq!(reparsed, original);
/// # Ok::<(), halotis_netlist::parser::ParseError>(())
/// ```
pub fn to_text(netlist: &Netlist) -> String {
    let mut out = String::new();
    writeln!(out, "circuit {}", netlist.name()).expect("writing to String cannot fail");

    if !netlist.primary_inputs().is_empty() {
        let names: Vec<&str> = netlist
            .primary_inputs()
            .iter()
            .map(|&id| netlist.net(id).name())
            .collect();
        writeln!(out, "input {}", names.join(" ")).expect("writing to String cannot fail");
    }
    for chunk in netlist.nets().chunks(16) {
        let names: Vec<&str> = chunk.iter().map(|net| net.name()).collect();
        writeln!(out, "wire {}", names.join(" ")).expect("writing to String cannot fail");
    }
    if !netlist.primary_outputs().is_empty() {
        let names: Vec<&str> = netlist
            .primary_outputs()
            .iter()
            .map(|&id| netlist.net(id).name())
            .collect();
        writeln!(out, "output {}", names.join(" ")).expect("writing to String cannot fail");
    }

    for gate in netlist.gates() {
        let inputs: Vec<&str> = gate
            .inputs()
            .iter()
            .map(|&id| netlist.net(id).name())
            .collect();
        let mut line = format!(
            "gate {} {} {} -> {}",
            gate.kind(),
            gate.name(),
            inputs.join(" "),
            netlist.net(gate.output()).name()
        );
        if let Some(overrides) = gate.threshold_overrides() {
            let list: Vec<String> = overrides.iter().map(|f| format!("{f}")).collect();
            line.push_str(&format!(" vt={}", list.join(",")));
        }
        writeln!(out, "{line}").expect("writing to String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use crate::netlist::NetlistBuilder;
    use crate::parser;

    fn circuit_with_overrides() -> Netlist {
        let mut builder = NetlistBuilder::new("override");
        let a = builder.add_input("a");
        let y = builder.add_net("y");
        let z = builder.add_net("z");
        builder
            .add_gate_with_thresholds(CellKind::Inv, "g1", &[a], y, &[0.35])
            .unwrap();
        builder.add_gate(CellKind::Inv, "g2", &[y], z).unwrap();
        builder.mark_output(z);
        builder.build().unwrap()
    }

    #[test]
    fn output_contains_all_sections() {
        let text = to_text(&circuit_with_overrides());
        assert!(text.contains("circuit override"));
        assert!(text.contains("input a"));
        assert!(text.contains("output z"));
        assert!(text.contains("gate inv g1 a -> y vt=0.35"));
        assert!(text.contains("gate inv g2 y -> z"));
    }

    #[test]
    fn round_trip_preserves_structure() {
        let original = circuit_with_overrides();
        let reparsed = parser::parse(&to_text(&original)).unwrap();
        assert_eq!(reparsed.name(), original.name());
        assert_eq!(reparsed.gate_count(), original.gate_count());
        assert_eq!(reparsed.net_count(), original.net_count());
        assert_eq!(
            reparsed.primary_outputs().len(),
            original.primary_outputs().len()
        );
        let g1 = reparsed.gates().iter().find(|g| g.name() == "g1").unwrap();
        assert_eq!(g1.threshold_overrides(), Some(&[0.35][..]));
    }
}
