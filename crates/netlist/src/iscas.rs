//! ISCAS-85 benchmark circuits, committed as netlist files.
//!
//! The corpus needs circuits that arrive through the *text format* rather
//! than a generator — that is how real benchmark suites enter a simulator —
//! so this module pairs committed netlist files under `circuits/` with
//! loader functions that run them through [`parser::parse`].
//!
//! The original ISCAS-85 gate-level distributions are not vendored in this
//! repository, so `c432.net` and `c880.net` are **functional
//! reconstructions** built from the benchmarks' published high-level
//! descriptions (Hansen, Yalcin & Hayes, "Unveiling the ISCAS-85
//! benchmarks", IEEE Design & Test 1999): c432 as a 27-channel interrupt
//! controller, c880 as an 8-bit ALU.  The primary-input/-output profiles
//! match the originals exactly (c432: 36 in / 7 out; c880: 60 in / 26 out);
//! gate counts are of the same order but not gate-for-gate identical.  Each
//! committed file is rendered from a reconstruction function in this module
//! ([`reconstruct_c432`] / [`reconstruct_c880`]) and a test pins the file to
//! its generator byte-for-byte, so the text, the loader and the builder can
//! never drift apart.
//!
//! (The tiny c17 — six NAND gates — is genuinely the original netlist and
//! lives in [`generators::c17`](crate::generators::c17).)
//!
//! The module also carries the first ISCAS-**89** sequential benchmark:
//! `s27.net` is the original published netlist gate for gate (three DFFs
//! and ten combinational gates), with the implicit clock made explicit as
//! the **first** primary input `clk` — the convention every clocked corpus
//! suite follows.  [`s27_reference_step`] is the cycle-accurate integer
//! reference model the differential tests evolve alongside the timing
//! simulation.

use halotis_core::NetId;

use crate::cell::CellKind;
use crate::netlist::{Netlist, NetlistBuilder};
use crate::parser;

/// The committed c432 netlist text (rendered from [`reconstruct_c432`]).
pub const C432_TEXT: &str = include_str!("../circuits/c432.net");

/// The committed c880 netlist text (rendered from [`reconstruct_c880`]).
pub const C880_TEXT: &str = include_str!("../circuits/c880.net");

/// Loads the committed c432 benchmark through the netlist parser.
///
/// # Example
///
/// ```
/// let c432 = halotis_netlist::iscas::c432();
/// assert_eq!(c432.primary_inputs().len(), 36);
/// assert_eq!(c432.primary_outputs().len(), 7);
/// ```
pub fn c432() -> Netlist {
    parser::parse(C432_TEXT).expect("committed c432.net parses")
}

/// Loads the committed c880 benchmark through the netlist parser.
///
/// # Example
///
/// ```
/// let c880 = halotis_netlist::iscas::c880();
/// assert_eq!(c880.primary_inputs().len(), 60);
/// assert_eq!(c880.primary_outputs().len(), 26);
/// ```
pub fn c880() -> Netlist {
    parser::parse(C880_TEXT).expect("committed c880.net parses")
}

/// The committed s27 netlist text (rendered from [`reconstruct_s27`]).
pub const S27_TEXT: &str = include_str!("../circuits/s27.net");

/// Loads the committed ISCAS-89 s27 benchmark through the netlist parser.
///
/// # Example
///
/// ```
/// let s27 = halotis_netlist::iscas::s27();
/// assert_eq!(s27.primary_inputs().len(), 5); // clk + g0..g3
/// assert_eq!(s27.primary_outputs().len(), 1);
/// ```
pub fn s27() -> Netlist {
    parser::parse(S27_TEXT).expect("committed s27.net parses")
}

/// Builds the s27 benchmark: the original ISCAS-89 netlist with the clock
/// explicit as the first primary input.
///
/// Registers `g5`/`g6`/`g7` capture `g10`/`g11`/`g13` on the rising edge
/// of `clk`; the single output `g17` is the complement of `g11`.
pub fn reconstruct_s27() -> Netlist {
    let mut builder = NetlistBuilder::new("s27");
    let clk = builder.add_input("clk");
    let g0 = builder.add_input("g0");
    let g1 = builder.add_input("g1");
    let g2 = builder.add_input("g2");
    let g3 = builder.add_input("g3");
    let g5 = builder.add_net("g5");
    let g6 = builder.add_net("g6");
    let g7 = builder.add_net("g7");
    let g8 = builder.add_net("g8");
    let g9 = builder.add_net("g9");
    let g10 = builder.add_net("g10");
    let g11 = builder.add_net("g11");
    let g12 = builder.add_net("g12");
    let g13 = builder.add_net("g13");
    let g14 = builder.add_net("g14");
    let g15 = builder.add_net("g15");
    let g16 = builder.add_net("g16");
    let g17 = builder.add_net("g17");
    let gates: [(CellKind, &str, &[NetId], NetId); 13] = [
        (CellKind::Inv, "not14", &[g0], g14),
        (CellKind::Inv, "not17", &[g11], g17),
        (CellKind::And2, "and8", &[g14, g6], g8),
        (CellKind::Or2, "or15", &[g12, g8], g15),
        (CellKind::Or2, "or16", &[g3, g8], g16),
        (CellKind::Nand2, "nand9", &[g16, g15], g9),
        (CellKind::Nor2, "nor10", &[g14, g11], g10),
        (CellKind::Nor2, "nor11", &[g5, g9], g11),
        (CellKind::Nor2, "nor12", &[g1, g7], g12),
        (CellKind::Nor2, "nor13", &[g2, g12], g13),
        (CellKind::Dff, "dff5", &[g10, clk], g5),
        (CellKind::Dff, "dff6", &[g11, clk], g6),
        (CellKind::Dff, "dff7", &[g13, clk], g7),
    ];
    for (kind, instance, inputs, output) in gates {
        builder
            .add_gate(kind, instance, inputs, output)
            .expect("s27 net must be undriven");
    }
    builder.mark_output(g17);
    builder.build().expect("s27 is a valid netlist")
}

/// One clock cycle of the cycle-accurate s27 reference model.
///
/// `state` is the register state `[g5, g6, g7]` at the start of the cycle
/// and `inputs` the data inputs `[g0, g1, g2, g3]`, held stable through
/// the cycle.  Returns the settled value of the primary output `g17`
/// before the next rising edge, and the state that edge captures.  Evolving
/// from the power-up state `[false; 3]` reproduces the timing simulation's
/// per-cycle settled outputs exactly — the executable spec of the
/// sequential differential tests.
pub fn s27_reference_step(state: [bool; 3], inputs: [bool; 4]) -> (bool, [bool; 3]) {
    let [s5, s6, s7] = state;
    let [g0, g1, g2, g3] = inputs;
    let g14 = !g0;
    let g12 = !(g1 || s7);
    let g8 = g14 && s6;
    let g15 = g12 || g8;
    let g16 = g3 || g8;
    let g9 = !(g16 && g15);
    let g11 = !(s5 || g9);
    let g17 = !g11;
    let g10 = !(g14 || g11);
    let g13 = !(g2 || g12);
    (g17, [g10, g11, g13])
}

/// Balanced OR2 reduction over `nets`; the root net is named `root`,
/// intermediate nets `{prefix}{round}_{index}`.
fn or2_fold(builder: &mut NetlistBuilder, nets: &[NetId], prefix: &str, root: &str) -> NetId {
    assert!(nets.len() >= 2, "fold needs at least two nets");
    let mut frontier = nets.to_vec();
    let mut round = 0usize;
    while frontier.len() > 1 {
        let mut next: Vec<NetId> = Vec::with_capacity(frontier.len().div_ceil(2));
        for pair in frontier.chunks(2) {
            match pair {
                [x, y] => {
                    let out = if frontier.len() == 2 {
                        builder.add_net(root)
                    } else {
                        builder.add_net(format!("{prefix}{round}_{}", next.len()))
                    };
                    builder
                        .add_gate(
                            CellKind::Or2,
                            format!("{prefix}or{round}_{}", next.len()),
                            &[*x, *y],
                            out,
                        )
                        .expect("fold net must be undriven");
                    next.push(out);
                }
                [odd] => next.push(*odd),
                _ => unreachable!("chunks(2) yields one or two elements"),
            }
        }
        frontier = next;
        round += 1;
    }
    frontier[0]
}

/// Builds the c432 reconstruction: a 27-channel interrupt controller.
///
/// The 27 request lines arrive as three 9-bit buses `a`, `b`, `c` (bus `a`
/// has the highest priority, `c` the lowest) gated by a 9-bit enable bus
/// `e`.  Outputs:
///
/// * `pa` — some enabled channel on bus `a` requests,
/// * `pb` — no `a` request, but some enabled `b` channel requests,
/// * `pc` — no `a`/`b` request, but some enabled `c` channel requests,
/// * `chan3..chan0` — the 4-bit index (1-based, 0 = idle) of the
///   highest-priority requesting channel within the winning bus.
pub fn reconstruct_c432() -> Netlist {
    let mut builder = NetlistBuilder::new("c432");
    let e: Vec<NetId> = (0..9).map(|i| builder.add_input(format!("e{i}"))).collect();
    let a: Vec<NetId> = (0..9).map(|i| builder.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..9).map(|i| builder.add_input(format!("b{i}"))).collect();
    let c: Vec<NetId> = (0..9).map(|i| builder.add_input(format!("c{i}"))).collect();

    // Input inverter rank (the original also begins by inverting its
    // inputs); AND is then formed as NOR of the complements.
    let invert = |builder: &mut NetlistBuilder, bus: &[NetId], tag: &str| -> Vec<NetId> {
        bus.iter()
            .enumerate()
            .map(|(i, &net)| {
                let out = builder.add_net(format!("n{tag}{i}"));
                builder
                    .add_gate(CellKind::Inv, format!("inv{tag}{i}"), &[net], out)
                    .expect("inverter net must be undriven");
                out
            })
            .collect()
    };
    let ne = invert(&mut builder, &e, "e");
    let na = invert(&mut builder, &a, "a");
    let nb = invert(&mut builder, &b, "b");
    let nc = invert(&mut builder, &c, "c");

    let request =
        |builder: &mut NetlistBuilder, nbus: &[NetId], ne: &[NetId], tag: &str| -> Vec<NetId> {
            (0..9)
                .map(|i| {
                    let out = builder.add_net(format!("req{tag}{i}"));
                    builder
                        .add_gate(
                            CellKind::Nor2,
                            format!("req{tag}nor{i}"),
                            &[nbus[i], ne[i]],
                            out,
                        )
                        .expect("request net must be undriven");
                    out
                })
                .collect()
        };

    // Bus A: requests and the bus-level grant.
    let reqa = request(&mut builder, &na, &ne, "a");
    let anya = or2_fold(&mut builder, &reqa, "fa", "anya");
    let npa = builder.add_net("npa");
    builder
        .add_gate(CellKind::Inv, "invpa", &[anya], npa)
        .expect("mask net must be undriven");

    // Bus B: requests masked by the A grant.
    let reqb = request(&mut builder, &nb, &ne, "b");
    let visb: Vec<NetId> = (0..9)
        .map(|i| {
            let out = builder.add_net(format!("visb{i}"));
            builder
                .add_gate(CellKind::And2, format!("visband{i}"), &[reqb[i], npa], out)
                .expect("masked request net must be undriven");
            out
        })
        .collect();
    let anyb = or2_fold(&mut builder, &visb, "fb", "anyb");
    let nab = builder.add_net("nab");
    builder
        .add_gate(CellKind::Nor2, "norab", &[anya, anyb], nab)
        .expect("mask net must be undriven");

    // Bus C: requests masked by both higher-priority grants.
    let reqc = request(&mut builder, &nc, &ne, "c");
    let visc: Vec<NetId> = (0..9)
        .map(|i| {
            let out = builder.add_net(format!("visc{i}"));
            builder
                .add_gate(CellKind::And2, format!("viscand{i}"), &[reqc[i], nab], out)
                .expect("masked request net must be undriven");
            out
        })
        .collect();
    let anyc = or2_fold(&mut builder, &visc, "fc", "anyc");

    // Bus-grant outputs.
    for (tag, net) in [("pa", anya), ("pb", anyb), ("pc", anyc)] {
        let out = builder.add_net(tag);
        builder
            .add_gate(CellKind::Buf, format!("{tag}buf"), &[net], out)
            .expect("grant output net must be undriven");
        builder.mark_output(out);
    }

    // Winning-bus channel requests (at most one bus contributes).
    let sel: Vec<NetId> = (0..9)
        .map(|i| {
            let out = builder.add_net(format!("sel{i}"));
            builder
                .add_gate(
                    CellKind::Or3,
                    format!("selor{i}"),
                    &[reqa[i], visb[i], visc[i]],
                    out,
                )
                .expect("selected request net must be undriven");
            out
        })
        .collect();

    // Priority-encode the lowest requesting channel: hi_i = any request
    // below i, first_i = sel_i with nothing below.
    let mut hi = sel[0];
    let mut first: Vec<NetId> = vec![sel[0]];
    for i in 1..9 {
        if i > 1 {
            let next = builder.add_net(format!("hi{i}"));
            builder
                .add_gate(CellKind::Or2, format!("hior{i}"), &[hi, sel[i - 1]], next)
                .expect("priority net must be undriven");
            hi = next;
        }
        let nhi = builder.add_net(format!("nhi{i}"));
        builder
            .add_gate(CellKind::Inv, format!("hiinv{i}"), &[hi], nhi)
            .expect("priority net must be undriven");
        let out = builder.add_net(format!("first{i}"));
        builder
            .add_gate(CellKind::And2, format!("firstand{i}"), &[sel[i], nhi], out)
            .expect("priority net must be undriven");
        first.push(out);
    }

    // Binary channel address: channel i carries the 1-based code i + 1.
    for (bit, channels) in [
        (0usize, vec![0usize, 2, 4, 6, 8]),
        (1, vec![1, 2, 5, 6]),
        (2, vec![3, 4, 5, 6]),
        (3, vec![7, 8]),
    ] {
        let nets: Vec<NetId> = channels.iter().map(|&i| first[i]).collect();
        let root = or2_fold(
            &mut builder,
            &nets,
            &format!("ch{bit}"),
            &format!("chan{bit}"),
        );
        builder.mark_output(root);
    }

    builder
        .build()
        .expect("c432 reconstruction is a valid netlist")
}

/// Builds the c880 reconstruction: an 8-bit ALU.
///
/// Buses (all LSB-first): operands `a`, `b` (via enable mask `e` and
/// conditional invert `minv`), second datapath operands `c`, `d`, constant
/// bus `k`, function-select bus `s`, plus `cin`, `mpass` and `tsel`.
///
/// * main adder: `am = a · e`, `bx = b ^ minv`; `sum = am + bx + cin`
///   through a generate/propagate carry chain with a (redundant) AND4
///   group-propagate skip on the carry-out,
/// * `y` bus: `s1 s0` select sum / AND / OR / XOR of `am`,`bx`; `s4`/`s5`
///   rotate the result left by 1 and 2,
/// * `t` bus: `tsel` selects `c + d + cin` or `c - d`; `s2` inverts,
/// * `u` bus: `y` when `mpass` or `y == tmux`, else the constant bus `k`;
///   `s3` inverts,
/// * flags: `cout` (adder carry, `s6` inverts) and `zero`
///   (`y`, `t`, `u` all zero, `s7` inverts).
pub fn reconstruct_c880() -> Netlist {
    let mut builder = NetlistBuilder::new("c880");
    let a: Vec<NetId> = (0..8).map(|i| builder.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..8).map(|i| builder.add_input(format!("b{i}"))).collect();
    let c: Vec<NetId> = (0..8).map(|i| builder.add_input(format!("c{i}"))).collect();
    let d: Vec<NetId> = (0..8).map(|i| builder.add_input(format!("d{i}"))).collect();
    let k: Vec<NetId> = (0..8).map(|i| builder.add_input(format!("k{i}"))).collect();
    let e: Vec<NetId> = (0..8).map(|i| builder.add_input(format!("e{i}"))).collect();
    let s: Vec<NetId> = (0..8).map(|i| builder.add_input(format!("s{i}"))).collect();
    let cin = builder.add_input("cin");
    let minv = builder.add_input("minv");
    let mpass = builder.add_input("mpass");
    let tsel = builder.add_input("tsel");

    let gate2 = |builder: &mut NetlistBuilder,
                 kind: CellKind,
                 name: String,
                 x: NetId,
                 y: NetId,
                 out: &str|
     -> NetId {
        let net = builder.add_net(out);
        builder
            .add_gate(kind, name, &[x, y], net)
            .expect("c880 internal net must be undriven");
        net
    };

    // Operand preparation.
    let am: Vec<NetId> = (0..8)
        .map(|i| {
            gate2(
                &mut builder,
                CellKind::And2,
                format!("amand{i}"),
                a[i],
                e[i],
                &format!("am{i}"),
            )
        })
        .collect();
    let bx: Vec<NetId> = (0..8)
        .map(|i| {
            gate2(
                &mut builder,
                CellKind::Xor2,
                format!("bxxor{i}"),
                b[i],
                minv,
                &format!("bx{i}"),
            )
        })
        .collect();

    // Main adder: generate/propagate + carry chain.
    let p: Vec<NetId> = (0..8)
        .map(|i| {
            gate2(
                &mut builder,
                CellKind::Xor2,
                format!("pxor{i}"),
                am[i],
                bx[i],
                &format!("p{i}"),
            )
        })
        .collect();
    let g: Vec<NetId> = (0..8)
        .map(|i| {
            gate2(
                &mut builder,
                CellKind::And2,
                format!("gand{i}"),
                am[i],
                bx[i],
                &format!("g{i}"),
            )
        })
        .collect();
    let mut carries: Vec<NetId> = vec![cin];
    for i in 0..8 {
        let t = gate2(
            &mut builder,
            CellKind::And2,
            format!("ctand{i}"),
            p[i],
            carries[i],
            &format!("ct{i}"),
        );
        let next = gate2(
            &mut builder,
            CellKind::Or2,
            format!("ccor{i}"),
            g[i],
            t,
            &format!("cc{}", i + 1),
        );
        carries.push(next);
    }
    let sum: Vec<NetId> = (0..8)
        .map(|i| {
            gate2(
                &mut builder,
                CellKind::Xor2,
                format!("sumxor{i}"),
                p[i],
                carries[i],
                &format!("sum{i}"),
            )
        })
        .collect();
    // Redundant group-propagate skip on the carry-out (adds the lookahead
    // texture of the original without changing the function: if every bit
    // propagates, the rippled carry already equals cin).
    let bp0 = builder.add_net("bp0");
    builder
        .add_gate(CellKind::And4, "bpand0", &[p[0], p[1], p[2], p[3]], bp0)
        .expect("skip net must be undriven");
    let bp1 = builder.add_net("bp1");
    builder
        .add_gate(CellKind::And4, "bpand1", &[p[4], p[5], p[6], p[7]], bp1)
        .expect("skip net must be undriven");
    let bigp = gate2(
        &mut builder,
        CellKind::And2,
        "bigpand".into(),
        bp0,
        bp1,
        "bigp",
    );
    let skp = gate2(
        &mut builder,
        CellKind::And2,
        "skpand".into(),
        bigp,
        cin,
        "skp",
    );
    let cout_carry = gate2(
        &mut builder,
        CellKind::Or2,
        "coutor".into(),
        carries[8],
        skp,
        "carry8",
    );

    // Logic unit: AND and XOR reuse the adder's g/p rank, OR is its own.
    let orx: Vec<NetId> = (0..8)
        .map(|i| {
            gate2(
                &mut builder,
                CellKind::Or2,
                format!("orxor{i}"),
                am[i],
                bx[i],
                &format!("orx{i}"),
            )
        })
        .collect();

    // 2-to-4 function decode from s0/s1.
    let ns0 = builder.add_net("ns0");
    builder
        .add_gate(CellKind::Inv, "invs0", &[s[0]], ns0)
        .expect("decode net must be undriven");
    let ns1 = builder.add_net("ns1");
    builder
        .add_gate(CellKind::Inv, "invs1", &[s[1]], ns1)
        .expect("decode net must be undriven");
    let m00 = gate2(
        &mut builder,
        CellKind::And2,
        "decand00".into(),
        ns0,
        ns1,
        "m00",
    );
    let m01 = gate2(
        &mut builder,
        CellKind::And2,
        "decand01".into(),
        s[0],
        ns1,
        "m01",
    );
    let m10 = gate2(
        &mut builder,
        CellKind::And2,
        "decand10".into(),
        ns0,
        s[1],
        "m10",
    );
    let m11 = gate2(
        &mut builder,
        CellKind::And2,
        "decand11".into(),
        s[0],
        s[1],
        "m11",
    );

    // Y bus: 4:1 function mux per bit through an OR4.
    let ymux: Vec<NetId> = (0..8)
        .map(|i| {
            let t0 = gate2(
                &mut builder,
                CellKind::And2,
                format!("ym0and{i}"),
                m00,
                sum[i],
                &format!("ym0_{i}"),
            );
            let t1 = gate2(
                &mut builder,
                CellKind::And2,
                format!("ym1and{i}"),
                m01,
                g[i],
                &format!("ym1_{i}"),
            );
            let t2 = gate2(
                &mut builder,
                CellKind::And2,
                format!("ym2and{i}"),
                m10,
                orx[i],
                &format!("ym2_{i}"),
            );
            let t3 = gate2(
                &mut builder,
                CellKind::And2,
                format!("ym3and{i}"),
                m11,
                p[i],
                &format!("ym3_{i}"),
            );
            let out = builder.add_net(format!("ymux{i}"));
            builder
                .add_gate(CellKind::Or4, format!("ymor{i}"), &[t0, t1, t2, t3], out)
                .expect("mux net must be undriven");
            out
        })
        .collect();

    // Rotate-left stages: by 1 under s4, by 2 under s5.
    let rotate = |builder: &mut NetlistBuilder,
                  bus: &[NetId],
                  select: NetId,
                  by: usize,
                  tag: &str|
     -> Vec<NetId> {
        let nsel = builder.add_net(format!("n{tag}"));
        builder
            .add_gate(CellKind::Inv, format!("inv{tag}"), &[select], nsel)
            .expect("rotate net must be undriven");
        (0..8)
            .map(|i| {
                let stay = gate2(
                    builder,
                    CellKind::And2,
                    format!("{tag}sand{i}"),
                    bus[i],
                    nsel,
                    &format!("{tag}s{i}"),
                );
                let moved = gate2(
                    builder,
                    CellKind::And2,
                    format!("{tag}mand{i}"),
                    bus[(i + 8 - by) % 8],
                    select,
                    &format!("{tag}m{i}"),
                );
                gate2(
                    builder,
                    CellKind::Or2,
                    format!("{tag}or{i}"),
                    stay,
                    moved,
                    &format!("{tag}{i}"),
                )
            })
            .collect()
    };
    let yr = rotate(&mut builder, &ymux, s[4], 1, "yr");
    let y = rotate(&mut builder, &yr, s[5], 2, "y");

    // T bus: c + d + cin and c - d (as c + !d + tsel) muxed by tsel.  The
    // T datapath only publishes its low 8 bits, so the top bit skips the
    // carry-out gates (no net may float).
    let ripple_sum = |builder: &mut NetlistBuilder,
                      x: &[NetId],
                      yb: &[NetId],
                      carry0: NetId,
                      tag: &str|
     -> Vec<NetId> {
        let mut carry = carry0;
        (0..8)
            .map(|i| {
                let pp = gate2(
                    builder,
                    CellKind::Xor2,
                    format!("{tag}pxor{i}"),
                    x[i],
                    yb[i],
                    &format!("{tag}p{i}"),
                );
                let out = gate2(
                    builder,
                    CellKind::Xor2,
                    format!("{tag}sxor{i}"),
                    pp,
                    carry,
                    &format!("{tag}s{i}"),
                );
                if i < 7 {
                    let gg = gate2(
                        builder,
                        CellKind::And2,
                        format!("{tag}gand{i}"),
                        x[i],
                        yb[i],
                        &format!("{tag}g{i}"),
                    );
                    let t = gate2(
                        builder,
                        CellKind::And2,
                        format!("{tag}tand{i}"),
                        pp,
                        carry,
                        &format!("{tag}t{i}"),
                    );
                    carry = gate2(
                        builder,
                        CellKind::Or2,
                        format!("{tag}cor{i}"),
                        gg,
                        t,
                        &format!("{tag}c{}", i + 1),
                    );
                }
                out
            })
            .collect()
    };
    let tsum = ripple_sum(&mut builder, &c, &d, cin, "ta");
    let nd: Vec<NetId> = (0..8)
        .map(|i| {
            let out = builder.add_net(format!("nd{i}"));
            builder
                .add_gate(CellKind::Inv, format!("invd{i}"), &[d[i]], out)
                .expect("complement net must be undriven");
            out
        })
        .collect();
    let tdiff = ripple_sum(&mut builder, &c, &nd, tsel, "tb");
    let ntsel = builder.add_net("ntsel");
    builder
        .add_gate(CellKind::Inv, "invtsel", &[tsel], ntsel)
        .expect("mux net must be undriven");
    let tmux: Vec<NetId> = (0..8)
        .map(|i| {
            let add = gate2(
                &mut builder,
                CellKind::And2,
                format!("tmaand{i}"),
                tsum[i],
                ntsel,
                &format!("tma{i}"),
            );
            let sub = gate2(
                &mut builder,
                CellKind::And2,
                format!("tmband{i}"),
                tdiff[i],
                tsel,
                &format!("tmb{i}"),
            );
            gate2(
                &mut builder,
                CellKind::Or2,
                format!("tmor{i}"),
                add,
                sub,
                &format!("tmux{i}"),
            )
        })
        .collect();
    let tout: Vec<NetId> = (0..8)
        .map(|i| {
            gate2(
                &mut builder,
                CellKind::Xor2,
                format!("tpxor{i}"),
                tmux[i],
                s[2],
                &format!("t{i}"),
            )
        })
        .collect();

    // Comparator: y == tmux, folded through AND4s.
    let eq: Vec<NetId> = (0..8)
        .map(|i| {
            gate2(
                &mut builder,
                CellKind::Xnor2,
                format!("eqxnor{i}"),
                y[i],
                tmux[i],
                &format!("eq{i}"),
            )
        })
        .collect();
    let ae0 = builder.add_net("ae0");
    builder
        .add_gate(CellKind::And4, "aeand0", &[eq[0], eq[1], eq[2], eq[3]], ae0)
        .expect("compare net must be undriven");
    let ae1 = builder.add_net("ae1");
    builder
        .add_gate(CellKind::And4, "aeand1", &[eq[4], eq[5], eq[6], eq[7]], ae1)
        .expect("compare net must be undriven");
    let alleq = gate2(
        &mut builder,
        CellKind::And2,
        "aeand".into(),
        ae0,
        ae1,
        "alleq",
    );

    // U bus: pass y through when mpass or the comparator agrees, else the
    // constant bus k; s3 inverts.
    let selu = gate2(
        &mut builder,
        CellKind::Or2,
        "seluor".into(),
        mpass,
        alleq,
        "selu",
    );
    let nselu = builder.add_net("nselu");
    builder
        .add_gate(CellKind::Inv, "invselu", &[selu], nselu)
        .expect("mux net must be undriven");
    let u: Vec<NetId> = (0..8)
        .map(|i| {
            let pass = gate2(
                &mut builder,
                CellKind::And2,
                format!("upand{i}"),
                y[i],
                selu,
                &format!("up{i}"),
            );
            let konst = gate2(
                &mut builder,
                CellKind::And2,
                format!("ukand{i}"),
                k[i],
                nselu,
                &format!("uk{i}"),
            );
            let merged = gate2(
                &mut builder,
                CellKind::Or2,
                format!("umor{i}"),
                pass,
                konst,
                &format!("um{i}"),
            );
            gate2(
                &mut builder,
                CellKind::Xor2,
                format!("upxor{i}"),
                merged,
                s[3],
                &format!("u{i}"),
            )
        })
        .collect();

    // Flags: zero over all three buses (NOR4 rank), carry-out polarity.
    let zero_fold = |builder: &mut NetlistBuilder, bus: &[NetId], tag: &str| -> NetId {
        let z0 = builder.add_net(format!("{tag}0"));
        builder
            .add_gate(
                CellKind::Nor4,
                format!("{tag}nor0"),
                &[bus[0], bus[1], bus[2], bus[3]],
                z0,
            )
            .expect("flag net must be undriven");
        let z1 = builder.add_net(format!("{tag}1"));
        builder
            .add_gate(
                CellKind::Nor4,
                format!("{tag}nor1"),
                &[bus[4], bus[5], bus[6], bus[7]],
                z1,
            )
            .expect("flag net must be undriven");
        gate2(builder, CellKind::And2, format!("{tag}and"), z0, z1, tag)
    };
    let zy = zero_fold(&mut builder, &y, "zy");
    let zt = zero_fold(&mut builder, &tout, "zt");
    let zu = zero_fold(&mut builder, &u, "zu");
    let zraw = builder.add_net("zraw");
    builder
        .add_gate(CellKind::And3, "zand", &[zy, zt, zu], zraw)
        .expect("flag net must be undriven");
    let zero = gate2(
        &mut builder,
        CellKind::Xor2,
        "zpxor".into(),
        zraw,
        s[7],
        "zero",
    );
    let cout = gate2(
        &mut builder,
        CellKind::Xor2,
        "cpxor".into(),
        cout_carry,
        s[6],
        "cout",
    );

    for &net in y.iter().chain(&tout).chain(&u) {
        builder.mark_output(net);
    }
    builder.mark_output(cout);
    builder.mark_output(zero);
    builder
        .build()
        .expect("c880 reconstruction is a valid netlist")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use crate::levelize;
    use crate::writer;
    use halotis_core::LogicLevel;

    use crate::generators::random::SplitMix64;

    fn bus_ids(netlist: &Netlist, prefix: &str, width: usize) -> Vec<NetId> {
        (0..width)
            .map(|i| {
                netlist
                    .net_id(&format!("{prefix}{i}"))
                    .unwrap_or_else(|| panic!("net {prefix}{i} exists"))
            })
            .collect()
    }

    /// The c432 reference: priority resolution over three enabled buses.
    fn c432_reference(a: u16, b: u16, c: u16, e: u16) -> (bool, bool, bool, u8) {
        let reqa = a & e;
        let reqb = b & e;
        let reqc = c & e;
        let pa = reqa != 0;
        let visb = if pa { 0 } else { reqb };
        let pb = visb != 0;
        let visc = if pa || pb { 0 } else { reqc };
        let pc = visc != 0;
        let sel = reqa | visb | visc;
        let chan = if sel == 0 {
            0
        } else {
            sel.trailing_zeros() as u8 + 1
        };
        (pa, pb, pc, chan)
    }

    #[test]
    fn committed_c432_matches_its_reconstruction() {
        assert_eq!(
            C432_TEXT,
            writer::to_text(&reconstruct_c432()),
            "circuits/c432.net is stale; regenerate with \
             `cargo test -p halotis_netlist --lib -- --ignored regenerate`"
        );
    }

    #[test]
    fn committed_c880_matches_its_reconstruction() {
        assert_eq!(
            C880_TEXT,
            writer::to_text(&reconstruct_c880()),
            "circuits/c880.net is stale; regenerate with \
             `cargo test -p halotis_netlist --lib -- --ignored regenerate`"
        );
    }

    #[test]
    fn c432_matches_the_priority_reference() {
        let netlist = c432();
        let a = bus_ids(&netlist, "a", 9);
        let b = bus_ids(&netlist, "b", 9);
        let c = bus_ids(&netlist, "c", 9);
        let e = bus_ids(&netlist, "e", 9);
        let outputs: Vec<NetId> = ["pa", "pb", "pc", "chan0", "chan1", "chan2", "chan3"]
            .iter()
            .map(|n| netlist.net_id(n).unwrap())
            .collect();
        let mut rng = SplitMix64::new(0xC432);
        let mut cases: Vec<(u16, u16, u16, u16)> = (0..200)
            .map(|_| {
                let raw = rng.next_u64();
                (
                    (raw & 0x1FF) as u16,
                    ((raw >> 9) & 0x1FF) as u16,
                    ((raw >> 18) & 0x1FF) as u16,
                    ((raw >> 27) & 0x1FF) as u16,
                )
            })
            .collect();
        cases.extend([
            (0, 0, 0, 0),
            (0x1FF, 0x1FF, 0x1FF, 0x1FF),
            (0, 0x1FF, 0, 0x1FF),
            (0, 0, 0x101, 0x1FF),
            (4, 2, 1, 0x1FF),
            (0x1FF, 0, 0, 0),
        ]);
        for (av, bv, cv, ev) in cases {
            let mut assignment = eval::bus_assignment(&a, av as u64);
            assignment.extend(eval::bus_assignment(&b, bv as u64));
            assignment.extend(eval::bus_assignment(&c, cv as u64));
            assignment.extend(eval::bus_assignment(&e, ev as u64));
            let got = eval::evaluate_bus(&netlist, &assignment, &outputs).unwrap();
            let (pa, pb, pc, chan) = c432_reference(av, bv, cv, ev);
            let expected =
                u64::from(pa) | (u64::from(pb) << 1) | (u64::from(pc) << 2) | ((chan as u64) << 3);
            assert_eq!(got, expected, "a={av:#x} b={bv:#x} c={cv:#x} e={ev:#x}");
        }
    }

    /// The c880 reference ALU (see [`reconstruct_c880`] docs for the spec).
    #[allow(clippy::too_many_arguments)]
    fn c880_reference(
        a: u64,
        b: u64,
        c: u64,
        d: u64,
        k: u64,
        e: u64,
        s: u64,
        cin: u64,
        minv: u64,
        mpass: u64,
        tsel: u64,
    ) -> (u64, u64, u64, u64, u64) {
        let sbit = |i: usize| (s >> i) & 1 == 1;
        let am = a & e;
        let bx = if minv == 1 { !b & 0xFF } else { b };
        let wide = am + bx + cin;
        let sum = wide & 0xFF;
        let carry = (wide >> 8) & 1;
        let ymux = match (sbit(1), sbit(0)) {
            (false, false) => sum,
            (false, true) => am & bx,
            (true, false) => am | bx,
            (true, true) => am ^ bx,
        };
        let rol = |v: u64, by: u32| ((v << by) | (v >> (8 - by))) & 0xFF;
        let yr = if sbit(4) { rol(ymux, 1) } else { ymux };
        let y = if sbit(5) { rol(yr, 2) } else { yr };
        let tmux = if tsel == 1 {
            (c + (!d & 0xFF) + 1) & 0xFF
        } else {
            (c + d + cin) & 0xFF
        };
        let tout = tmux ^ if sbit(2) { 0xFF } else { 0 };
        let selu = mpass == 1 || y == tmux;
        let u = (if selu { y } else { k }) ^ if sbit(3) { 0xFF } else { 0 };
        let zero = u64::from(y == 0 && tout == 0 && u == 0) ^ u64::from(sbit(7));
        let cout = carry ^ u64::from(sbit(6));
        (y, tout, u, cout, zero)
    }

    #[test]
    fn c880_matches_the_alu_reference() {
        let netlist = c880();
        let a = bus_ids(&netlist, "a", 8);
        let b = bus_ids(&netlist, "b", 8);
        let c = bus_ids(&netlist, "c", 8);
        let d = bus_ids(&netlist, "d", 8);
        let k = bus_ids(&netlist, "k", 8);
        let e = bus_ids(&netlist, "e", 8);
        let s = bus_ids(&netlist, "s", 8);
        let scalars: Vec<NetId> = ["cin", "minv", "mpass", "tsel"]
            .iter()
            .map(|n| netlist.net_id(n).unwrap())
            .collect();
        let y = bus_ids(&netlist, "y", 8);
        let t = bus_ids(&netlist, "t", 8);
        let u = bus_ids(&netlist, "u", 8);
        let cout = netlist.net_id("cout").unwrap();
        let zero = netlist.net_id("zero").unwrap();

        let mut rng = SplitMix64::new(0xC880);
        let mut cases: Vec<[u64; 11]> = (0..300)
            .map(|_| {
                let r0 = rng.next_u64();
                let r1 = rng.next_u64();
                [
                    r0 & 0xFF,
                    (r0 >> 8) & 0xFF,
                    (r0 >> 16) & 0xFF,
                    (r0 >> 24) & 0xFF,
                    (r0 >> 32) & 0xFF,
                    (r0 >> 40) & 0xFF,
                    (r0 >> 48) & 0xFF,
                    r1 & 1,
                    (r1 >> 1) & 1,
                    (r1 >> 2) & 1,
                    (r1 >> 3) & 1,
                ]
            })
            .collect();
        cases.extend([
            [0; 11],
            [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 1, 1, 1, 1],
            [0x0F, 0xF0, 0x55, 0xAA, 0x00, 0xFF, 0x00, 1, 0, 0, 1],
            [0x80, 0x80, 0x01, 0x01, 0x00, 0xFF, 0b00110011, 0, 1, 1, 0],
        ]);
        for case in cases {
            let [av, bv, cv, dv, kv, ev, sv, cinv, minvv, mpassv, tselv] = case;
            let mut assignment = eval::bus_assignment(&a, av);
            assignment.extend(eval::bus_assignment(&b, bv));
            assignment.extend(eval::bus_assignment(&c, cv));
            assignment.extend(eval::bus_assignment(&d, dv));
            assignment.extend(eval::bus_assignment(&k, kv));
            assignment.extend(eval::bus_assignment(&e, ev));
            assignment.extend(eval::bus_assignment(&s, sv));
            assignment.push((scalars[0], LogicLevel::from_bool(cinv == 1)));
            assignment.push((scalars[1], LogicLevel::from_bool(minvv == 1)));
            assignment.push((scalars[2], LogicLevel::from_bool(mpassv == 1)));
            assignment.push((scalars[3], LogicLevel::from_bool(tselv == 1)));
            let (ey, et, eu, ecout, ezero) =
                c880_reference(av, bv, cv, dv, kv, ev, sv, cinv, minvv, mpassv, tselv);
            let gy = eval::evaluate_bus(&netlist, &assignment, &y).unwrap();
            let gt = eval::evaluate_bus(&netlist, &assignment, &t).unwrap();
            let gu = eval::evaluate_bus(&netlist, &assignment, &u).unwrap();
            let gflags = eval::evaluate_bus(&netlist, &assignment, &[cout, zero]).unwrap();
            assert_eq!(gy, ey, "y: {case:?}");
            assert_eq!(gt, et, "t: {case:?}");
            assert_eq!(gu, eu, "u: {case:?}");
            assert_eq!(gflags, ecout | (ezero << 1), "flags: {case:?}");
        }
    }

    #[test]
    fn committed_s27_matches_its_reconstruction() {
        assert_eq!(
            S27_TEXT,
            writer::to_text(&reconstruct_s27()),
            "circuits/s27.net is stale; regenerate with \
             `cargo test -p halotis_netlist --lib -- --ignored regenerate`"
        );
    }

    #[test]
    fn s27_has_the_original_structure() {
        let s27 = s27();
        assert_eq!(s27.primary_inputs().len(), 5);
        assert_eq!(s27.primary_outputs().len(), 1);
        assert_eq!(s27.gate_count(), 13);
        let registers = s27
            .gates()
            .iter()
            .filter(|gate| gate.kind().is_sequential())
            .count();
        assert_eq!(registers, 3, "s27 has exactly three DFFs");
        // Register feedback levelizes: the combinational cone behind the
        // registers is shallow but non-trivial.
        let levels = levelize::levelize(&s27).unwrap();
        assert!(levels.depth() >= 4, "depth {}", levels.depth());
    }

    #[test]
    fn s27_reference_model_follows_known_cycles() {
        // Hand-traced from the netlist.  All-low inputs hold the reset
        // state and g17 = 1; raising g3 forces g9 low, so g11 (and with it
        // the captured g6) rises and g17 falls.
        let (g17, state) = s27_reference_step([false; 3], [false; 4]);
        assert!(g17);
        assert_eq!(state, [false; 3], "all-low inputs hold reset");
        let (g17, state) = s27_reference_step([false; 3], [false, false, false, true]);
        assert!(!g17);
        assert_eq!(state, [false, true, false]);
        // From that state the same inputs are a fixed point.
        let (g17, state) = s27_reference_step(state, [false, false, false, true]);
        assert!(!g17);
        assert_eq!(state, [false, true, false]);
    }

    #[test]
    fn io_profiles_match_the_original_benchmarks() {
        let c432 = c432();
        assert_eq!(c432.primary_inputs().len(), 36);
        assert_eq!(c432.primary_outputs().len(), 7);
        let c880 = c880();
        assert_eq!(c880.primary_inputs().len(), 60);
        assert_eq!(c880.primary_outputs().len(), 26);
        // Both are deep multi-level circuits, not trivial stand-ins.
        assert!(levelize::levelize(&c432).unwrap().depth() >= 10);
        assert!(levelize::levelize(&c880).unwrap().depth() >= 20);
        assert!(c432.gate_count() >= 120);
        assert!(c880.gate_count() >= 300);
    }

    /// Regenerates the committed netlist files from the reconstruction
    /// functions.  Run with:
    /// `cargo test -p halotis_netlist --lib -- --ignored regenerate`
    #[test]
    #[ignore = "writes circuits/*.net; run explicitly to regenerate"]
    fn regenerate_committed_netlists() {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/circuits");
        std::fs::create_dir_all(dir).expect("circuits directory");
        std::fs::write(
            format!("{dir}/c432.net"),
            writer::to_text(&reconstruct_c432()),
        )
        .expect("write c432.net");
        std::fs::write(
            format!("{dir}/c880.net"),
            writer::to_text(&reconstruct_c880()),
        )
        .expect("write c880.net");
        std::fs::write(
            format!("{dir}/s27.net"),
            writer::to_text(&reconstruct_s27()),
        )
        .expect("write s27.net");
    }
}
