//! In-place netlist mutation — the ECO (engineering change order) API.
//!
//! A [`Netlist`] is normally immutable once built; edit-heavy workloads
//! ("swap this gate, re-run these stimuli") would otherwise pay a full
//! rebuild per change.  [`Netlist::begin_edit`] opens an [`EditSession`]
//! whose operations mutate the netlist in place while recording a compact
//! [`EditLog`] — which gates and nets now carry stale derived data — so a
//! compiled simulator can re-derive only the affected cones instead of
//! recompiling the whole circuit.
//!
//! Every operation either applies completely or returns an error leaving the
//! netlist untouched, and the structural invariants the builder enforces
//! (single driver per net, matching arities, no combinational loops, no
//! floating nets) are preserved: the cheap preconditions are checked per
//! operation in every build, and the full invariant sweep runs in
//! [`finish`](EditSession::finish) under `debug_assertions`.
//!
//! # Example
//!
//! ```
//! use halotis_netlist::{generators, CellKind};
//!
//! let mut netlist = generators::c17();
//! let g = netlist.gates()[0].id();
//! let mut edit = netlist.begin_edit();
//! edit.swap_cell_kind(g, CellKind::Nor2).unwrap();
//! let log = edit.finish();
//! assert!(log.dirty_gates().contains(&g));
//! ```

use std::collections::HashMap;

use halotis_core::{GateId, NetId, PinRef};

use crate::cell::CellKind;
use crate::netlist::{Net, NetDriver, Netlist, NetlistError};

/// One structural shape change recorded by an [`EditSession`].
///
/// The ops are the *replay script* for derived-data holders (compiled
/// simulator tables, levelizations): replayed in order they reproduce every
/// index renumbering the session performed, after which the
/// [`dirty_gates`](EditLog::dirty_gates) / [`dirty_nets`](EditLog::dirty_nets)
/// sets (expressed in the final id space) say which rows must be re-derived
/// from the mutated netlist.  Operations that change no index layout
/// (kind swaps, rewires) appear only through the dirty sets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditOp {
    /// A gate and its freshly created output net were appended at the end of
    /// their respective index spaces.
    GateAppended {
        /// Input-pin count of the appended gate.
        pin_count: u32,
    },
    /// The gate at `gate_index` and the net at `net_index` (its output) were
    /// removed by `swap_remove`: the then-last gate/net moved into the hole.
    GateRemoved {
        /// Index the removed gate held (and the moved gate now holds).
        gate_index: u32,
        /// Index the removed net held (and the moved net now holds).
        net_index: u32,
    },
    /// A net was marked as an additional primary output.
    NetExposed {
        /// The net's name (recorded literally so the op survives later
        /// renumbering).
        name: String,
        /// Index the net took in the primary-output list.  Public exposures
        /// always append (`position == len`); undo replays re-insert at the
        /// interior position an un-exposure vacated, and derived output
        /// tables must mirror that to keep observer columns aligned.
        position: u32,
    },
    /// A net lost its primary-output marking (the inverse of
    /// [`NetExposed`](EditOp::NetExposed)).
    NetUnexposed {
        /// The net's name (recorded literally so the op survives later
        /// renumbering).
        name: String,
    },
}

/// One inverse operation recorded alongside an [`EditOp`], in the id space
/// *after* the op it undoes.  An [`EditScript`] replays these in reverse
/// order, so every id a step names is valid at the moment the step runs.
#[derive(Clone, Debug, PartialEq)]
pub enum UndoStep {
    /// Undo a kind swap: restore the previous cell kind.
    SwapKind {
        /// The swapped gate.
        gate: GateId,
        /// The kind it had before the swap.
        kind: CellKind,
    },
    /// Undo a rewire: reconnect the pin to its previous net, at the exact
    /// load-list position it held there (load order feeds the compiled
    /// fanout tables and, through them, equal-time event serials).
    Rewire {
        /// The rewired gate.
        gate: GateId,
        /// The rewired input pin.
        input: usize,
        /// The net the pin read before the rewire.
        net: NetId,
        /// Position the pin held in that net's load list.
        position: usize,
    },
    /// Undo an insertion: remove the inserted gate (its output net is
    /// load-free again once every later op has been undone, and gate and
    /// net are both last in their id spaces, so the removal renumbers
    /// nothing).
    RemoveInserted {
        /// The inserted gate.
        gate: GateId,
    },
    /// Undo an exposure: clear the net's primary-output marking again.
    Unexpose {
        /// The exposed net.
        net: NetId,
    },
    /// Undo an un-exposure: mark the net as a primary output again, at the
    /// exact position it held in the output list (output order drives
    /// observer column indexing and the text format's `output` line).
    Expose {
        /// The un-exposed net.
        net: NetId,
        /// Position the net held in the primary-output list.
        position: usize,
    },
    /// Undo a removal: re-append the gate and its output net (both were
    /// last in their id spaces, so re-appending restores their old ids).
    Restore {
        /// Cell kind of the removed gate.
        kind: CellKind,
        /// Instance name of the removed gate.
        name: String,
        /// Input nets of the removed gate, in pin order.
        inputs: Vec<NetId>,
        /// Name of the removed output net.
        output_name: String,
        /// Per-pin threshold overrides the gate carried, if any.
        overrides: Option<Vec<f64>>,
        /// Position each input pin held in its net's load list before the
        /// removal, parallel to `inputs` — re-inserting at these positions
        /// (ascending) reproduces the original load order, which the
        /// compiled fanout tables (and therefore equal-time event serials)
        /// depend on.
        load_positions: Vec<usize>,
    },
}

/// The inverse of an [`EditLog`]: a replay script that returns the netlist
/// (and any derived structures patched via the resulting log) to its
/// pre-session state.  Obtain one from [`EditLog::invert`] and run it with
/// [`apply`](EditScript::apply) inside a fresh [`EditSession`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EditScript {
    /// Undo steps in replay order (the session's ops reversed).
    steps: Vec<UndoStep>,
}

impl EditScript {
    /// The undo steps, in replay order.
    pub fn steps(&self) -> &[UndoStep] {
        &self.steps
    }

    /// Number of undo steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the script undoes nothing.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Replays every undo step through `session`, returning the netlist to
    /// its state before the inverted session ran.  The session's own
    /// [`EditLog`] then describes the undo as an ordinary edit burst, so
    /// compiled tables can follow it incrementally.
    ///
    /// # Errors
    ///
    /// Propagates the first failing operation.  Scripts applied to the
    /// netlist state their source log produced never fail; applying a
    /// script to any other state may.
    pub fn apply(&self, session: &mut EditSession<'_>) -> Result<(), NetlistError> {
        for step in &self.steps {
            match step {
                UndoStep::SwapKind { gate, kind } => session.swap_cell_kind(*gate, *kind)?,
                UndoStep::Rewire {
                    gate,
                    input,
                    net,
                    position,
                } => session.rewire_input_at(*gate, *input, *net, Some(*position))?,
                UndoStep::RemoveInserted { gate } => {
                    let (moved_gate, moved_net) = session.remove_gate(*gate)?;
                    debug_assert_eq!(
                        (moved_gate, moved_net),
                        (None, None),
                        "an inserted gate is last in its id space at undo time"
                    );
                }
                UndoStep::Unexpose { net } => session.unexpose_net(*net)?,
                UndoStep::Expose { net, position } => {
                    session.expose_net_at(*net, Some(*position))?
                }
                UndoStep::Restore {
                    kind,
                    name,
                    inputs,
                    output_name,
                    overrides,
                    load_positions,
                } => session.restore_gate(
                    *kind,
                    name,
                    inputs,
                    output_name,
                    overrides.as_deref(),
                    load_positions,
                )?,
            }
        }
        Ok(())
    }
}

/// The error of [`EditLog::invert`]: the log contains an operation whose
/// inverse cannot be expressed (currently: a removal that renumbered ids by
/// moving the then-last gate or net into the freed slot).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvertError;

impl std::fmt::Display for InvertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "edit log is not invertible: a removal renumbered ids \
             (only removals of the last gate/net can be undone)"
        )
    }
}

impl std::error::Error for InvertError {}

/// The record of one edit session: the structural replay script plus the
/// sets of gates and nets whose derived data (loads, thresholds, timing
/// arcs, fanout tables, levels) is stale.  Ids are in the netlist's final
/// (post-session) id space, sorted and deduplicated.
#[derive(Clone, Debug, PartialEq)]
pub struct EditLog {
    ops: Vec<EditOp>,
    dirty_gates: Vec<GateId>,
    dirty_nets: Vec<NetId>,
    edits: usize,
    undos: Vec<UndoStep>,
    invertible: bool,
}

impl Default for EditLog {
    fn default() -> Self {
        EditLog {
            ops: Vec::new(),
            dirty_gates: Vec::new(),
            dirty_nets: Vec::new(),
            edits: 0,
            undos: Vec::new(),
            // An empty log inverts to an empty script; invertibility is only
            // lost by ops whose inverse cannot be expressed.
            invertible: true,
        }
    }
}

impl EditLog {
    /// The structural shape changes, in application order.
    pub fn ops(&self) -> &[EditOp] {
        &self.ops
    }

    /// Gates whose derived per-gate/per-pin data must be re-derived, sorted.
    pub fn dirty_gates(&self) -> &[GateId] {
        &self.dirty_gates
    }

    /// Nets whose derived per-net data (load, fanout rows) must be
    /// re-derived, sorted.
    pub fn dirty_nets(&self) -> &[NetId] {
        &self.dirty_nets
    }

    /// Number of successful mutation calls the session performed.
    pub fn edits(&self) -> usize {
        self.edits
    }

    /// `true` when the session performed no successful mutation.
    pub fn is_empty(&self) -> bool {
        self.edits == 0
    }

    /// `true` when [`invert`](Self::invert) can produce a full inverse.
    ///
    /// Invertibility is lost only by [`remove_gate`]
    /// (`EditSession::remove_gate`) calls that renumbered ids — a removal
    /// whose gate or output net was not last in its id space moves the
    /// then-last element into the hole, and that relocation has no local
    /// inverse.
    ///
    /// [`remove_gate`]: EditSession::remove_gate
    pub fn is_invertible(&self) -> bool {
        self.invertible
    }

    /// Builds the replay script that undoes this session: applying the
    /// script (via [`EditScript::apply`] inside a fresh session) returns
    /// the netlist bit-exactly to its pre-session state, including gate and
    /// net ids, load-list order, threshold overrides and primary-output
    /// markings.
    ///
    /// # Errors
    ///
    /// [`InvertError`] when the log is not invertible (see
    /// [`is_invertible`](Self::is_invertible)).
    pub fn invert(&self) -> Result<EditScript, InvertError> {
        if !self.invertible {
            return Err(InvertError);
        }
        Ok(EditScript {
            steps: self.undos.iter().rev().cloned().collect(),
        })
    }
}

/// An open mutation session on a [`Netlist`] (see [`Netlist::begin_edit`]).
///
/// | Operation | Effect |
/// |---|---|
/// | [`insert_gate`](Self::insert_gate) | append a gate driving a fresh net |
/// | [`remove_gate`](Self::remove_gate) | delete a fanout-free gate and its output net |
/// | [`swap_cell_kind`](Self::swap_cell_kind) | retype a gate (same arity) |
/// | [`rewire_input`](Self::rewire_input) | reconnect one input pin to another net |
/// | [`expose_net`](Self::expose_net) | mark a net as a primary output |
/// | [`unexpose_net`](Self::unexpose_net) | clear a net's primary-output mark |
///
/// Dropping the session without calling [`finish`](Self::finish) leaves the
/// netlist mutated but discards the log — derived structures can then only
/// recover via a full rebuild, so callers that hold compiled state should
/// always `finish`.
#[derive(Debug)]
pub struct EditSession<'a> {
    netlist: &'a mut Netlist,
    log: EditLog,
}

impl<'a> EditSession<'a> {
    pub(crate) fn new(netlist: &'a mut Netlist) -> Self {
        EditSession {
            netlist,
            log: EditLog::default(),
        }
    }

    /// The netlist under edit, for read-only inspection mid-session.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    fn touch_gate(&mut self, gate: GateId) {
        self.log.dirty_gates.push(gate);
    }

    fn touch_net(&mut self, net: NetId) {
        self.log.dirty_nets.push(net);
    }

    /// Dirties a net *and* its driving gate: whenever a net's fanout pin set
    /// changes, the driver's output load — and with it its pre-bound timing
    /// arcs — changes too.
    fn touch_net_and_driver(&mut self, net: NetId) {
        self.log.dirty_nets.push(net);
        if let NetDriver::Gate(driver) = self.netlist.nets[net.index()].driver {
            self.log.dirty_gates.push(driver);
        }
    }

    /// Appends a new gate whose output drives a freshly created net called
    /// `output_name`, and returns `(gate id, output net id)`.  Existing ids
    /// are unaffected.  The new net starts without loads; connect consumers
    /// with [`rewire_input`](Self::rewire_input) or expose it with
    /// [`expose_net`](Self::expose_net).
    ///
    /// # Errors
    ///
    /// [`NetlistError::ArityMismatch`] when `inputs` does not match the
    /// cell's input count, [`NetlistError::DuplicateNet`] when `output_name`
    /// is already taken.
    ///
    /// # Panics
    ///
    /// Panics if any input net id is out of range for this netlist.
    pub fn insert_gate(
        &mut self,
        kind: CellKind,
        name: impl Into<String>,
        inputs: &[NetId],
        output_name: impl Into<String>,
    ) -> Result<(GateId, NetId), NetlistError> {
        let name = name.into();
        let output_name = output_name.into();
        if inputs.len() != kind.input_count() {
            return Err(NetlistError::ArityMismatch {
                gate: name,
                kind,
                provided: inputs.len(),
            });
        }
        if self.netlist.names.contains_key(&output_name) {
            return Err(NetlistError::DuplicateNet { name: output_name });
        }
        for &input in inputs {
            assert!(
                input.index() < self.netlist.nets.len(),
                "insert_gate: input net {input} out of range"
            );
        }

        let gate = GateId::from_usize(self.netlist.gates.len());
        let output = NetId::from_usize(self.netlist.nets.len());
        self.netlist.nets.push(Net {
            id: output,
            name: output_name.clone(),
            driver: NetDriver::Gate(gate),
            loads: Vec::new(),
            is_primary_output: false,
        });
        self.netlist.names.insert(output_name, output);
        for (index, &input) in inputs.iter().enumerate() {
            self.netlist.nets[input.index()]
                .loads
                .push(PinRef::new(gate, index as u32));
        }
        self.netlist.gates.push(crate::netlist::Gate {
            id: gate,
            name,
            kind,
            inputs: inputs.to_vec(),
            output,
            threshold_overrides: None,
        });

        self.log.ops.push(EditOp::GateAppended {
            pin_count: inputs.len() as u32,
        });
        self.log.undos.push(UndoStep::RemoveInserted { gate });
        self.touch_gate(gate);
        self.touch_net(output);
        for &input in inputs {
            self.touch_net_and_driver(input);
        }
        self.log.edits += 1;
        Ok((gate, output))
    }

    /// Removes a gate together with its output net.  The output net must be
    /// fanout-free and not a primary output (detach consumers first with
    /// [`rewire_input`](Self::rewire_input)).
    ///
    /// Removal renumbers by `swap_remove`: the last gate takes the removed
    /// gate's id and the last net the removed net's id.  Ids obtained before
    /// this call may therefore be stale afterwards; the returned pair
    /// `(moved_gate, moved_net)` names the gate/net that now occupies the
    /// freed id (`None` when the removed one was last).
    ///
    /// # Errors
    ///
    /// [`NetlistError::GateInUse`] when the output net has loads or is a
    /// primary output.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is out of range.
    pub fn remove_gate(
        &mut self,
        gate: GateId,
    ) -> Result<(Option<GateId>, Option<NetId>), NetlistError> {
        let g = gate.index();
        assert!(
            g < self.netlist.gates.len(),
            "remove_gate: {gate} out of range"
        );
        let output = self.netlist.gates[g].output;
        {
            let out_net = &self.netlist.nets[output.index()];
            if !out_net.loads.is_empty() || out_net.is_primary_output {
                return Err(NetlistError::GateInUse {
                    gate: self.netlist.gates[g].name.clone(),
                });
            }
        }

        // Snapshot everything a restore needs *before* mutating — including
        // where each pin sits in its net's load list, so the undo can
        // reproduce the exact load order the compiled fanout tables saw.
        let inputs = self.netlist.gates[g].inputs.clone();
        let undo = UndoStep::Restore {
            kind: self.netlist.gates[g].kind,
            name: self.netlist.gates[g].name.clone(),
            inputs: inputs.clone(),
            output_name: self.netlist.nets[output.index()].name.clone(),
            overrides: self.netlist.gates[g].threshold_overrides.clone(),
            load_positions: inputs
                .iter()
                .enumerate()
                .map(|(index, &input)| {
                    let pin = PinRef::new(gate, index as u32);
                    self.netlist.nets[input.index()]
                        .loads
                        .iter()
                        .position(|&p| p == pin)
                        .expect("load lists mirror gate inputs")
                })
                .collect(),
        };

        // Detach the gate's input pins; the input nets (and their drivers)
        // lose fanout load.
        for &input in &inputs {
            self.netlist.nets[input.index()]
                .loads
                .retain(|pin| pin.gate() != gate);
            self.touch_net_and_driver(input);
        }

        // Remove the output net, moving the then-last net into its slot.
        let removed_net = self.netlist.nets.swap_remove(output.index());
        self.netlist.names.remove(&removed_net.name);
        let old_last_net = NetId::from_usize(self.netlist.nets.len());
        let moved_net = (output != old_last_net).then_some(output);
        if moved_net.is_some() {
            self.renumber_net(old_last_net, output);
        }

        // Remove the gate itself, moving the then-last gate into its slot.
        self.netlist.gates.swap_remove(g);
        let old_last_gate = GateId::from_usize(self.netlist.gates.len());
        let moved_gate = (gate != old_last_gate).then_some(gate);
        if moved_gate.is_some() {
            self.renumber_gate(old_last_gate, gate);
        }

        // Remap the ids already recorded in the dirty sets into the new id
        // space: references to the removed gate/net vanish, references to
        // the moved ones follow the move.
        self.log
            .dirty_gates
            .retain(|&g| g != gate || moved_gate.is_some());
        for slot in &mut self.log.dirty_gates {
            if *slot == old_last_gate {
                *slot = gate;
            }
        }
        self.log
            .dirty_nets
            .retain(|&n| n != output || moved_net.is_some());
        for slot in &mut self.log.dirty_nets {
            if *slot == old_last_net {
                *slot = output;
            }
        }

        self.log.ops.push(EditOp::GateRemoved {
            gate_index: gate.index() as u32,
            net_index: output.index() as u32,
        });
        if moved_gate.is_none() && moved_net.is_none() {
            // Gate and net were both last: re-appending restores their ids,
            // so the removal has an exact inverse.
            self.log.undos.push(undo);
        } else {
            // The swap_remove renumbered other elements; that relocation
            // has no local inverse, so the whole log stops being invertible.
            self.log.invertible = false;
        }
        self.log.edits += 1;
        Ok((moved_gate, moved_net))
    }

    /// Rewrites every reference to net `from` (the old last net) as `to`,
    /// after `nets.swap_remove(to)` moved it.  The dirty marks for the moved
    /// net's relocation are recorded here too.
    fn renumber_net(&mut self, from: NetId, to: NetId) {
        let netlist = &mut *self.netlist;
        let moved = &mut netlist.nets[to.index()];
        moved.id = to;
        let moved_loads = moved.loads.clone();
        let moved_driver = moved.driver;
        let moved_name = moved.name.clone();
        netlist.names.insert(moved_name, to);
        for list in [&mut netlist.primary_inputs, &mut netlist.primary_outputs] {
            for slot in list.iter_mut() {
                if *slot == from {
                    *slot = to;
                }
            }
        }
        // Gates reading the moved net: their input lists name it by id.
        for pin in &moved_loads {
            let slot = &mut netlist.gates[pin.gate().index()].inputs[pin.input_index()];
            debug_assert_eq!(*slot, from);
            *slot = to;
        }
        // The gate driving the moved net stores it as its output; that
        // gate's derived output-net reference is stale too.
        if let NetDriver::Gate(driver) = moved_driver {
            netlist.gates[driver.index()].output = to;
            self.touch_gate(driver);
        }
        self.touch_net(to);
    }

    /// Rewrites every reference to gate `from` (the old last gate) as `to`,
    /// after `gates.swap_remove(to)` moved it.
    fn renumber_gate(&mut self, from: GateId, to: GateId) {
        let netlist = &mut *self.netlist;
        let moved = &mut netlist.gates[to.index()];
        moved.id = to;
        let moved_inputs = moved.inputs.clone();
        let moved_output = moved.output;
        // The moved gate's pins appear in its input nets' load lists under
        // the old id.
        for (index, &input) in moved_inputs.iter().enumerate() {
            let old_pin = PinRef::new(from, index as u32);
            for pin in &mut netlist.nets[input.index()].loads {
                if *pin == old_pin {
                    *pin = PinRef::new(to, index as u32);
                }
            }
        }
        // The fanout rows of those nets embed the stale pin references.
        for &input in &moved_inputs {
            self.touch_net(input);
        }
        self.netlist.nets[moved_output.index()].driver = NetDriver::Gate(to);
        self.touch_gate(to);
    }

    /// Replaces a gate's cell kind with another of the same arity.  Any
    /// per-instance threshold overrides are kept (their length still
    /// matches).
    ///
    /// # Errors
    ///
    /// [`NetlistError::ArityMismatch`] when `kind` has a different input
    /// count than the gate's current cell.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is out of range.
    pub fn swap_cell_kind(&mut self, gate: GateId, kind: CellKind) -> Result<(), NetlistError> {
        let g = gate.index();
        assert!(
            g < self.netlist.gates.len(),
            "swap_cell_kind: {gate} out of range"
        );
        let current = &self.netlist.gates[g];
        if kind.input_count() != current.inputs.len() {
            return Err(NetlistError::ArityMismatch {
                gate: current.name.clone(),
                kind,
                provided: current.inputs.len(),
            });
        }
        if current.kind == kind {
            return Ok(());
        }
        let inputs = current.inputs.clone();
        self.log.undos.push(UndoStep::SwapKind {
            gate,
            kind: current.kind,
        });
        self.netlist.gates[g].kind = kind;
        // The gate's own thresholds/timing change, and its input pins'
        // capacitances change the load (and pre-bound arcs) of every net
        // feeding it.
        self.touch_gate(gate);
        for &input in &inputs {
            self.touch_net_and_driver(input);
        }
        self.log.edits += 1;
        Ok(())
    }

    /// Reconnects input pin `input` of `gate` from its current net to `net`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::CombinationalLoop`] when `net` lies in the gate's
    /// *combinational* transitive fanout cone (the rewire would close a
    /// register-free cycle).  Paths through sequential cells do not count:
    /// feeding a register's fanout — including its own output — back into
    /// its D pin is ordinary sequential feedback and succeeds.
    ///
    /// # Panics
    ///
    /// Panics if `gate`, `input` or `net` is out of range.
    pub fn rewire_input(
        &mut self,
        gate: GateId,
        input: usize,
        net: NetId,
    ) -> Result<(), NetlistError> {
        self.rewire_input_at(gate, input, net, None)
    }

    /// [`rewire_input`](Self::rewire_input) with control over where the pin
    /// lands in the target net's load list: `None` appends (the public
    /// behaviour), `Some(position)` inserts — the undo path uses this to
    /// reproduce the exact load order a previous rewire destroyed.
    fn rewire_input_at(
        &mut self,
        gate: GateId,
        input: usize,
        net: NetId,
        insert_at: Option<usize>,
    ) -> Result<(), NetlistError> {
        let g = gate.index();
        assert!(
            g < self.netlist.gates.len(),
            "rewire_input: {gate} out of range"
        );
        assert!(
            input < self.netlist.gates[g].inputs.len(),
            "rewire_input: pin {input} out of range for {gate}"
        );
        assert!(
            net.index() < self.netlist.nets.len(),
            "rewire_input: net {net} out of range"
        );
        let old = self.netlist.gates[g].inputs[input];
        if old == net {
            return Ok(());
        }
        // A register's inputs never start a combinational path, so wiring
        // its own fanout (even its own output) back in is legal feedback.
        if !self.netlist.gates[g].kind.is_sequential()
            && self.reaches(self.netlist.gates[g].output, net)
        {
            return Err(NetlistError::CombinationalLoop {
                gate: self.netlist.gates[g].name.clone(),
            });
        }

        let pin = PinRef::new(gate, input as u32);
        let old_loads = &mut self.netlist.nets[old.index()].loads;
        let position = old_loads
            .iter()
            .position(|&p| p == pin)
            .expect("load lists mirror gate inputs");
        old_loads.remove(position);
        let new_loads = &mut self.netlist.nets[net.index()].loads;
        match insert_at {
            Some(at) => new_loads.insert(at.min(new_loads.len()), pin),
            None => new_loads.push(pin),
        }
        self.netlist.gates[g].inputs[input] = net;
        self.log.undos.push(UndoStep::Rewire {
            gate,
            input,
            net: old,
            position,
        });

        self.touch_net_and_driver(old);
        self.touch_net_and_driver(net);
        // The pin's threshold/timing are unchanged, but marking the gate is
        // cheap and keeps the invariant "every touched cone is rebuilt"
        // simple.
        self.touch_gate(gate);
        self.log.edits += 1;
        Ok(())
    }

    /// `true` when net `target` is *combinationally* reachable downstream
    /// from net `start` — the cone walk behind the rewire cycle check,
    /// bounded by the fanout cone instead of the whole netlist.  The walk
    /// stops at sequential gates: a path through a register is not a
    /// combinational cycle, so rewiring register feedback stays legal.
    fn reaches(&self, start: NetId, target: NetId) -> bool {
        if start == target {
            return true;
        }
        let mut visited = vec![false; self.netlist.gates.len()];
        let mut stack: Vec<NetId> = vec![start];
        while let Some(net) = stack.pop() {
            for pin in &self.netlist.nets[net.index()].loads {
                let gate = pin.gate().index();
                if visited[gate] {
                    continue;
                }
                visited[gate] = true;
                if self.netlist.gates[gate].kind.is_sequential() {
                    continue;
                }
                let output = self.netlist.gates[gate].output;
                if output == target {
                    return true;
                }
                stack.push(output);
            }
        }
        false
    }

    /// Marks `net` as an (additional) primary output.  Idempotent.
    ///
    /// # Errors
    ///
    /// [`NetlistError::ExposedPrimaryInput`] when `net` is a primary input.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn expose_net(&mut self, net: NetId) -> Result<(), NetlistError> {
        self.expose_net_at(net, None)
    }

    /// [`expose_net`](Self::expose_net) with control over where the net
    /// lands in the primary-output list: `None` appends (the public
    /// behaviour), `Some(position)` inserts — the undo path uses this to
    /// reproduce the output order a previous un-exposure destroyed.
    fn expose_net_at(&mut self, net: NetId, insert_at: Option<usize>) -> Result<(), NetlistError> {
        assert!(
            net.index() < self.netlist.nets.len(),
            "expose_net: {net} out of range"
        );
        let slot = &self.netlist.nets[net.index()];
        if slot.is_primary_input() {
            return Err(NetlistError::ExposedPrimaryInput {
                net: slot.name.clone(),
            });
        }
        if slot.is_primary_output {
            return Ok(());
        }
        let name = slot.name.clone();
        self.netlist.nets[net.index()].is_primary_output = true;
        let outputs = &mut self.netlist.primary_outputs;
        let position = insert_at
            .map(|at| at.min(outputs.len()))
            .unwrap_or(outputs.len());
        outputs.insert(position, net);
        self.log.ops.push(EditOp::NetExposed {
            name,
            position: position as u32,
        });
        self.log.undos.push(UndoStep::Unexpose { net });
        self.log.edits += 1;
        Ok(())
    }

    /// Clears a net's primary-output marking — the inverse of
    /// [`expose_net`](Self::expose_net).  Idempotent: un-exposing a net that
    /// is not a primary output is a successful no-op.  Primary inputs are
    /// never primary outputs, so they always take the no-op path.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn unexpose_net(&mut self, net: NetId) -> Result<(), NetlistError> {
        assert!(
            net.index() < self.netlist.nets.len(),
            "unexpose_net: {net} out of range"
        );
        if !self.netlist.nets[net.index()].is_primary_output {
            return Ok(());
        }
        let name = self.netlist.nets[net.index()].name.clone();
        let position = self
            .netlist
            .primary_outputs
            .iter()
            .position(|&slot| slot == net)
            .expect("primary-output flag and list are in sync");
        self.netlist.nets[net.index()].is_primary_output = false;
        // `remove` keeps the remaining outputs in declaration order; the
        // recorded position lets the undo re-insert exactly there.
        self.netlist.primary_outputs.remove(position);
        self.log.ops.push(EditOp::NetUnexposed { name });
        self.log.undos.push(UndoStep::Expose { net, position });
        self.log.edits += 1;
        Ok(())
    }

    /// Re-creates a gate (and its output net) removed earlier in an inverted
    /// session — the replay arm of [`UndoStep::Restore`].  Both land at the
    /// end of their id spaces, which *is* the id they held before removal
    /// (restores only run for removals that renumbered nothing), and each
    /// input pin returns to the load-list position it held, so the rebuilt
    /// structure is bit-identical to the pre-removal one.
    fn restore_gate(
        &mut self,
        kind: CellKind,
        name: &str,
        inputs: &[NetId],
        output_name: &str,
        overrides: Option<&[f64]>,
        load_positions: &[usize],
    ) -> Result<(), NetlistError> {
        if self.netlist.names.contains_key(output_name) {
            return Err(NetlistError::DuplicateNet {
                name: output_name.to_string(),
            });
        }
        for &input in inputs {
            assert!(
                input.index() < self.netlist.nets.len(),
                "restore_gate: input net {input} out of range"
            );
        }

        let gate = GateId::from_usize(self.netlist.gates.len());
        let output = NetId::from_usize(self.netlist.nets.len());
        self.netlist.nets.push(Net {
            id: output,
            name: output_name.to_string(),
            driver: NetDriver::Gate(gate),
            loads: Vec::new(),
            is_primary_output: false,
        });
        self.netlist.names.insert(output_name.to_string(), output);
        // Re-inserting the removed pins at their original indices in
        // ascending index order reconstructs each load list exactly.
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        order.sort_unstable_by_key(|&pin| load_positions[pin]);
        for pin in order {
            let loads = &mut self.netlist.nets[inputs[pin].index()].loads;
            let position = load_positions[pin].min(loads.len());
            loads.insert(position, PinRef::new(gate, pin as u32));
        }
        self.netlist.gates.push(crate::netlist::Gate {
            id: gate,
            name: name.to_string(),
            kind,
            inputs: inputs.to_vec(),
            output,
            threshold_overrides: overrides.map(<[f64]>::to_vec),
        });

        self.log.ops.push(EditOp::GateAppended {
            pin_count: inputs.len() as u32,
        });
        self.log.undos.push(UndoStep::RemoveInserted { gate });
        self.touch_gate(gate);
        self.touch_net(output);
        for &input in inputs {
            self.touch_net_and_driver(input);
        }
        self.log.edits += 1;
        Ok(())
    }

    /// Closes the session and returns the edit log.  Under
    /// `debug_assertions` the full structural invariant sweep runs here —
    /// referential integrity, single drivers, no floating nets, and
    /// acyclicity (via a fresh levelization).
    pub fn finish(self) -> EditLog {
        #[cfg(debug_assertions)]
        check_invariants(self.netlist);
        let mut log = self.log;
        log.dirty_gates.sort_unstable();
        log.dirty_gates.dedup();
        log.dirty_nets.sort_unstable();
        log.dirty_nets.dedup();
        debug_assert!(log
            .dirty_gates
            .last()
            .is_none_or(|g| g.index() < self.netlist.gates.len()));
        debug_assert!(log
            .dirty_nets
            .last()
            .is_none_or(|n| n.index() < self.netlist.nets.len()));
        log
    }
}

/// Full structural validation of a netlist — the post-edit counterpart of
/// the checks [`NetlistBuilder::build`](crate::NetlistBuilder::build)
/// performs, plus referential-integrity checks the builder guarantees by
/// construction.  Panics on the first violation; intended for debug builds
/// and tests.
pub fn check_invariants(netlist: &Netlist) {
    assert_eq!(
        netlist.names.len(),
        netlist.nets.len(),
        "name map out of sync"
    );
    for (index, net) in netlist.nets.iter().enumerate() {
        assert_eq!(
            net.id.index(),
            index,
            "net id/slot mismatch for {}",
            net.name
        );
        assert_eq!(
            netlist.names.get(&net.name),
            Some(&net.id),
            "name map stale for {}",
            net.name
        );
        match net.driver {
            NetDriver::PrimaryInput => assert!(
                netlist.primary_inputs.contains(&net.id),
                "primary input {} missing from input list",
                net.name
            ),
            NetDriver::Gate(gate) => {
                assert!(
                    gate.index() < netlist.gates.len(),
                    "net {} driven by ghost gate",
                    net.name
                );
                assert_eq!(
                    netlist.gates[gate.index()].output,
                    net.id,
                    "driver of {} does not drive it back",
                    net.name
                );
            }
        }
        assert_eq!(
            net.is_primary_output,
            netlist.primary_outputs.contains(&net.id),
            "primary-output flag out of sync on {}",
            net.name
        );
        for pin in &net.loads {
            assert!(
                pin.gate().index() < netlist.gates.len(),
                "load pin on ghost gate"
            );
            assert_eq!(
                netlist.gates[pin.gate().index()].inputs[pin.input_index()],
                net.id,
                "load {} of {} does not read it back",
                pin,
                net.name
            );
        }
    }
    let mut expected_loads: HashMap<NetId, Vec<PinRef>> = HashMap::new();
    for (index, gate) in netlist.gates.iter().enumerate() {
        assert_eq!(
            gate.id.index(),
            index,
            "gate id/slot mismatch for {}",
            gate.name
        );
        assert_eq!(
            gate.inputs.len(),
            gate.kind.input_count(),
            "arity mismatch on {}",
            gate.name
        );
        if let Some(overrides) = &gate.threshold_overrides {
            assert_eq!(
                overrides.len(),
                gate.inputs.len(),
                "override arity on {}",
                gate.name
            );
        }
        assert!(
            gate.output.index() < netlist.nets.len(),
            "ghost output on {}",
            gate.name
        );
        for (pin, &input) in gate.inputs.iter().enumerate() {
            assert!(
                input.index() < netlist.nets.len(),
                "ghost input on {}",
                gate.name
            );
            expected_loads
                .entry(input)
                .or_default()
                .push(PinRef::new(gate.id, pin as u32));
        }
    }
    for net in &netlist.nets {
        let mut expected = expected_loads.remove(&net.id).unwrap_or_default();
        let mut actual = net.loads.clone();
        expected.sort_unstable();
        actual.sort_unstable();
        assert_eq!(actual, expected, "load list out of sync on {}", net.name);
    }
    // Acyclicity — also exercises levelizability.
    assert!(
        crate::levelize::levelize(netlist).is_ok(),
        "combinational loop after edit session"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::technology;

    fn c17() -> Netlist {
        generators::c17()
    }

    #[test]
    fn swap_cell_kind_marks_gate_and_fanin_cone() {
        let mut netlist = c17();
        let g = netlist.gates()[2].id(); // g16 reads i2 and n11
        let inputs: Vec<NetId> = netlist.gate(g).inputs().to_vec();
        let mut edit = netlist.begin_edit();
        edit.swap_cell_kind(g, CellKind::Nor2).unwrap();
        let log = edit.finish();
        assert_eq!(netlist.gate(g).kind(), CellKind::Nor2);
        assert!(log.dirty_gates().contains(&g));
        for input in inputs {
            assert!(log.dirty_nets().contains(&input));
        }
        assert_eq!(log.edits(), 1);
    }

    #[test]
    fn swap_to_same_kind_is_a_no_op() {
        let mut netlist = c17();
        let g = netlist.gates()[0].id();
        let mut edit = netlist.begin_edit();
        edit.swap_cell_kind(g, CellKind::Nand2).unwrap();
        let log = edit.finish();
        assert!(log.is_empty());
    }

    #[test]
    fn swap_arity_mismatch_is_rejected() {
        let mut netlist = c17();
        let g = netlist.gates()[0].id();
        let mut edit = netlist.begin_edit();
        let err = edit.swap_cell_kind(g, CellKind::Inv).unwrap_err();
        assert!(matches!(err, NetlistError::ArityMismatch { .. }));
        assert!(edit.finish().is_empty());
    }

    #[test]
    fn insert_gate_appends_gate_and_net() {
        let mut netlist = c17();
        let gates_before = netlist.gate_count();
        let nets_before = netlist.net_count();
        let i1 = netlist.net_id("i1").unwrap();
        let i2 = netlist.net_id("i2").unwrap();
        let mut edit = netlist.begin_edit();
        let (gate, output) = edit
            .insert_gate(CellKind::Xor2, "gx", &[i1, i2], "xnet")
            .unwrap();
        edit.expose_net(output).unwrap();
        let log = edit.finish();
        assert_eq!(gate.index(), gates_before);
        assert_eq!(output.index(), nets_before);
        assert_eq!(netlist.gate_count(), gates_before + 1);
        assert_eq!(netlist.net_id("xnet"), Some(output));
        assert!(netlist.net(output).is_primary_output());
        assert!(log.dirty_gates().contains(&gate));
        assert!(log.dirty_nets().contains(&i1));
        assert!(log
            .ops()
            .iter()
            .any(|op| matches!(op, EditOp::GateAppended { pin_count: 2 })));
        assert!(log
            .ops()
            .iter()
            .any(|op| matches!(op, EditOp::NetExposed { name, .. } if name == "xnet")));
    }

    #[test]
    fn insert_gate_duplicate_output_name_is_rejected() {
        let mut netlist = c17();
        let i1 = netlist.net_id("i1").unwrap();
        let mut edit = netlist.begin_edit();
        let err = edit
            .insert_gate(CellKind::Inv, "gi", &[i1], "n10")
            .unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateNet { .. }));
    }

    #[test]
    fn remove_gate_requires_fanout_free_output() {
        let mut netlist = c17();
        // n11 feeds g16 and g19 — its driver cannot go.
        let n11 = netlist.net_id("n11").unwrap();
        let NetDriver::Gate(driver) = netlist.net(n11).driver() else {
            panic!("n11 is gate-driven");
        };
        let mut edit = netlist.begin_edit();
        let err = edit.remove_gate(driver).unwrap_err();
        assert!(matches!(err, NetlistError::GateInUse { .. }));
        // Primary outputs are protected the same way.
        let o22 = netlist.net_id("o22").unwrap();
        let NetDriver::Gate(out_driver) = netlist.net(o22).driver() else {
            panic!("o22 is gate-driven");
        };
        let mut edit = netlist.begin_edit();
        let err = edit.remove_gate(out_driver).unwrap_err();
        assert!(matches!(err, NetlistError::GateInUse { .. }));
    }

    #[test]
    fn insert_then_remove_round_trips_the_structure() {
        let reference = c17();
        let mut netlist = c17();
        let i1 = netlist.net_id("i1").unwrap();
        let i2 = netlist.net_id("i2").unwrap();
        let mut edit = netlist.begin_edit();
        let (gate, _) = edit
            .insert_gate(CellKind::And2, "tmp", &[i1, i2], "tmpnet")
            .unwrap();
        edit.remove_gate(gate).unwrap();
        let log = edit.finish();
        assert_eq!(netlist, reference);
        assert_eq!(log.edits(), 2);
    }

    #[test]
    fn remove_gate_renumbers_the_moved_gate_consistently() {
        // Remove a middle gate of a larger circuit and check full integrity.
        let mut netlist = generators::random_logic(6, 40, 0xBEEF);
        // Find a removable gate (fanout-free, non-output) that is NOT last,
        // so the swap_remove path is exercised.
        let candidate = netlist
            .gates()
            .iter()
            .find(|gate| {
                let net = netlist.net(gate.output());
                net.loads().is_empty()
                    && !net.is_primary_output()
                    && gate.id().index() + 1 != netlist.gate_count()
            })
            .map(|gate| gate.id());
        let Some(candidate) = candidate else {
            // Expose nothing to remove? Make one: append then remove another.
            return;
        };
        let mut edit = netlist.begin_edit();
        let (moved_gate, _moved_net) = edit.remove_gate(candidate).unwrap();
        assert_eq!(moved_gate, Some(candidate));
        let log = edit.finish();
        check_invariants(&netlist);
        assert!(log.dirty_gates().contains(&candidate));
    }

    #[test]
    fn rewire_input_moves_the_load() {
        let mut netlist = c17();
        let g16 = netlist
            .gates()
            .iter()
            .find(|gate| gate.name() == "g16")
            .unwrap()
            .id();
        let i1 = netlist.net_id("i1").unwrap();
        let i2 = netlist.net_id("i2").unwrap();
        let mut edit = netlist.begin_edit();
        edit.rewire_input(g16, 0, i1).unwrap();
        let log = edit.finish();
        assert_eq!(netlist.gate(g16).inputs()[0], i1);
        assert!(netlist.net(i1).loads().contains(&PinRef::new(g16, 0)));
        assert!(!netlist
            .net(i2)
            .loads()
            .iter()
            .any(|p| p.gate() == g16 && p.input() == 0));
        assert!(log.dirty_nets().contains(&i1));
        assert!(log.dirty_nets().contains(&i2));
        check_invariants(&netlist);
    }

    #[test]
    fn rewire_detects_cycles() {
        let mut netlist = c17();
        // g10 drives n10 which feeds g22 (output o22).  Feeding o22 back
        // into g10 closes a loop.
        let g10 = netlist
            .gates()
            .iter()
            .find(|gate| gate.name() == "g10")
            .unwrap()
            .id();
        let o22 = netlist.net_id("o22").unwrap();
        let mut edit = netlist.begin_edit();
        let err = edit.rewire_input(g10, 0, o22).unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalLoop { .. }));
        // Self-loop: a gate reading its own output.
        let n10 = netlist.net_id("n10").unwrap();
        let mut edit = netlist.begin_edit();
        let err = edit.rewire_input(g10, 0, n10).unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalLoop { .. }));
    }

    #[test]
    fn rewire_to_same_net_is_a_no_op() {
        let mut netlist = c17();
        let g = netlist.gates()[0].id();
        let current = netlist.gate(g).inputs()[0];
        let mut edit = netlist.begin_edit();
        edit.rewire_input(g, 0, current).unwrap();
        assert!(edit.finish().is_empty());
    }

    #[test]
    fn expose_net_is_idempotent_and_rejects_inputs() {
        let mut netlist = c17();
        let n10 = netlist.net_id("n10").unwrap();
        let i1 = netlist.net_id("i1").unwrap();
        let outputs_before = netlist.primary_outputs().len();
        let mut edit = netlist.begin_edit();
        edit.expose_net(n10).unwrap();
        edit.expose_net(n10).unwrap();
        let err = edit.expose_net(i1).unwrap_err();
        assert!(matches!(err, NetlistError::ExposedPrimaryInput { .. }));
        let log = edit.finish();
        assert_eq!(netlist.primary_outputs().len(), outputs_before + 1);
        assert_eq!(log.edits(), 1);
    }

    #[test]
    fn dirty_sets_are_sorted_and_deduplicated() {
        let mut netlist = c17();
        let a = netlist.gates()[0].id();
        let b = netlist.gates()[3].id();
        let mut edit = netlist.begin_edit();
        edit.swap_cell_kind(b, CellKind::And2).unwrap();
        edit.swap_cell_kind(a, CellKind::Or2).unwrap();
        edit.swap_cell_kind(a, CellKind::Nor2).unwrap();
        let log = edit.finish();
        let mut sorted = log.dirty_gates().to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(log.dirty_gates(), &sorted[..]);
    }

    #[test]
    fn invert_of_empty_log_is_empty() {
        let mut netlist = c17();
        let log = netlist.begin_edit().finish();
        assert!(log.is_invertible());
        let script = log.invert().unwrap();
        assert!(script.is_empty());
        let reference = c17();
        let mut session = netlist.begin_edit();
        script.apply(&mut session).unwrap();
        assert!(session.finish().is_empty());
        assert_eq!(netlist, reference);
    }

    #[test]
    fn invert_round_trips_a_mixed_session() {
        let reference = c17();
        let mut netlist = c17();
        let i1 = netlist.net_id("i1").unwrap();
        let i2 = netlist.net_id("i2").unwrap();
        let n10 = netlist.net_id("n10").unwrap();
        let g16 = netlist
            .gates()
            .iter()
            .find(|gate| gate.name() == "g16")
            .unwrap()
            .id();
        let mut edit = netlist.begin_edit();
        edit.swap_cell_kind(g16, CellKind::Nor2).unwrap();
        let (probe, probe_out) = edit
            .insert_gate(CellKind::Xor2, "probe", &[i1, i2], "probe_out")
            .unwrap();
        edit.expose_net(probe_out).unwrap();
        edit.expose_net(n10).unwrap();
        edit.rewire_input(probe, 1, n10).unwrap();
        edit.unexpose_net(probe_out).unwrap();
        let log = edit.finish();
        assert!(log.is_invertible());
        assert_ne!(netlist, reference);

        let script = log.invert().unwrap();
        let mut undo = netlist.begin_edit();
        script.apply(&mut undo).unwrap();
        let undo_log = undo.finish();
        assert_eq!(netlist, reference);
        // The undo session is itself an ordinary edit burst whose log can
        // drive incremental re-derivation — and it is invertible too (redo).
        assert!(undo_log.is_invertible());
        assert_eq!(undo_log.edits(), log.edits());
    }

    #[test]
    fn invert_restores_interior_load_positions() {
        // n11 feeds g16 (interior position) and g19.  Rewiring g16 off n11
        // and undoing must put its pin back *before* g19's in the load
        // list — structural equality (PartialEq on the loads Vec) proves it.
        let reference = c17();
        let mut netlist = c17();
        let i1 = netlist.net_id("i1").unwrap();
        let n11 = netlist.net_id("n11").unwrap();
        let g16 = netlist
            .gates()
            .iter()
            .find(|gate| gate.name() == "g16")
            .unwrap()
            .id();
        let pin = netlist
            .gate(g16)
            .inputs()
            .iter()
            .position(|&net| net == n11)
            .expect("g16 reads n11");
        assert!(
            netlist.net(n11).loads().first().map(|p| p.gate()) == Some(g16),
            "fixture: g16's pin sits at an interior (non-last) position"
        );
        let mut edit = netlist.begin_edit();
        edit.rewire_input(g16, pin, i1).unwrap();
        let script = edit.finish().invert().unwrap();
        let mut undo = netlist.begin_edit();
        script.apply(&mut undo).unwrap();
        undo.finish();
        assert_eq!(netlist, reference);
    }

    #[test]
    fn invert_restores_interior_output_positions() {
        // Expose two nets, then in a second session unexpose the *first*
        // (interior in the output list); the undo must re-insert it there,
        // not at the end.
        let mut netlist = c17();
        let n10 = netlist.net_id("n10").unwrap();
        let n11 = netlist.net_id("n11").unwrap();
        let mut edit = netlist.begin_edit();
        edit.expose_net(n10).unwrap();
        edit.expose_net(n11).unwrap();
        edit.finish();
        let reference = netlist.clone();
        let position = netlist
            .primary_outputs()
            .iter()
            .position(|&net| net == n10)
            .unwrap();
        assert!(position + 1 < netlist.primary_outputs().len());

        let mut edit = netlist.begin_edit();
        edit.unexpose_net(n10).unwrap();
        let script = edit.finish().invert().unwrap();
        let mut undo = netlist.begin_edit();
        script.apply(&mut undo).unwrap();
        undo.finish();
        assert_eq!(netlist, reference);
        assert_eq!(netlist.primary_outputs()[position], n10);
    }

    #[test]
    fn invert_restores_removed_gate_with_overrides() {
        use crate::NetlistBuilder;
        let mut builder = NetlistBuilder::new("undo_overrides");
        let a = builder.add_input("a");
        let b = builder.add_input("b");
        let y = builder.add_net("y");
        let d = builder.add_net("d");
        builder
            .add_gate(CellKind::Nand2, "keep", &[a, b], y)
            .unwrap();
        builder
            .add_gate_with_thresholds(CellKind::Nor2, "vt", &[a, b], d, &[0.31, 0.62])
            .unwrap();
        builder.mark_output(y);
        let mut netlist = builder.build().unwrap();
        let reference = netlist.clone();
        let doomed = netlist
            .gates()
            .iter()
            .find(|gate| gate.name() == "vt")
            .unwrap()
            .id();
        let mut edit = netlist.begin_edit();
        let (moved_gate, moved_net) = edit.remove_gate(doomed).unwrap();
        assert_eq!((moved_gate, moved_net), (None, None));
        let script = edit.finish().invert().unwrap();
        let mut undo = netlist.begin_edit();
        script.apply(&mut undo).unwrap();
        undo.finish();
        assert_eq!(netlist, reference);
        assert_eq!(
            netlist.gate(doomed).threshold_overrides(),
            Some(&[0.31, 0.62][..])
        );
    }

    #[test]
    fn renumbering_removal_poisons_invertibility() {
        // Append two danglers and remove the *first*: the second moves into
        // its slot, which renumbers ids and has no local inverse.
        let mut netlist = c17();
        let i1 = netlist.net_id("i1").unwrap();
        let i2 = netlist.net_id("i2").unwrap();
        let mut edit = netlist.begin_edit();
        let (first, _) = edit
            .insert_gate(CellKind::And2, "dang_a", &[i1, i2], "dang_a_out")
            .unwrap();
        edit.insert_gate(CellKind::Or2, "dang_b", &[i2, i1], "dang_b_out")
            .unwrap();
        let (moved_gate, moved_net) = edit.remove_gate(first).unwrap();
        assert!(moved_gate.is_some() && moved_net.is_some());
        let log = edit.finish();
        assert!(!log.is_invertible());
        assert_eq!(log.invert().unwrap_err(), InvertError);
        assert!(!InvertError.to_string().is_empty());
    }

    #[test]
    fn edited_netlist_still_evaluates() {
        use halotis_core::LogicLevel;
        let mut netlist = c17();
        let g16 = netlist
            .gates()
            .iter()
            .find(|gate| gate.name() == "g16")
            .unwrap()
            .id();
        let mut edit = netlist.begin_edit();
        edit.swap_cell_kind(g16, CellKind::And2).unwrap();
        edit.finish();
        let assignments: Vec<(NetId, LogicLevel)> = netlist
            .primary_inputs()
            .iter()
            .map(|&net| (net, LogicLevel::High))
            .collect();
        let levels = crate::eval::evaluate(&netlist, &assignments);
        assert_eq!(levels.len(), netlist.net_count());
        // And the library still characterises everything we swapped in.
        let library = technology::cmos06();
        for gate in netlist.gates() {
            for pin in 0..gate.inputs().len() {
                library.pin(gate.kind(), pin).unwrap();
            }
        }
    }
}
