//! Synthetic technology decks.
//!
//! The paper characterises its cells in a proprietary 0.6 µm CMOS process at
//! `Vdd = 5 V`; those coefficients are not published.  [`cmos06`] builds a
//! *synthetic* deck with the same qualitative properties, which is what the
//! paper's conclusions actually depend on:
//!
//! * gate delays of a few hundred picoseconds, inverting cells faster than
//!   their non-inverting counterparts, delay growing with fan-in,
//! * input thresholds spread around `Vdd/2` and *different from pin to pin*
//!   (so one transition generates distinct event times per fanout input),
//! * degradation time constants `tau` on the order of the gate delay and a
//!   dead-band `T0` proportional to the input slew (paper eq. 2–3).
//!
//! The exact numbers are documented constants so experiments are
//! reproducible; see `DESIGN.md` for the substitution rationale.

use halotis_core::{Capacitance, TimeDelta, Voltage};
use halotis_delay::{DegradationCoeffs, EdgeTiming, PinTiming, PropagationCoeffs, SlewCoeffs};

use crate::cell::CellKind;
use crate::library::{CellTiming, Library, PinSpec};

/// Supply voltage of the synthetic 0.6 µm deck.
pub const CMOS06_VDD_VOLTS: f64 = 5.0;
/// Default primary-input transition time.
pub const CMOS06_INPUT_SLEW_PS: f64 = 200.0;
/// Parasitic wire capacitance added to every net.
pub const CMOS06_WIRE_CAP_FF: f64 = 5.0;

/// Per-kind base intrinsic delay in picoseconds (falling-output arc; rising
/// arcs are slightly slower, as in a real CMOS cell where the PMOS pull-up
/// is weaker).
fn base_delay_ps(kind: CellKind) -> f64 {
    match kind {
        CellKind::Inv => 110.0,
        CellKind::Buf => 210.0,
        CellKind::Nand2 => 140.0,
        CellKind::Nor2 => 160.0,
        CellKind::And2 => 230.0,
        CellKind::Or2 => 250.0,
        CellKind::Xor2 => 310.0,
        CellKind::Xnor2 => 320.0,
        CellKind::Nand3 => 180.0,
        CellKind::Nor3 => 210.0,
        CellKind::And3 => 270.0,
        CellKind::Or3 => 290.0,
        CellKind::Nand4 => 220.0,
        CellKind::Nor4 => 260.0,
        CellKind::And4 => 310.0,
        CellKind::Or4 => 330.0,
        // Registers: clock-to-Q is a full master/slave stage, slower than
        // any simple gate; the transparent latch is one stage lighter.
        CellKind::Dff => 380.0,
        CellKind::DffRn => 410.0,
        CellKind::LatchD => 290.0,
    }
}

/// Per-kind effective drive resistance in ohms (delay per farad of load).
fn drive_resistance_ohms(kind: CellKind) -> f64 {
    match kind {
        CellKind::Inv | CellKind::Buf => 2.4e3,
        CellKind::Nand2 | CellKind::Nor2 => 3.0e3,
        CellKind::And2 | CellKind::Or2 => 3.2e3,
        CellKind::Xor2 | CellKind::Xnor2 => 3.8e3,
        CellKind::Nand3 | CellKind::Nor3 => 3.6e3,
        CellKind::And3 | CellKind::Or3 => 3.8e3,
        CellKind::Nand4 | CellKind::Nor4 => 4.2e3,
        CellKind::And4 | CellKind::Or4 => 4.4e3,
        CellKind::Dff | CellKind::DffRn => 3.4e3,
        CellKind::LatchD => 3.2e3,
    }
}

/// Per-kind input-pin capacitance in femtofarads.
fn input_cap_ff(kind: CellKind) -> f64 {
    match kind {
        CellKind::Inv | CellKind::Buf => 8.0,
        CellKind::Nand2 | CellKind::Nor2 => 10.0,
        CellKind::And2 | CellKind::Or2 => 11.0,
        CellKind::Xor2 | CellKind::Xnor2 => 14.0,
        CellKind::Nand3 | CellKind::Nor3 => 12.0,
        CellKind::And3 | CellKind::Or3 => 13.0,
        CellKind::Nand4 | CellKind::Nor4 => 14.0,
        CellKind::And4 | CellKind::Or4 => 15.0,
        CellKind::Dff | CellKind::DffRn => 12.0,
        CellKind::LatchD => 10.0,
    }
}

/// Per-pin input threshold fraction.  Later pins (physically further from
/// the output node in the CMOS stack) switch at slightly higher thresholds,
/// and inverting cells sit a little below `Vdd/2`: this gives the per-input
/// spread the IDDM exploits while staying centred on the conventional value.
fn threshold_fraction(kind: CellKind, pin: usize) -> f64 {
    let base = if kind.is_inverting() { 0.47 } else { 0.50 };
    base + 0.04 * pin as f64
}

/// Builds one timing arc of the synthetic deck.
fn arc(kind: CellKind, pin: usize, rising_output: bool) -> EdgeTiming {
    let slower_pull_up = if rising_output { 1.15 } else { 1.0 };
    let pin_penalty = 1.0 + 0.06 * pin as f64;
    let base = base_delay_ps(kind) * slower_pull_up * pin_penalty;
    let resistance = drive_resistance_ohms(kind) * slower_pull_up;
    EdgeTiming {
        propagation: PropagationCoeffs {
            t_intrinsic: TimeDelta::from_ps(base),
            r_load_ohms: resistance,
            s_slew: 0.18,
        },
        output_slew: SlewCoeffs {
            base: TimeDelta::from_ps(base * 1.1),
            load_factor_ohms: resistance * 1.3,
        },
        degradation: DegradationCoeffs {
            // tau ~ 1.2x the intrinsic delay at zero load (eq. 2), growing
            // with load at the same rate as the delay does.
            a_volt_seconds: base * 1.2e-12 * CMOS06_VDD_VOLTS,
            b_volt_per_farad_seconds: resistance * 1.2 * CMOS06_VDD_VOLTS,
            // T0 ~ 0.25 * tau_in (eq. 3 with C = Vdd/4).
            c_volts: CMOS06_VDD_VOLTS / 4.0,
        },
    }
}

/// Builds the full synthetic 0.6 µm-flavoured library.
///
/// # Example
///
/// ```
/// use halotis_netlist::{technology, CellKind};
/// let lib = technology::cmos06();
/// assert_eq!(lib.vdd().as_volts(), 5.0);
/// assert!(lib.contains(CellKind::Xor2));
/// ```
pub fn cmos06() -> Library {
    let mut library = Library::new("cmos06-synthetic", Voltage::from_volts(CMOS06_VDD_VOLTS));
    library.set_default_input_slew(TimeDelta::from_ps(CMOS06_INPUT_SLEW_PS));
    library.set_wire_capacitance(Capacitance::from_femtofarads(CMOS06_WIRE_CAP_FF));
    for kind in CellKind::ALL {
        let pins = (0..kind.input_count())
            .map(|pin| PinSpec {
                timing: PinTiming {
                    rise: arc(kind, pin, true),
                    fall: arc(kind, pin, false),
                },
                input_capacitance: Capacitance::from_femtofarads(input_cap_ff(kind)),
                threshold_fraction: threshold_fraction(kind, pin),
            })
            .collect();
        library.insert(kind, CellTiming::new(pins));
    }
    library
}

/// A degradation-free copy of [`cmos06`]: same nominal delays and slews, but
/// with `tau == 0`, giving the abrupt classical behaviour.  Used by ablation
/// benches; note that the usual way to disable degradation is selecting the
/// conventional delay model at simulation time.
pub fn cmos06_without_degradation() -> Library {
    let mut library = cmos06();
    let kinds: Vec<CellKind> = library.kinds().collect();
    for kind in kinds {
        let cell = library.cell(kind).expect("kind just listed").clone();
        let pins = cell
            .pins()
            .map(|spec| {
                let mut spec = *spec;
                spec.timing.rise.degradation = DegradationCoeffs::disabled();
                spec.timing.fall.degradation = DegradationCoeffs::disabled();
                spec
            })
            .collect();
        library.insert(kind, CellTiming::new(pins));
    }
    library
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deck_characterises_every_cell_kind() {
        let lib = cmos06();
        for kind in CellKind::ALL {
            let cell = lib.cell(kind).unwrap();
            assert_eq!(cell.pin_count(), kind.input_count());
        }
        assert_eq!(lib.name(), "cmos06-synthetic");
    }

    #[test]
    fn inverting_cells_are_faster_than_their_complements() {
        let lib = cmos06();
        let nand = lib.pin(CellKind::Nand2, 0).unwrap();
        let and = lib.pin(CellKind::And2, 0).unwrap();
        assert!(nand.timing.fall.propagation.t_intrinsic < and.timing.fall.propagation.t_intrinsic);
    }

    #[test]
    fn thresholds_differ_between_pins() {
        let lib = cmos06();
        let pin0 = lib.pin(CellKind::Nand2, 0).unwrap().threshold_fraction;
        let pin1 = lib.pin(CellKind::Nand2, 1).unwrap().threshold_fraction;
        assert!(pin1 > pin0);
        // All thresholds remain inside the supply range.
        for kind in CellKind::ALL {
            for pin in 0..kind.input_count() {
                let f = lib.pin(kind, pin).unwrap().threshold_fraction;
                assert!((0.2..0.8).contains(&f), "{kind} pin {pin}: {f}");
            }
        }
    }

    #[test]
    fn rising_arcs_are_slower_than_falling_arcs() {
        let lib = cmos06();
        let pin = lib.pin(CellKind::Inv, 0).unwrap();
        assert!(pin.timing.rise.propagation.t_intrinsic > pin.timing.fall.propagation.t_intrinsic);
    }

    #[test]
    fn degradation_tau_is_on_the_order_of_the_gate_delay() {
        let lib = cmos06();
        let pin = lib.pin(CellKind::Nand2, 0).unwrap();
        let tau = pin
            .timing
            .fall
            .degradation
            .tau(lib.vdd(), Capacitance::from_femtofarads(20.0));
        let delay = pin.timing.fall.propagation.nominal_delay(
            Capacitance::from_femtofarads(20.0),
            TimeDelta::from_ps(200.0),
        );
        let ratio = tau.as_ps() / delay.as_ps();
        assert!((0.3..3.0).contains(&ratio), "tau/delay = {ratio}");
    }

    #[test]
    fn degradation_free_deck_has_zero_tau() {
        let lib = cmos06_without_degradation();
        let pin = lib.pin(CellKind::Xor2, 1).unwrap();
        assert_eq!(
            pin.timing
                .rise
                .degradation
                .tau(lib.vdd(), Capacitance::from_femtofarads(50.0)),
            TimeDelta::ZERO
        );
        // Nominal delay is unchanged with respect to the full deck.
        let full = cmos06();
        assert_eq!(
            pin.timing.rise.propagation,
            full.pin(CellKind::Xor2, 1).unwrap().timing.rise.propagation
        );
    }
}
