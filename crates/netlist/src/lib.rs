//! Gate-level netlist substrate for the HALOTIS timing simulator.
//!
//! The paper evaluates HALOTIS on a 4×4 array multiplier designed in a
//! 0.6 µm CMOS technology.  This crate provides everything needed to
//! describe such circuits:
//!
//! * [`CellKind`] — the combinational cell family and its boolean behaviour,
//! * [`Library`] — per-cell, per-pin electrical/timing characterisation
//!   (input capacitance, input threshold voltage, nominal-delay and
//!   degradation coefficients), with a synthetic 0.6 µm-flavoured default in
//!   [`technology`],
//! * [`Netlist`] and [`NetlistBuilder`] — the circuit graph (gates, nets,
//!   primary inputs/outputs) with validation and levelization,
//! * two interchange formats — the in-house `.net` text form ([`parser`] /
//!   [`writer`]) and a structural-Verilog subset ([`verilog`]) — both
//!   round-trip **identities** (see `FORMATS.md` at the repository root),
//! * [`graph`] — a petgraph-style adjacency view (node/edge iterators and a
//!   CSR export) for graph algorithms over the circuit,
//! * [`edit`] — an ECO-style mutation session with invertible edit logs,
//! * [`generators`] — the circuits used by the paper's experiments
//!   (inverter chains, the Fig. 1 threshold circuit, ripple-carry adders,
//!   the Fig. 5 array multiplier) plus random logic for scaling studies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod edit;
pub mod eval;
pub mod generators;
pub mod graph;
pub mod iscas;
pub mod levelize;
pub mod library;
pub mod netlist;
pub mod parser;
pub mod technology;
pub mod validate;
pub mod verilog;
pub mod writer;

pub use cell::CellKind;
pub use edit::{EditLog, EditOp, EditScript, EditSession, InvertError, UndoStep};
pub use library::{CellTiming, Library, PinSpec};
pub use netlist::{
    is_primary_input_net, Gate, Net, NetDriver, Netlist, NetlistBuilder, NetlistError,
};
