//! Structural-Verilog reader and writer for [`Netlist`]s.
//!
//! This module speaks the *structural* subset of Verilog-2001: one `module`
//! per file, non-ANSI port declarations, `wire` declarations and gate-level
//! primitive instances (`and`/`or`/`nand`/`nor`/`xor`/`xnor`/`not`/`buf`)
//! with output-first connection order.  That is exactly the shape produced
//! by logic-synthesis tools in "write out the mapped netlist" mode, which
//! makes any synthesized benchmark (ISCAS-85 originals, the EPFL suite) a
//! corpus candidate.  The full grammar, with the cell-library name mapping,
//! lives in `FORMATS.md` at the repository root.
//!
//! Like the [`writer`](crate::writer) for the `.net` format, [`to_verilog`]
//! emits `wire` declarations for **every** net in [`NetId`] order — legal
//! Verilog, since a port may be re-declared as a net — so the round trip
//! `parse_verilog(to_verilog(n))` is the **identity**: same net numbering,
//! same gate order, same event schedule.
//!
//! Per-instance threshold overrides survive the trip as Verilog-2001
//! attribute instances, which any other tool is free to ignore:
//!
//! ```text
//! (* vt = "0.30" *) not g1 (n1, a);
//! ```
//!
//! # Example
//!
//! ```
//! use halotis_netlist::{generators, verilog};
//!
//! let original = generators::inverter_chain(3);
//! let text = verilog::to_verilog(&original);
//! assert!(text.starts_with("module inv_chain_3"));
//! let reparsed = verilog::parse_verilog(&text)?;
//! assert_eq!(reparsed, original);
//! # Ok::<(), halotis_netlist::verilog::VerilogError>(())
//! ```
//!
//! [`NetId`]: halotis_core::NetId

use std::fmt;

use crate::cell::CellKind;
use crate::netlist::{Netlist, NetlistError};
use crate::parser::{assemble, AssembleError, CircuitSpec, GateSpec};

/// Errors produced while parsing structural Verilog.
#[derive(Debug, Clone, PartialEq)]
pub enum VerilogError {
    /// The text is outside the supported structural subset (or plain wrong).
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The text was syntactically fine but the circuit is invalid.
    Netlist(NetlistError),
}

impl fmt::Display for VerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerilogError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            VerilogError::Netlist(err) => write!(f, "invalid netlist: {err}"),
        }
    }
}

impl std::error::Error for VerilogError {}

impl From<NetlistError> for VerilogError {
    fn from(err: NetlistError) -> Self {
        VerilogError::Netlist(err)
    }
}

impl From<AssembleError> for VerilogError {
    fn from(err: AssembleError) -> Self {
        match err {
            AssembleError::Gate { line, message } => VerilogError::Syntax { line, message },
            AssembleError::Netlist(err) => VerilogError::Netlist(err),
        }
    }
}

fn syntax(line: usize, message: impl Into<String>) -> VerilogError {
    VerilogError::Syntax {
        line,
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// The gate-level primitive a [`CellKind`] maps to, paired with the arity
/// encoded in the connection count.  The inverse mapping is
/// [`cell_for_primitive`].
fn primitive_name(kind: CellKind) -> &'static str {
    match kind {
        CellKind::Inv => "not",
        CellKind::Buf => "buf",
        CellKind::And2 | CellKind::And3 | CellKind::And4 => "and",
        CellKind::Or2 | CellKind::Or3 | CellKind::Or4 => "or",
        CellKind::Nand2 | CellKind::Nand3 | CellKind::Nand4 => "nand",
        CellKind::Nor2 | CellKind::Nor3 | CellKind::Nor4 => "nor",
        CellKind::Xor2 => "xor",
        CellKind::Xnor2 => "xnor",
        // Sequential cells have no Verilog gate primitive; the subset
        // treats the library cell names as primitive keywords, mirroring
        // the `.net` grammar (connections stay output-first).
        CellKind::Dff => "dff",
        CellKind::DffRn => "dffrn",
        CellKind::LatchD => "latchd",
    }
}

/// The library cell for a primitive of the given input arity, or an error
/// message when the library has no cell of that shape.
fn cell_for_primitive(primitive: &str, input_count: usize) -> Result<CellKind, String> {
    let kind = match (primitive, input_count) {
        ("not", 1) => CellKind::Inv,
        ("buf", 1) => CellKind::Buf,
        ("and", 2) => CellKind::And2,
        ("and", 3) => CellKind::And3,
        ("and", 4) => CellKind::And4,
        ("or", 2) => CellKind::Or2,
        ("or", 3) => CellKind::Or3,
        ("or", 4) => CellKind::Or4,
        ("nand", 2) => CellKind::Nand2,
        ("nand", 3) => CellKind::Nand3,
        ("nand", 4) => CellKind::Nand4,
        ("nor", 2) => CellKind::Nor2,
        ("nor", 3) => CellKind::Nor3,
        ("nor", 4) => CellKind::Nor4,
        ("xor", 2) => CellKind::Xor2,
        ("xnor", 2) => CellKind::Xnor2,
        ("dff", 2) => CellKind::Dff,
        ("dffrn", 3) => CellKind::DffRn,
        ("latchd", 2) => CellKind::LatchD,
        _ => {
            return Err(format!(
                "the cell library has no {input_count}-input '{primitive}' \
                 (supported: not/buf with 1 input, and/or/nand/nor with 2-4, \
                 xor/xnor with 2, dff/latchd with 2, dffrn with 3)"
            ))
        }
    };
    Ok(kind)
}

/// Verilog-2001 keywords that force identifier escaping on emission.  Not
/// the full reserved list — just everything this subset's parser gives
/// meaning to, plus common net-type/procedural keywords a downstream tool
/// would choke on.
const KEYWORDS: &[&str] = &[
    "always",
    "and",
    "assign",
    "begin",
    "buf",
    "case",
    "dff",
    "dffrn",
    "end",
    "endcase",
    "endmodule",
    "for",
    "if",
    "initial",
    "inout",
    "input",
    "latchd",
    "module",
    "nand",
    "nor",
    "not",
    "or",
    "output",
    "parameter",
    "reg",
    "supply0",
    "supply1",
    "tri",
    "wire",
    "xnor",
    "xor",
];

fn is_simple_identifier(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
}

/// Renders a name as a Verilog identifier, falling back to the escaped form
/// (`\name` followed by whitespace) for keywords and names with characters
/// outside `[a-zA-Z0-9_$]`.  The escaped form *includes* its terminating
/// space, so callers can concatenate punctuation directly after it.
fn emit_identifier(name: &str) -> String {
    if is_simple_identifier(name) && !KEYWORDS.contains(&name) {
        name.to_string()
    } else {
        format!("\\{name} ")
    }
}

fn join_identifiers(names: impl Iterator<Item = impl AsRef<str>>) -> String {
    let rendered: Vec<String> = names.map(|n| emit_identifier(n.as_ref())).collect();
    rendered.join(", ")
}

/// Serialises a netlist as a structural-Verilog module.
///
/// The module's port list is primary inputs then primary outputs, each in
/// declaration order; `wire` statements cover **all** nets in
/// [`NetId`](halotis_core::NetId) order (16 names per statement, matching
/// the `.net` [`writer`](crate::writer)); instances follow in
/// [`GateId`](halotis_core::GateId) order with output-first connections.
/// Threshold overrides become `(* vt = "..." *)` attribute instances.
///
/// The result parses back to an equal netlist — see the module docs.
pub fn to_verilog(netlist: &Netlist) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let inputs: Vec<&str> = netlist
        .primary_inputs()
        .iter()
        .map(|&id| netlist.net(id).name())
        .collect();
    let outputs: Vec<&str> = netlist
        .primary_outputs()
        .iter()
        .map(|&id| netlist.net(id).name())
        .collect();

    let ports = join_identifiers(inputs.iter().chain(outputs.iter()));
    let module_name = emit_identifier(netlist.name());
    if ports.is_empty() {
        writeln!(out, "module {module_name};").expect("writing to String cannot fail");
    } else {
        writeln!(out, "module {module_name}({ports});").expect("writing to String cannot fail");
    }

    if !inputs.is_empty() {
        for chunk in inputs.chunks(16) {
            writeln!(out, "  input {};", join_identifiers(chunk.iter()))
                .expect("writing to String cannot fail");
        }
    }
    if !outputs.is_empty() {
        for chunk in outputs.chunks(16) {
            writeln!(out, "  output {};", join_identifiers(chunk.iter()))
                .expect("writing to String cannot fail");
        }
    }
    // Every net, in NetId order: this is what pins the numbering on re-parse
    // (re-declaring a port as a wire is legal Verilog-2001).
    for chunk in netlist.nets().chunks(16) {
        writeln!(
            out,
            "  wire {};",
            join_identifiers(chunk.iter().map(|net| net.name()))
        )
        .expect("writing to String cannot fail");
    }

    for gate in netlist.gates() {
        let mut connections = vec![emit_identifier(netlist.net(gate.output()).name())];
        connections.extend(
            gate.inputs()
                .iter()
                .map(|&id| emit_identifier(netlist.net(id).name())),
        );
        let attr = match gate.threshold_overrides() {
            Some(overrides) => {
                let list: Vec<String> = overrides.iter().map(|f| format!("{f}")).collect();
                format!("(* vt = \"{}\" *) ", list.join(","))
            }
            None => String::new(),
        };
        writeln!(
            out,
            "  {attr}{} {} ({});",
            primitive_name(gate.kind()),
            emit_identifier(gate.name()),
            connections.join(", ")
        )
        .expect("writing to String cannot fail");
    }
    out.push_str("endmodule\n");
    out
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    /// A simple or escaped identifier (escaping already stripped).  Keywords
    /// arrive as identifiers too; the parser tells them apart by value.
    Ident(String),
    /// A quoted string literal, quotes stripped (attribute values).
    Str(String),
    LParen,
    RParen,
    Comma,
    Semi,
    Equals,
    AttrOpen,
    AttrClose,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(name) => write!(f, "'{name}'"),
            Token::Str(value) => write!(f, "\"{value}\""),
            Token::LParen => f.write_str("'('"),
            Token::RParen => f.write_str("')'"),
            Token::Comma => f.write_str("','"),
            Token::Semi => f.write_str("';'"),
            Token::Equals => f.write_str("'='"),
            Token::AttrOpen => f.write_str("'(*'"),
            Token::AttrClose => f.write_str("'*)'"),
        }
    }
}

/// Tokenizes Verilog source, tracking 1-based line numbers and stripping
/// `//` and `/* */` comments.
fn lex(text: &str) -> Result<Vec<(Token, usize)>, VerilogError> {
    let mut tokens = Vec::new();
    let mut chars = text.char_indices().peekable();
    let bytes = text.as_bytes();
    let mut line = 1usize;

    while let Some((start, c)) = chars.next() {
        match c {
            '\n' => line += 1,
            c if c.is_whitespace() => {}
            '/' => match chars.peek() {
                Some((_, '/')) => {
                    for (_, c) in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                }
                Some((_, '*')) => {
                    chars.next();
                    let mut closed = false;
                    while let Some((_, c)) = chars.next() {
                        if c == '\n' {
                            line += 1;
                        } else if c == '*' {
                            if let Some((_, '/')) = chars.peek() {
                                chars.next();
                                closed = true;
                                break;
                            }
                        }
                    }
                    if !closed {
                        return Err(syntax(line, "unterminated block comment"));
                    }
                }
                _ => return Err(syntax(line, "unexpected character '/'")),
            },
            '(' => {
                if let Some((_, '*')) = chars.peek() {
                    chars.next();
                    tokens.push((Token::AttrOpen, line));
                } else {
                    tokens.push((Token::LParen, line));
                }
            }
            '*' => {
                if let Some((_, ')')) = chars.peek() {
                    chars.next();
                    tokens.push((Token::AttrClose, line));
                } else {
                    return Err(syntax(line, "unexpected character '*'"));
                }
            }
            ')' => tokens.push((Token::RParen, line)),
            ',' => tokens.push((Token::Comma, line)),
            ';' => tokens.push((Token::Semi, line)),
            '=' => tokens.push((Token::Equals, line)),
            '"' => {
                let content_start = start + 1;
                let mut end = None;
                for (index, c) in chars.by_ref() {
                    if c == '"' {
                        end = Some(index);
                        break;
                    }
                    if c == '\n' {
                        return Err(syntax(line, "unterminated string literal"));
                    }
                }
                let end = end.ok_or_else(|| syntax(line, "unterminated string literal"))?;
                tokens.push((Token::Str(text[content_start..end].to_string()), line));
            }
            '\\' => {
                // Escaped identifier: everything up to the next whitespace.
                let content_start = start + 1;
                let mut end = text.len();
                while let Some(&(index, c)) = chars.peek() {
                    if c.is_whitespace() {
                        end = index;
                        break;
                    }
                    chars.next();
                }
                if end == content_start {
                    return Err(syntax(line, "empty escaped identifier"));
                }
                tokens.push((Token::Ident(text[content_start..end].to_string()), line));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = text.len();
                while let Some(&(index, c)) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                        chars.next();
                    } else {
                        end = index;
                        break;
                    }
                }
                debug_assert!(bytes[start].is_ascii());
                tokens.push((Token::Ident(text[start..end].to_string()), line));
            }
            other => {
                return Err(syntax(
                    line,
                    format!("unexpected character '{other}' (structural subset only)"),
                ))
            }
        }
    }
    Ok(tokens)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<(Token, usize)>,
    position: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.position).map(|(t, _)| t)
    }

    /// Line of the current token (or of the last token at end of input).
    fn line(&self) -> usize {
        self.tokens
            .get(self.position)
            .or_else(|| self.tokens.last())
            .map_or(1, |&(_, line)| line)
    }

    fn next(&mut self) -> Option<&Token> {
        let token = self.tokens.get(self.position).map(|(t, _)| t);
        if token.is_some() {
            self.position += 1;
        }
        token
    }

    fn expect(&mut self, want: &Token, context: &str) -> Result<(), VerilogError> {
        let line = self.line();
        match self.next() {
            Some(token) if token == want => Ok(()),
            Some(token) => Err(syntax(
                line,
                format!("expected {want} {context}, got {token}"),
            )),
            None => Err(syntax(
                line,
                format!("expected {want} {context}, got end of input"),
            )),
        }
    }

    fn expect_ident(&mut self, context: &str) -> Result<String, VerilogError> {
        let line = self.line();
        match self.next() {
            Some(Token::Ident(name)) => Ok(name.clone()),
            Some(token) => Err(syntax(
                line,
                format!("expected an identifier {context}, got {token}"),
            )),
            None => Err(syntax(
                line,
                format!("expected an identifier {context}, got end of input"),
            )),
        }
    }

    /// Parses `ident { "," ident }` up to (not consuming) the terminator.
    fn ident_list(&mut self, context: &str) -> Result<Vec<String>, VerilogError> {
        let mut names = vec![self.expect_ident(context)?];
        while self.peek() == Some(&Token::Comma) {
            self.next();
            names.push(self.expect_ident(context)?);
        }
        Ok(names)
    }
}

/// Parses a structural-Verilog module into a validated [`Netlist`].
///
/// Accepts the subset documented in the module docs (and in `FORMATS.md`):
/// one module, non-ANSI `input`/`output`/`wire` declarations, gate-primitive
/// instances with instance names and output-first connections, optional
/// `(* vt = "..." *)` threshold attributes, `//` and `/* */` comments, and
/// escaped identifiers.  Vector ports, `assign`, behavioural blocks and
/// user-defined submodules are rejected with a line-anchored error.
///
/// # Errors
///
/// [`VerilogError::Syntax`] for text outside the subset;
/// [`VerilogError::Netlist`] when the described circuit is structurally
/// invalid (undriven nets, combinational loops, duplicate drivers).
///
/// # Example
///
/// ```
/// use halotis_netlist::verilog;
///
/// let source = "\
/// module half_adder(a, b, sum, carry);
///   input a, b;
///   output sum, carry;
///   xor gx (sum, a, b);
///   and ga (carry, a, b);
/// endmodule
/// ";
/// let netlist = verilog::parse_verilog(source)?;
/// assert_eq!(netlist.gate_count(), 2);
/// # Ok::<(), halotis_netlist::verilog::VerilogError>(())
/// ```
pub fn parse_verilog(text: &str) -> Result<Netlist, VerilogError> {
    let mut cursor = Cursor {
        tokens: lex(text)?,
        position: 0,
    };

    let line = cursor.line();
    match cursor.next() {
        Some(Token::Ident(keyword)) if keyword == "module" => {}
        _ => return Err(syntax(line, "expected 'module' at the start of the source")),
    }
    let name = cursor.expect_ident("as the module name")?;

    // The port list itself carries no information our assembly needs — the
    // input/output declarations repeat every name with its direction — so it
    // is validated for shape and recorded only to cross-check declarations.
    let mut port_list: Option<Vec<String>> = None;
    if cursor.peek() == Some(&Token::LParen) {
        cursor.next();
        if cursor.peek() == Some(&Token::RParen) {
            cursor.next();
            port_list = Some(Vec::new());
        } else {
            let ports = cursor.ident_list("in the module port list")?;
            cursor.expect(&Token::RParen, "to close the module port list")?;
            port_list = Some(ports);
        }
    }
    cursor.expect(&Token::Semi, "after the module header")?;

    let mut spec = CircuitSpec {
        name,
        inputs: Vec::new(),
        outputs: Vec::new(),
        wires: Vec::new(),
        gates: Vec::new(),
    };

    loop {
        let line = cursor.line();
        // Attribute instance, if any, prefixes a gate instantiation.
        let mut thresholds: Option<Vec<f64>> = None;
        if cursor.peek() == Some(&Token::AttrOpen) {
            cursor.next();
            loop {
                let attr_name = cursor.expect_ident("as an attribute name")?;
                cursor.expect(&Token::Equals, "after the attribute name")?;
                let attr_line = cursor.line();
                let value = match cursor.next() {
                    Some(Token::Str(value)) => value.clone(),
                    _ => return Err(syntax(attr_line, "attribute values must be quoted strings")),
                };
                if attr_name == "vt" {
                    let parsed: Result<Vec<f64>, _> =
                        value.split(',').map(str::parse::<f64>).collect();
                    thresholds = Some(parsed.map_err(|_| {
                        syntax(attr_line, format!("invalid threshold list \"{value}\""))
                    })?);
                } else {
                    return Err(syntax(
                        attr_line,
                        format!("unknown attribute '{attr_name}' (supported: vt)"),
                    ));
                }
                match cursor.peek() {
                    Some(Token::Comma) => {
                        cursor.next();
                    }
                    _ => break,
                }
            }
            cursor.expect(&Token::AttrClose, "to close the attribute instance")?;
        }

        let keyword_line = cursor.line();
        let keyword = match cursor.next() {
            Some(Token::Ident(keyword)) => keyword.clone(),
            Some(token) => {
                return Err(syntax(
                    keyword_line,
                    format!("expected a statement keyword, got {token}"),
                ))
            }
            None => return Err(syntax(keyword_line, "missing 'endmodule'")),
        };

        match keyword.as_str() {
            "endmodule" => {
                if thresholds.is_some() {
                    return Err(syntax(line, "attribute instance before 'endmodule'"));
                }
                break;
            }
            "input" | "output" | "wire" => {
                if thresholds.is_some() {
                    return Err(syntax(
                        line,
                        "attribute instances are only supported on gate instances",
                    ));
                }
                let names = cursor.ident_list("in the declaration")?;
                cursor.expect(&Token::Semi, "to end the declaration")?;
                match keyword.as_str() {
                    "input" => spec.inputs.extend(names),
                    "output" => spec.outputs.extend(names),
                    _ => spec.wires.extend(names),
                }
            }
            "and" | "or" | "nand" | "nor" | "xor" | "xnor" | "not" | "buf" | "dff" | "dffrn"
            | "latchd" => {
                let instance = cursor.expect_ident(
                    "as the instance name (anonymous primitive instances are not supported)",
                )?;
                cursor.expect(&Token::LParen, "to open the connection list")?;
                let connections = cursor.ident_list("in the connection list")?;
                cursor.expect(&Token::RParen, "to close the connection list")?;
                cursor.expect(&Token::Semi, "to end the instance")?;
                if connections.len() < 2 {
                    return Err(syntax(
                        keyword_line,
                        format!("'{keyword}' instance needs an output and at least one input"),
                    ));
                }
                let kind = cell_for_primitive(&keyword, connections.len() - 1)
                    .map_err(|message| syntax(keyword_line, message))?;
                let mut connections = connections.into_iter();
                let output = connections.next().expect("checked len >= 2 above");
                spec.gates.push(GateSpec {
                    line: keyword_line,
                    kind,
                    instance,
                    inputs: connections.collect(),
                    output,
                    thresholds,
                });
            }
            other => {
                return Err(syntax(
                    keyword_line,
                    format!(
                        "unsupported statement '{other}' (the structural subset allows \
                         input/output/wire declarations and gate primitives only)"
                    ),
                ))
            }
        }
    }

    if let Some(token) = cursor.peek() {
        return Err(syntax(
            cursor.line(),
            format!("unexpected {token} after 'endmodule'"),
        ));
    }

    if let Some(ports) = &port_list {
        for port in ports {
            let declared =
                spec.inputs.iter().any(|n| n == port) || spec.outputs.iter().any(|n| n == port);
            if !declared {
                return Err(syntax(
                    1,
                    format!("port '{port}' has no input/output declaration"),
                ));
            }
        }
    }

    Ok(assemble(spec)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;
    use crate::{generators, parser, writer};

    fn circuit_with_overrides() -> Netlist {
        let mut builder = NetlistBuilder::new("override");
        let a = builder.add_input("a");
        let y = builder.add_net("y");
        let z = builder.add_net("z");
        builder
            .add_gate_with_thresholds(CellKind::Inv, "g1", &[a], y, &[0.35])
            .unwrap();
        builder.add_gate(CellKind::Inv, "g2", &[y], z).unwrap();
        builder.mark_output(z);
        builder.build().unwrap()
    }

    #[test]
    fn emission_contains_all_sections() {
        let text = to_verilog(&circuit_with_overrides());
        assert!(text.starts_with("module override(a, z);\n"));
        assert!(text.contains("  input a;\n"));
        assert!(text.contains("  output z;\n"));
        assert!(text.contains("  wire a, y, z;\n"));
        assert!(text.contains("  (* vt = \"0.35\" *) not g1 (y, a);\n"));
        assert!(text.contains("  not g2 (z, y);\n"));
        assert!(text.ends_with("endmodule\n"));
    }

    #[test]
    fn round_trip_is_the_identity() {
        for netlist in [
            circuit_with_overrides(),
            generators::inverter_chain(5),
            generators::ripple_carry_adder(4),
        ] {
            let reparsed = parse_verilog(&to_verilog(&netlist)).unwrap();
            assert_eq!(reparsed, netlist, "round trip of {}", netlist.name());
        }
    }

    #[test]
    fn cross_format_round_trip_matches_net_text() {
        let original = generators::ripple_carry_adder(3);
        let via_net = parser::parse(&writer::to_text(&original)).unwrap();
        let via_verilog = parse_verilog(&to_verilog(&original)).unwrap();
        assert_eq!(via_net, via_verilog);
    }

    #[test]
    fn primitive_mapping_round_trips_every_cell_kind() {
        for kind in CellKind::ALL {
            let primitive = primitive_name(kind);
            let arity = kind.input_count();
            assert_eq!(cell_for_primitive(primitive, arity).unwrap(), kind);
        }
    }

    #[test]
    fn parses_comments_attributes_and_escaped_identifiers() {
        let source = "\
// a line comment
module c(a, \\end );
  input a; /* block
              comment */
  output \\end ;
  (* vt = \"0.4\" *) not g1 (\\end , a);
endmodule
";
        let netlist = parse_verilog(source).unwrap();
        assert_eq!(netlist.gate_count(), 1);
        assert!(netlist.net_id("end").is_some());
        let g1 = netlist.gates().iter().find(|g| g.name() == "g1").unwrap();
        assert_eq!(g1.threshold_overrides(), Some(&[0.4][..]));
    }

    #[test]
    fn keyword_net_names_are_emitted_escaped_and_survive_the_trip() {
        let mut builder = NetlistBuilder::new("kw");
        let a = builder.add_input("wire");
        let y = builder.add_net("not");
        builder.add_gate(CellKind::Buf, "g", &[a], y).unwrap();
        builder.mark_output(y);
        let netlist = builder.build().unwrap();
        let text = to_verilog(&netlist);
        assert!(text.contains("\\wire "));
        assert!(text.contains("\\not "));
        assert_eq!(parse_verilog(&text).unwrap(), netlist);
    }

    #[test]
    fn arity_is_derived_from_the_connection_count() {
        let source = "\
module arity(a, b, c, y);
  input a, b, c;
  output y;
  and g (y, a, b, c);
endmodule
";
        let netlist = parse_verilog(source).unwrap();
        assert_eq!(netlist.gates()[0].kind(), CellKind::And3);
    }

    #[test]
    fn errors_carry_line_numbers_and_name_the_problem() {
        let five_input_xor = "\
module m(a, y);
  input a;
  output y;
  xor g (y, a, a, a);
endmodule
";
        let err = parse_verilog(five_input_xor).unwrap_err();
        assert!(err.to_string().contains("line 4"), "{err}");
        assert!(err.to_string().contains("3-input 'xor'"), "{err}");

        let behavioural = "module m(a, y);\n  input a;\n  output y;\n  assign y = a;\nendmodule\n";
        let err = parse_verilog(behavioural).unwrap_err();
        assert!(
            err.to_string().contains("unsupported statement 'assign'"),
            "{err}"
        );

        let literal = "module m(y);\n  output y;\n  assign y = 1'b0;\nendmodule\n";
        let err = parse_verilog(literal).unwrap_err();
        assert!(err.to_string().contains("structural subset"), "{err}");

        let anonymous = "module m(a, y);\n  input a;\n  output y;\n  not (y, a);\nendmodule\n";
        let err = parse_verilog(anonymous).unwrap_err();
        assert!(err.to_string().contains("instance name"), "{err}");

        let undeclared_port = "module m(ghost);\nendmodule\n";
        let err = parse_verilog(undeclared_port).unwrap_err();
        assert!(err.to_string().contains("ghost"), "{err}");

        let bad_vt = "\
module m(a, y);
  input a;
  output y;
  (* vt = \"abc\" *) not g (y, a);
endmodule
";
        let err = parse_verilog(bad_vt).unwrap_err();
        assert!(err.to_string().contains("invalid threshold list"), "{err}");
    }

    #[test]
    fn structural_errors_are_reported_as_netlist_errors() {
        let undriven = "\
module m(a, y);
  input a;
  output y;
  and g (y, a, missing);
endmodule
";
        assert!(matches!(
            parse_verilog(undriven),
            Err(VerilogError::Netlist(NetlistError::UndrivenNet { .. }))
        ));
    }
}
