//! Zero-delay functional evaluation.
//!
//! Timing simulators need a functional reference: the logic value every net
//! settles to, ignoring delays.  This module evaluates a netlist statically
//! given the primary-input levels, using the levelized gate order.  It is
//! used to initialise the event-driven engines (the state of every net
//! before the first stimulus edge) and by tests that check generated
//! circuits (adders, multipliers) against integer arithmetic.

use halotis_core::{LogicLevel, NetId};

use crate::levelize;
use crate::netlist::Netlist;

/// Evaluates every net of `netlist` for the given primary-input levels.
///
/// Unassigned primary inputs evaluate as [`LogicLevel::Unknown`]; unknowns
/// propagate through gates using three-valued logic.
///
/// The result is indexed by [`NetId`].
///
/// # Example
///
/// ```
/// use halotis_core::LogicLevel;
/// use halotis_netlist::{eval, generators};
///
/// let netlist = generators::multiplier(2, 2);
/// let a = [netlist.net_id("a0").unwrap(), netlist.net_id("a1").unwrap()];
/// let b = [netlist.net_id("b0").unwrap(), netlist.net_id("b1").unwrap()];
/// // 3 x 2 = 6 = 0b0110
/// let levels = eval::evaluate(
///     &netlist,
///     &[
///         (a[0], LogicLevel::High),
///         (a[1], LogicLevel::High),
///         (b[0], LogicLevel::Low),
///         (b[1], LogicLevel::High),
///     ],
/// );
/// let s1 = netlist.net_id("s1").unwrap();
/// let s2 = netlist.net_id("s2").unwrap();
/// assert_eq!(levels[s1.index()], LogicLevel::High);
/// assert_eq!(levels[s2.index()], LogicLevel::High);
/// ```
pub fn evaluate(netlist: &Netlist, assignments: &[(NetId, LogicLevel)]) -> Vec<LogicLevel> {
    let order = levelize::levelize(netlist).expect("built netlists contain no combinational loop");
    evaluate_with_order(netlist, &order, assignments)
}

/// [`evaluate`] with a caller-supplied levelization, skipping the per-call
/// levelize pass.  Callers that evaluate the same circuit many times (the
/// compiled simulator initialises every scenario this way) levelize once and
/// reuse the order.
///
/// `order` must be a levelization of `netlist`; a stale order produces
/// wrong values or panics on index mismatch.
///
/// Sequential cells evaluate to their power-up state, [`LogicLevel::Low`]:
/// static evaluation captures the instant before any clock edge, so a
/// register's output is its stored reset value regardless of its inputs.
pub fn evaluate_with_order(
    netlist: &Netlist,
    order: &levelize::Levelization,
    assignments: &[(NetId, LogicLevel)],
) -> Vec<LogicLevel> {
    let mut levels = vec![LogicLevel::Unknown; netlist.net_count()];
    for &(net, level) in assignments {
        levels[net.index()] = level;
    }
    // Register outputs are level sources: settle them before the sweep so
    // combinational logic sharing level 0 reads the stored value whatever
    // the within-level gate order is.
    for gate in netlist.gates() {
        if gate.kind().is_sequential() {
            levels[gate.output().index()] = LogicLevel::Low;
        }
    }
    let mut inputs_scratch = Vec::with_capacity(3);
    for gate_id in order.topological_order() {
        let gate = netlist.gate(gate_id);
        if gate.kind().is_sequential() {
            continue;
        }
        inputs_scratch.clear();
        inputs_scratch.extend(gate.inputs().iter().map(|&net| levels[net.index()]));
        levels[gate.output().index()] = gate.kind().evaluate(&inputs_scratch);
    }
    levels
}

/// Convenience wrapper: evaluates the circuit and reads back a bus of output
/// nets (LSB first) as an integer.  Returns `None` when any requested bit is
/// unknown.
pub fn evaluate_bus(
    netlist: &Netlist,
    assignments: &[(NetId, LogicLevel)],
    bus: &[NetId],
) -> Option<u64> {
    let levels = evaluate(netlist, assignments);
    let mut value = 0u64;
    for (position, net) in bus.iter().enumerate() {
        match levels[net.index()] {
            LogicLevel::High => value |= 1 << position,
            LogicLevel::Low => {}
            LogicLevel::Unknown => return None,
        }
    }
    Some(value)
}

/// Builds the assignment list that drives a bus of input nets (LSB first)
/// with the binary representation of `value`.
pub fn bus_assignment(bus: &[NetId], value: u64) -> Vec<(NetId, LogicLevel)> {
    bus.iter()
        .enumerate()
        .map(|(position, &net)| (net, LogicLevel::from_bool((value >> position) & 1 == 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use crate::netlist::NetlistBuilder;

    fn xor_tree() -> Netlist {
        let mut builder = NetlistBuilder::new("xor_tree");
        let a = builder.add_input("a");
        let b = builder.add_input("b");
        let c = builder.add_input("c");
        let ab = builder.add_net("ab");
        let y = builder.add_net("y");
        builder.add_gate(CellKind::Xor2, "g1", &[a, b], ab).unwrap();
        builder.add_gate(CellKind::Xor2, "g2", &[ab, c], y).unwrap();
        builder.mark_output(y);
        builder.build().unwrap()
    }

    #[test]
    fn evaluates_parity() {
        let netlist = xor_tree();
        let nets: Vec<NetId> = ["a", "b", "c"]
            .iter()
            .map(|n| netlist.net_id(n).unwrap())
            .collect();
        let y = netlist.net_id("y").unwrap();
        for value in 0..8u64 {
            let assignment = bus_assignment(&nets, value);
            let levels = evaluate(&netlist, &assignment);
            let expected = LogicLevel::from_bool(value.count_ones() % 2 == 1);
            assert_eq!(levels[y.index()], expected, "value {value}");
        }
    }

    #[test]
    fn unknown_inputs_propagate() {
        let netlist = xor_tree();
        let a = netlist.net_id("a").unwrap();
        let y = netlist.net_id("y").unwrap();
        let levels = evaluate(&netlist, &[(a, LogicLevel::High)]);
        assert_eq!(levels[y.index()], LogicLevel::Unknown);
        assert_eq!(evaluate_bus(&netlist, &[(a, LogicLevel::High)], &[y]), None);
    }

    #[test]
    fn evaluate_bus_reads_integers() {
        let netlist = xor_tree();
        let nets: Vec<NetId> = ["a", "b", "c"]
            .iter()
            .map(|n| netlist.net_id(n).unwrap())
            .collect();
        let y = netlist.net_id("y").unwrap();
        let value = evaluate_bus(&netlist, &bus_assignment(&nets, 0b011), &[y]);
        assert_eq!(value, Some(0));
        let value = evaluate_bus(&netlist, &bus_assignment(&nets, 0b111), &[y]);
        assert_eq!(value, Some(1));
    }
}
