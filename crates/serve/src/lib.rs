//! Simulation as a service: the HALOTIS compiled-circuit daemon.
//!
//! The engine's compile-once artefacts ([`CompiledCircuit`]) are expensive
//! to build and cheap to run; this crate puts them behind a long-lived
//! daemon so many clients can share one compilation.  The pieces:
//!
//! | Module | Contents |
//! |---|---|
//! | [`frame`] | 4-byte length-prefixed framing, with timeout/size defence |
//! | [`json`] | dependency-free JSON reader/writer (floats round-trip bitwise) |
//! | [`protocol`] | request/response grammar + every structured error code |
//! | [`cache`] | fingerprint-keyed LRU circuit cache with what-if edit overlays |
//! | [`scheduler`] | fixed worker pool, one reusable [`SimState`] arena per worker |
//! | [`server`] | TCP + Unix-socket listeners, dispatch, graceful drain |
//! | [`client`] | blocking client (pipelining-capable) |
//! | [`loadgen`] | corpus replay load generator + golden-stats differential check |
//!
//! The wire contract is specified in `PROTOCOL.md` at the repository root.
//! Two binaries ship from the facade crate: `halotis-serve` (the daemon)
//! and `halotis-load` (the load generator feeding `BENCH_serve.json`).
//!
//! Responses are **bit-identical** to in-process runs: the daemon funnels
//! every simulation through the same [`CompiledCircuit::run_observed`] path
//! the corpus runner uses, worker arenas are re-shaped per circuit via
//! [`CompiledCircuit::adapt_state`] (proven equivalent to fresh arenas),
//! and floats cross the wire in shortest-round-trip form.
//!
//! [`CompiledCircuit`]: halotis_sim::CompiledCircuit
//! [`CompiledCircuit::run_observed`]: halotis_sim::CompiledCircuit::run_observed
//! [`CompiledCircuit::adapt_state`]: halotis_sim::CompiledCircuit::adapt_state
//! [`SimState`]: halotis_sim::SimState

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod frame;
pub mod json;
pub mod loadgen;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use cache::{CacheEntry, CircuitCache, LoadReport};
pub use client::{Client, Response};
pub use loadgen::{LoadOptions, LoadSummary, Target};
pub use protocol::{ErrorCode, ModelSpec, NetlistFormat, ProtocolError, Request};
pub use server::{start, ServerConfig, ServerHandle};
