//! The load generator behind `halotis-load`.
//!
//! Replays the full standard corpus (every entry × every model column)
//! through the wire protocol as N concurrent clients, measuring per-request
//! latency.  The report renders in the same `name  median D  mean D  min D`
//! line format the Criterion captures use, so `scripts/bench_to_json.py`
//! ingests it unchanged and `scripts/bench_gate.py` can gate the committed
//! `BENCH_serve.json` baseline.
//!
//! [`check_against_golden`] is the deterministic-replay mode: responses are
//! compared field-by-field (floats bitwise) against `CORPUS_stats.json`,
//! proving the daemon's numbers are the in-process corpus runner's numbers.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use halotis_corpus::{standard_corpus, CorpusEntry};
use halotis_netlist::writer;

use crate::client::{load_request, simulate_request, Client, Response};
use crate::json::{self, Value};

/// Where the daemon listens.
#[derive(Clone, Debug)]
pub enum Target {
    /// A TCP address, e.g. `127.0.0.1:7816`.
    Tcp(String),
    /// A Unix-domain socket path.
    Uds(PathBuf),
}

impl Target {
    fn connect(&self) -> std::io::Result<Client> {
        match self {
            Target::Tcp(addr) => Client::connect_tcp(addr),
            Target::Uds(path) => Client::connect_uds(path),
        }
    }
}

/// Load-run shape.
#[derive(Clone, Copy, Debug)]
pub struct LoadOptions {
    /// Concurrent client connections.
    pub clients: usize,
    /// Corpus passes each client performs.
    pub repeats: usize,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            clients: 4,
            repeats: 1,
        }
    }
}

/// Aggregated measurements of a load run.
#[derive(Clone, Debug, Default)]
pub struct LoadSummary {
    /// Requests answered `ok`.
    pub requests: u64,
    /// `busy` responses absorbed by retrying.
    pub busy_retries: u64,
    /// `unknown_key` responses absorbed by re-loading an evicted circuit.
    pub reloads: u64,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Per-request latency of every `load`.
    pub load_latencies: Vec<Duration>,
    /// Per-request latency of every `simulate`.
    pub simulate_latencies: Vec<Duration>,
}

/// The three model columns every corpus entry replays under.
pub const MODEL_COLUMNS: [&str; 3] = ["ddm", "cdm", "mix"];

fn call_with_busy_retry(
    client: &mut Client,
    frame: &str,
    busy_retries: &mut u64,
) -> Result<Response, String> {
    // Bounded retry: `busy` is explicit backpressure, so the generator backs
    // off instead of counting it as a failure. Everything else is fatal.
    for _ in 0..5000 {
        let response = client.call(frame).map_err(|err| err.to_string())?;
        match response.error_code() {
            Some("busy") => {
                *busy_retries += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            Some(code) => {
                return Err(format!(
                    "daemon answered {code}: {}",
                    response.error_message().unwrap_or("")
                ))
            }
            None => return Ok(response),
        }
    }
    Err("daemon stayed busy for 5000 retries".to_string())
}

fn replay_corpus(
    target: &Target,
    corpus: &[CorpusEntry],
    repeats: usize,
) -> Result<LoadSummary, String> {
    let mut client = target.connect().map_err(|err| err.to_string())?;
    let mut summary = LoadSummary::default();
    let mut next_id = 1u64;
    let load_entry = |client: &mut Client,
                      next_id: &mut u64,
                      summary: &mut LoadSummary,
                      entry: &CorpusEntry|
     -> Result<String, String> {
        let frame = load_request(*next_id, &writer::to_text(&entry.netlist));
        *next_id += 1;
        let started = Instant::now();
        let response = call_with_busy_retry(client, &frame, &mut summary.busy_retries)?;
        summary.load_latencies.push(started.elapsed());
        summary.requests += 1;
        response
            .ok()
            .and_then(|ok| ok.get("key"))
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("load response for {} carried no key", entry.name))
    };
    for _ in 0..repeats.max(1) {
        for entry in corpus {
            let mut key = load_entry(&mut client, &mut next_id, &mut summary, entry)?;
            for model in MODEL_COLUMNS {
                // Concurrent clients share one LRU cache, so a key can be
                // evicted between this client's load and simulate — the
                // protocol answers `unknown_key` and the client re-loads.
                loop {
                    let frame = simulate_request(next_id, &key, &entry.suite, model);
                    next_id += 1;
                    let started = Instant::now();
                    let response =
                        call_with_busy_retry(&mut client, &frame, &mut summary.busy_retries);
                    match response {
                        Ok(_) => {
                            summary.simulate_latencies.push(started.elapsed());
                            summary.requests += 1;
                            break;
                        }
                        Err(message) if message.starts_with("daemon answered unknown_key") => {
                            summary.reloads += 1;
                            if summary.reloads > 10_000 {
                                return Err("circuit evicted faster than it reloads".to_string());
                            }
                            key = load_entry(&mut client, &mut next_id, &mut summary, entry)?;
                        }
                        Err(message) => return Err(message),
                    }
                }
            }
        }
    }
    Ok(summary)
}

/// Runs the load: `options.clients` threads, each replaying the full
/// corpus `options.repeats` times over its own connection.
pub fn run_load(target: &Target, options: &LoadOptions) -> Result<LoadSummary, String> {
    let corpus = standard_corpus();
    let started = Instant::now();
    let results: Vec<Result<LoadSummary, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..options.clients.max(1))
            .map(|_| scope.spawn(|| replay_corpus(target, &corpus, options.repeats)))
            .collect();
        handles
            .into_iter()
            .map(|handle| {
                handle
                    .join()
                    .unwrap_or_else(|_| Err("client thread panicked".to_string()))
            })
            .collect()
    });
    let mut total = LoadSummary {
        wall: started.elapsed(),
        ..LoadSummary::default()
    };
    for result in results {
        let summary = result?;
        total.requests += summary.requests;
        total.busy_retries += summary.busy_retries;
        total.reloads += summary.reloads;
        total.load_latencies.extend(summary.load_latencies);
        total.simulate_latencies.extend(summary.simulate_latencies);
    }
    Ok(total)
}

/// Nearest-rank percentile over unsorted samples (`p` in 0–100).
pub fn percentile(samples: &[Duration], p: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn mean(samples: &[Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let total: Duration = samples.iter().sum();
    total / samples.len() as u32
}

fn push_metric(out: &mut String, name: &str, median: Duration, samples: &[Duration]) {
    let min = samples.iter().min().copied().unwrap_or(Duration::ZERO);
    let _ = writeln!(
        out,
        "{name}    median {median:?}  mean {:?}  min {min:?}",
        mean(samples)
    );
}

/// Renders the latency report in the capture format
/// `scripts/bench_to_json.py` parses (one metric per line).
pub fn render_report(summary: &LoadSummary) -> String {
    let mut out = String::new();
    for (name, samples) in [
        ("serve/load", &summary.load_latencies),
        ("serve/simulate", &summary.simulate_latencies),
    ] {
        for p in [50.0, 95.0, 99.0] {
            push_metric(
                &mut out,
                &format!("{name}/p{}", p as u32),
                percentile(samples, p),
                samples,
            );
        }
    }
    let period = if summary.requests == 0 {
        Duration::ZERO
    } else {
        summary.wall / summary.requests as u32
    };
    push_metric(&mut out, "serve/request_period", period, &[period]);
    let _ = writeln!(
        out,
        "# requests={} busy_retries={} reloads={} wall={:?}",
        summary.requests, summary.busy_retries, summary.reloads, summary.wall
    );
    out
}

fn expect_u64(doc: &Value, key: &str, label: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{label}: missing numeric field {key:?}"))
}

fn expect_f64(doc: &Value, key: &str, label: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{label}: missing float field {key:?}"))
}

/// Replays the corpus through the daemon and compares every scenario's
/// counters — and its energy, **bitwise** — against the committed
/// `CORPUS_stats.json` document.  Returns the number of scenarios checked.
///
/// Run this against a 1-worker daemon: the comparison itself needs no
/// ordering, but a single worker also proves the arena-reuse path (one
/// [`SimState`](halotis_sim::SimState) hopping across all 22 circuits)
/// reproduces fresh-arena numbers.
pub fn check_against_golden(target: &Target, golden_json: &str) -> Result<usize, String> {
    check_entries_against_golden(target, golden_json, None)
}

/// [`check_against_golden`] restricted to a subset of corpus entries
/// (`None` = all of them).  The debug-mode integration test replays a
/// representative slice; CI's release-mode serve job replays everything.
pub fn check_entries_against_golden(
    target: &Target,
    golden_json: &str,
    entries: Option<&[&str]>,
) -> Result<usize, String> {
    let golden =
        json::parse(golden_json).map_err(|err| format!("golden stats unparseable: {err}"))?;
    let mut expected: HashMap<String, &Value> = HashMap::new();
    for entry in golden
        .get("entries")
        .and_then(Value::as_array)
        .ok_or("golden stats carry no entries")?
    {
        for scenario in entry
            .get("scenarios")
            .and_then(Value::as_array)
            .unwrap_or(&[])
        {
            if let Some(label) = scenario.get("label").and_then(Value::as_str) {
                expected.insert(label.to_string(), scenario);
            }
        }
    }

    let mut client = target.connect().map_err(|err| err.to_string())?;
    let mut next_id = 1u64;
    let mut busy_retries = 0u64;
    let mut checked = 0usize;
    for entry in standard_corpus()
        .into_iter()
        .filter(|entry| entries.is_none_or(|names| names.contains(&entry.name.as_str())))
    {
        let text = writer::to_text(&entry.netlist);
        let frame = load_request(next_id, &text);
        next_id += 1;
        let response = call_with_busy_retry(&mut client, &frame, &mut busy_retries)?;
        let key = response
            .ok()
            .and_then(|ok| ok.get("key"))
            .and_then(Value::as_str)
            .ok_or_else(|| format!("load response for {} carried no key", entry.name))?
            .to_string();
        for model in MODEL_COLUMNS {
            let frame = simulate_request(next_id, &key, &entry.suite, model);
            next_id += 1;
            let response = call_with_busy_retry(&mut client, &frame, &mut busy_retries)?;
            let scenarios = response
                .ok()
                .and_then(|ok| ok.get("scenarios"))
                .and_then(Value::as_array)
                .ok_or_else(|| format!("simulate response for {} has no scenarios", entry.name))?;
            for row in scenarios {
                let stimulus = row
                    .get("stimulus")
                    .and_then(Value::as_str)
                    .ok_or("scenario row without stimulus label")?;
                let label = format!("{}/{stimulus}/{model}", entry.name);
                let golden_row = expected
                    .get(&label)
                    .ok_or_else(|| format!("{label}: not present in the golden stats"))?;
                for field in [
                    "events_scheduled",
                    "events_filtered",
                    "events_processed",
                    "output_transitions",
                    "degraded_transitions",
                    "collapsed_transitions",
                    "glitch_pulses",
                ] {
                    let got = expect_u64(row, field, &label)?;
                    let want = expect_u64(golden_row, field, &label)?;
                    if got != want {
                        return Err(format!(
                            "{label}: {field} diverged: daemon {got}, golden {want}"
                        ));
                    }
                }
                let got = expect_f64(row, "energy_joules", &label)?;
                let want = expect_f64(golden_row, "energy_joules", &label)?;
                if got.to_bits() != want.to_bits() {
                    return Err(format!(
                        "{label}: energy_joules diverged bitwise: daemon {got:e}, golden {want:e}"
                    ));
                }
                checked += 1;
            }
        }
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let ms = |n: u64| Duration::from_millis(n);
        let samples: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&samples, 50.0), ms(50));
        assert_eq!(percentile(&samples, 95.0), ms(95));
        assert_eq!(percentile(&samples, 99.0), ms(99));
        assert_eq!(percentile(&samples, 100.0), ms(100));
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
        assert_eq!(percentile(&[ms(7)], 99.0), ms(7));
    }

    #[test]
    fn report_lines_match_the_capture_grammar() {
        let summary = LoadSummary {
            requests: 10,
            busy_retries: 0,
            reloads: 0,
            wall: Duration::from_millis(100),
            load_latencies: vec![Duration::from_micros(120); 4],
            simulate_latencies: vec![Duration::from_millis(3); 6],
        };
        let report = render_report(&summary);
        for line in report.lines().filter(|line| !line.starts_with('#')) {
            let mut words = line.split_whitespace();
            let name = words.next().unwrap();
            assert!(name.starts_with("serve/"), "bad metric name in {line:?}");
            assert_eq!(words.next(), Some("median"));
            let median = words.next().unwrap();
            assert!(
                median.ends_with("ns")
                    || median.ends_with("µs")
                    || median.ends_with("ms")
                    || median.ends_with('s'),
                "unparseable duration {median:?}"
            );
            assert_eq!(words.next(), Some("mean"));
        }
        assert!(report.contains("serve/load/p50"));
        assert!(report.contains("serve/simulate/p99"));
        assert!(report.contains("serve/request_period"));
    }
}
