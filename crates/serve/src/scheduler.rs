//! The fixed worker pool simulations run on.
//!
//! Each worker owns one reusable [`SimState`] arena for its whole lifetime:
//! jobs adopt it via [`CompiledCircuit::adapt_state`], so steady-state
//! traffic performs no per-request arena allocation no matter which cached
//! circuit a request targets.  The queue is a bounded [`sync_channel`]:
//! when it is full, [`Scheduler::try_submit`] reports [`SubmitError::Busy`]
//! *immediately* — overload surfaces to the client as explicit
//! backpressure, never as unbounded queueing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use halotis_sim::{CompiledCircuit, SimState};

/// A worker's private, reusable simulation arena.
#[derive(Default)]
pub struct WorkerArena {
    state: Option<SimState>,
}

impl WorkerArena {
    /// Shapes the arena for `circuit` (allocating it on the worker's first
    /// job) and hands it out.  The adapted state reproduces a fresh
    /// [`CompiledCircuit::new_state`] bit for bit.
    pub fn adopt(&mut self, circuit: &CompiledCircuit<'_>) -> &mut SimState {
        match &mut self.state {
            Some(state) => {
                circuit.adapt_state(state);
                state
            }
            slot @ None => slot.insert(circuit.new_state()),
        }
    }
}

/// A unit of work for the pool.
pub type Job = Box<dyn FnOnce(&mut WorkerArena) + Send + 'static>;

/// Why a job was not accepted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full; the client should retry later.
    Busy,
    /// The pool is draining and accepts no new work.
    ShuttingDown,
}

/// The fixed-size worker pool.
pub struct Scheduler {
    sender: Mutex<Option<SyncSender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    executed: Arc<AtomicU64>,
}

impl Scheduler {
    /// Spawns `workers` threads sharing a queue of at most `queue_depth`
    /// waiting jobs (both bounded below by 1).
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let (sender, receiver) = sync_channel::<Job>(queue_depth.max(1));
        let receiver = Arc::new(Mutex::new(receiver));
        let executed = Arc::new(AtomicU64::new(0));
        let handles = (0..workers.max(1))
            .map(|index| {
                let receiver = Arc::clone(&receiver);
                let executed = Arc::clone(&executed);
                std::thread::Builder::new()
                    .name(format!("halotis-sim-{index}"))
                    .spawn(move || worker_loop(&receiver, &executed))
                    .expect("spawning a worker thread")
            })
            .collect();
        Scheduler {
            sender: Mutex::new(Some(sender)),
            workers: Mutex::new(handles),
            executed,
        }
    }

    /// Submits a job without blocking.
    pub fn try_submit(&self, job: Job) -> Result<(), SubmitError> {
        let guard = self.sender.lock().unwrap_or_else(|err| err.into_inner());
        let Some(sender) = guard.as_ref() else {
            return Err(SubmitError::ShuttingDown);
        };
        sender.try_send(job).map_err(|err| match err {
            TrySendError::Full(_) => SubmitError::Busy,
            TrySendError::Disconnected(_) => SubmitError::ShuttingDown,
        })
    }

    /// Jobs completed since startup.
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Drains the pool: no new jobs are accepted, already-queued jobs still
    /// run, and the call returns once every worker has exited.
    pub fn shutdown(&self) {
        self.sender
            .lock()
            .unwrap_or_else(|err| err.into_inner())
            .take();
        let handles: Vec<_> = self
            .workers
            .lock()
            .unwrap_or_else(|err| err.into_inner())
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>, executed: &AtomicU64) {
    let mut arena = WorkerArena::default();
    loop {
        // Hold the lock only to dequeue, never while running a job.
        let job = {
            let guard = receiver.lock().unwrap_or_else(|err| err.into_inner());
            guard.recv()
        };
        match job {
            Ok(job) => {
                job(&mut arena);
                executed.fetch_add(1, Ordering::Relaxed);
            }
            // Sender dropped and the queue is drained: shut down.
            Err(_) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    #[test]
    fn executes_jobs_and_reports_busy_when_saturated() {
        let scheduler = Scheduler::new(1, 1);
        let (done_tx, done_rx) = channel();
        let (gate_tx, gate_rx) = channel::<()>();
        let gate_rx = Mutex::new(gate_rx);

        // Occupy the single worker until the gate opens.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                scheduler
                    .try_submit(Box::new(move |_| {
                        let _ = gate_rx.lock().unwrap().recv();
                    }))
                    .unwrap();
                // Give the worker a moment to pick the blocker up, then fill
                // the queue slot and observe Busy on the next submit.
                loop {
                    match scheduler.try_submit(Box::new(|_| {})) {
                        Ok(()) => break,
                        Err(SubmitError::Busy) => std::thread::yield_now(),
                        Err(err) => panic!("unexpected {err:?}"),
                    }
                }
                let mut saw_busy = false;
                for _ in 0..1000 {
                    match scheduler.try_submit(Box::new(|_| {})) {
                        Err(SubmitError::Busy) => {
                            saw_busy = true;
                            break;
                        }
                        Ok(()) => {}
                        Err(err) => panic!("unexpected {err:?}"),
                    }
                }
                assert!(saw_busy, "a 1-deep queue must reject eventually");
                gate_tx.send(()).unwrap();
                // The queue may still be momentarily full; the assertion
                // below only needs the earlier jobs.
                let _ = scheduler.try_submit(Box::new(move |_| {
                    done_tx.send(42).unwrap();
                }));
            });
        });
        scheduler.shutdown();
        // All accepted jobs ran (drained on shutdown).
        assert!(scheduler.executed() >= 2);
        let _ = done_rx;
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let scheduler = Scheduler::new(2, 4);
        scheduler.shutdown();
        assert_eq!(
            scheduler.try_submit(Box::new(|_| {})).unwrap_err(),
            SubmitError::ShuttingDown
        );
    }
}
