//! A minimal JSON reader/writer for the wire protocol.
//!
//! The build environment is registry-free, so the daemon carries its own
//! JSON handling: a recursive-descent parser into a small [`Value`] tree for
//! *reading* requests, and string-building helpers for *writing* responses.
//! Floats render with Rust's shortest-round-trip `{:e}` formatting — the
//! same rendering the corpus golden uses — so an `f64` crosses the wire
//! bit-exactly.
//!
//! Deliberate limits (documented in `PROTOCOL.md`): numbers are `f64`, so
//! integers are exact only up to 2^53; object keys keep their first
//! occurrence (duplicates are rejected); no `\u` surrogate-pair pedantry
//! beyond what [`char::from_u32`] accepts.

use std::fmt::Write as _;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers are exact up to 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in declaration order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` on other variants or a missing key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(text) => Some(text),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(value) => Some(*value),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        let value = self.as_f64()?;
        ((0.0..=9_007_199_254_740_992.0).contains(&value) && value.fract() == 0.0)
            .then_some(value as u64)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(value) => Some(*value),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it was noticed at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the violation.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        offset: 0,
        depth: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.offset != parser.bytes.len() {
        return Err(parser.error("trailing data after document"));
    }
    Ok(value)
}

/// Nesting bound: a hostile frame of `[[[[…` must not overflow the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    offset: usize,
    depth: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.offset,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.offset).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.offset += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.offset += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.offset..].starts_with(word.as_bytes()) {
            self.offset += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut members: Vec<(String, Value)> = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.offset += 1;
            self.depth -= 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            if members.iter().any(|(name, _)| *name == key) {
                return Err(self.error(format!("duplicate key {key:?}")));
            }
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.offset += 1,
                Some(b'}') => {
                    self.offset += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.offset += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.offset += 1,
                Some(b']') => {
                    self.offset += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.offset += 1;
                    return Ok(text);
                }
                Some(b'\\') => {
                    self.offset += 1;
                    let escape = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.offset += 1;
                    match escape {
                        b'"' => text.push('"'),
                        b'\\' => text.push('\\'),
                        b'/' => text.push('/'),
                        b'b' => text.push('\u{0008}'),
                        b'f' => text.push('\u{000C}'),
                        b'n' => text.push('\n'),
                        b'r' => text.push('\r'),
                        b't' => text.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.offset..self.offset + 4)
                                .and_then(|hex| std::str::from_utf8(hex).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.offset += 4;
                            text.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(byte) if byte < 0x20 => {
                    return Err(self.error("raw control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.offset..];
                    let step = std::str::from_utf8(rest)
                        .ok()
                        .and_then(|s| s.chars().next())
                        .map(|c| c.len_utf8())
                        .ok_or_else(|| self.error("invalid UTF-8"))?;
                    text.push_str(std::str::from_utf8(&rest[..step]).unwrap());
                    self.offset += step;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.offset;
        if self.peek() == Some(b'-') {
            self.offset += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.offset += 1;
        }
        if self.peek() == Some(b'.') {
            self.offset += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.offset += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.offset += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.offset += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.offset += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.offset]).unwrap();
        let value: f64 = text.parse().map_err(|_| ParseError {
            message: format!("bad number {text:?}"),
            offset: start,
        })?;
        if !value.is_finite() {
            return Err(ParseError {
                message: format!("number {text:?} out of range"),
                offset: start,
            });
        }
        Ok(Value::Number(value))
    }
}

/// Appends a JSON string literal (quotes and escapes included) to `out`.
pub fn push_string(out: &mut String, text: &str) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a string as a standalone JSON literal.
pub fn string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    push_string(&mut out, text);
    out
}

/// Renders an `f64` in shortest-round-trip scientific notation — the same
/// rendering the corpus golden uses, so values survive the wire bit-exactly.
pub fn number(value: f64) -> String {
    format!("{value:e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = parse(r#"{"op":"load","n":3,"x":[1,2.5,-4e-2],"b":true,"z":null}"#).unwrap();
        assert_eq!(doc.get("op").and_then(Value::as_str), Some("load"));
        assert_eq!(doc.get("n").and_then(Value::as_u64), Some(3));
        let items = doc.get("x").and_then(Value::as_array).unwrap();
        assert_eq!(items[2].as_f64(), Some(-0.04));
        assert_eq!(doc.get("b").and_then(Value::as_bool), Some(true));
        assert_eq!(doc.get("z"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a":1,"a":2}"#).is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
        assert!(parse(&("[".repeat(100) + &"]".repeat(100))).is_err());
    }

    #[test]
    fn strings_round_trip_through_escaping() {
        let nasty = "a\"b\\c\nd\te\u{0007}π";
        let rendered = string(nasty);
        let parsed = parse(&rendered).unwrap();
        assert_eq!(parsed.as_str(), Some(nasty));
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for value in [0.1, 1.0 / 3.0, 6.626e-34, 1.0, 0.0, 123456789.125] {
            let rendered = number(value);
            let parsed = parse(&rendered).unwrap();
            assert_eq!(parsed.as_f64().unwrap().to_bits(), value.to_bits());
        }
    }
}
