//! The compiled-circuit cache and its what-if edit overlays.
//!
//! A `load` request parses netlist text, canonicalises it through the
//! repository's writer, and fingerprints the canonical form — so two
//! textual variations of the same circuit share one cache slot and one
//! compilation.  Entries hold a **pristine** [`CompiledCircuit`] plus an
//! optional **overlay**: a clone carrying outstanding `edit` scripts, with
//! an inverse [`EditScript`] stack ([`halotis_netlist::EditLog::invert`]) so `revert` can
//! walk edits back one at a time without recompiling.
//!
//! Eviction is LRU over a monotone touch tick, bounded by a fixed capacity.
//! Evicting an entry that is mid-simulation is safe: requests hold an
//! [`Arc`], so the circuit lives until the last in-flight request drops it
//! (its key simply stops resolving).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use halotis_netlist::{
    parser, technology, verilog, writer, EditScript, Library, Netlist, NetlistError,
};
use halotis_sim::CompiledCircuit;

use crate::protocol::{EditCommand, ErrorCode, NetlistFormat, ProtocolError};

/// The daemon's one library, with `'static` lifetime so compiled circuits
/// are cacheable across connections.
pub fn library() -> &'static Library {
    static LIBRARY: OnceLock<Library> = OnceLock::new();
    LIBRARY.get_or_init(technology::cmos06)
}

/// 64-bit FNV-1a over the library name and the canonical netlist text.
fn fingerprint(library_name: &str, canonical: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in library_name
        .as_bytes()
        .iter()
        .chain(&[0u8])
        .chain(canonical.as_bytes())
    {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Outstanding what-if edits on top of a pristine circuit.
#[derive(Debug)]
pub struct Overlay {
    /// The edited circuit (a clone of the pristine one, mutated in place).
    pub circuit: CompiledCircuit<'static>,
    /// Inverse scripts, one per outstanding `edit`, newest last.
    pub revert_stack: Vec<EditScript>,
    /// Set when some edit lost invertibility (a renumbering removal); the
    /// only revert left is a full reset to pristine.
    pub non_invertible: bool,
}

/// The mutable half of a cache entry, behind the entry's [`RwLock`].
#[derive(Debug)]
pub struct CircuitState {
    /// The as-loaded compilation; never mutated after insert.
    pub pristine: CompiledCircuit<'static>,
    /// Outstanding edits, if any.
    pub overlay: Option<Overlay>,
}

impl CircuitState {
    /// The circuit requests should run against: the overlay when edits are
    /// outstanding, the pristine compilation otherwise.
    pub fn active(&self) -> &CompiledCircuit<'static> {
        self.overlay
            .as_ref()
            .map_or(&self.pristine, |overlay| &overlay.circuit)
    }

    /// Applies one edit request atomically: the commands run against a
    /// *clone* of the active circuit, which replaces the overlay only when
    /// every command succeeded.  On any failure the clone is discarded and
    /// the state is untouched (the engine treats a half-edited circuit as
    /// stale, so partial application is never acceptable here).
    pub fn apply_commands(
        &mut self,
        commands: &[EditCommand],
    ) -> Result<EditReport, ProtocolError> {
        let mut circuit = self.active().clone();
        let mut failure: Option<ProtocolError> = None;
        let result = circuit.edit(|session| {
            for command in commands {
                if let Some(error) = apply_command(session, command) {
                    return match error {
                        CommandError::Netlist(err) => Err(err),
                        CommandError::Protocol(err) => {
                            failure = Some(err);
                            // Sentinel to abort the session; the clone is
                            // discarded below, so it never escapes.
                            Err(NetlistError::DuplicateNet {
                                name: String::new(),
                            })
                        }
                    };
                }
            }
            Ok(())
        });
        let log = match result {
            Ok(log) => log,
            Err(err) => {
                return Err(failure.unwrap_or_else(|| {
                    ProtocolError::new(ErrorCode::NetlistError, err.to_string())
                }))
            }
        };

        let (mut revert_stack, was_non_invertible) = match self.overlay.take() {
            Some(overlay) => (overlay.revert_stack, overlay.non_invertible),
            None => (Vec::new(), false),
        };
        let non_invertible = was_non_invertible || !log.is_invertible();
        if non_invertible {
            // Stepwise history is no longer replayable; only a reset remains.
            revert_stack.clear();
        } else {
            revert_stack.push(log.invert().expect("invertible log must invert"));
        }
        let report = EditReport {
            edits: log.edits(),
            revert_depth: revert_stack.len(),
            invertible: !non_invertible,
        };
        self.overlay = Some(Overlay {
            circuit,
            revert_stack,
            non_invertible,
        });
        Ok(report)
    }

    /// Undoes the most recent outstanding edit.  Returns how the revert was
    /// performed: `"inverse"` (one script replayed backwards) or `"reset"`
    /// (overlay dropped wholesale, because invertibility was lost).
    pub fn revert(&mut self) -> Result<RevertReport, ProtocolError> {
        let Some(mut overlay) = self.overlay.take() else {
            return Err(ProtocolError::new(
                ErrorCode::NothingToRevert,
                "no edits are outstanding on this circuit",
            ));
        };
        if overlay.non_invertible {
            // Dropping the overlay *is* the revert: the pristine circuit
            // becomes active again.
            return Ok(RevertReport {
                via: "reset",
                revert_depth: 0,
            });
        }
        let script = overlay
            .revert_stack
            .pop()
            .expect("invertible overlay keeps one script per edit");
        if overlay
            .circuit
            .edit(|session| script.apply(session))
            .is_err()
        {
            // An inverse script failing means the overlay is corrupt; fall
            // back to the reset path rather than serving a stale circuit.
            return Ok(RevertReport {
                via: "reset",
                revert_depth: 0,
            });
        }
        let revert_depth = overlay.revert_stack.len();
        if revert_depth > 0 {
            self.overlay = Some(overlay);
            Ok(RevertReport {
                via: "inverse",
                revert_depth,
            })
        } else {
            // Fully unwound: drop the overlay so the pristine tables (not a
            // behaviourally-identical edited clone) serve future requests.
            Ok(RevertReport {
                via: "inverse",
                revert_depth: 0,
            })
        }
    }
}

/// What an `edit` request reports back.
#[derive(Clone, Copy, Debug)]
pub struct EditReport {
    /// Mutating calls the session performed.
    pub edits: usize,
    /// Outstanding edits that can still be reverted stepwise.
    pub revert_depth: usize,
    /// Whether stepwise revert is still available.
    pub invertible: bool,
}

/// What a `revert` request reports back.
#[derive(Clone, Copy, Debug)]
pub struct RevertReport {
    /// `"inverse"` or `"reset"`.
    pub via: &'static str,
    /// Outstanding edits remaining after this revert.
    pub revert_depth: usize,
}

enum CommandError {
    Netlist(NetlistError),
    Protocol(ProtocolError),
}

fn resolve_gate(netlist: &Netlist, name: &str) -> Result<halotis_core::GateId, CommandError> {
    netlist
        .gates()
        .iter()
        .find(|gate| gate.name() == name)
        .map(|gate| gate.id())
        .ok_or_else(|| {
            CommandError::Protocol(ProtocolError::new(
                ErrorCode::UnknownGate,
                format!("no gate named {name:?}"),
            ))
        })
}

fn resolve_net(netlist: &Netlist, name: &str) -> Result<halotis_core::NetId, CommandError> {
    netlist.net_id(name).ok_or_else(|| {
        CommandError::Protocol(ProtocolError::new(
            ErrorCode::UnknownNet,
            format!("no net named {name:?}"),
        ))
    })
}

/// Applies one command inside an open session; `None` means success.
/// (Inverted-Option shape so the caller can keep the borrow checker happy
/// while smuggling protocol errors out of the [`CompiledCircuit::edit`]
/// closure.)
fn apply_command(
    session: &mut halotis_netlist::EditSession<'_>,
    command: &EditCommand,
) -> Option<CommandError> {
    let result = match command {
        EditCommand::SwapKind { gate, kind } => {
            resolve_gate(session.netlist(), gate).and_then(|gate| {
                session
                    .swap_cell_kind(gate, *kind)
                    .map_err(CommandError::Netlist)
            })
        }
        EditCommand::Rewire { gate, input, net } => {
            resolve_gate(session.netlist(), gate).and_then(|gate_id| {
                let net_id = resolve_net(session.netlist(), net)?;
                session
                    .rewire_input(gate_id, *input, net_id)
                    .map_err(CommandError::Netlist)
            })
        }
        EditCommand::Insert {
            kind,
            name,
            inputs,
            output,
        } => inputs
            .iter()
            .map(|input| resolve_net(session.netlist(), input))
            .collect::<Result<Vec<_>, _>>()
            .and_then(|inputs| {
                session
                    .insert_gate(*kind, name.clone(), &inputs, output.clone())
                    .map(|_| ())
                    .map_err(CommandError::Netlist)
            }),
        EditCommand::Remove { gate } => resolve_gate(session.netlist(), gate).and_then(|gate| {
            session
                .remove_gate(gate)
                .map(|_| ())
                .map_err(CommandError::Netlist)
        }),
        EditCommand::Expose { net } => resolve_net(session.netlist(), net)
            .and_then(|net| session.expose_net(net).map_err(CommandError::Netlist)),
        EditCommand::Unexpose { net } => resolve_net(session.netlist(), net)
            .and_then(|net| session.unexpose_net(net).map_err(CommandError::Netlist)),
    };
    result.err()
}

/// One cached circuit.
#[derive(Debug)]
pub struct CacheEntry {
    key: String,
    circuit_name: String,
    last_used: AtomicU64,
    /// Pristine compilation + overlay; simulate takes the read side, edit
    /// and revert the write side.
    pub state: RwLock<CircuitState>,
}

impl CacheEntry {
    /// The fingerprint key clients address this entry by.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The netlist's own name (informational).
    pub fn circuit_name(&self) -> &str {
        &self.circuit_name
    }

    /// Read access to the state, surviving poisoning (a panicking worker
    /// must not wedge the daemon).
    pub fn read_state(&self) -> std::sync::RwLockReadGuard<'_, CircuitState> {
        self.state.read().unwrap_or_else(|err| err.into_inner())
    }

    /// Write access to the state (see [`read_state`](Self::read_state)).
    pub fn write_state(&self) -> std::sync::RwLockWriteGuard<'_, CircuitState> {
        self.state.write().unwrap_or_else(|err| err.into_inner())
    }
}

/// What a `load` request reports back.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// The fingerprint key to address the circuit by.
    pub key: String,
    /// The netlist's own name.
    pub circuit: String,
    /// Gate count.
    pub gates: usize,
    /// Net count.
    pub nets: usize,
    /// `true` when the key was already compiled (this request did no work).
    pub cached: bool,
}

/// Counters the `stats` op reports for the cache.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheCounters {
    /// Circuits currently resident.
    pub entries: usize,
    /// `load` requests that found their key already compiled.
    pub hits: u64,
    /// Fresh compilations performed.
    pub compiles: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
}

/// The LRU-bounded circuit cache.
#[derive(Debug)]
pub struct CircuitCache {
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    compiles: AtomicU64,
    evictions: AtomicU64,
    entries: Mutex<HashMap<String, Arc<CacheEntry>>>,
}

impl CircuitCache {
    /// Creates a cache holding at most `capacity` circuits (minimum 1).
    pub fn new(capacity: usize) -> Self {
        CircuitCache {
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            entries: Mutex::new(HashMap::new()),
        }
    }

    fn touch(&self, entry: &CacheEntry) {
        let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        entry.last_used.store(now, Ordering::Relaxed);
    }

    /// Parses, canonicalises, fingerprints and (if new) compiles `text` in
    /// the native `.net` format.
    pub fn load(&self, text: &str) -> Result<LoadReport, ProtocolError> {
        self.load_as(text, NetlistFormat::Net)
    }

    /// [`load`](Self::load) with an explicit interchange format.
    ///
    /// The fingerprint key is computed over the canonical `.net` re-emission,
    /// never the submitted text, so the same circuit keys identically whether
    /// it arrived as `.net` or as structural Verilog.
    pub fn load_as(&self, text: &str, format: NetlistFormat) -> Result<LoadReport, ProtocolError> {
        let parsed = match format {
            NetlistFormat::Net => parser::parse(text)
                .map_err(|err| ProtocolError::new(ErrorCode::NetlistError, err.to_string()))?,
            NetlistFormat::Verilog => verilog::parse_verilog(text)
                .map_err(|err| ProtocolError::new(ErrorCode::NetlistError, err.to_string()))?,
        };
        let canonical = writer::to_text(&parsed);
        let key = format!("c-{:016x}", fingerprint(library().name(), &canonical));

        let mut entries = self.entries.lock().unwrap_or_else(|err| err.into_inner());
        if let Some(entry) = entries.get(&key) {
            self.touch(entry);
            self.hits.fetch_add(1, Ordering::Relaxed);
            let state = entry.read_state();
            return Ok(LoadReport {
                key: key.clone(),
                circuit: entry.circuit_name.clone(),
                gates: state.pristine.netlist().gates().len(),
                nets: state.pristine.netlist().nets().len(),
                cached: true,
            });
        }

        let pristine = CompiledCircuit::compile_owned(parsed, library())
            .map_err(|err| ProtocolError::new(ErrorCode::NetlistError, err.to_string()))?;
        let report = LoadReport {
            key: key.clone(),
            circuit: pristine.netlist().name().to_string(),
            gates: pristine.netlist().gates().len(),
            nets: pristine.netlist().nets().len(),
            cached: false,
        };
        let entry = Arc::new(CacheEntry {
            key: key.clone(),
            circuit_name: report.circuit.clone(),
            last_used: AtomicU64::new(0),
            state: RwLock::new(CircuitState {
                pristine,
                overlay: None,
            }),
        });
        self.touch(&entry);
        self.compiles.fetch_add(1, Ordering::Relaxed);
        entries.insert(key, entry);

        while entries.len() > self.capacity {
            let Some(victim) = entries
                .values()
                .min_by_key(|entry| entry.last_used.load(Ordering::Relaxed))
                .map(|entry| entry.key.clone())
            else {
                break;
            };
            entries.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(report)
    }

    /// Resolves a key, refreshing its LRU position.
    pub fn get(&self, key: &str) -> Option<Arc<CacheEntry>> {
        let entries = self.entries.lock().unwrap_or_else(|err| err.into_inner());
        let entry = entries.get(key)?;
        self.touch(entry);
        Some(Arc::clone(entry))
    }

    /// Snapshot of the cache counters.
    pub fn counters(&self) -> CacheCounters {
        let entries = self.entries.lock().unwrap_or_else(|err| err.into_inner());
        CacheCounters {
            entries: entries.len(),
            hits: self.hits.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_netlist::{generators, CellKind};

    fn c17_text() -> String {
        writer::to_text(&generators::c17())
    }

    #[test]
    fn load_is_idempotent_and_canonicalising() {
        let cache = CircuitCache::new(4);
        let first = cache.load(&c17_text()).unwrap();
        assert!(!first.cached);
        let second = cache.load(&c17_text()).unwrap();
        assert!(second.cached);
        assert_eq!(first.key, second.key);
        assert_eq!(cache.counters().compiles, 1);
        assert_eq!(cache.counters().hits, 1);
    }

    #[test]
    fn verilog_loads_key_identically_to_net_loads() {
        let cache = CircuitCache::new(4);
        let native = cache.load(&c17_text()).unwrap();
        let verilog = cache
            .load_as(
                &verilog::to_verilog(&generators::c17()),
                NetlistFormat::Verilog,
            )
            .unwrap();
        // Same circuit, different carrier format: one compile, one hit.
        assert_eq!(native.key, verilog.key);
        assert!(verilog.cached);
        assert_eq!(cache.counters().compiles, 1);
    }

    #[test]
    fn unparseable_verilog_reports_a_netlist_error() {
        let cache = CircuitCache::new(4);
        let err = cache
            .load_as("module broken(", NetlistFormat::Verilog)
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::NetlistError);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let cache = CircuitCache::new(2);
        let a = cache.load(&writer::to_text(&generators::c17())).unwrap();
        let b = cache
            .load(&writer::to_text(&generators::parity_tree(4)))
            .unwrap();
        // Touch `a` so `b` is the LRU victim when a third circuit arrives.
        assert!(cache.get(&a.key).is_some());
        let c = cache
            .load(&writer::to_text(&generators::ripple_carry_adder(2)))
            .unwrap();
        assert!(cache.get(&a.key).is_some());
        assert!(cache.get(&b.key).is_none());
        assert!(cache.get(&c.key).is_some());
        assert_eq!(cache.counters().evictions, 1);
        assert_eq!(cache.counters().entries, 2);
    }

    #[test]
    fn edits_overlay_and_revert_restores_pristine() {
        let cache = CircuitCache::new(4);
        let report = cache.load(&c17_text()).unwrap();
        let entry = cache.get(&report.key).unwrap();

        let mut state = entry.write_state();
        let gate = state.pristine.netlist().gates()[0].name().to_string();
        let edit = state
            .apply_commands(&[EditCommand::SwapKind {
                gate,
                kind: CellKind::Nor2,
            }])
            .unwrap();
        assert_eq!(edit.edits, 1);
        assert_eq!(edit.revert_depth, 1);
        assert!(edit.invertible);
        assert_ne!(
            state.active().netlist().gates()[0].kind(),
            state.pristine.netlist().gates()[0].kind()
        );

        let revert = state.revert().unwrap();
        assert_eq!(revert.via, "inverse");
        assert_eq!(revert.revert_depth, 0);
        assert!(state.overlay.is_none());
        assert!(matches!(
            state.revert(),
            Err(ProtocolError {
                code: ErrorCode::NothingToRevert,
                ..
            })
        ));
    }

    #[test]
    fn unknown_names_fail_atomically() {
        let cache = CircuitCache::new(4);
        let report = cache.load(&c17_text()).unwrap();
        let entry = cache.get(&report.key).unwrap();
        let mut state = entry.write_state();
        let gate = state.pristine.netlist().gates()[0].name().to_string();
        let err = state
            .apply_commands(&[
                EditCommand::SwapKind {
                    gate,
                    kind: CellKind::Nor2,
                },
                EditCommand::Remove {
                    gate: "missing".to_string(),
                },
            ])
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownGate);
        // The first (valid) command must not have leaked through.
        assert!(state.overlay.is_none());
    }
}
