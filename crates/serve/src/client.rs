//! A small blocking client for the daemon's wire protocol.
//!
//! Used by `halotis-load`, the integration tests and the CI smoke test.
//! Send and receive are independent, so a caller may pipeline several
//! requests before collecting the (possibly out-of-order) responses.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use crate::frame::{read_frame, write_frame, FrameError};
use crate::json::{self, Value};
use crate::protocol::render_suite;
use halotis_corpus::StimulusSuite;

enum Stream {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(stream) => stream.read(buf),
            Stream::Uds(stream) => stream.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(stream) => stream.write(buf),
            Stream::Uds(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(stream) => stream.flush(),
            Stream::Uds(stream) => stream.flush(),
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed or the daemon closed the connection.
    Frame(FrameError),
    /// The daemon sent bytes that are not a JSON object (protocol bug).
    BadResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(err) => write!(f, "{err}"),
            ClientError::BadResponse(detail) => write!(f, "bad response: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One parsed response frame.
#[derive(Clone, Debug)]
pub struct Response {
    /// The echoed request id (`None` for pre-parse failures).
    pub id: Option<u64>,
    /// The whole response document.
    pub doc: Value,
}

impl Response {
    /// The `"ok"` payload, if the request succeeded.
    pub fn ok(&self) -> Option<&Value> {
        self.doc.get("ok")
    }

    /// The `"error"."code"` string, if the request failed.
    pub fn error_code(&self) -> Option<&str> {
        self.doc.get("error")?.get("code")?.as_str()
    }

    /// The `"error"."message"` string, if the request failed.
    pub fn error_message(&self) -> Option<&str> {
        self.doc.get("error")?.get("message")?.as_str()
    }
}

/// A blocking protocol client.
pub struct Client {
    stream: Stream,
    max_frame: usize,
}

impl Client {
    /// Connects over TCP.
    pub fn connect_tcp(addr: &str) -> std::io::Result<Self> {
        Ok(Client {
            stream: Stream::Tcp(TcpStream::connect(addr)?),
            max_frame: 64 << 20,
        })
    }

    /// Connects over a Unix-domain socket.
    pub fn connect_uds(path: &Path) -> std::io::Result<Self> {
        Ok(Client {
            stream: Stream::Uds(UnixStream::connect(path)?),
            max_frame: 64 << 20,
        })
    }

    /// Bounds how long [`recv`](Self::recv) blocks (`None` = forever).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        match &self.stream {
            Stream::Tcp(stream) => stream.set_read_timeout(timeout),
            Stream::Uds(stream) => stream.set_read_timeout(timeout),
        }
    }

    /// Sends one raw frame body (callers build the JSON).
    pub fn send(&mut self, body: &str) -> std::io::Result<()> {
        write_frame(&mut self.stream, body.as_bytes())
    }

    /// Sends raw bytes *without* framing — only the hardening tests use
    /// this, to speak deliberately broken protocol at the daemon.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Receives one response; `Ok(None)` when the daemon closed cleanly.
    pub fn recv(&mut self) -> Result<Option<Response>, ClientError> {
        let Some(body) =
            read_frame(&mut self.stream, self.max_frame).map_err(ClientError::Frame)?
        else {
            return Ok(None);
        };
        let text =
            std::str::from_utf8(&body).map_err(|err| ClientError::BadResponse(err.to_string()))?;
        let doc = json::parse(text).map_err(|err| ClientError::BadResponse(err.to_string()))?;
        let id = doc.get("id").and_then(Value::as_u64);
        Ok(Some(Response { id, doc }))
    }

    /// Send + receive one request, expecting the connection to stay open.
    pub fn call(&mut self, body: &str) -> Result<Response, ClientError> {
        self.send(body)
            .map_err(|err| ClientError::Frame(FrameError::from(err)))?;
        self.recv()?
            .ok_or(ClientError::Frame(FrameError::Truncated))
    }
}

/// Builds a `load` request frame.
pub fn load_request(id: u64, netlist_text: &str) -> String {
    format!(
        r#"{{"op":"load","id":{id},"netlist":{}}}"#,
        json::string(netlist_text)
    )
}

/// Builds a `simulate` request frame (all observers selected).
pub fn simulate_request(id: u64, key: &str, suite: &StimulusSuite, model: &str) -> String {
    format!(
        r#"{{"op":"simulate","id":{id},"key":{},"model":{},"suite":{}}}"#,
        json::string(key),
        json::string(model),
        render_suite(suite)
    )
}

/// Builds a `revert` request frame.
pub fn revert_request(id: u64, key: &str) -> String {
    format!(r#"{{"op":"revert","id":{id},"key":{}}}"#, json::string(key))
}

/// Builds a `stats` request frame.
pub fn stats_request(id: u64) -> String {
    format!(r#"{{"op":"stats","id":{id}}}"#)
}

/// Builds a `shutdown` request frame.
pub fn shutdown_request(id: u64) -> String {
    format!(r#"{{"op":"shutdown","id":{id}}}"#)
}
