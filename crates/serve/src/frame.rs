//! Length-prefixed framing over a byte stream.
//!
//! Every protocol message — in both directions — is one *frame*: a 4-byte
//! big-endian length followed by that many bytes of UTF-8 JSON.  Framing is
//! where most of the daemon's robustness lives: the length is validated
//! against a configurable ceiling *before* any allocation, truncated frames
//! are distinguished from clean closes, and read timeouts (slow-loris
//! defence) surface as their own error variant so the server can answer with
//! a structured `timeout` error before hanging up.

use std::io::{Read, Write};

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection mid-frame (after the prefix, or
    /// partway through either the prefix or the body).
    Truncated,
    /// The length prefix announced a body larger than the negotiated ceiling.
    /// The connection must be dropped: the body was not consumed.
    TooLarge {
        /// The announced body length.
        announced: u64,
        /// The ceiling it exceeded.
        max: usize,
    },
    /// The socket read timeout expired mid-frame.
    TimedOut,
    /// Any other transport failure.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::TooLarge { announced, max } => {
                write!(f, "frame of {announced} bytes exceeds the {max}-byte limit")
            }
            FrameError::TimedOut => write!(f, "timed out waiting for frame bytes"),
            FrameError::Io(err) => write!(f, "frame transport error: {err}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(err: std::io::Error) -> Self {
        match err.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => FrameError::TimedOut,
            std::io::ErrorKind::UnexpectedEof => FrameError::Truncated,
            _ => FrameError::Io(err),
        }
    }
}

/// Reads one frame body. `Ok(None)` is a clean close (EOF exactly on a frame
/// boundary); EOF anywhere else is [`FrameError::Truncated`].
pub fn read_frame(reader: &mut impl Read, max_len: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    match reader.read(&mut prefix[..])? {
        0 => return Ok(None),
        mut got => {
            while got < 4 {
                match reader.read(&mut prefix[got..])? {
                    0 => return Err(FrameError::Truncated),
                    n => got += n,
                }
            }
        }
    }
    let announced = u32::from_be_bytes(prefix) as u64;
    if announced > max_len as u64 {
        return Err(FrameError::TooLarge {
            announced,
            max: max_len,
        });
    }
    let mut body = vec![0u8; announced as usize];
    let mut filled = 0;
    while filled < body.len() {
        match reader.read(&mut body[filled..])? {
            0 => return Err(FrameError::Truncated),
            n => filled += n,
        }
    }
    Ok(Some(body))
}

/// Writes one frame (prefix + body) and flushes.
pub fn write_frame(writer: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(body.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame body exceeds u32")
    })?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trips_a_frame() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"{\"op\":\"stats\"}").unwrap();
        let mut cursor = Cursor::new(wire);
        let body = read_frame(&mut cursor, 1 << 20).unwrap().unwrap();
        assert_eq!(body, b"{\"op\":\"stats\"}");
        assert!(read_frame(&mut cursor, 1 << 20).unwrap().is_none());
    }

    #[test]
    fn clean_eof_is_none_but_partial_prefix_is_truncated() {
        let mut empty = Cursor::new(Vec::new());
        assert!(read_frame(&mut empty, 64).unwrap().is_none());

        let mut partial = Cursor::new(vec![0u8, 0, 0]);
        assert!(matches!(
            read_frame(&mut partial, 64),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn truncated_body_is_reported() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef").unwrap();
        wire.truncate(wire.len() - 2);
        let mut cursor = Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cursor, 64),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn oversized_prefix_is_rejected_without_allocating() {
        let mut wire = u32::MAX.to_be_bytes().to_vec();
        wire.extend_from_slice(b"ignored");
        let mut cursor = Cursor::new(wire);
        match read_frame(&mut cursor, 1024) {
            Err(FrameError::TooLarge { announced, max }) => {
                assert_eq!(announced, u32::MAX as u64);
                assert_eq!(max, 1024);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }
}
