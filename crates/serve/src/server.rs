//! The daemon: listeners, per-connection protocol loops, dispatch.
//!
//! One thread per connection reads frames and dispatches them; cheap
//! operations (`load`, `edit`, `revert`, `stats`, `shutdown`) run inline,
//! while `simulate` is handed to the [`Scheduler`] worker pool and its
//! response is delivered through the connection's writer thread — so a
//! client may pipeline requests and receive responses out of order,
//! matched by `"id"`.
//!
//! Robustness invariants enforced here:
//!
//! * every failure path answers with a structured error frame (when the
//!   transport still permits one) and the daemon survives;
//! * per-connection read timeouts bound slow-loris clients;
//! * a per-connection in-flight quota plus the scheduler's bounded queue
//!   turn overload into explicit `quota` / `busy` errors, never unbounded
//!   queueing;
//! * shutdown drains: accepted work completes, new work is refused with
//!   `shutting_down`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use halotis_corpus::{mixed_model, GlitchProfile, StimulusSuite};
use halotis_delay::DelayModelKind;
use halotis_sim::{ActivityCounter, PowerAccumulator, SimulationConfig};

use crate::cache::{self, CacheEntry, CircuitCache};
use crate::frame::{read_frame, write_frame, FrameError};
use crate::json;
use crate::protocol::{
    parse_request, render_error, render_ok, ErrorCode, ModelSpec, ObserverSelection, ProtocolError,
    Request,
};
use crate::scheduler::{Scheduler, SubmitError};

/// Daemon tuning knobs; the defaults suit tests and small deployments.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// TCP bind address (e.g. `127.0.0.1:0`); `None` disables TCP.
    pub tcp: Option<String>,
    /// Unix-domain socket path; `None` disables UDS.
    pub uds: Option<PathBuf>,
    /// Worker threads running simulations.
    pub workers: usize,
    /// Bounded depth of the simulation queue (overflow answers `busy`).
    pub queue_depth: usize,
    /// Circuits the LRU cache keeps compiled.
    pub cache_capacity: usize,
    /// Largest accepted frame body, in bytes.
    pub max_frame: usize,
    /// Simulations one connection may have in flight (overflow answers
    /// `quota`).
    pub max_inflight: usize,
    /// Per-connection read timeout (slow-loris bound).
    pub read_timeout: Duration,
    /// Replay the standard corpus into the compiled-circuit cache before
    /// accepting connections, so the first `simulate` of a well-known
    /// circuit never pays compilation latency.  The cache capacity is
    /// raised to hold the whole corpus if it is smaller.
    pub preload: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            tcp: None,
            uds: None,
            workers: 2,
            queue_depth: 32,
            cache_capacity: 8,
            max_frame: 8 << 20,
            max_inflight: 8,
            read_timeout: Duration::from_secs(10),
            preload: false,
        }
    }
}

struct Shared {
    config: ServerConfig,
    cache: CircuitCache,
    scheduler: Scheduler,
    draining: AtomicBool,
    connections: AtomicUsize,
    requests: AtomicU64,
    errors: AtomicU64,
    busy_rejections: AtomicU64,
}

impl Shared {
    fn count_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// A running daemon.  Dropping the handle does **not** stop it; call
/// [`wait`](ServerHandle::wait) (after a `shutdown` request or
/// [`initiate_shutdown`](ServerHandle::initiate_shutdown)) for an orderly
/// drain.
pub struct ServerHandle {
    shared: Arc<Shared>,
    tcp_addr: Option<SocketAddr>,
    uds_path: Option<PathBuf>,
    accepters: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The TCP address actually bound (resolves port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The Unix-domain socket path, if one is bound.
    pub fn uds_path(&self) -> Option<&PathBuf> {
        self.uds_path.as_ref()
    }

    /// Flips the daemon into draining mode, as a `shutdown` request would.
    pub fn initiate_shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Blocks until the daemon has drained: accept loops exited, open
    /// connections finished (bounded by twice the read timeout), workers
    /// joined.  Returns only after a shutdown was initiated.
    pub fn wait(self) {
        for accepter in self.accepters {
            let _ = accepter.join();
        }
        let deadline =
            Instant::now() + self.shared.config.read_timeout * 2 + Duration::from_secs(1);
        while self.shared.connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        self.shared.scheduler.shutdown();
        if let Some(path) = &self.uds_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Binds the configured listeners and starts serving.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let tcp = match &config.tcp {
        Some(addr) => {
            let listener = TcpListener::bind(addr.as_str())?;
            listener.set_nonblocking(true)?;
            Some(listener)
        }
        None => None,
    };
    let uds = match &config.uds {
        Some(path) => {
            // A stale socket file from a dead daemon would fail the bind.
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            Some(listener)
        }
        None => None,
    };
    if tcp.is_none() && uds.is_none() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "server needs at least one of tcp / uds",
        ));
    }

    // Preload renders every standard-corpus netlist through the same path a
    // `load` request takes, so the cache keys match client fingerprints.
    // The capacity floor keeps the replay from evicting its own entries.
    let preload = if config.preload {
        Some(halotis_corpus::standard_corpus())
    } else {
        None
    };
    let mut config = config;
    if let Some(corpus) = &preload {
        config.cache_capacity = config.cache_capacity.max(corpus.len());
    }

    let shared = Arc::new(Shared {
        cache: CircuitCache::new(config.cache_capacity),
        scheduler: Scheduler::new(config.workers, config.queue_depth),
        draining: AtomicBool::new(false),
        connections: AtomicUsize::new(0),
        requests: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        busy_rejections: AtomicU64::new(0),
        config,
    });

    if let Some(corpus) = preload {
        for entry in &corpus {
            let text = halotis_netlist::writer::to_text(&entry.netlist);
            shared
                .cache
                .load(&text)
                .expect("standard corpus circuits always compile");
        }
    }

    let tcp_addr = tcp
        .as_ref()
        .map(|listener| listener.local_addr())
        .transpose()?;
    let mut accepters = Vec::new();
    if let Some(listener) = tcp {
        let shared = Arc::clone(&shared);
        accepters.push(
            std::thread::Builder::new()
                .name("halotis-accept-tcp".into())
                .spawn(move || accept_loop_tcp(&listener, &shared))?,
        );
    }
    if let Some(listener) = uds {
        let shared = Arc::clone(&shared);
        accepters.push(
            std::thread::Builder::new()
                .name("halotis-accept-uds".into())
                .spawn(move || accept_loop_uds(&listener, &shared))?,
        );
    }
    let uds_path = shared.config.uds.clone();
    Ok(ServerHandle {
        shared,
        tcp_addr,
        uds_path,
        accepters,
    })
}

const ACCEPT_POLL: Duration = Duration::from_millis(25);

fn accept_loop_tcp(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => spawn_connection_tcp(stream, shared),
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn accept_loop_uds(listener: &UnixListener, shared: &Arc<Shared>) {
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => spawn_connection_uds(stream, shared),
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn spawn_connection_tcp(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(()) = stream.set_nonblocking(false) else {
        return;
    };
    let Ok(()) = stream.set_read_timeout(Some(shared.config.read_timeout)) else {
        return;
    };
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    spawn_connection(stream, writer, shared);
}

fn spawn_connection_uds(stream: UnixStream, shared: &Arc<Shared>) {
    let Ok(()) = stream.set_nonblocking(false) else {
        return;
    };
    let Ok(()) = stream.set_read_timeout(Some(shared.config.read_timeout)) else {
        return;
    };
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    spawn_connection(stream, writer, shared);
}

fn spawn_connection<S>(reader: S, writer: S, shared: &Arc<Shared>)
where
    S: Read + Write + Send + 'static,
{
    let shared = Arc::clone(shared);
    shared.connections.fetch_add(1, Ordering::SeqCst);
    let shared_on_fail = Arc::clone(&shared);
    let spawned = std::thread::Builder::new()
        .name("halotis-conn".into())
        .spawn(move || {
            serve_connection(reader, writer, &shared);
            shared.connections.fetch_sub(1, Ordering::SeqCst);
        });
    if spawned.is_err() {
        // The connection is dropped; the counter must not leak.
        shared_on_fail.connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs one connection: a writer thread serialises response frames, the
/// calling thread reads and dispatches requests.
fn serve_connection<S>(mut reader: S, mut writer: S, shared: &Arc<Shared>)
where
    S: Read + Write + Send + 'static,
{
    let (reply_tx, reply_rx) = channel::<String>();
    let writer_thread = std::thread::Builder::new()
        .name("halotis-conn-writer".into())
        .spawn(move || {
            while let Ok(frame) = reply_rx.recv() {
                if write_frame(&mut writer, frame.as_bytes()).is_err() {
                    break;
                }
            }
        });
    let Ok(writer_thread) = writer_thread else {
        return;
    };

    let inflight = Arc::new(AtomicUsize::new(0));
    loop {
        match read_frame(&mut reader, shared.config.max_frame) {
            Ok(None) => break,
            Ok(Some(body)) => {
                if !dispatch(&body, shared, &reply_tx, &inflight) {
                    break;
                }
            }
            Err(FrameError::TimedOut) => {
                shared.count_error();
                let error = ProtocolError::new(
                    ErrorCode::Timeout,
                    "read timed out mid-frame; closing connection",
                );
                let _ = reply_tx.send(render_error(None, &error));
                break;
            }
            Err(FrameError::TooLarge { announced, max }) => {
                shared.count_error();
                let error = ProtocolError::new(
                    ErrorCode::FrameTooLarge,
                    format!("frame of {announced} bytes exceeds the {max}-byte limit"),
                );
                let _ = reply_tx.send(render_error(None, &error));
                break;
            }
            Err(FrameError::Truncated) | Err(FrameError::Io(_)) => break,
        }
    }
    // In-flight jobs hold their own sender clones, so queued responses for
    // pipelined requests still flush before the writer exits.
    drop(reply_tx);
    let _ = writer_thread.join();
}

/// Handles one request frame. Returns `false` when the connection should
/// close (after `shutdown`).
fn dispatch(
    body: &[u8],
    shared: &Arc<Shared>,
    reply: &Sender<String>,
    inflight: &Arc<AtomicUsize>,
) -> bool {
    shared.requests.fetch_add(1, Ordering::Relaxed);
    let (id, request) = parse_request(body);
    let request = match request {
        Ok(request) => request,
        Err(error) => {
            shared.count_error();
            let _ = reply.send(render_error(id, &error));
            return true;
        }
    };
    let id = id.expect("parse_request validated the id");

    if shared.draining.load(Ordering::SeqCst) && !matches!(request, Request::Stats) {
        shared.count_error();
        let error = ProtocolError::new(ErrorCode::ShuttingDown, "daemon is draining");
        let _ = reply.send(render_error(Some(id), &error));
        return !matches!(request, Request::Shutdown);
    }

    match request {
        Request::Load { netlist, format } => {
            let outcome = shared.cache.load_as(&netlist, format);
            send_result(
                shared,
                reply,
                id,
                outcome.map(|report| render_load(&report)),
            );
            true
        }
        Request::Simulate {
            key,
            suite,
            model,
            observers,
        } => {
            submit_simulate(shared, reply, inflight, id, key, suite, model, observers);
            true
        }
        Request::Edit { key, commands } => {
            let outcome = with_entry(shared, &key, |entry| {
                entry.write_state().apply_commands(&commands).map(|report| {
                    format!(
                        r#"{{"edits":{},"revert_depth":{},"invertible":{}}}"#,
                        report.edits, report.revert_depth, report.invertible
                    )
                })
            });
            send_result(shared, reply, id, outcome);
            true
        }
        Request::Revert { key } => {
            let outcome = with_entry(shared, &key, |entry| {
                entry.write_state().revert().map(|report| {
                    format!(
                        r#"{{"via":{},"revert_depth":{}}}"#,
                        json::string(report.via),
                        report.revert_depth
                    )
                })
            });
            send_result(shared, reply, id, outcome);
            true
        }
        Request::Stats => {
            let cache = shared.cache.counters();
            let body = format!(
                concat!(
                    r#"{{"connections":{},"requests":{},"errors":{},"busy_rejections":{},"#,
                    r#""jobs_executed":{},"workers":{},"draining":{},"#,
                    r#""cache":{{"entries":{},"hits":{},"compiles":{},"evictions":{}}}}}"#
                ),
                shared.connections.load(Ordering::SeqCst),
                shared.requests.load(Ordering::Relaxed),
                shared.errors.load(Ordering::Relaxed),
                shared.busy_rejections.load(Ordering::Relaxed),
                shared.scheduler.executed(),
                shared.config.workers,
                shared.draining.load(Ordering::SeqCst),
                cache.entries,
                cache.hits,
                cache.compiles,
                cache.evictions,
            );
            let _ = reply.send(render_ok(id, &body));
            true
        }
        Request::Shutdown => {
            shared.draining.store(true, Ordering::SeqCst);
            let _ = reply.send(render_ok(id, r#"{"draining":true}"#));
            false
        }
    }
}

fn send_result(
    shared: &Shared,
    reply: &Sender<String>,
    id: u64,
    outcome: Result<String, ProtocolError>,
) {
    let frame = match outcome {
        Ok(body) => render_ok(id, &body),
        Err(error) => {
            shared.count_error();
            render_error(Some(id), &error)
        }
    };
    let _ = reply.send(frame);
}

fn with_entry<T>(
    shared: &Shared,
    key: &str,
    f: impl FnOnce(&CacheEntry) -> Result<T, ProtocolError>,
) -> Result<T, ProtocolError> {
    let entry = shared.cache.get(key).ok_or_else(|| {
        ProtocolError::new(
            ErrorCode::UnknownKey,
            format!("no circuit {key:?} is loaded (never loaded, or evicted)"),
        )
    })?;
    f(&entry)
}

fn render_load(report: &cache::LoadReport) -> String {
    format!(
        r#"{{"key":{},"circuit":{},"gates":{},"nets":{},"cached":{}}}"#,
        json::string(&report.key),
        json::string(&report.circuit),
        report.gates,
        report.nets,
        report.cached
    )
}

/// Decrements the connection's in-flight counter even if the job panics.
struct InflightGuard(Arc<AtomicUsize>);

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

#[allow(clippy::too_many_arguments)]
fn submit_simulate(
    shared: &Arc<Shared>,
    reply: &Sender<String>,
    inflight: &Arc<AtomicUsize>,
    id: u64,
    key: String,
    suite: StimulusSuite,
    model: ModelSpec,
    observers: ObserverSelection,
) {
    let entry = match shared.cache.get(&key) {
        Some(entry) => entry,
        None => {
            shared.count_error();
            let error = ProtocolError::new(
                ErrorCode::UnknownKey,
                format!("no circuit {key:?} is loaded (never loaded, or evicted)"),
            );
            let _ = reply.send(render_error(Some(id), &error));
            return;
        }
    };

    // The suite generators assert their input-count contracts; violating
    // them from the wire must be a structured error, not a worker panic.
    if let Some(error) = validate_suite(&entry, &suite) {
        shared.count_error();
        let _ = reply.send(render_error(Some(id), &error));
        return;
    }

    if inflight.fetch_add(1, Ordering::SeqCst) >= shared.config.max_inflight {
        inflight.fetch_sub(1, Ordering::SeqCst);
        shared.count_error();
        let error = ProtocolError::new(
            ErrorCode::Quota,
            format!(
                "connection already has {} simulations in flight",
                shared.config.max_inflight
            ),
        );
        let _ = reply.send(render_error(Some(id), &error));
        return;
    }
    let guard = InflightGuard(Arc::clone(inflight));

    let shared_for_job = Arc::clone(shared);
    let reply_for_job = reply.clone();
    let job = Box::new(move |arena: &mut crate::scheduler::WorkerArena| {
        let _guard = guard;
        let outcome = run_simulate(&shared_for_job, arena, &entry, &suite, model, observers);
        send_result(&shared_for_job, &reply_for_job, id, outcome);
    });
    match shared.scheduler.try_submit(job) {
        Ok(()) => {}
        Err(submit_error) => {
            // The job (and with it the guard) was dropped by the scheduler,
            // so the quota slot is already released.
            shared.count_error();
            if submit_error == SubmitError::Busy {
                shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
            }
            let error = match submit_error {
                SubmitError::Busy => {
                    ProtocolError::new(ErrorCode::Busy, "simulation queue is full; retry later")
                }
                SubmitError::ShuttingDown => {
                    ProtocolError::new(ErrorCode::ShuttingDown, "daemon is draining")
                }
            };
            let _ = reply.send(render_error(Some(id), &error));
        }
    }
}

fn validate_suite(entry: &CacheEntry, suite: &StimulusSuite) -> Option<ProtocolError> {
    let state = entry.read_state();
    let inputs = state.active().netlist().primary_inputs().len();
    if inputs == 0 || inputs > 64 {
        return Some(ProtocolError::new(
            ErrorCode::BadRequest,
            format!("stimulus suites need 1–64 primary inputs, circuit has {inputs}"),
        ));
    }
    if matches!(suite, StimulusSuite::Exhaustive { .. })
        && inputs > halotis_corpus::stimuli::MAX_EXHAUSTIVE_INPUTS
    {
        return Some(ProtocolError::new(
            ErrorCode::BadRequest,
            format!(
                "exhaustive sweeps are limited to {} inputs, circuit has {inputs}",
                halotis_corpus::stimuli::MAX_EXHAUSTIVE_INPUTS
            ),
        ));
    }
    if let StimulusSuite::Clocked {
        period, high, skew, ..
    } = suite
    {
        if *high + *skew >= *period {
            return Some(ProtocolError::new(
                ErrorCode::BadRequest,
                "clocked suites need high_fs + skew_fs < period_fs",
            ));
        }
    }
    None
}

fn model_config(model: ModelSpec) -> SimulationConfig {
    // Must mirror the corpus columns exactly (see `CorpusEntry::scenarios`)
    // so daemon responses are bit-identical to in-process corpus runs.
    match model {
        ModelSpec::Ddm => SimulationConfig::default().model(DelayModelKind::Degradation),
        ModelSpec::Cdm => SimulationConfig::default().model(DelayModelKind::Conventional),
        ModelSpec::Mix => SimulationConfig::default().model(mixed_model()),
    }
}

fn run_simulate(
    shared: &Shared,
    arena: &mut crate::scheduler::WorkerArena,
    entry: &CacheEntry,
    suite: &StimulusSuite,
    model: ModelSpec,
    observers: ObserverSelection,
) -> Result<String, ProtocolError> {
    let started = Instant::now();
    // Holding the read lock for the whole run serialises against edits on
    // the same circuit; other circuits are unaffected.
    let state = entry.read_state();
    let circuit = state.active();
    let config = model_config(model);
    let stimuli = suite.stimuli(circuit.netlist(), cache::library());
    let sim_state = arena.adopt(circuit);

    let mut rows = String::new();
    for (index, (stimulus_label, stimulus)) in stimuli.iter().enumerate() {
        let mut observer = (
            (ActivityCounter::new(), PowerAccumulator::new()),
            GlitchProfile::new(),
        );
        let stats = circuit
            .run_observed(sim_state, stimulus, &config, &mut observer)
            .map_err(|err| ProtocolError::new(ErrorCode::SimError, err.to_string()))?;
        let ((activity, power), glitches) = &observer;
        if index > 0 {
            rows.push(',');
        }
        rows.push_str(&format!(
            concat!(
                r#"{{"stimulus":{},"events_scheduled":{},"events_filtered":{},"#,
                r#""events_processed":{},"output_transitions":{},"#,
                r#""degraded_transitions":{},"collapsed_transitions":{},"#,
                r#""queue_high_water":{}"#
            ),
            json::string(stimulus_label),
            stats.events_scheduled,
            stats.events_filtered,
            stats.events_processed,
            stats.output_transitions,
            stats.degraded_transitions,
            stats.collapsed_transitions,
            stats.queue_high_water,
        ));
        if observers.activity {
            rows.push_str(&format!(
                r#","transitions":{}"#,
                activity.total_transitions()
            ));
        }
        if observers.power {
            rows.push_str(&format!(
                r#","energy_joules":{}"#,
                json::number(power.total_joules())
            ));
        }
        if observers.glitches {
            rows.push_str(&format!(
                r#","glitch_pulses":{}"#,
                glitches.total_glitches()
            ));
        }
        rows.push('}');
    }
    let _ = shared; // counters already tracked by the caller
    Ok(format!(
        r#"{{"key":{},"model":{},"scenarios":[{}],"wall_time_ns":{}}}"#,
        json::string(entry.key()),
        json::string(model.as_str()),
        rows,
        started.elapsed().as_nanos()
    ))
}
