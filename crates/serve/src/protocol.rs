//! The request/response vocabulary of the wire protocol.
//!
//! Every frame body is one JSON object.  Requests carry an `"op"` selector
//! and a client-chosen `"id"`; responses echo the `"id"` and carry either an
//! `"ok"` object or an `"error"` object with a machine-readable `"code"`.
//! The full grammar is documented in `PROTOCOL.md` at the repository root;
//! this module is the single place where it is parsed and rendered, so the
//! spec and the code cannot drift apart silently.

use halotis_core::TimeDelta;
use halotis_corpus::StimulusSuite;
use halotis_netlist::CellKind;

use crate::json::{self, Value};

/// Machine-readable error codes, one per failure path.
///
/// The daemon guarantees that *every* failure — malformed bytes, unknown
/// keys, overload, simulation errors — maps to exactly one of these and is
/// answered with a structured error frame (when a reply is still possible).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame body was not valid UTF-8.
    MalformedFrame,
    /// The length prefix exceeded the server's frame ceiling.
    FrameTooLarge,
    /// The body was not parseable JSON.
    BadJson,
    /// The JSON was well-formed but violated the request grammar.
    BadRequest,
    /// The `"op"` selector named no known operation.
    UnknownOp,
    /// The circuit key named no cached circuit (never loaded, or evicted).
    UnknownKey,
    /// An edit command referenced a net name absent from the circuit.
    UnknownNet,
    /// An edit command referenced a gate name absent from the circuit.
    UnknownGate,
    /// The worker pool's queue is full; retry later.
    Busy,
    /// The connection exceeded its in-flight request quota.
    Quota,
    /// The socket read timeout expired mid-frame (slow-loris defence).
    Timeout,
    /// A netlist operation (parse or edit) was rejected.
    NetlistError,
    /// The simulation itself failed.
    SimError,
    /// The daemon is draining and accepts no new work.
    ShuttingDown,
    /// A revert was requested but no edits are outstanding.
    NothingToRevert,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::MalformedFrame => "malformed_frame",
            ErrorCode::FrameTooLarge => "frame_too_large",
            ErrorCode::BadJson => "bad_json",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::UnknownKey => "unknown_key",
            ErrorCode::UnknownNet => "unknown_net",
            ErrorCode::UnknownGate => "unknown_gate",
            ErrorCode::Busy => "busy",
            ErrorCode::Quota => "quota",
            ErrorCode::Timeout => "timeout",
            ErrorCode::NetlistError => "netlist_error",
            ErrorCode::SimError => "sim_error",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::NothingToRevert => "nothing_to_revert",
        }
    }
}

/// A structured protocol failure, carrying the code and a human message.
#[derive(Clone, Debug)]
pub struct ProtocolError {
    /// Which failure path was taken.
    pub code: ErrorCode,
    /// Human-readable detail (never needed by a conforming client).
    pub message: String,
}

impl ProtocolError {
    /// Creates an error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ProtocolError {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for ProtocolError {}

/// Which delay-model column a simulation runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelSpec {
    /// The degradation delay model (the paper's contribution).
    Ddm,
    /// The conventional inertial model.
    Cdm,
    /// The corpus's per-cell mixed column ([`halotis_corpus::mixed_model`]).
    Mix,
}

impl ModelSpec {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ModelSpec::Ddm => "ddm",
            ModelSpec::Cdm => "cdm",
            ModelSpec::Mix => "mix",
        }
    }

    fn parse(text: &str) -> Result<Self, ProtocolError> {
        match text {
            "ddm" => Ok(ModelSpec::Ddm),
            "cdm" => Ok(ModelSpec::Cdm),
            "mix" => Ok(ModelSpec::Mix),
            other => Err(ProtocolError::new(
                ErrorCode::BadRequest,
                format!("unknown model {other:?} (expected ddm, cdm or mix)"),
            )),
        }
    }
}

/// Which observer columns a simulate response should include.  Statistics
/// are always returned; the flags gate the derived columns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObserverSelection {
    /// Include per-scenario transition activity totals.
    pub activity: bool,
    /// Include the dissipated-energy column.
    pub power: bool,
    /// Include the glitch-pulse column.
    pub glitches: bool,
}

impl Default for ObserverSelection {
    fn default() -> Self {
        ObserverSelection {
            activity: true,
            power: true,
            glitches: true,
        }
    }
}

/// One parsed edit command, referencing circuit objects by *name* (the wire
/// has no stable ids — names are the only handle a client holds).
#[derive(Clone, Debug, PartialEq)]
pub enum EditCommand {
    /// Swap a gate's cell kind in place.
    SwapKind {
        /// Gate name.
        gate: String,
        /// Replacement kind.
        kind: CellKind,
    },
    /// Reconnect one gate input to a different net.
    Rewire {
        /// Gate name.
        gate: String,
        /// Zero-based input pin index.
        input: usize,
        /// New driving net, by name.
        net: String,
    },
    /// Insert a new gate (its output net is created with it).
    Insert {
        /// Cell kind of the new gate.
        kind: CellKind,
        /// Name for the new gate.
        name: String,
        /// Input nets, by name.
        inputs: Vec<String>,
        /// Name for the freshly created output net.
        output: String,
    },
    /// Remove a gate and its output net.
    Remove {
        /// Gate name.
        gate: String,
    },
    /// Promote a net to a primary output.
    Expose {
        /// Net name.
        net: String,
    },
    /// Demote a net from the primary outputs.
    Unexpose {
        /// Net name.
        net: String,
    },
}

/// Which interchange format a `load` request's netlist text is in.
///
/// Whatever the input format, the cache canonicalises through the native
/// `.net` writer before fingerprinting, so the same circuit loads to the
/// same key regardless of which format carried it over the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetlistFormat {
    /// The repository's native `.net` format (the default).
    Net,
    /// The structural Verilog subset (see FORMATS.md).
    Verilog,
}

impl NetlistFormat {
    /// Parses the wire spelling (`"net"` / `"verilog"`).
    pub fn parse(value: &str) -> Result<Self, ProtocolError> {
        match value {
            "net" => Ok(NetlistFormat::Net),
            "verilog" => Ok(NetlistFormat::Verilog),
            other => Err(ProtocolError::new(
                ErrorCode::BadRequest,
                format!("unknown format {other:?} (expected \"net\" or \"verilog\")"),
            )),
        }
    }
}

/// A parsed request (the `"id"` is carried separately by the server loop).
#[derive(Clone, Debug)]
pub enum Request {
    /// Compile a netlist into the circuit cache.
    Load {
        /// Netlist source text, in `format`.
        netlist: String,
        /// Which parser to run the text through (`"net"` when omitted).
        format: NetlistFormat,
    },
    /// Run a stimulus suite against a cached circuit.
    Simulate {
        /// Cache key from a prior `load`.
        key: String,
        /// The stimulus recipe.
        suite: StimulusSuite,
        /// The delay-model column.
        model: ModelSpec,
        /// Which observer columns to return.
        observers: ObserverSelection,
    },
    /// Apply a what-if edit script to a cached circuit.
    Edit {
        /// Cache key from a prior `load`.
        key: String,
        /// The commands, applied in order inside one session.
        commands: Vec<EditCommand>,
    },
    /// Undo the most recent outstanding `edit` on a cached circuit.
    Revert {
        /// Cache key from a prior `load`.
        key: String,
    },
    /// Report daemon counters.
    Stats,
    /// Begin a graceful drain.
    Shutdown,
}

fn require<'a>(doc: &'a Value, key: &str) -> Result<&'a Value, ProtocolError> {
    doc.get(key)
        .ok_or_else(|| ProtocolError::new(ErrorCode::BadRequest, format!("missing field {key:?}")))
}

fn require_str<'a>(doc: &'a Value, key: &str) -> Result<&'a str, ProtocolError> {
    require(doc, key)?.as_str().ok_or_else(|| {
        ProtocolError::new(
            ErrorCode::BadRequest,
            format!("field {key:?} must be a string"),
        )
    })
}

fn require_u64(doc: &Value, key: &str) -> Result<u64, ProtocolError> {
    require(doc, key)?.as_u64().ok_or_else(|| {
        ProtocolError::new(
            ErrorCode::BadRequest,
            format!("field {key:?} must be a non-negative integer"),
        )
    })
}

fn require_time_fs(doc: &Value, key: &str) -> Result<TimeDelta, ProtocolError> {
    let fs = require_u64(doc, key)?;
    i64::try_from(fs)
        .ok()
        .filter(|&fs| fs > 0)
        .map(TimeDelta::from_fs)
        .ok_or_else(|| {
            ProtocolError::new(
                ErrorCode::BadRequest,
                format!("field {key:?} must be a positive femtosecond count"),
            )
        })
}

fn parse_suite(doc: &Value) -> Result<StimulusSuite, ProtocolError> {
    match require_str(doc, "kind")? {
        "random" => Ok(StimulusSuite::RandomVectors {
            vectors: require_u64(doc, "vectors")? as usize,
            period: require_time_fs(doc, "period_fs")?,
            seed: require_u64(doc, "seed")?,
        }),
        "exhaustive" => Ok(StimulusSuite::Exhaustive {
            period: require_time_fs(doc, "period_fs")?,
        }),
        "toggle" => Ok(StimulusSuite::ToggleProbes {
            seed: require_u64(doc, "seed")?,
            max_probes: require_u64(doc, "max_probes")? as usize,
            pulse: require_time_fs(doc, "pulse_fs")?,
        }),
        "clocked" => Ok(StimulusSuite::Clocked {
            cycles: require_u64(doc, "cycles")? as usize,
            period: require_time_fs(doc, "period_fs")?,
            high: require_time_fs(doc, "high_fs")?,
            skew: require_time_fs(doc, "skew_fs")?,
            seed: require_u64(doc, "seed")?,
        }),
        other => Err(ProtocolError::new(
            ErrorCode::BadRequest,
            format!(
                "unknown suite kind {other:?} (expected random, exhaustive, toggle or clocked)"
            ),
        )),
    }
}

/// Renders a suite spec back to its wire form (used by the load generator).
pub fn render_suite(suite: &StimulusSuite) -> String {
    match suite {
        StimulusSuite::RandomVectors {
            vectors,
            period,
            seed,
        } => format!(
            r#"{{"kind":"random","vectors":{vectors},"period_fs":{},"seed":{seed}}}"#,
            period.as_fs()
        ),
        StimulusSuite::Exhaustive { period } => {
            format!(r#"{{"kind":"exhaustive","period_fs":{}}}"#, period.as_fs())
        }
        StimulusSuite::ToggleProbes {
            seed,
            max_probes,
            pulse,
        } => format!(
            r#"{{"kind":"toggle","seed":{seed},"max_probes":{max_probes},"pulse_fs":{}}}"#,
            pulse.as_fs()
        ),
        StimulusSuite::Clocked {
            cycles,
            period,
            high,
            skew,
            seed,
        } => format!(
            r#"{{"kind":"clocked","cycles":{cycles},"period_fs":{},"high_fs":{},"skew_fs":{},"seed":{seed}}}"#,
            period.as_fs(),
            high.as_fs(),
            skew.as_fs()
        ),
    }
}

fn parse_cell_kind(text: &str) -> Result<CellKind, ProtocolError> {
    text.parse().map_err(|_| {
        ProtocolError::new(ErrorCode::BadRequest, format!("unknown cell kind {text:?}"))
    })
}

fn parse_edit_command(doc: &Value) -> Result<EditCommand, ProtocolError> {
    match require_str(doc, "action")? {
        "swap_kind" => Ok(EditCommand::SwapKind {
            gate: require_str(doc, "gate")?.to_string(),
            kind: parse_cell_kind(require_str(doc, "kind")?)?,
        }),
        "rewire" => Ok(EditCommand::Rewire {
            gate: require_str(doc, "gate")?.to_string(),
            input: require_u64(doc, "input")? as usize,
            net: require_str(doc, "net")?.to_string(),
        }),
        "insert" => {
            let inputs = require(doc, "inputs")?
                .as_array()
                .ok_or_else(|| {
                    ProtocolError::new(ErrorCode::BadRequest, "field \"inputs\" must be an array")
                })?
                .iter()
                .map(|item| {
                    item.as_str().map(str::to_string).ok_or_else(|| {
                        ProtocolError::new(
                            ErrorCode::BadRequest,
                            "\"inputs\" entries must be net names",
                        )
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(EditCommand::Insert {
                kind: parse_cell_kind(require_str(doc, "kind")?)?,
                name: require_str(doc, "name")?.to_string(),
                inputs,
                output: require_str(doc, "output")?.to_string(),
            })
        }
        "remove" => Ok(EditCommand::Remove {
            gate: require_str(doc, "gate")?.to_string(),
        }),
        "expose" => Ok(EditCommand::Expose {
            net: require_str(doc, "net")?.to_string(),
        }),
        "unexpose" => Ok(EditCommand::Unexpose {
            net: require_str(doc, "net")?.to_string(),
        }),
        other => Err(ProtocolError::new(
            ErrorCode::BadRequest,
            format!("unknown edit action {other:?}"),
        )),
    }
}

fn parse_observers(doc: &Value) -> Result<ObserverSelection, ProtocolError> {
    let Some(value) = doc.get("observers") else {
        return Ok(ObserverSelection::default());
    };
    let names = value.as_array().ok_or_else(|| {
        ProtocolError::new(
            ErrorCode::BadRequest,
            "field \"observers\" must be an array",
        )
    })?;
    let mut selection = ObserverSelection {
        activity: false,
        power: false,
        glitches: false,
    };
    for name in names {
        match name.as_str() {
            Some("activity") => selection.activity = true,
            Some("power") => selection.power = true,
            Some("glitches") => selection.glitches = true,
            _ => {
                return Err(ProtocolError::new(
                    ErrorCode::BadRequest,
                    "observers must be \"activity\", \"power\" or \"glitches\"",
                ))
            }
        }
    }
    Ok(selection)
}

/// Parses one frame body into `(request id, request)`.
///
/// The id is extracted first and returned even alongside grammar errors when
/// possible, so the server can address the error frame to the right request.
pub fn parse_request(body: &[u8]) -> (Option<u64>, Result<Request, ProtocolError>) {
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => {
            return (
                None,
                Err(ProtocolError::new(
                    ErrorCode::MalformedFrame,
                    "frame body is not UTF-8",
                )),
            )
        }
    };
    let doc = match json::parse(text) {
        Ok(doc) => doc,
        Err(err) => {
            return (
                None,
                Err(ProtocolError::new(ErrorCode::BadJson, err.to_string())),
            )
        }
    };
    let id = doc.get("id").and_then(Value::as_u64);
    (id, parse_request_doc(&doc))
}

fn parse_request_doc(doc: &Value) -> Result<Request, ProtocolError> {
    if doc.as_object().is_none() {
        return Err(ProtocolError::new(
            ErrorCode::BadRequest,
            "request must be a JSON object",
        ));
    }
    require_u64(doc, "id")?;
    match require_str(doc, "op")? {
        "load" => Ok(Request::Load {
            netlist: require_str(doc, "netlist")?.to_string(),
            format: match doc.get("format") {
                None => NetlistFormat::Net,
                Some(value) => NetlistFormat::parse(value.as_str().ok_or_else(|| {
                    ProtocolError::new(ErrorCode::BadRequest, "field \"format\" must be a string")
                })?)?,
            },
        }),
        "simulate" => Ok(Request::Simulate {
            key: require_str(doc, "key")?.to_string(),
            suite: parse_suite(require(doc, "suite")?)?,
            model: ModelSpec::parse(require_str(doc, "model")?)?,
            observers: parse_observers(doc)?,
        }),
        "edit" => {
            let commands = require(doc, "commands")?
                .as_array()
                .ok_or_else(|| {
                    ProtocolError::new(ErrorCode::BadRequest, "field \"commands\" must be an array")
                })?
                .iter()
                .map(parse_edit_command)
                .collect::<Result<Vec<_>, _>>()?;
            if commands.is_empty() {
                return Err(ProtocolError::new(
                    ErrorCode::BadRequest,
                    "edit requires at least one command",
                ));
            }
            Ok(Request::Edit {
                key: require_str(doc, "key")?.to_string(),
                commands,
            })
        }
        "revert" => Ok(Request::Revert {
            key: require_str(doc, "key")?.to_string(),
        }),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ProtocolError::new(
            ErrorCode::UnknownOp,
            format!("unknown op {other:?}"),
        )),
    }
}

/// Renders a success frame: `{"id":N,"ok":<body>}`.
pub fn render_ok(id: u64, body: &str) -> String {
    format!(r#"{{"id":{id},"ok":{body}}}"#)
}

/// Renders an error frame: `{"id":N,"error":{"code":...,"message":...}}`.
/// A `null` id addresses failures seen before an id could be extracted.
pub fn render_error(id: Option<u64>, error: &ProtocolError) -> String {
    let id = id.map_or_else(|| "null".to_string(), |id| id.to_string());
    format!(
        r#"{{"id":{id},"error":{{"code":{},"message":{}}}}}"#,
        json::string(error.code.as_str()),
        json::string(&error.message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_simulate_request() {
        let body = br#"{"op":"simulate","id":7,"key":"c-1234","model":"mix",
                        "suite":{"kind":"random","vectors":16,"period_fs":5000000,"seed":9},
                        "observers":["power"]}"#;
        let (id, request) = parse_request(body);
        assert_eq!(id, Some(7));
        match request.unwrap() {
            Request::Simulate {
                key,
                suite,
                model,
                observers,
            } => {
                assert_eq!(key, "c-1234");
                assert_eq!(model, ModelSpec::Mix);
                assert!(!observers.activity && observers.power && !observers.glitches);
                match suite {
                    StimulusSuite::RandomVectors {
                        vectors,
                        period,
                        seed,
                    } => {
                        assert_eq!((vectors, seed), (16, 9));
                        assert_eq!(period.as_fs(), 5_000_000);
                    }
                    other => panic!("wrong suite {other:?}"),
                }
            }
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn load_requests_default_to_the_net_format() {
        let (_, request) = parse_request(br#"{"op":"load","id":1,"netlist":"circuit x"}"#);
        match request.unwrap() {
            Request::Load { format, .. } => assert_eq!(format, NetlistFormat::Net),
            other => panic!("wrong request {other:?}"),
        }

        let (_, request) = parse_request(
            br#"{"op":"load","id":2,"netlist":"module x; endmodule","format":"verilog"}"#,
        );
        match request.unwrap() {
            Request::Load { format, .. } => assert_eq!(format, NetlistFormat::Verilog),
            other => panic!("wrong request {other:?}"),
        }

        let (_, request) =
            parse_request(br#"{"op":"load","id":3,"netlist":"circuit x","format":"edif"}"#);
        let err = request.unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("edif"), "{}", err.message);

        let (_, request) =
            parse_request(br#"{"op":"load","id":4,"netlist":"circuit x","format":7}"#);
        assert_eq!(request.unwrap_err().code, ErrorCode::BadRequest);
    }

    #[test]
    fn suite_specs_round_trip_through_render() {
        for suite in [
            StimulusSuite::RandomVectors {
                vectors: 8,
                period: TimeDelta::from_fs(5_000_000),
                seed: 0xFEED,
            },
            StimulusSuite::Exhaustive {
                period: TimeDelta::from_fs(4_000_000),
            },
            StimulusSuite::ToggleProbes {
                seed: 0x17,
                max_probes: 5,
                pulse: TimeDelta::from_fs(500_000),
            },
        ] {
            let doc = json::parse(&render_suite(&suite)).unwrap();
            assert_eq!(parse_suite(&doc).unwrap(), suite);
        }
    }

    #[test]
    fn grammar_violations_carry_the_id_when_extractable() {
        let (id, request) = parse_request(br#"{"op":"simulate","id":3}"#);
        assert_eq!(id, Some(3));
        let err = request.unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);

        let (id, request) = parse_request(br#"{"op":"warp","id":4}"#);
        assert_eq!(id, Some(4));
        assert_eq!(request.unwrap_err().code, ErrorCode::UnknownOp);

        let (id, request) = parse_request(b"\xff\xfe");
        assert_eq!(id, None);
        assert_eq!(request.unwrap_err().code, ErrorCode::MalformedFrame);

        let (id, request) = parse_request(b"{not json");
        assert_eq!(id, None);
        assert_eq!(request.unwrap_err().code, ErrorCode::BadJson);
    }

    #[test]
    fn error_frames_render_with_null_and_numeric_ids() {
        let err = ProtocolError::new(ErrorCode::Busy, "queue full");
        assert_eq!(
            render_error(Some(9), &err),
            r#"{"id":9,"error":{"code":"busy","message":"queue full"}}"#
        );
        assert!(render_error(None, &err).starts_with(r#"{"id":null,"#));
    }
}
