//! The HALOTIS event-driven logic-timing simulation kernel.
//!
//! This crate is the reproduction of the paper's primary contribution: a
//! simulator built around the distinction between **transitions** (linear
//! voltage ramps on nets) and **events** (the instants those ramps cross the
//! individual threshold voltage of each fanout gate input), combined with
//! the Inertial and Degradation Delay Model (IDDM).
//!
//! The pieces map directly onto the paper's sections:
//!
//! * [`queue`] — the event queue with the per-input insert/cancel rule of
//!   Fig. 4 (an event arriving *before* the pending previous event on the
//!   same input deletes it: that is where runt pulses die, per input),
//! * [`compiled`] / [`state`] — the compile-once/run-many core: a
//!   [`CompiledCircuit`] holds every static table in flat arrays, a
//!   [`SimState`] arena holds the per-run mutable state and is reset (not
//!   reallocated) between runs,
//! * [`observer`] — the streaming [`SimObserver`] contract the engine
//!   drives: the engine executes, observers decide what to retain
//!   ([`WaveformRecorder`], [`ActivityCounter`], [`VcdStreamer`],
//!   [`PowerAccumulator`]),
//! * [`engine`] — the single-shot [`Simulator`] front end over the compiled
//!   core, executing the simulation algorithm of Fig. 4: pop event, evaluate
//!   the gate through the configured
//!   [`DelayModel`], emit the output transition,
//!   generate one event per fanout input threshold (Fig. 3),
//! * [`batch`] — the [`BatchRunner`], executing many `(stimulus, config)`
//!   scenarios across scoped threads sharing one [`CompiledCircuit`],
//! * [`classical`] — a conventional single-threshold, inertial-delay
//!   event-driven simulator, the baseline whose wrong behaviour Fig. 1
//!   demonstrates,
//! * [`ramp`] — output-ramp shaping rules shared by both engines,
//! * [`stats`] / [`result`] — event counts, filtered-event counts and
//!   switching activity (Table 1) plus the recorded waveforms (Figs. 6–7).
//!
//! # Which API should I use?
//!
//! | Workload | Call | Produces |
//! |---|---|---|
//! | One stimulus, full waveforms | [`Simulator::run`] | [`SimulationResult`] |
//! | Both models on one stimulus | [`Simulator::run_both_models`] / [`CompiledCircuit::run_both_models`] | `(ddm, cdm)` results |
//! | Many stimuli, sequential, full waveforms | [`CompiledCircuit::run_with`] + reused [`SimState`] | [`SimulationResult`] per run |
//! | Many stimuli, statistics only | [`CompiledCircuit::run_stats`] | [`SimulationStats`] per run, zero waveform memory |
//! | Custom retention (counts, VCD, power, your own) | [`CompiledCircuit::run_observed`] | whatever the [`SimObserver`] keeps |
//! | Many stimuli, parallel, full waveforms | [`BatchRunner::run`] | [`BatchReport`] of results |
//! | Many stimuli, parallel, streaming observers | [`BatchRunner::run_observed`] | [`ObservedReport`] of observers |
//!
//! The delay model is part of the [`SimulationConfig`]
//! (`config.model(...)`), never of the call: every row above runs under the
//! built-in DDM/CDM kinds, a
//! [`PerCellOverride`](halotis_delay::PerCellOverride) mix, or any custom
//! [`DelayModel`] implementation alike.
//!
//! # Migrating from the enum-only API
//!
//! The engine used to branch on a `DelayModelKind` enum and always record
//! waveforms.  Call sites migrate mechanically:
//!
//! * `SimulationConfig::with_model(kind)` →
//!   `SimulationConfig::default().model(kind)` (the old constructor has
//!   been removed; `ddm()` / `cdm()` are unchanged),
//! * assignments `config.model = kind` → `config.model = kind.into()` (the
//!   field now holds a [`DelayModelHandle`],
//!   which any `DelayModel` implementation converts into),
//! * `result.model()` now returns the handle; use
//!   [`SimulationResult::model_kind`] where the built-in kind was matched
//!   and [`SimulationResult::model_label`] for report text,
//! * code that only consumed statistics or counts from a
//!   [`SimulationResult`] should switch to [`CompiledCircuit::run_stats`],
//!   an [`ActivityCounter`], or [`BatchRunner::run_observed`] and skip
//!   waveform retention entirely.
//!
//! # Quick start
//!
//! ```
//! use halotis_core::{LogicLevel, Time};
//! use halotis_delay::DelayModelKind;
//! use halotis_netlist::{generators, technology};
//! use halotis_sim::{SimulationConfig, Simulator};
//! use halotis_waveform::Stimulus;
//!
//! // Three inversions: a rising input edge produces a falling output edge.
//! let netlist = generators::inverter_chain(3);
//! let library = technology::cmos06();
//! let mut stimulus = Stimulus::new(library.default_input_slew());
//! stimulus.set_initial("in", LogicLevel::Low);
//! stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
//!
//! let simulator = Simulator::new(&netlist, &library);
//! let result = simulator.run(&stimulus, &SimulationConfig::ddm())?;
//! assert!(result.stats().events_processed > 0);
//! let out = result.ideal_waveform("out").expect("output net exists");
//! assert_eq!(out.final_level(), LogicLevel::Low);
//! # Ok::<(), halotis_sim::SimulationError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod classical;
pub mod compiled;
pub mod config;
pub mod engine;
pub mod error;
pub mod event;
pub mod observer;
pub mod pins;
pub mod power;
pub mod queue;
pub mod ramp;
pub mod result;
pub mod sta;
pub mod state;
pub mod stats;
pub mod wheel;

pub use batch::{
    BatchReport, BatchRunner, BatchSummary, ObservedOutcome, ObservedReport, Scenario,
    ScenarioOutcome,
};
pub use compiled::CompiledCircuit;
pub use config::SimulationConfig;
pub use engine::Simulator;
pub use error::SimulationError;
pub use event::Event;
pub use observer::{ActivityCounter, PowerAccumulator, SimObserver, VcdStreamer, WaveformRecorder};
pub use result::SimulationResult;
pub use state::SimState;
pub use stats::SimulationStats;

// The model vocabulary a configuration needs, re-exported so downstream code
// can plug in models without importing `halotis_delay` directly.
pub use halotis_delay::{DelayModel, DelayModelHandle, DelayModelKind};
