//! The HALOTIS event-driven logic-timing simulation kernel.
//!
//! This crate is the reproduction of the paper's primary contribution: a
//! simulator built around the distinction between **transitions** (linear
//! voltage ramps on nets) and **events** (the instants those ramps cross the
//! individual threshold voltage of each fanout gate input), combined with
//! the Inertial and Degradation Delay Model (IDDM).
//!
//! The pieces map directly onto the paper's sections:
//!
//! * [`queue`] — the event queue with the per-input insert/cancel rule of
//!   Fig. 4 (an event arriving *before* the pending previous event on the
//!   same input deletes it: that is where runt pulses die, per input),
//! * [`compiled`] / [`state`] — the compile-once/run-many core: a
//!   [`CompiledCircuit`] holds every static table in flat arrays, a
//!   [`SimState`] arena holds the per-run mutable state and is reset (not
//!   reallocated) between runs,
//! * [`engine`] — the single-shot [`Simulator`] front end over the compiled
//!   core, executing the simulation algorithm of Fig. 4: pop event, evaluate
//!   the gate through the DDM (or the conventional model), emit the output
//!   transition, generate one event per fanout input threshold (Fig. 3),
//! * [`batch`] — the [`BatchRunner`], executing many `(stimulus, config)`
//!   scenarios across scoped threads sharing one [`CompiledCircuit`],
//! * [`classical`] — a conventional single-threshold, inertial-delay
//!   event-driven simulator, the baseline whose wrong behaviour Fig. 1
//!   demonstrates,
//! * [`ramp`] — output-ramp shaping rules shared by both engines,
//! * [`stats`] / [`result`] — event counts, filtered-event counts and
//!   switching activity (Table 1) plus the recorded waveforms (Figs. 6–7).
//!
//! # Which API should I use?
//!
//! * One stimulus, one circuit: [`Simulator::run`].
//! * Many stimuli on one circuit, sequential:
//!   [`CompiledCircuit::compile`] + [`CompiledCircuit::run_with`] with one
//!   reused [`SimState`].
//! * Many stimuli on one circuit, parallel: [`BatchRunner::run`].
//!
//! # Quick start
//!
//! ```
//! use halotis_core::{LogicLevel, Time};
//! use halotis_delay::DelayModelKind;
//! use halotis_netlist::{generators, technology};
//! use halotis_sim::{SimulationConfig, Simulator};
//! use halotis_waveform::Stimulus;
//!
//! // Three inversions: a rising input edge produces a falling output edge.
//! let netlist = generators::inverter_chain(3);
//! let library = technology::cmos06();
//! let mut stimulus = Stimulus::new(library.default_input_slew());
//! stimulus.set_initial("in", LogicLevel::Low);
//! stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
//!
//! let simulator = Simulator::new(&netlist, &library);
//! let result = simulator.run(&stimulus, &SimulationConfig::ddm())?;
//! assert!(result.stats().events_processed > 0);
//! let out = result.ideal_waveform("out").expect("output net exists");
//! assert_eq!(out.final_level(), LogicLevel::Low);
//! # Ok::<(), halotis_sim::SimulationError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod classical;
pub mod compiled;
pub mod config;
pub mod engine;
pub mod error;
pub mod event;
pub mod pins;
pub mod power;
pub mod queue;
pub mod ramp;
pub mod result;
pub mod state;
pub mod stats;

pub use batch::{BatchReport, BatchRunner, Scenario, ScenarioOutcome};
pub use compiled::CompiledCircuit;
pub use config::SimulationConfig;
pub use engine::Simulator;
pub use error::SimulationError;
pub use event::Event;
pub use result::SimulationResult;
pub use state::SimState;
pub use stats::SimulationStats;
