//! The HALOTIS event queue.
//!
//! The queue implements the scheduling rule of the paper's Fig. 4.  Events
//! are kept globally ordered by time, and *per gate input* the queue
//! remembers the pending (not yet simulated) events in arrival order.  When
//! a new event `Ej` is generated for an input that already has a pending
//! event `Ej-1`:
//!
//! * if `Ej` happens **after** `Ej-1`, it is inserted normally — the input
//!   sees both edges;
//! * otherwise `Ej-1` is **removed** from the queue and `Ej` is *not*
//!   inserted: the pulse bounded by the two events never existed for this
//!   particular input.  This is the paper's per-input inertial effect — the
//!   same pulse may survive on other inputs whose thresholds give different
//!   event times.
//!
//! Storage is a bucketed [`TimeWheel`] (see [`wheel`](crate::wheel)) rather
//! than a binary heap: simulation timestamps cluster at gate-delay
//! granularity, so insert is an array index plus a push and pop scans one
//! small bucket.  Cancellation stays lazy — one bit in a serial-indexed
//! bitset — so both operations avoid hashing entirely.  The previous
//! `BinaryHeap` + `HashSet` implementation is preserved verbatim in
//! [`mod@reference`] as the executable specification the property tests and the
//! `event_queue` benchmark compare against.

use halotis_core::Time;

use crate::event::Event;
use crate::wheel::TimeWheel;

/// The outcome of [`EventQueue::schedule`], mirroring the two branches of
/// the Fig. 4 flowchart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleOutcome {
    /// The event was inserted (`Ej > Ej-1`, or no pending event existed).
    Inserted,
    /// The pending previous event on the same input was cancelled and the
    /// new event discarded (`Ej <= Ej-1`): the pulse is filtered at this
    /// input.
    CancelledPrevious,
}

/// Wheel payload: the event plus the dense pin index it targets.
#[derive(Clone, Copy, Debug)]
struct QueuedEvent {
    pin_index: u32,
    event: Event,
}

/// Null link of the pending lists.
const NIL: u32 = u32::MAX;

/// The per-pin pending FIFOs of the Fig. 4 rule, as linked lists through
/// one shared node arena.
///
/// A `Vec<VecDeque<_>>` layout costs one heap buffer per active pin per
/// state — a few hundred allocations per batch on corpus circuits — while
/// the arena costs one, reused via a free list.  Per-pin depth is the
/// number of in-flight events on one input (usually one or two, a handful
/// for stimulus-fed pins), so the `pop_back` tail walk is short.
#[derive(Clone, Debug)]
struct PendingLists {
    /// Arena node: `(event time, wheel serial, next toward the back)`.
    nodes: Vec<(Time, u64, u32)>,
    /// Recycled arena indices.
    free: Vec<u32>,
    /// Per-pin front node (the pop side), [`NIL`] when empty.
    heads: Vec<u32>,
    /// Per-pin back node (the schedule side), [`NIL`] when empty.
    tails: Vec<u32>,
}

impl PendingLists {
    fn new(pin_count: usize) -> Self {
        PendingLists {
            nodes: Vec::new(),
            free: Vec::new(),
            heads: vec![NIL; pin_count],
            tails: vec![NIL; pin_count],
        }
    }

    /// The most recently scheduled pending entry for `pin`.
    fn back(&self, pin: usize) -> Option<(Time, u64)> {
        let tail = self.tails[pin];
        (tail != NIL).then(|| {
            let (time, serial, _) = self.nodes[tail as usize];
            (time, serial)
        })
    }

    fn push_back(&mut self, pin: usize, time: Time, serial: u64) {
        let node = (time, serial, NIL);
        let index = match self.free.pop() {
            Some(index) => {
                self.nodes[index as usize] = node;
                index
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        };
        let tail = self.tails[pin];
        if tail == NIL {
            self.heads[pin] = index;
        } else {
            self.nodes[tail as usize].2 = index;
        }
        self.tails[pin] = index;
    }

    fn pop_front(&mut self, pin: usize) -> Option<(Time, u64)> {
        let head = self.heads[pin];
        if head == NIL {
            return None;
        }
        let (time, serial, next) = self.nodes[head as usize];
        self.heads[pin] = next;
        if next == NIL {
            self.tails[pin] = NIL;
        }
        self.free.push(head);
        Some((time, serial))
    }

    /// Removes the most recently scheduled entry (the Fig. 4 cancellation).
    fn pop_back(&mut self, pin: usize) {
        let tail = self.tails[pin];
        debug_assert_ne!(tail, NIL, "pop_back on an empty pending list");
        let head = self.heads[pin];
        if head == tail {
            self.heads[pin] = NIL;
            self.tails[pin] = NIL;
        } else {
            let mut current = head;
            while self.nodes[current as usize].2 != tail {
                current = self.nodes[current as usize].2;
            }
            self.nodes[current as usize].2 = NIL;
            self.tails[pin] = current;
        }
        self.free.push(tail);
    }

    /// Empties every list, keeping the arena and the per-pin tables.
    fn reset(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.heads.fill(NIL);
        self.tails.fill(NIL);
    }

    /// Grows the per-pin tables to `pin_count` empty lists (the pin arena
    /// never shrinks across circuit edits).
    fn resize_pins(&mut self, pin_count: usize) {
        debug_assert!(pin_count >= self.heads.len(), "pin arena never shrinks");
        self.heads.resize(pin_count, NIL);
        self.tails.resize(pin_count, NIL);
    }

    /// Re-dimensions the per-pin tables for an unrelated circuit, dropping
    /// every queued node: unlike [`resize_pins`](Self::resize_pins) the
    /// tables may shrink, so any node a vanished slot still referenced must
    /// go too — hence the full reset.
    fn reshape_pins(&mut self, pin_count: usize) {
        self.nodes.clear();
        self.free.clear();
        self.heads.clear();
        self.heads.resize(pin_count, NIL);
        self.tails.clear();
        self.tails.resize(pin_count, NIL);
    }
}

/// Time-ordered event queue with the per-input cancellation rule.
///
/// # Example
///
/// ```
/// use halotis_core::{GateId, LogicLevel, PinRef, Time, TimeDelta};
/// use halotis_sim::event::Event;
/// use halotis_sim::queue::{EventQueue, ScheduleOutcome};
///
/// let mut queue = EventQueue::new(1);
/// let pin = PinRef::new(GateId::new(0), 0);
/// let event = |ns| Event::new(Time::from_ns(ns), pin, LogicLevel::High, TimeDelta::from_ps(100.0));
/// assert_eq!(queue.schedule(0, event(2.0)), ScheduleOutcome::Inserted);
/// // An event arriving *before* the pending one cancels it: the pulse is
/// // invisible to this input.
/// assert_eq!(queue.schedule(0, event(1.5)), ScheduleOutcome::CancelledPrevious);
/// assert!(queue.pop().is_none());
/// ```
#[derive(Clone, Debug)]
pub struct EventQueue {
    wheel: TimeWheel<QueuedEvent>,
    pending: PendingLists,
    scheduled: usize,
    filtered: usize,
    high_water: usize,
}

impl EventQueue {
    /// Creates a queue for a circuit with `pin_count` gate input pins.
    pub fn new(pin_count: usize) -> Self {
        EventQueue {
            wheel: TimeWheel::new(),
            pending: PendingLists::new(pin_count),
            scheduled: 0,
            filtered: 0,
            high_water: 0,
        }
    }

    /// Applies the Fig. 4 rule to a candidate event for the input with dense
    /// index `pin_index`.
    ///
    /// # Panics
    ///
    /// Panics if `pin_index` is out of range for the queue.
    pub fn schedule(&mut self, pin_index: usize, event: Event) -> ScheduleOutcome {
        if let Some((previous_time, previous_serial)) = self.pending.back(pin_index) {
            if event.time <= previous_time {
                self.wheel.cancel(previous_serial);
                self.pending.pop_back(pin_index);
                self.filtered += 1;
                return ScheduleOutcome::CancelledPrevious;
            }
        }
        let serial = self.wheel.push(
            event.time,
            QueuedEvent {
                pin_index: pin_index as u32,
                event,
            },
        );
        self.pending.push_back(pin_index, event.time, serial);
        self.scheduled += 1;
        self.high_water = self.high_water.max(self.wheel.len());
        ScheduleOutcome::Inserted
    }

    /// Grows the queue's per-pin tables after a circuit edit enlarged the
    /// pin arena.  Existing slots (and any queued events) are untouched.
    pub(crate) fn resize_pins(&mut self, pin_count: usize) {
        self.pending.resize_pins(pin_count);
    }

    /// Re-dimensions the queue for an unrelated circuit (shrink allowed) and
    /// clears it back to the freshly constructed condition — the arena-reuse
    /// path behind [`SimState::reshape`](crate::SimState).
    pub(crate) fn reshape_pins(&mut self, pin_count: usize) {
        self.wheel.reset();
        self.pending.reshape_pins(pin_count);
        self.scheduled = 0;
        self.filtered = 0;
        self.high_water = 0;
    }

    /// Clears the queue back to its freshly constructed condition while
    /// keeping every allocation (wheel buckets, per-pin pending slots), so a
    /// reused [`SimState`](crate::SimState) arena schedules its next run
    /// without reallocating.
    ///
    /// The serial counter restarts at zero too: equal-time events are
    /// ordered by insertion serial, so a reset queue must hand out the same
    /// serials a fresh queue would for runs to be bit-identical.
    pub fn reset(&mut self) {
        self.wheel.reset();
        self.pending.reset();
        self.scheduled = 0;
        self.filtered = 0;
        self.high_water = 0;
    }

    /// The raw pop shared by the public variants: earliest live entry plus
    /// the bookkeeping key the pending-slot invariant is stated over.  With
    /// `strict` the pending-front invariant holds in every build profile,
    /// without it only under `debug_assertions`.
    #[inline]
    fn pop_raw(&mut self, strict: bool) -> Option<(usize, Event)> {
        let (time, serial, queued) = self.wheel.pop()?;
        let pin_index = queued.pin_index as usize;
        let front = self.pending.pop_front(pin_index);
        if strict {
            assert_eq!(
                front,
                Some((time, serial)),
                "popped entry desynchronised from pin {pin_index}'s pending front"
            );
        } else {
            debug_assert_eq!(front, Some((time, serial)));
        }
        Some((pin_index, queued.event))
    }

    /// Pops the earliest live event, skipping lazily cancelled entries.
    pub fn pop(&mut self) -> Option<Event> {
        self.pop_raw(false).map(|(_, event)| event)
    }

    /// Pops the earliest live event together with the dense pin index it was
    /// scheduled for — the engine's hot-loop entry point, saving it the
    /// `PinRef` → dense re-resolution.
    pub fn pop_indexed(&mut self) -> Option<(usize, Event)> {
        self.pop_raw(false)
    }

    /// [`pop`](EventQueue::pop), but asserting in **every** build profile
    /// that the popped entry matches its pin's pending-slot front — the
    /// invariant that ties the time-ordered store to the per-pin Fig. 4
    /// bookkeeping.  `pop` itself only `debug_assert`s this; the
    /// queue-properties test suite drives `pop_checked` so release-mode
    /// refactors of the store cannot desynchronise the two silently.
    ///
    /// # Panics
    ///
    /// Panics when the popped entry is not the front of its pin's pending
    /// queue (a queue-implementation bug, never a caller error).
    pub fn pop_checked(&mut self) -> Option<Event> {
        self.pop_raw(true).map(|(_, event)| event)
    }

    /// Number of live (not cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// `true` when no live event remains.
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }

    /// Total number of events that were inserted into the queue.
    pub fn scheduled(&self) -> usize {
        self.scheduled
    }

    /// Total number of Fig. 4 cancellations (each removes one pending event
    /// and discards the incoming one) — the paper's "filtered events".
    pub fn filtered(&self) -> usize {
        self.filtered
    }

    /// The largest number of live events the queue held at any instant since
    /// construction or the last [`reset`](EventQueue::reset) — the
    /// queue-depth high-water mark of the soak-scenario event-budget
    /// telemetry.  Sampled after every insertion, so cancellations can never
    /// hide a peak.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

pub mod reference {
    //! The original `BinaryHeap` + `HashSet` event queue, kept verbatim as
    //! an executable reference implementation.
    //!
    //! This is **not** used by the engine.  It exists so that
    //! `tests/queue_properties.rs` can proptest the production
    //! [`EventQueue`](super::EventQueue) against it (identical pop order
    //! including equal-time serial tie-breaks, identical scheduled/filtered
    //! counts, identical behaviour after `reset`), and so the `event_queue`
    //! benchmark can report the heap-vs-wheel ablation.

    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashSet, VecDeque};

    use halotis_core::Time;

    use super::ScheduleOutcome;
    use crate::event::Event;

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    struct QueuedEvent {
        time: Time,
        serial: u64,
        pin_index: usize,
        event: Event,
    }

    impl Ord for QueuedEvent {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.time, self.serial).cmp(&(other.time, other.serial))
        }
    }

    impl PartialOrd for QueuedEvent {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    /// The pre-time-wheel queue: binary heap ordered by `(time, serial)`
    /// with a `HashSet` of lazily cancelled serials.  Same public surface
    /// and same observable behaviour as [`EventQueue`](super::EventQueue).
    #[derive(Clone, Debug)]
    pub struct ReferenceEventQueue {
        heap: BinaryHeap<Reverse<QueuedEvent>>,
        pending: Vec<VecDeque<(Time, u64)>>,
        cancelled: HashSet<u64>,
        next_serial: u64,
        scheduled: usize,
        filtered: usize,
    }

    impl ReferenceEventQueue {
        /// Creates a queue for a circuit with `pin_count` gate input pins.
        pub fn new(pin_count: usize) -> Self {
            ReferenceEventQueue {
                heap: BinaryHeap::new(),
                pending: vec![VecDeque::new(); pin_count],
                cancelled: HashSet::new(),
                next_serial: 0,
                scheduled: 0,
                filtered: 0,
            }
        }

        /// The Fig. 4 rule, heap edition.
        pub fn schedule(&mut self, pin_index: usize, event: Event) -> ScheduleOutcome {
            if let Some(&(previous_time, previous_serial)) = self.pending[pin_index].back() {
                if event.time <= previous_time {
                    self.cancelled.insert(previous_serial);
                    self.pending[pin_index].pop_back();
                    self.filtered += 1;
                    return ScheduleOutcome::CancelledPrevious;
                }
            }
            let serial = self.next_serial;
            self.next_serial += 1;
            self.pending[pin_index].push_back((event.time, serial));
            self.heap.push(Reverse(QueuedEvent {
                time: event.time,
                serial,
                pin_index,
                event,
            }));
            self.scheduled += 1;
            ScheduleOutcome::Inserted
        }

        /// Clears the queue, restarting serial numbering at zero.
        pub fn reset(&mut self) {
            self.heap.clear();
            for slot in &mut self.pending {
                slot.clear();
            }
            self.cancelled.clear();
            self.next_serial = 0;
            self.scheduled = 0;
            self.filtered = 0;
        }

        /// Pops the earliest live event, skipping lazily cancelled entries.
        pub fn pop(&mut self) -> Option<Event> {
            while let Some(Reverse(entry)) = self.heap.pop() {
                if self.cancelled.remove(&entry.serial) {
                    continue;
                }
                let front = self.pending[entry.pin_index].pop_front();
                debug_assert_eq!(front, Some((entry.time, entry.serial)));
                return Some(entry.event);
            }
            None
        }

        /// Number of live (not cancelled) events still queued.
        pub fn len(&self) -> usize {
            self.heap.len() - self.cancelled.len()
        }

        /// `true` when no live event remains.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Total number of events that were inserted into the queue.
        pub fn scheduled(&self) -> usize {
            self.scheduled
        }

        /// Total number of Fig. 4 cancellations.
        pub fn filtered(&self) -> usize {
            self.filtered
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_core::{GateId, LogicLevel, PinRef, TimeDelta};
    use proptest::prelude::*;

    fn event(ns: f64, pin_index: u32) -> Event {
        Event::new(
            Time::from_ns(ns),
            PinRef::new(GateId::new(pin_index), 0),
            LogicLevel::High,
            TimeDelta::from_ps(100.0),
        )
    }

    #[test]
    fn events_pop_in_time_order_across_pins() {
        let mut queue = EventQueue::new(3);
        queue.schedule(0, event(3.0, 0));
        queue.schedule(1, event(1.0, 1));
        queue.schedule(2, event(2.0, 2));
        let order: Vec<f64> = std::iter::from_fn(|| queue.pop())
            .map(|e| e.time.as_ns())
            .collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
        assert!(queue.is_empty());
        assert_eq!(queue.scheduled(), 3);
        assert_eq!(queue.filtered(), 0);
    }

    #[test]
    fn later_event_on_same_pin_is_appended() {
        let mut queue = EventQueue::new(1);
        assert_eq!(queue.schedule(0, event(1.0, 0)), ScheduleOutcome::Inserted);
        assert_eq!(queue.schedule(0, event(2.0, 0)), ScheduleOutcome::Inserted);
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.pop().unwrap().time, Time::from_ns(1.0));
        assert_eq!(queue.pop().unwrap().time, Time::from_ns(2.0));
    }

    #[test]
    fn earlier_event_cancels_pending_one() {
        let mut queue = EventQueue::new(1);
        queue.schedule(0, event(2.0, 0));
        assert_eq!(
            queue.schedule(0, event(1.5, 0)),
            ScheduleOutcome::CancelledPrevious
        );
        assert_eq!(queue.len(), 0);
        assert!(queue.pop().is_none());
        assert_eq!(queue.filtered(), 1);
        assert_eq!(queue.scheduled(), 1);
    }

    #[test]
    fn equal_time_event_also_cancels() {
        let mut queue = EventQueue::new(1);
        queue.schedule(0, event(2.0, 0));
        assert_eq!(
            queue.schedule(0, event(2.0, 0)),
            ScheduleOutcome::CancelledPrevious
        );
        assert!(queue.is_empty());
    }

    #[test]
    fn cancellation_only_touches_the_latest_pending_event() {
        let mut queue = EventQueue::new(1);
        queue.schedule(0, event(1.0, 0));
        queue.schedule(0, event(3.0, 0));
        // This event lands before the 3.0 ns one: they annihilate, but the
        // 1.0 ns event survives.
        queue.schedule(0, event(2.0, 0));
        assert_eq!(queue.len(), 1);
        assert_eq!(queue.pop().unwrap().time, Time::from_ns(1.0));
        assert!(queue.pop().is_none());
    }

    #[test]
    fn consumed_events_do_not_block_new_ones() {
        let mut queue = EventQueue::new(1);
        queue.schedule(0, event(1.0, 0));
        assert_eq!(queue.pop().unwrap().time, Time::from_ns(1.0));
        // The previous event was consumed, not pending: an earlier-looking
        // new event is simply inserted.
        assert_eq!(queue.schedule(0, event(0.5, 0)), ScheduleOutcome::Inserted);
        assert_eq!(queue.pop().unwrap().time, Time::from_ns(0.5));
    }

    #[test]
    fn reset_restores_a_fresh_queue() {
        let mut queue = EventQueue::new(2);
        queue.schedule(0, event(2.0, 0));
        queue.schedule(0, event(1.5, 0)); // cancels the pending event
        queue.schedule(1, event(3.0, 1));
        queue.reset();
        assert!(queue.is_empty());
        assert_eq!(queue.scheduled(), 0);
        assert_eq!(queue.filtered(), 0);
        // Scheduling after a reset behaves exactly like a fresh queue,
        // including the serial-based tie-break for equal-time events.
        assert_eq!(queue.schedule(0, event(1.0, 0)), ScheduleOutcome::Inserted);
        assert_eq!(queue.schedule(1, event(1.0, 1)), ScheduleOutcome::Inserted);
        let order: Vec<usize> = std::iter::from_fn(|| queue.pop())
            .map(|e| e.pin.gate().index())
            .collect();
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn high_water_tracks_the_peak_live_depth() {
        let mut queue = EventQueue::new(3);
        assert_eq!(queue.high_water(), 0);
        queue.schedule(0, event(1.0, 0));
        queue.schedule(1, event(2.0, 1));
        queue.schedule(2, event(3.0, 2));
        assert_eq!(queue.high_water(), 3);
        // Draining does not lower the mark.
        while queue.pop().is_some() {}
        assert_eq!(queue.high_water(), 3);
        // Nor does a cancellation rewind it.
        queue.schedule(0, event(5.0, 0));
        queue.schedule(0, event(4.0, 0));
        assert_eq!(queue.high_water(), 3);
        queue.reset();
        assert_eq!(queue.high_water(), 0);
    }

    #[test]
    fn independent_pins_do_not_interact() {
        let mut queue = EventQueue::new(2);
        queue.schedule(0, event(2.0, 0));
        assert_eq!(queue.schedule(1, event(1.0, 1)), ScheduleOutcome::Inserted);
        assert_eq!(queue.len(), 2);
    }

    #[test]
    fn pop_indexed_returns_the_scheduled_dense_index() {
        let mut queue = EventQueue::new(5);
        queue.schedule(4, event(2.0, 9));
        queue.schedule(2, event(1.0, 7));
        assert_eq!(queue.pop_indexed().map(|(pin, _)| pin), Some(2));
        assert_eq!(queue.pop_indexed().map(|(pin, _)| pin), Some(4));
        assert_eq!(queue.pop_indexed(), None);
    }

    proptest! {
        #[test]
        fn prop_pops_are_time_ordered(times in proptest::collection::vec(0.0f64..100.0, 1..50)) {
            let mut queue = EventQueue::new(times.len());
            for (pin, &t) in times.iter().enumerate() {
                queue.schedule(pin, event(t, pin as u32));
            }
            let mut previous = Time::MIN;
            while let Some(e) = queue.pop() {
                prop_assert!(e.time >= previous);
                previous = e.time;
            }
        }

        #[test]
        fn prop_per_pin_pending_times_strictly_increase(times in proptest::collection::vec(0.0f64..100.0, 1..50)) {
            // All events target the same pin: after arbitrary scheduling the
            // surviving events must come out strictly increasing (the
            // cancellation rule guarantees it).
            let mut queue = EventQueue::new(1);
            for &t in &times {
                queue.schedule(0, event(t, 0));
            }
            let popped: Vec<Time> = std::iter::from_fn(|| queue.pop()).map(|e| e.time).collect();
            for pair in popped.windows(2) {
                prop_assert!(pair[0] < pair[1]);
            }
            prop_assert_eq!(queue.scheduled() - popped.len(), queue.filtered());
        }
    }
}
