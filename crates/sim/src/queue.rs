//! The HALOTIS event queue.
//!
//! The queue implements the scheduling rule of the paper's Fig. 4.  Events
//! are kept globally ordered by time, and *per gate input* the queue
//! remembers the pending (not yet simulated) events in arrival order.  When
//! a new event `Ej` is generated for an input that already has a pending
//! event `Ej-1`:
//!
//! * if `Ej` happens **after** `Ej-1`, it is inserted normally — the input
//!   sees both edges;
//! * otherwise `Ej-1` is **removed** from the queue and `Ej` is *not*
//!   inserted: the pulse bounded by the two events never existed for this
//!   particular input.  This is the paper's per-input inertial effect — the
//!   same pulse may survive on other inputs whose thresholds give different
//!   event times.
//!
//! Cancellation is lazy: cancelled entries stay in the binary heap and are
//! skipped on pop, which keeps both operations `O(log n)`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};

use halotis_core::Time;

use crate::event::Event;

/// The outcome of [`EventQueue::schedule`], mirroring the two branches of
/// the Fig. 4 flowchart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleOutcome {
    /// The event was inserted (`Ej > Ej-1`, or no pending event existed).
    Inserted,
    /// The pending previous event on the same input was cancelled and the
    /// new event discarded (`Ej <= Ej-1`): the pulse is filtered at this
    /// input.
    CancelledPrevious,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct QueuedEvent {
    time: Time,
    serial: u64,
    pin_index: usize,
    event: Event,
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.serial).cmp(&(other.time, other.serial))
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Time-ordered event queue with the per-input cancellation rule.
///
/// # Example
///
/// ```
/// use halotis_core::{GateId, LogicLevel, PinRef, Time, TimeDelta};
/// use halotis_sim::event::Event;
/// use halotis_sim::queue::{EventQueue, ScheduleOutcome};
///
/// let mut queue = EventQueue::new(1);
/// let pin = PinRef::new(GateId::new(0), 0);
/// let event = |ns| Event::new(Time::from_ns(ns), pin, LogicLevel::High, TimeDelta::from_ps(100.0));
/// assert_eq!(queue.schedule(0, event(2.0)), ScheduleOutcome::Inserted);
/// // An event arriving *before* the pending one cancels it: the pulse is
/// // invisible to this input.
/// assert_eq!(queue.schedule(0, event(1.5)), ScheduleOutcome::CancelledPrevious);
/// assert!(queue.pop().is_none());
/// ```
#[derive(Clone, Debug)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<QueuedEvent>>,
    pending: Vec<VecDeque<(Time, u64)>>,
    cancelled: HashSet<u64>,
    next_serial: u64,
    scheduled: usize,
    filtered: usize,
}

impl EventQueue {
    /// Creates a queue for a circuit with `pin_count` gate input pins.
    pub fn new(pin_count: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: vec![VecDeque::new(); pin_count],
            cancelled: HashSet::new(),
            next_serial: 0,
            scheduled: 0,
            filtered: 0,
        }
    }

    /// Applies the Fig. 4 rule to a candidate event for the input with dense
    /// index `pin_index`.
    ///
    /// # Panics
    ///
    /// Panics if `pin_index` is out of range for the queue.
    pub fn schedule(&mut self, pin_index: usize, event: Event) -> ScheduleOutcome {
        if let Some(&(previous_time, previous_serial)) = self.pending[pin_index].back() {
            if event.time <= previous_time {
                self.cancelled.insert(previous_serial);
                self.pending[pin_index].pop_back();
                self.filtered += 1;
                return ScheduleOutcome::CancelledPrevious;
            }
        }
        let serial = self.next_serial;
        self.next_serial += 1;
        self.pending[pin_index].push_back((event.time, serial));
        self.heap.push(Reverse(QueuedEvent {
            time: event.time,
            serial,
            pin_index,
            event,
        }));
        self.scheduled += 1;
        ScheduleOutcome::Inserted
    }

    /// Clears the queue back to its freshly constructed condition while
    /// keeping every allocation (heap storage, per-pin pending slots), so a
    /// reused [`SimState`](crate::SimState) arena schedules its next run
    /// without reallocating.
    ///
    /// The serial counter restarts at zero too: equal-time events are
    /// ordered by insertion serial, so a reset queue must hand out the same
    /// serials a fresh queue would for runs to be bit-identical.
    pub fn reset(&mut self) {
        self.heap.clear();
        for slot in &mut self.pending {
            slot.clear();
        }
        self.cancelled.clear();
        self.next_serial = 0;
        self.scheduled = 0;
        self.filtered = 0;
    }

    /// Pops the earliest live event, skipping lazily cancelled entries.
    pub fn pop(&mut self) -> Option<Event> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.serial) {
                continue;
            }
            let front = self.pending[entry.pin_index].pop_front();
            debug_assert_eq!(front, Some((entry.time, entry.serial)));
            return Some(entry.event);
        }
        None
    }

    /// Number of live (not cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// `true` when no live event remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events that were inserted into the queue.
    pub fn scheduled(&self) -> usize {
        self.scheduled
    }

    /// Total number of Fig. 4 cancellations (each removes one pending event
    /// and discards the incoming one) — the paper's "filtered events".
    pub fn filtered(&self) -> usize {
        self.filtered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_core::{GateId, LogicLevel, PinRef, TimeDelta};
    use proptest::prelude::*;

    fn event(ns: f64, pin_index: u32) -> Event {
        Event::new(
            Time::from_ns(ns),
            PinRef::new(GateId::new(pin_index), 0),
            LogicLevel::High,
            TimeDelta::from_ps(100.0),
        )
    }

    #[test]
    fn events_pop_in_time_order_across_pins() {
        let mut queue = EventQueue::new(3);
        queue.schedule(0, event(3.0, 0));
        queue.schedule(1, event(1.0, 1));
        queue.schedule(2, event(2.0, 2));
        let order: Vec<f64> = std::iter::from_fn(|| queue.pop())
            .map(|e| e.time.as_ns())
            .collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
        assert!(queue.is_empty());
        assert_eq!(queue.scheduled(), 3);
        assert_eq!(queue.filtered(), 0);
    }

    #[test]
    fn later_event_on_same_pin_is_appended() {
        let mut queue = EventQueue::new(1);
        assert_eq!(queue.schedule(0, event(1.0, 0)), ScheduleOutcome::Inserted);
        assert_eq!(queue.schedule(0, event(2.0, 0)), ScheduleOutcome::Inserted);
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.pop().unwrap().time, Time::from_ns(1.0));
        assert_eq!(queue.pop().unwrap().time, Time::from_ns(2.0));
    }

    #[test]
    fn earlier_event_cancels_pending_one() {
        let mut queue = EventQueue::new(1);
        queue.schedule(0, event(2.0, 0));
        assert_eq!(
            queue.schedule(0, event(1.5, 0)),
            ScheduleOutcome::CancelledPrevious
        );
        assert_eq!(queue.len(), 0);
        assert!(queue.pop().is_none());
        assert_eq!(queue.filtered(), 1);
        assert_eq!(queue.scheduled(), 1);
    }

    #[test]
    fn equal_time_event_also_cancels() {
        let mut queue = EventQueue::new(1);
        queue.schedule(0, event(2.0, 0));
        assert_eq!(
            queue.schedule(0, event(2.0, 0)),
            ScheduleOutcome::CancelledPrevious
        );
        assert!(queue.is_empty());
    }

    #[test]
    fn cancellation_only_touches_the_latest_pending_event() {
        let mut queue = EventQueue::new(1);
        queue.schedule(0, event(1.0, 0));
        queue.schedule(0, event(3.0, 0));
        // This event lands before the 3.0 ns one: they annihilate, but the
        // 1.0 ns event survives.
        queue.schedule(0, event(2.0, 0));
        assert_eq!(queue.len(), 1);
        assert_eq!(queue.pop().unwrap().time, Time::from_ns(1.0));
        assert!(queue.pop().is_none());
    }

    #[test]
    fn consumed_events_do_not_block_new_ones() {
        let mut queue = EventQueue::new(1);
        queue.schedule(0, event(1.0, 0));
        assert_eq!(queue.pop().unwrap().time, Time::from_ns(1.0));
        // The previous event was consumed, not pending: an earlier-looking
        // new event is simply inserted.
        assert_eq!(queue.schedule(0, event(0.5, 0)), ScheduleOutcome::Inserted);
        assert_eq!(queue.pop().unwrap().time, Time::from_ns(0.5));
    }

    #[test]
    fn reset_restores_a_fresh_queue() {
        let mut queue = EventQueue::new(2);
        queue.schedule(0, event(2.0, 0));
        queue.schedule(0, event(1.5, 0)); // cancels the pending event
        queue.schedule(1, event(3.0, 1));
        queue.reset();
        assert!(queue.is_empty());
        assert_eq!(queue.scheduled(), 0);
        assert_eq!(queue.filtered(), 0);
        // Scheduling after a reset behaves exactly like a fresh queue,
        // including the serial-based tie-break for equal-time events.
        assert_eq!(queue.schedule(0, event(1.0, 0)), ScheduleOutcome::Inserted);
        assert_eq!(queue.schedule(1, event(1.0, 1)), ScheduleOutcome::Inserted);
        let order: Vec<usize> = std::iter::from_fn(|| queue.pop())
            .map(|e| e.pin.gate().index())
            .collect();
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn independent_pins_do_not_interact() {
        let mut queue = EventQueue::new(2);
        queue.schedule(0, event(2.0, 0));
        assert_eq!(queue.schedule(1, event(1.0, 1)), ScheduleOutcome::Inserted);
        assert_eq!(queue.len(), 2);
    }

    proptest! {
        #[test]
        fn prop_pops_are_time_ordered(times in proptest::collection::vec(0.0f64..100.0, 1..50)) {
            let mut queue = EventQueue::new(times.len());
            for (pin, &t) in times.iter().enumerate() {
                queue.schedule(pin, event(t, pin as u32));
            }
            let mut previous = Time::MIN;
            while let Some(e) = queue.pop() {
                prop_assert!(e.time >= previous);
                previous = e.time;
            }
        }

        #[test]
        fn prop_per_pin_pending_times_strictly_increase(times in proptest::collection::vec(0.0f64..100.0, 1..50)) {
            // All events target the same pin: after arbitrary scheduling the
            // surviving events must come out strictly increasing (the
            // cancellation rule guarantees it).
            let mut queue = EventQueue::new(1);
            for &t in &times {
                queue.schedule(0, event(t, 0));
            }
            let popped: Vec<Time> = std::iter::from_fn(|| queue.pop()).map(|e| e.time).collect();
            for pair in popped.windows(2) {
                prop_assert!(pair[0] < pair[1]);
            }
            prop_assert_eq!(queue.scheduled() - popped.len(), queue.filtered());
        }
    }
}
