//! Simulation error type.

use std::fmt;

use halotis_netlist::library::LibraryError;
use halotis_netlist::NetlistError;

/// Errors that can abort a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub enum SimulationError {
    /// A gate in the netlist uses a cell kind the library does not
    /// characterise.
    Library(LibraryError),
    /// The run exceeded its event budget
    /// ([`SimulationConfig::max_events`](crate::SimulationConfig::max_events)),
    /// which normally indicates an oscillation caused by a broken
    /// characterisation.
    EventBudgetExhausted {
        /// The configured budget.
        budget: usize,
    },
    /// A primary input has neither an initial level nor any driven edge.
    UndrivenPrimaryInput {
        /// The net name.
        net: String,
    },
    /// A netlist mutation inside [`CompiledCircuit::edit`] was rejected
    /// (arity mismatch, duplicate net name, combinational loop, …).
    ///
    /// [`CompiledCircuit::edit`]: crate::CompiledCircuit::edit
    Netlist(NetlistError),
}

impl fmt::Display for SimulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulationError::Library(err) => write!(f, "library error: {err}"),
            SimulationError::EventBudgetExhausted { budget } => {
                write!(f, "event budget of {budget} exhausted")
            }
            SimulationError::UndrivenPrimaryInput { net } => {
                write!(f, "primary input {net} has no stimulus")
            }
            SimulationError::Netlist(err) => write!(f, "netlist edit rejected: {err}"),
        }
    }
}

impl std::error::Error for SimulationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimulationError::Library(err) => Some(err),
            SimulationError::Netlist(err) => Some(err),
            _ => None,
        }
    }
}

impl From<LibraryError> for SimulationError {
    fn from(err: LibraryError) -> Self {
        SimulationError::Library(err)
    }
}

impl From<NetlistError> for SimulationError {
    fn from(err: NetlistError) -> Self {
        SimulationError::Netlist(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_netlist::CellKind;

    #[test]
    fn messages_are_descriptive() {
        let library = SimulationError::from(LibraryError::MissingCell {
            kind: CellKind::Xor2,
        });
        assert!(library.to_string().contains("no cell xor2"));
        assert!(std::error::Error::source(&library).is_some());
        let budget = SimulationError::EventBudgetExhausted { budget: 10 };
        assert_eq!(budget.to_string(), "event budget of 10 exhausted");
        let input = SimulationError::UndrivenPrimaryInput { net: "a".into() };
        assert!(input.to_string().contains("no stimulus"));
    }
}
