//! Output-ramp shaping rules shared by the simulation engines.
//!
//! Both the HALOTIS engine ([`CompiledCircuit`](crate::CompiledCircuit),
//! driving [`Simulator`](crate::Simulator)) and the classical baseline
//! ([`classical`](crate::classical)) need the same two small pieces of
//! waveform bookkeeping.  They used to be duplicated inline in each engine;
//! this module is the single home for both.

use halotis_core::{Edge, LogicLevel, Time, TimeDelta};

/// The direction of a change from `from` to `to`, coercing changes that
/// involve [`LogicLevel::Unknown`] endpoints toward the defined target
/// level.
///
/// Returns `None` only when the target itself is unknown — such changes
/// carry no drawable edge and the engines skip recording them.
///
/// # Example
///
/// ```
/// use halotis_core::{Edge, LogicLevel};
/// use halotis_sim::ramp::edge_toward;
///
/// assert_eq!(edge_toward(LogicLevel::Low, LogicLevel::High), Some(Edge::Rise));
/// assert_eq!(edge_toward(LogicLevel::Unknown, LogicLevel::Low), Some(Edge::Fall));
/// assert_eq!(edge_toward(LogicLevel::High, LogicLevel::Unknown), None);
/// ```
pub fn edge_toward(from: LogicLevel, to: LogicLevel) -> Option<Edge> {
    Edge::between(from, to).or(match to {
        LogicLevel::High => Some(Edge::Rise),
        LogicLevel::Low => Some(Edge::Fall),
        LogicLevel::Unknown => None,
    })
}

/// Computes the start instant of an output ramp triggered at `event_time`.
///
/// The propagation delay is measured to the half-swing point of the output
/// ramp, so the ramp itself starts half an output slew earlier (clamped to
/// the triggering event for causality).  One further constraint keeps the
/// net waveform well formed: a heavily degraded transition cannot start
/// before the gate's previous output transition did — it can only cut it
/// short — so the start is nudged to `previous_start + 1 fs` when it would
/// otherwise land at or before `previous_start`.
///
/// # Example
///
/// ```
/// use halotis_core::{Time, TimeDelta};
/// use halotis_sim::ramp::ramp_start;
///
/// let event = Time::from_ns(1.0);
/// // Delay 300 ps, slew 200 ps: the ramp starts 100 ps before the
/// // half-swing point at 1.3 ns.
/// let start = ramp_start(event, TimeDelta::from_ps(300.0), TimeDelta::from_ps(200.0), None);
/// assert_eq!(start, Time::from_ns(1.2));
/// // A previous output ramp at the same instant pushes the start 1 fs late.
/// let nudged = ramp_start(event, TimeDelta::from_ps(300.0), TimeDelta::from_ps(200.0), Some(start));
/// assert_eq!(nudged, start + TimeDelta::from_fs(1));
/// ```
pub fn ramp_start(
    event_time: Time,
    delay: TimeDelta,
    output_slew: TimeDelta,
    previous_start: Option<Time>,
) -> Time {
    let half_slew = output_slew / 2;
    let mut start = if delay > half_slew {
        event_time + delay - half_slew
    } else {
        event_time
    };
    if let Some(previous) = previous_start {
        if start <= previous {
            start = previous + TimeDelta::from_fs(1);
        }
    }
    start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_toward_covers_all_defined_changes() {
        assert_eq!(
            edge_toward(LogicLevel::Low, LogicLevel::High),
            Some(Edge::Rise)
        );
        assert_eq!(
            edge_toward(LogicLevel::High, LogicLevel::Low),
            Some(Edge::Fall)
        );
        assert_eq!(
            edge_toward(LogicLevel::Unknown, LogicLevel::High),
            Some(Edge::Rise)
        );
        assert_eq!(
            edge_toward(LogicLevel::Unknown, LogicLevel::Low),
            Some(Edge::Fall)
        );
        assert_eq!(edge_toward(LogicLevel::Low, LogicLevel::Unknown), None);
        assert_eq!(edge_toward(LogicLevel::High, LogicLevel::Unknown), None);
    }

    #[test]
    fn causality_clamps_short_delays_to_the_event() {
        // Delay smaller than half the slew: the ramp cannot start before the
        // event that caused it.
        let event = Time::from_ns(2.0);
        let start = ramp_start(
            event,
            TimeDelta::from_ps(50.0),
            TimeDelta::from_ps(400.0),
            None,
        );
        assert_eq!(start, event);
    }

    #[test]
    fn monotonicity_nudge_applies_only_when_needed() {
        let event = Time::from_ns(1.0);
        let delay = TimeDelta::from_ps(500.0);
        let slew = TimeDelta::from_ps(200.0);
        let free = ramp_start(event, delay, slew, None);
        // An earlier previous output leaves the start untouched.
        assert_eq!(
            ramp_start(event, delay, slew, Some(free - TimeDelta::from_ps(10.0))),
            free
        );
        // A later previous output pushes the start just past it.
        let late_previous = free + TimeDelta::from_ps(30.0);
        assert_eq!(
            ramp_start(event, delay, slew, Some(late_previous)),
            late_previous + TimeDelta::from_fs(1)
        );
    }
}
